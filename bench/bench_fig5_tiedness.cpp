// Figure 5 reproduction: "Benchmark suite results using tied and untied
// tasks" — Alignment and NQueens speed-ups with tied vs untied tasks.
//
// Expected shape: the two variants stay within a few percent of each other
// ("at most there is a 4% difference between the versions") because the
// runtime — like icc 11.0 — never migrates a suspended task, so untied
// tasks cannot exploit thread switching. Default input class: medium.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  std::string version;
  unsigned threads;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, bench::Measurement> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, unsigned threads, core::InputClass input) {
  for (auto _ : state) {
    const auto rep = bench::parallel_best(*app, version, threads, input, 1);
    state.SetIterationTime(rep.seconds);
    g_results[{app->name, version, threads}].offer(rep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  // Alignment: plain tied/untied. NQueens: the manual cut-off versions (the
  // paper's best-performing configuration).
  const std::vector<std::pair<std::string, std::vector<std::string>>> cases = {
      {"alignment", {"tied", "untied"}},
      {"nqueens", {"manual-tied", "manual-untied"}},
  };

  std::cout << "== Figure 5: tied vs untied tasks (Alignment, NQueens) ==\n"
            << "input class: " << to_string(sweep.input) << "\n";
  std::map<std::string, core::RunReport> serial;
  for (const auto& [name, versions] : cases) {
    const auto* app = core::find_app(name);
    serial[name] = bench::serial_baseline(*app, sweep.input, sweep.reps);
    std::cout << "serial " << name << ": "
              << core::format_fixed(serial[name].seconds, 3) << " s\n";
    for (const auto& version : versions) {
      for (unsigned t : sweep.threads) {
        const std::string bname =
            name + "/" + version + "/t" + std::to_string(t);
        benchmark::RegisterBenchmark(bname.c_str(), bm_config, app, version, t,
                                     sweep.input)
            ->UseManualTime()
            ->Iterations(1)
            ->Repetitions(sweep.reps)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::SpeedupTable table(sweep.threads);
  for (const auto& [name, versions] : cases) {
    for (const auto& version : versions) {
      std::vector<double> series;
      for (unsigned t : sweep.threads) {
        series.push_back(
            g_results[{name, version, t}].best.speedup_vs(serial[name]));
      }
      table.add_series(name + " " + version, series);
    }
  }
  table.print("Figure 5: suite results using tied and untied tasks");

  std::cout << "\nShape check (max relative tied/untied gap across the "
               "sweep):\n";
  for (const auto& [name, versions] : cases) {
    double max_gap = 0.0;
    for (unsigned t : sweep.threads) {
      const double a =
          g_results[{name, versions[0], t}].best.speedup_vs(serial[name]);
      const double b =
          g_results[{name, versions[1], t}].best.speedup_vs(serial[name]);
      if (a > 0 && b > 0) {
        max_gap = std::max(max_gap, std::abs(a - b) / std::max(a, b));
      }
    }
    std::cout << "  " << name << ": " << core::format_fixed(100 * max_gap, 1)
              << "% (paper: similar results, <= ~4% at saturation)\n";
  }
  return 0;
}
