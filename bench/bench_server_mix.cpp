// Server-mix benchmark (PR 7): a seeded mixed-kernel request stream —
// fib recursion, spawn-based mergesort, alignment-style pair scoring —
// fired at the resident TaskServer at a configurable arrival rate.
//
// Protocol, three legs over the same scheduler:
//   calibrate  closed-loop (submit, wait, repeat): measures mean service
//              time and derives the saturation rate sat_rps ~= team /
//              mean_service.
//   normal     open-loop arrivals at 0.5 x sat_rps, no deadlines: the
//              server should complete essentially everything.
//   overload   open-loop arrivals at 2.0 x sat_rps with a per-request
//              deadline: proves smooth degradation — excess load turns
//              into bounded-latency rejects/sheds/deadline kills, never
//              into unbounded queueing or lost requests.
//
// Every leg reports p50/p99 admission-to-terminal latency, throughput and
// the terminal-state tally as one "SERVERMIX: {json}" line (scraped by
// bench/run_baseline.sh), and the process exits non-zero if ANY robustness
// invariant fails:
//   * every submitted request reaches exactly one terminal state
//   * per-request ledgers balance (executed + discarded == deferred)
//   * completed requests produced the right answers
//   * global per-worker accounting balances after drain
//   * node pools balance after drain (when active)
//   * overload p99 stays bounded (deadline + slack)
//
// Runs under the CI TSAN soak and under RT_FAULT_PLAN legs unchanged: the
// conservation law must hold with faults injected too.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    ++g_failures;
  }
}

// splitmix64: the bench's only randomness, fully determined by --seed.
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Request kernels — in-region task recursions, each with a built-in answer
// check so a completed-but-wrong request is caught.
// ---------------------------------------------------------------------------

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = fib_task(n - 1); });
  rt::spawn([&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

bool req_fib(std::uint64_t seed) {
  const int n = 14 + static_cast<int>(seed % 4);  // 14..17
  return fib_task(n) == fib_ref(n);
}

void msort(std::vector<std::uint32_t>& v, std::vector<std::uint32_t>& tmp,
           std::size_t lo, std::size_t hi) {
  if (hi - lo <= 64) {
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(lo),
              v.begin() + static_cast<std::ptrdiff_t>(hi));
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  rt::spawn([&v, &tmp, lo, mid] { msort(v, tmp, lo, mid); });
  rt::spawn([&v, &tmp, mid, hi] { msort(v, tmp, mid, hi); });
  rt::taskwait();
  std::merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
             v.begin() + static_cast<std::ptrdiff_t>(mid),
             v.begin() + static_cast<std::ptrdiff_t>(mid),
             v.begin() + static_cast<std::ptrdiff_t>(hi),
             tmp.begin() + static_cast<std::ptrdiff_t>(lo));
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            v.begin() + static_cast<std::ptrdiff_t>(lo));
}

bool req_sort(std::uint64_t seed) {
  const std::size_t n = 8192 + (seed % 4096);
  std::vector<std::uint32_t> v(n);
  std::vector<std::uint32_t> tmp(n);
  std::uint64_t s = seed;
  std::uint64_t sum = 0;
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(mix64(s));
    sum += x;
  }
  msort(v, tmp, 0, n);
  std::uint64_t sum2 = v[0];
  bool sorted = true;
  for (std::size_t i = 1; i < n; ++i) {
    sorted = sorted && v[i - 1] <= v[i];
    sum2 += v[i];
  }
  return sorted && sum == sum2;  // sorted AND a permutation of the input
}

// Alignment-flavoured kernel: score every sequence pair (i, j) with a tiny
// rolling comparison, summed via spawn_range — the worksharing path under
// server multiplexing.
bool req_align(std::uint64_t seed) {
  constexpr std::int64_t kSeqs = 48;
  constexpr int kLen = 64;
  std::vector<std::uint8_t> seqs(static_cast<std::size_t>(kSeqs) * kLen);
  std::uint64_t s = seed;
  for (auto& c : seqs) c = static_cast<std::uint8_t>(mix64(s) % 20);
  auto score_pair = [&seqs](std::int64_t i, std::int64_t j) {
    std::uint64_t sc = 0;
    for (int k = 0; k < kLen; ++k) {
      const std::uint8_t a = seqs[static_cast<std::size_t>(i) * kLen +
                                  static_cast<std::size_t>(k)];
      const std::uint8_t b = seqs[static_cast<std::size_t>(j) * kLen +
                                  static_cast<std::size_t>(k)];
      sc += a == b ? 3u : (a % 4 == b % 4 ? 1u : 0u);
    }
    return sc;
  };
  std::atomic<std::uint64_t> total{0};
  rt::spawn_range(0, kSeqs * kSeqs, 8, [&](std::int64_t idx) {
    total.fetch_add(score_pair(idx / kSeqs, idx % kSeqs),
                    std::memory_order_relaxed);
  });
  rt::taskwait();
  std::uint64_t expect = 0;
  for (std::int64_t i = 0; i < kSeqs; ++i) {
    for (std::int64_t j = 0; j < kSeqs; ++j) expect += score_pair(i, j);
  }
  return total.load() == expect;
}

// ---------------------------------------------------------------------------
// Leg driver.
// ---------------------------------------------------------------------------

struct LegResult {
  std::string name;
  double target_rps = 0;  // 0 = closed loop
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput_rps = 0;
  double wall_s = 0;
  double mean_service_us = 0;  // completed requests only
};

struct Options {
  unsigned threads = std::thread::hardware_concurrency();
  unsigned requests = 96;  // per open-loop leg
  unsigned queue = 32;
  std::uint64_t seed = 42;
  unsigned overload_deadline_ms = 500;
  /// Live-reconfiguration churn (PR 9): a background thread hot-swaps the
  /// steal policy every this-many ms across ALL legs (0 = off). Every
  /// invariant above must hold unchanged under churn — the CI soak runs
  /// this at 10ms. Also settable via RT_BENCH_CHURN_MS.
  unsigned churn_ms = 0;
};

// Fire `n` requests at the server. interarrival_us == 0 -> closed loop
// (wait for each before the next); otherwise open loop with +-50% seeded
// jitter around the given mean gap.
LegResult run_leg(rt::TaskServer& server, const char* name, unsigned n,
                  double interarrival_us, unsigned deadline_ms,
                  std::uint64_t seed) {
  LegResult r;
  r.name = name;
  r.target_rps = interarrival_us > 0 ? 1e6 / interarrival_us : 0;
  const rt::ServerStats before = server.stats();

  std::vector<rt::RegionHandle> handles(n);
  // One result slot per request, written by the body, read only after the
  // handle is terminal.
  auto ok_flags = std::make_shared<std::vector<std::atomic<bool>>>(n);
  std::uint64_t rng = seed;

  const auto t0 = std::chrono::steady_clock::now();
  // Open-loop pacing against an ABSOLUTE schedule: each arrival has a fixed
  // due time, and a submitter that falls behind bursts to catch up instead
  // of silently degrading the target rate (sleep_for overhead would
  // otherwise clamp high rates to the service rate and no overload would
  // ever materialize).
  double due_us = 0;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t req_seed = mix64(rng);
    const unsigned kind = static_cast<unsigned>(req_seed % 3);
    auto body = [ok_flags, i, kind, req_seed] {
      bool ok = false;
      switch (kind) {
        case 0: ok = req_fib(req_seed); break;
        case 1: ok = req_sort(req_seed); break;
        default: ok = req_align(req_seed); break;
      }
      (*ok_flags)[i].store(ok, std::memory_order_release);
    };
    auto res = server.submit(std::move(body),
                             {.weight = 1, .deadline_ms = deadline_ms});
    handles[i] = res.handle;
    if (interarrival_us <= 0) {
      handles[i].wait();
    } else {
      const double jitter = 0.5 + static_cast<double>(mix64(rng) % 1000) / 1000.0;
      due_us += interarrival_us * jitter;
      std::this_thread::sleep_until(
          t0 + std::chrono::microseconds(static_cast<std::int64_t>(due_us)));
    }
  }
  // Every handle terminal before the clock stops — admitted or rejected,
  // nothing may be left pending.
  std::vector<double> lat_ms;
  lat_ms.reserve(n);
  std::uint64_t service_sum_us = 0;
  for (unsigned i = 0; i < n; ++i) {
    const rt::RequestStatus st = handles[i].wait();
    check(handles[i].done(), "request left non-terminal");
    check(handles[i].ledger_balanced(), "per-request ledger imbalance");
    switch (st) {
      case rt::RequestStatus::completed:
        ++r.completed;
        check((*ok_flags)[i].load(std::memory_order_acquire),
              "completed request produced a wrong answer");
        service_sum_us += static_cast<std::uint64_t>(handles[i].latency().count());
        break;
      case rt::RequestStatus::cancelled: ++r.cancelled; break;
      case rt::RequestStatus::deadline_exceeded: ++r.deadline_exceeded; break;
      case rt::RequestStatus::rejected_overload: ++r.rejected; break;
      case rt::RequestStatus::pending: check(false, "pending after wait()"); break;
    }
    if (st != rt::RequestStatus::rejected_overload) {
      lat_ms.push_back(static_cast<double>(handles[i].latency().count()) / 1e3);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.submitted = n;
  check(r.completed + r.cancelled + r.deadline_exceeded + r.rejected == n,
        "terminal-state tally != submitted (lost request)");
  const rt::ServerStats after = server.stats();
  r.shed = after.shed - before.shed;
  if (!lat_ms.empty()) {
    std::sort(lat_ms.begin(), lat_ms.end());
    r.p50_ms = lat_ms[lat_ms.size() / 2];
    r.p99_ms = lat_ms[std::min(lat_ms.size() - 1, lat_ms.size() * 99 / 100)];
  }
  if (r.completed > 0) {
    r.mean_service_us =
        static_cast<double>(service_sum_us) / static_cast<double>(r.completed);
  }
  r.throughput_rps = r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s : 0;
  return r;
}

void print_leg(const LegResult& r) {
  std::printf(
      "SERVERMIX: {\"leg\":\"%s\",\"target_rps\":%.1f,\"submitted\":%llu,"
      "\"completed\":%llu,\"cancelled\":%llu,\"deadline_exceeded\":%llu,"
      "\"rejected\":%llu,\"shed\":%llu,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"throughput_rps\":%.1f,\"wall_s\":%.3f}\n",
      r.name.c_str(), r.target_rps,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.cancelled),
      static_cast<unsigned long long>(r.deadline_exceeded),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.shed), r.p50_ms, r.p99_ms,
      r.throughput_rps, r.wall_s);
  std::fflush(stdout);
}

void post_drain_checks(rt::Scheduler& s) {
  const rt::StatsSnapshot st = s.stats();
  check(st.total.tasks_executed + st.total.tasks_discarded ==
            st.total.tasks_deferred,
        "global executed + discarded != deferred");
  check(st.total.pool_home_frees + st.total.pool_remote_frees ==
            st.total.pool_reuse + st.total.pool_fresh,
        "global pool frees != pool allocations");
  if (s.node_pools_active()) {
    for (const auto& n : s.node_pool_snapshot()) {
      check(n.arena_carved == n.arena_free + n.cached + n.in_transit,
            "node-pool balance broken after drain");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want("--threads")) { opt.threads = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--requests")) { opt.requests = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--queue")) { opt.queue = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--seed")) { opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i])); }
    else if (want("--overload-deadline-ms")) { opt.overload_deadline_ms = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--churn-ms")) { opt.churn_ms = static_cast<unsigned>(std::atoi(argv[++i])); }
    else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--requests N] [--queue N] "
                   "[--seed S] [--overload-deadline-ms N] [--churn-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.threads == 0) opt.threads = 4;
  if (const char* e = std::getenv("RT_BENCH_CHURN_MS"); e != nullptr) {
    opt.churn_ms = static_cast<unsigned>(std::atoi(e));
  }

  // SchedulerConfig's defaults consult the RT_* environment, so the CI
  // matrix legs (topology / policy / pinning / fault plan) apply here
  // exactly as they do to the tests.
  rt::SchedulerConfig cfg;
  cfg.num_threads = opt.threads;
  rt::Scheduler sched(cfg);
  if (sched.fault_plan().active()) {
    std::fprintf(stderr, "fault plan active: %s\n",
                 sched.fault_plan().describe().c_str());
  }

  rt::ServerConfig sc;
  sc.queue_capacity = opt.queue;
  sc.shed_on_overload = true;

  // Live-reconfiguration churn across every leg: swap the steal policy on a
  // fixed cadence while requests fly. The bench's entire invariant set —
  // exactly-one-terminal-state, balanced ledgers, right answers, bounded
  // overload latency — must hold exactly as without churn.
  std::atomic<bool> churn_stop{false};
  std::thread churn;
  std::uint64_t churn_swaps = 0;
  if (opt.churn_ms > 0 && sched.config().live_reconfigure) {
    churn = std::thread([&] {
      bool flip = false;
      while (!churn_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.churn_ms));
        sched.reconfigure_live(flip ? rt::StealPolicyKind::hierarchical
                                    : rt::StealPolicyKind::last_victim);
        flip = !flip;
        ++churn_swaps;
      }
    });
    std::fprintf(stderr, "policy churn active: swap every %u ms\n",
                 opt.churn_ms);
  }
  struct ChurnJoin {
    std::atomic<bool>& stop;
    std::thread& t;
    ~ChurnJoin() {
      stop.store(true, std::memory_order_release);
      if (t.joinable()) t.join();
    }
  } churn_join{churn_stop, churn};

  // -- leg 1: closed-loop calibration ---------------------------------------
  // Closed-loop throughput IS the saturation rate: each request already
  // parallelizes over the whole team, so multiplexing cannot push the
  // server past "team continuously busy". (Deriving saturation from
  // team/mean_latency instead would overestimate it by ~the per-request
  // speedup and turn the "normal" leg into an overload.)
  double sat_rps;
  {
    rt::TaskServer server(sched, sc);
    const unsigned n = std::max(12u, opt.requests / 8);
    LegResult cal = run_leg(server, "calibrate", n, 0, 0, opt.seed);
    server.drain();
    print_leg(cal);
    post_drain_checks(sched);
    // Injected admission faults can reject closed-loop requests; calibrate
    // from whatever completed, with a floor so the rates stay sane.
    sat_rps = cal.throughput_rps > 20 ? cal.throughput_rps : 20;
  }

  // -- leg 2: 0.5x saturation (normal operation) ----------------------------
  {
    rt::TaskServer server(sched, sc);
    LegResult normal = run_leg(server, "normal", opt.requests,
                               1e6 / (0.5 * sat_rps), 0, opt.seed + 1);
    server.drain();
    print_leg(normal);
    post_drain_checks(sched);
  }

  // -- leg 3: 2x saturation (overload, per-request deadlines) ---------------
  {
    rt::TaskServer server(sched, sc);
    LegResult over = run_leg(server, "overload", opt.requests,
                             1e6 / (2.0 * sat_rps), opt.overload_deadline_ms,
                             opt.seed + 2);
    server.drain();
    print_leg(over);
    post_drain_checks(sched);
    // Smooth degradation: admitted-request latency stays bounded by the
    // deadline plus scheduling slack — overload turns into rejects, sheds
    // and deadline kills, never into unbounded queueing.
    const double bound_ms = static_cast<double>(opt.overload_deadline_ms) + 2000.0;
    check(over.p99_ms <= bound_ms, "overload p99 latency unbounded");
    check(over.completed > 0, "overload leg completed nothing");
  }

  churn_stop.store(true, std::memory_order_release);
  if (churn.joinable()) churn.join();
  if (opt.churn_ms > 0) {
    std::printf("policy churn: %llu live swaps during the run\n",
                static_cast<unsigned long long>(churn_swaps));
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "bench_server_mix: %d invariant failure(s)\n",
                 g_failures);
    return 1;
  }
  std::printf("bench_server_mix: all invariants held\n");
  return 0;
}
