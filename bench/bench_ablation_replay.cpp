// Taskgraph record-and-replay ablation (PR 8): what does a region's task
// DISCOVERY actually cost, and how much of it does replay amortise away?
//
// Three execution modes over the same kernels (sparselu, strassen):
//   taskwait  the classic 3-phase / recursive taskwait-barrier version —
//             the paper's structure, discovery cost paid every run.
//   record    dependence-tracked dataflow with a FRESH graph tag per rep:
//             every rep pays closure+descriptor allocation, tracker hash
//             lookups, edge pushes, AND the recording capture.
//   replay    one recording up front, then reps that replay the frozen
//             graph: pre-resolved predecessor counts, descriptors reset in
//             place, one bulk parent RMW, workers started from the
//             recorded root frontier.
//
// Each mode reports best-of/mean wall time, tasks per rep, ns/task and
// dependence edges resolved as one "GRAPHREPLAY: {json}" line (scraped by
// bench/run_baseline.sh into BENCH_baseline.json). Results are verified
// against the serial reference after every mode — a fast wrong answer is a
// failure, and the process exits non-zero.
//
// --tripwire: additionally require the replayed sparselu rep to beat the
// record run (the CI speedup gate: if replay is not cheaper than the run
// that pays full discovery + capture cost, the feature regressed).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/report.hpp"
#include "kernels/sparselu/sparselu.hpp"
#include "kernels/strassen/strassen.hpp"
#include "runtime/rt.hpp"

namespace core = bots::core;
namespace rt = bots::rt;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    ++g_failures;
  }
}

struct ModeResult {
  std::string kernel;
  std::string variant;
  int reps = 0;
  double ms_best = 0.0;
  double ms_mean = 0.0;
  std::uint64_t tasks_per_rep = 0;
  std::uint64_t edges_per_rep = 0;
  std::uint64_t graphs_recorded = 0;
  std::uint64_t graphs_replayed = 0;
};

/// Run `reps` timed repetitions of `body` (after `reset` each time, which
/// is NOT timed) and fold the scheduler-stats delta into per-rep numbers.
template <class Reset, class Body>
ModeResult measure(const char* kernel, const char* variant, int reps,
                   rt::Scheduler& sched, Reset&& reset, Body&& body) {
  ModeResult r;
  r.kernel = kernel;
  r.variant = variant;
  r.reps = reps;
  const rt::WorkerStats before = sched.stats().total;
  double sum = 0.0;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    reset(rep);
    core::Timer t;
    body(rep);
    const double ms = t.seconds() * 1e3;
    sum += ms;
    best = std::min(best, ms);
  }
  const rt::WorkerStats after = sched.stats().total;
  r.ms_best = best;
  r.ms_mean = sum / reps;
  r.tasks_per_rep =
      (after.tasks_deferred - before.tasks_deferred) / static_cast<std::uint64_t>(reps);
  r.edges_per_rep =
      (after.edges_resolved - before.edges_resolved) / static_cast<std::uint64_t>(reps);
  r.graphs_recorded = after.graphs_recorded - before.graphs_recorded;
  r.graphs_replayed = after.graphs_replayed - before.graphs_replayed;
  return r;
}

void emit(const ModeResult& r, unsigned threads) {
  const double ns_per_task =
      r.tasks_per_rep == 0
          ? 0.0
          : r.ms_best * 1e6 / static_cast<double>(r.tasks_per_rep);
  std::printf(
      "GRAPHREPLAY: {\"kernel\":\"%s\",\"variant\":\"%s\",\"threads\":%u,"
      "\"reps\":%d,\"ms_best\":%.3f,\"ms_mean\":%.3f,\"tasks_per_rep\":%llu,"
      "\"ns_per_task_best\":%.1f,\"edges_resolved_per_rep\":%llu,"
      "\"graphs_recorded\":%llu,\"graphs_replayed\":%llu}\n",
      r.kernel.c_str(), r.variant.c_str(), threads, r.reps, r.ms_best,
      r.ms_mean, static_cast<unsigned long long>(r.tasks_per_rep),
      ns_per_task, static_cast<unsigned long long>(r.edges_per_rep),
      static_cast<unsigned long long>(r.graphs_recorded),
      static_cast<unsigned long long>(r.graphs_replayed));
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 8;
  int reps = 5;
  bool tripwire = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--tripwire") {
      tripwire = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--reps R] [--tripwire]\n",
                   argv[0]);
      return 2;
    }
  }
  const core::InputClass input =
      core::input_class_from_env(core::InputClass::test);
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.fault_plan.clear();     // measure the mechanism, not injected faults
  cfg.use_taskgraph_replay = true;
  rt::Scheduler sched(cfg);
  sched.run_single([] {});  // warm the team

  std::printf("== taskgraph record/replay ablation (t=%u, reps=%d) ==\n",
              threads, reps);

  // -- sparselu -------------------------------------------------------------
  // Discovery-bound shape: many small blocks, so per-task body work does
  // not drown the per-task discovery cost this ablation isolates (the
  // registry input classes size blocks for BODY-bound figure benches).
  bots::sparselu::Params sp = bots::sparselu::params_for(input);
  sp.nb = std::max<std::size_t>(sp.nb, 16);
  sp.bs = 8;
  bots::sparselu::BlockMatrix m = bots::sparselu::make_input(sp);
  const rt::Tiedness tied = rt::Tiedness::tied;
  auto reset_m = [&](int) { bots::sparselu::reset_values(sp, m); };

  const ModeResult sp_taskwait =
      measure("sparselu", "taskwait", reps, sched, reset_m, [&](int) {
        bots::sparselu::run_parallel(sp, m, sched,
                                     {tied, core::Generator::single_gen, false});
      });
  check(bots::sparselu::verify(sp, m), "sparselu taskwait verify");

  const ModeResult sp_record =
      measure("sparselu", "record", reps, sched, reset_m, [&](int rep) {
        // Fresh tag per rep: every invocation records from scratch — the
        // full discovery + capture bill, the cost replay amortises.
        const std::string tag = "ablation.sparselu.rec" + std::to_string(rep);
        bots::sparselu::factor_dataflow(m, sched, tied, tag.c_str());
      });
  check(bots::sparselu::verify(sp, m), "sparselu record verify");
  check(sp_record.graphs_recorded == static_cast<std::uint64_t>(reps),
        "sparselu record mode recorded once per rep");

  // One untimed recording, then replay-only repetitions.
  bots::sparselu::reset_values(sp, m);
  bots::sparselu::factor_dataflow(m, sched, tied, "ablation.sparselu.replay");
  const ModeResult sp_replay =
      measure("sparselu", "replay", reps, sched, reset_m, [&](int) {
        bots::sparselu::factor_dataflow(m, sched, tied,
                                        "ablation.sparselu.replay");
      });
  check(bots::sparselu::verify(sp, m), "sparselu replay verify");
  check(sp_replay.graphs_replayed == static_cast<std::uint64_t>(reps),
        "sparselu replay mode replayed once per rep");
  check(sp_replay.graphs_recorded == 0, "sparselu replay mode re-recorded");

  emit(sp_taskwait, threads);
  emit(sp_record, threads);
  emit(sp_replay, threads);

  // -- strassen -------------------------------------------------------------
  const auto st = bots::strassen::params_for(input);
  const std::vector<double> a = bots::strassen::make_matrix(st, 1);
  const std::vector<double> b = bots::strassen::make_matrix(st, 2);
  std::vector<double> c(st.n * st.n, 0.0);
  auto no_reset = [](int) {};

  const ModeResult st_taskwait =
      measure("strassen", "taskwait", reps, sched, no_reset, [&](int) {
        const auto r = bots::strassen::run_parallel(
            st, a, b, sched, {rt::Tiedness::tied, core::AppCutoff::manual});
        c = r;
      });
  check(bots::strassen::verify(st, a, b, c), "strassen taskwait verify");

  const ModeResult st_record =
      measure("strassen", "record", reps, sched, no_reset, [&](int rep) {
        const std::string tag = "ablation.strassen.rec" + std::to_string(rep);
        bots::strassen::multiply_dataflow(st, a.data(), b.data(), c.data(),
                                          sched, tied, tag.c_str());
      });
  check(bots::strassen::verify(st, a, b, c), "strassen record verify");

  bots::strassen::multiply_dataflow(st, a.data(), b.data(), c.data(), sched,
                                    tied, "ablation.strassen.replay");
  const ModeResult st_replay =
      measure("strassen", "replay", reps, sched, no_reset, [&](int) {
        bots::strassen::multiply_dataflow(st, a.data(), b.data(), c.data(),
                                          sched, tied,
                                          "ablation.strassen.replay");
      });
  check(bots::strassen::verify(st, a, b, c), "strassen replay verify");
  check(st_replay.graphs_replayed == static_cast<std::uint64_t>(reps),
        "strassen replay mode replayed once per rep");

  emit(st_taskwait, threads);
  emit(st_record, threads);
  emit(st_replay, threads);

  // Global accounting must balance whatever mode mix ran.
  const rt::WorkerStats t = sched.stats().total;
  check(t.tasks_created + t.range_splits ==
            t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined,
        "spawn accounting balances");
  check(t.tasks_executed + t.tasks_discarded == t.tasks_deferred,
        "retire accounting balances");

  const double vs_record = sp_record.ms_best / sp_replay.ms_best;
  const double vs_taskwait = sp_taskwait.ms_best / sp_replay.ms_best;
  std::printf(
      "\nsparselu replay speedup: %.2fx vs record, %.2fx vs taskwait\n"
      "strassen replay speedup: %.2fx vs record, %.2fx vs taskwait\n",
      vs_record, vs_taskwait, st_record.ms_best / st_replay.ms_best,
      st_taskwait.ms_best / st_replay.ms_best);
  if (tripwire) {
    // CI gate: a replayed rep must beat the rep that pays full discovery +
    // capture cost. (The bigger 1.3x/1.15x targets are tracked in the
    // committed baseline, not gated here — CI boxes are too noisy.)
    check(sp_replay.ms_best < sp_record.ms_best,
          "tripwire: replayed sparselu beats its record run");
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
