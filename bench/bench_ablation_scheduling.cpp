// Section IV-D ablation: task scheduling policies. The paper notes icc
// exposes no scheduling knobs but other runtimes do, and asks "how task
// scheduling policies (and how they can maintain locality across tasks) can
// affect the performance results". Our runtime exposes both the local
// consumption order (LIFO depth-first vs FIFO breadth-first) and the victim
// selection policy (random vs sequential); this bench crosses them over four
// benchmarks with different task shapes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  std::string policy;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, bench::Measurement> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, std::string policy,
               rt::SchedulerConfig cfg, core::InputClass input) {
  for (auto _ : state) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    const auto rep = app->run(input, version, sched, /*verify=*/false);
    state.SetIterationTime(rep.seconds);
    g_results[{app->name, policy}].offer(rep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const unsigned threads = sweep.threads.back();
  const std::vector<std::pair<std::string, std::string>> apps = {
      {"fib", "manual-untied"},
      {"nqueens", "manual-untied"},
      {"sort", "untied"},
      {"health", "manual-tied"},
      {"sparselu", "for-tied"},
  };
  struct Policy {
    std::string name;
    rt::LocalOrder local;
    rt::VictimPolicy victim;
  };
  const std::vector<Policy> policies = {
      {"lifo/random", rt::LocalOrder::lifo, rt::VictimPolicy::random},
      {"lifo/sequential", rt::LocalOrder::lifo, rt::VictimPolicy::sequential},
      {"fifo/random", rt::LocalOrder::fifo, rt::VictimPolicy::random},
      {"fifo/sequential", rt::LocalOrder::fifo, rt::VictimPolicy::sequential},
  };

  std::cout << "== Section IV-D: scheduling policy study at " << threads
            << " threads, " << to_string(sweep.input) << " inputs ==\n";
  std::map<std::string, core::RunReport> serial;
  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    serial[name] = bench::serial_baseline(*app, sweep.input, sweep.reps);
  }

  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    for (const auto& pol : policies) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = threads;
      cfg.local_order = pol.local;
      cfg.victim = pol.victim;
      benchmark::RegisterBenchmark((name + "/" + pol.name).c_str(), bm_config,
                                   app, version, pol.name, cfg, sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSpeed-up vs serial per scheduling policy:\n";
  std::vector<std::string> headers{"policy"};
  for (const auto& [name, version] : apps) headers.push_back(name);
  core::TableWriter t(headers);
  for (const auto& pol : policies) {
    std::vector<std::string> row{pol.name};
    for (const auto& [name, version] : apps) {
      row.push_back(core::format_fixed(
          g_results[{name, pol.name}].best.speedup_vs(serial[name]), 2));
    }
    t.add_row(row);
  }
  t.render(std::cout);
  std::cout << "\nExpected shape: LIFO (depth-first) wins on deep recursive\n"
               "benchmarks (locality, bounded queues); FIFO mainly hurts\n"
               "fine-grained trees. Victim policy is second-order.\n";
  return 0;
}
