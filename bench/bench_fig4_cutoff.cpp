// Figure 4 reproduction: "Queens benchmark using different cut-off
// mechanisms" — NQueens speed-ups with the manual cut-off, the if-clause
// cut-off and no application cut-off (leaving pruning to the runtime's
// max_tasks policy, the mechanism the paper attributes to icc 11.0).
//
// Expected shape: manual >= if-clause >= no-cutoff ("programming a manual
// cut-off is more effective than using an if clause, or relying on their
// runtime cut-off"). Default input class: medium.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string version;
  unsigned threads;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, bench::Measurement> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, unsigned threads, core::InputClass input) {
  for (auto _ : state) {
    const auto rep = bench::parallel_best(*app, version, threads, input, 1);
    state.SetIterationTime(rep.seconds);
    g_results[{version, threads}].offer(rep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const auto* app = core::find_app("nqueens");
  // Untied variants, as in the paper's best configuration for NQueens.
  const std::vector<std::pair<std::string, std::string>> versions = {
      {"manual-untied", "with manual cut-off"},
      {"if-untied", "with if clause cut-off"},
      {"untied", "with no cut-off (runtime max_tasks)"},
  };

  std::cout << "== Figure 4: NQueens with different cut-off mechanisms ==\n"
            << "input: " << app->describe_input(sweep.input) << " ("
            << to_string(sweep.input) << ")\n";
  const auto serial = bench::serial_baseline(*app, sweep.input, sweep.reps);
  std::cout << "serial baseline: " << core::format_fixed(serial.seconds, 3)
            << " s\n";
  std::cout.flush();

  for (const auto& [version, label] : versions) {
    for (unsigned t : sweep.threads) {
      const std::string name = "nqueens/" + version + "/t" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), bm_config, app, version, t,
                                   sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::SpeedupTable table(sweep.threads);
  for (const auto& [version, label] : versions) {
    std::vector<double> series;
    for (unsigned t : sweep.threads) {
      series.push_back(g_results[{version, t}].best.speedup_vs(serial));
    }
    table.add_series(label, series);
  }
  table.print("Figure 4: Queens benchmark using different cut-off mechanisms");

  const unsigned tmax = sweep.threads.back();
  const double manual =
      g_results[{"manual-untied", tmax}].best.speedup_vs(serial);
  const double ifc = g_results[{"if-untied", tmax}].best.speedup_vs(serial);
  const double none = g_results[{"untied", tmax}].best.speedup_vs(serial);
  std::cout << "\nShape check at " << tmax << " threads: manual "
            << core::format_fixed(manual, 2) << "x, if-clause "
            << core::format_fixed(ifc, 2) << "x, no-cutoff "
            << core::format_fixed(none, 2) << "x -> "
            << (manual >= ifc && ifc >= none * 0.95
                    ? "matches the paper's ordering (manual >= if >= none)"
                    : "ordering differs from the paper")
            << "\n";
  return 0;
}
