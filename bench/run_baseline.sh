#!/usr/bin/env bash
# Record the repo's performance-trajectory baseline.
#
# Runs bench_spawn_overhead (per-task spawn->run->join overhead, fast path
# A/B), a small 2-thread Figure-3 smoke, and the server-mode mixed-stream
# bench (per-request p50/p99 latency + shed rate under overload), and
# writes the result to BENCH_baseline.json at the repo root. Future PRs
# rerun this script and compare against the committed baseline.
#
# Usage: bench/run_baseline.sh [output.json]
# Env:   BUILD_DIR (default: build), plus the BOTS_* knobs understood by the
#        two benches (see bench_spawn_overhead.cpp and bench_common.hpp).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build}"
OUT="${1:-BENCH_baseline.json}"

if [[ ! -x "$BUILD/bench_spawn_overhead" || ! -x "$BUILD/bench_fig3_overall" ]]; then
  echo "error: bench binaries not found under '$BUILD'." >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Detected topology (nodes x cores) and the active steal policy, recorded
# with every baseline entry so the perf trajectory stays interpretable
# across machines (a hierarchical-policy number from a 2-socket box is not
# comparable to a flat-topology laptop run). Env values are validated the
# same way the runtime validates them (steal_policy_from_env /
# Topology::parse_synthetic), so the recorded metadata always names what
# the benches actually ran with — an unrecognized value falls back exactly
# like the runtime's fallback does.
if [[ "${RT_SYNTHETIC_TOPOLOGY:-}" =~ ^0*[1-9][0-9]*x0*[1-9][0-9]*$ ]]; then
  topology="${RT_SYNTHETIC_TOPOLOGY} (synthetic)"
else
  # Mirror Topology::read_sysfs_nodes: only node directories with a
  # readable cpulist count, and fewer than two of them means the runtime
  # ran on the flat single-node fallback — record that, not the raw
  # directory count.
  nodes=0
  for d in /sys/devices/system/node/node[0-9]*; do
    [[ -r "$d/cpulist" ]] && nodes=$((nodes + 1))
  done
  if [[ "$nodes" -ge 2 ]]; then
    topology="${nodes}x$(( ($(nproc) + nodes - 1) / nodes )) (sysfs)"
  else
    topology="1x$(nproc) (flat)"
  fi
fi
case "${RT_STEAL_POLICY:-}" in
  random|sequential|last_victim|hierarchical) steal_policy="$RT_STEAL_POLICY" ;;
  *) steal_policy="legacy/last_victim" ;;
esac
# Pinning state, validated the way the runtime validates RT_PIN_WORKERS
# (env_flag in config.hpp): the recorded value names what the benches
# actually ran with. Whether pins actually STICK is per-worker and
# per-entry — the fig3 SITEGRAIN lines below carry the verified counts.
case "${RT_PIN_WORKERS:-}" in
  1|true|on) pin_workers="on" ;;
  *) pin_workers="off" ;;
esac
# NUMA descriptor pools and hint-aware range placement, validated the same
# way env_flag does (default ON — only an explicit off flips them). Both
# are inert on a single-node topology, but the recorded knob state keeps a
# multi-socket baseline comparable with a later rerun.
case "${RT_NODE_POOLS:-}" in
  0|false|off) node_pools="off" ;;
  *) node_pools="on" ;;
esac
case "${RT_HINT_PLACEMENT:-}" in
  0|false|off) hint_placement="off" ;;
  *) hint_placement="on" ;;
esac

echo "== spawn/steal overhead (fast path A/B) ==" >&2
spawn_json="$("$BUILD/bench_spawn_overhead")"

# Server-mode mixed stream (PR 7): calibration, half-saturation and 2x
# overload legs; each SERVERMIX: line is already a JSON object carrying
# p50/p99 latency, throughput and shed/reject counts. The bench exits
# nonzero if any robustness invariant breaks, which fails the script
# (set -e) — a baseline is never recorded over a broken server. Optional
# binary: a build with BOTS_BUILD_BENCHES=OFF or an older checkout just
# records an empty list.
server_mix_json=""
if [[ -x "$BUILD/bench_server_mix" ]]; then
  echo "== server mix (admission / backpressure / overload) ==" >&2
  server_mix_json="$("$BUILD/bench_server_mix" \
      --threads "${BOTS_MAX_THREADS:-4}" --requests 96 --queue 32 |
      sed -n 's/^SERVERMIX: //p')"
fi

# Taskgraph record/replay ablation (PR 8): per-mode ns/task for taskwait vs
# dynamic-dataflow-record vs frozen-graph-replay on sparselu and strassen.
# Each GRAPHREPLAY: line is already a JSON object. The bench exits nonzero
# if any verify or ledger check fails (set -e guards the baseline), and the
# CI job re-runs it with --tripwire. Optional binary, like bench_server_mix.
graph_replay_json=""
if [[ -x "$BUILD/bench_ablation_replay" ]]; then
  echo "== taskgraph record/replay ablation ==" >&2
  graph_replay_json="$("$BUILD/bench_ablation_replay" \
      --threads "${BOTS_MAX_THREADS:-8}" --reps 5 |
      sed -n 's/^GRAPHREPLAY: //p')"
fi

# Live-reconfiguration ablation (PR 9): fixed-policy vs oracle-switched vs
# phase-detector-switched steal policy on a two-phase stream (fib burst,
# then block-LU dataflow). Each RECONF: line is a JSON object with per-phase
# wall times and the live-swap count. The bench exits nonzero if any request
# misanswers or leaves an unbalanced ledger (set -e guards the baseline).
# Optional binary, like bench_server_mix.
reconf_json=""
if [[ -x "$BUILD/bench_ablation_reconf" ]]; then
  echo "== live reconfiguration ablation ==" >&2
  reconf_json="$("$BUILD/bench_ablation_reconf" \
      --threads "${BOTS_MAX_THREADS:-8}" |
      sed -n 's/^RECONF: //p')"
fi

# Trace-overhead A/B (PR 10): fib ns/task (fastpath=on) with tracing
# compiled in but disarmed (RT_TRACE=0 — the shipped default; off cost is
# one null-check branch per event site) vs armed (RT_TRACE=1 — relaxed
# counter bump + 24-byte ring store per event). The trace-overhead-tripwire
# CI job holds a fresh off run to 3% of the off entry and an armed run to
# 15% of the same off entry. Entries are tagged "trace":"off"/"on" so they
# never collide with the spawn_overhead section's untagged fib rows.
echo "== trace overhead A/B (RT_TRACE off/on) ==" >&2
trace_off_json="$(RT_TRACE=0 "$BUILD/bench_spawn_overhead" |
    grep '"workload":"fib"' | grep '"fastpath":"on"' |
    sed 's/^{/{"trace":"off",/')"
trace_on_json="$(RT_TRACE=1 "$BUILD/bench_spawn_overhead" |
    grep '"workload":"fib"' | grep '"fastpath":"on"' |
    sed 's/^{/{"trace":"on",/')"

echo "== Figure 3 smoke (2 threads, test input) ==" >&2
fig3_out="$(BOTS_MAX_THREADS="${BOTS_MAX_THREADS:-2}" \
            BOTS_INPUT_CLASS="${BOTS_INPUT_CLASS:-test}" \
            BOTS_BENCH_REPS="${BOTS_BENCH_REPS:-1}" \
            "$BUILD/bench_fig3_overall" --benchmark_min_time=0.01 2>/dev/null)"
fig3_csv="$(printf '%s\n' "$fig3_out" |
            awk '/^CSV:$/{f=1;next} f&&/^[[:space:]]*$/{f=0} f')"
# Per-entry pinning + per-site grain lines (app,pinned=N/T,global=... ...),
# emitted by bench_fig3_overall behind the SITEGRAIN: sentinel.
fig3_sitegrain="$(printf '%s\n' "$fig3_out" |
            awk '/^SITEGRAIN:$/{f=1;next} f&&/^[[:space:]]*$/{f=0} f')"

{
  echo "{"
  echo "  \"schema\": \"bots-bench-baseline-v1\","
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"host_cpus\": $(nproc),"
  echo "  \"topology\": \"$topology\","
  echo "  \"steal_policy\": \"$steal_policy\","
  echo "  \"pin_workers\": \"$pin_workers\","
  echo "  \"node_pools\": \"$node_pools\","
  echo "  \"hint_placement\": \"$hint_placement\","
  echo "  \"spawn_overhead\": ["
  printf '%s\n' "$spawn_json" | sed 's/^/    /; $!s/$/,/'
  echo "  ],"
  echo "  \"fig3_csv\": ["
  printf '%s\n' "$fig3_csv" |
    sed 's/"/\\"/g; s/^[[:space:]]*//; s/^/    "/; s/$/"/' | sed '$!s/$/,/'
  echo "  ],"
  echo "  \"fig3_site_grain\": ["
  printf '%s\n' "$fig3_sitegrain" |
    sed 's/"/\\"/g; s/^[[:space:]]*//; s/^/    "/; s/$/"/' | sed '$!s/$/,/'
  echo "  ],"
  echo "  \"server_mix\": ["
  if [[ -n "$server_mix_json" ]]; then
    printf '%s\n' "$server_mix_json" | sed 's/^/    /; $!s/$/,/'
  fi
  echo "  ],"
  echo "  \"graph_replay\": ["
  if [[ -n "$graph_replay_json" ]]; then
    printf '%s\n' "$graph_replay_json" | sed 's/^/    /; $!s/$/,/'
  fi
  echo "  ],"
  echo "  \"reconf\": ["
  if [[ -n "$reconf_json" ]]; then
    printf '%s\n' "$reconf_json" | sed 's/^/    /; $!s/$/,/'
  fi
  echo "  ],"
  echo "  \"trace\": ["
  printf '%s\n' "$trace_off_json" "$trace_on_json" | sed 's/^/    /; $!s/$/,/'
  echo "  ]"
  echo "}"
} > "$OUT"

echo "wrote $OUT" >&2
