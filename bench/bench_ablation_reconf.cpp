// Live-reconfiguration ablation (PR 9): what does hot-swapping the steal
// policy buy on a workload whose best policy CHANGES mid-stream?
//
// The two-phase stream, served by the resident TaskServer:
//   phase 1  a fib burst — a task flood with no locality structure, where
//            last_victim's steal-burst affinity wins and hierarchical's
//            node tiering + hint gating is pure overhead;
//   phase 2  block-LU dataflow requests (sparselu's dependence shape:
//            lu0 -> fwd/bdiv -> bmod per iteration) — panel-reuse traffic
//            where the hierarchical policy's same-node-first order and
//            cross-node batch damping pay on a multi-node topology.
//
// Modes, one RECONF: JSON line each (scraped by bench/run_baseline.sh):
//   fixed_last_victim    no swap: phase 2 runs on phase 1's policy
//   fixed_hierarchical   no swap: phase 1 runs on phase 2's policy
//   oracle               TaskServer::retune() exactly at the phase boundary
//                        (the upper bound an online detector can reach)
//   detector             RT_SERVER_RETUNE_MS-style automatic phase
//                        detection over the scheduler's steal telemetry
//
// On a flat (single-node) topology hierarchical degenerates to last_victim
// and all four modes should tie within noise; set RT_SYNTHETIC_TOPOLOGY
// (e.g. 2x4) to expose the gap. Exits non-zero if any request fails,
// misanswers, or leaves an unbalanced ledger — swaps must move time, never
// results.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    ++g_failures;
  }
}

std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Phase 1 kernel: fib burst.
// ---------------------------------------------------------------------------

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = fib_task(n - 1); });
  rt::spawn([&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

// ---------------------------------------------------------------------------
// Phase 2 kernel: dense block-LU with sparselu's dataflow shape. Blocks are
// the dependence keys; every op has exclusive access to its inout block
// under the declared edges, so the parallel result is bitwise equal to the
// serial elimination order.
// ---------------------------------------------------------------------------

constexpr std::size_t kNb = 5;   // blocks per side
constexpr std::size_t kBs = 20;  // elements per block side

void lu0(float* d) {
  for (std::size_t k = 0; k < kBs; ++k) {
    for (std::size_t i = k + 1; i < kBs; ++i) {
      d[i * kBs + k] /= d[k * kBs + k];
      for (std::size_t j = k + 1; j < kBs; ++j) {
        d[i * kBs + j] -= d[i * kBs + k] * d[k * kBs + j];
      }
    }
  }
}

void fwd(const float* diag, float* b) {
  for (std::size_t k = 0; k < kBs; ++k) {
    for (std::size_t i = k + 1; i < kBs; ++i) {
      for (std::size_t j = 0; j < kBs; ++j) {
        b[i * kBs + j] -= diag[i * kBs + k] * b[k * kBs + j];
      }
    }
  }
}

void bdiv(const float* diag, float* b) {
  for (std::size_t i = 0; i < kBs; ++i) {
    for (std::size_t k = 0; k < kBs; ++k) {
      b[i * kBs + k] /= diag[k * kBs + k];
      for (std::size_t j = k + 1; j < kBs; ++j) {
        b[i * kBs + j] -= b[i * kBs + k] * diag[k * kBs + j];
      }
    }
  }
}

void bmod(const float* row, const float* col, float* inner) {
  for (std::size_t i = 0; i < kBs; ++i) {
    for (std::size_t k = 0; k < kBs; ++k) {
      for (std::size_t j = 0; j < kBs; ++j) {
        inner[i * kBs + j] -= row[i * kBs + k] * col[k * kBs + j];
      }
    }
  }
}

using Matrix = std::vector<float>;  // kNb*kNb blocks of kBs*kBs, row-major

float* blk(Matrix& m, std::size_t i, std::size_t j) {
  return m.data() + (i * kNb + j) * kBs * kBs;
}

Matrix make_matrix(std::uint64_t seed) {
  Matrix m(kNb * kNb * kBs * kBs);
  std::uint64_t s = seed;
  for (auto& v : m) {
    v = 0.5f + static_cast<float>(mix64(s) % 1000) / 1000.0f;
  }
  // Diagonal dominance keeps the pivotless elimination well-conditioned.
  for (std::size_t d = 0; d < kNb; ++d) {
    float* b = blk(m, d, d);
    for (std::size_t e = 0; e < kBs; ++e) b[e * kBs + e] += 64.0f;
  }
  return m;
}

void factor_serial(Matrix& m) {
  for (std::size_t kk = 0; kk < kNb; ++kk) {
    lu0(blk(m, kk, kk));
    for (std::size_t jj = kk + 1; jj < kNb; ++jj) fwd(blk(m, kk, kk), blk(m, kk, jj));
    for (std::size_t ii = kk + 1; ii < kNb; ++ii) bdiv(blk(m, kk, kk), blk(m, ii, kk));
    for (std::size_t ii = kk + 1; ii < kNb; ++ii) {
      for (std::size_t jj = kk + 1; jj < kNb; ++jj) {
        bmod(blk(m, ii, kk), blk(m, kk, jj), blk(m, ii, jj));
      }
    }
  }
}

void factor_dataflow(Matrix& m) {
  rt::DepScope sc;
  for (std::size_t kk = 0; kk < kNb; ++kk) {
    float* diag = blk(m, kk, kk);
    sc.spawn({rt::inout(diag)}, [diag] { lu0(diag); });
    for (std::size_t jj = kk + 1; jj < kNb; ++jj) {
      float* b = blk(m, kk, jj);
      sc.spawn({rt::in(diag), rt::inout(b)}, [diag, b] { fwd(diag, b); });
    }
    for (std::size_t ii = kk + 1; ii < kNb; ++ii) {
      float* b = blk(m, ii, kk);
      sc.spawn({rt::in(diag), rt::inout(b)}, [diag, b] { bdiv(diag, b); });
    }
    for (std::size_t ii = kk + 1; ii < kNb; ++ii) {
      for (std::size_t jj = kk + 1; jj < kNb; ++jj) {
        float* r = blk(m, ii, kk);
        float* c = blk(m, kk, jj);
        float* t = blk(m, ii, jj);
        sc.spawn({rt::in(r), rt::in(c), rt::inout(t)},
                 [r, c, t] { bmod(r, c, t); });
      }
    }
  }
  sc.wait();
}

bool req_lu(std::uint64_t seed) {
  Matrix m = make_matrix(seed);
  Matrix ref = m;
  factor_dataflow(m);
  factor_serial(ref);
  return std::memcmp(m.data(), ref.data(), m.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Mode driver.
// ---------------------------------------------------------------------------

struct Options {
  unsigned threads = std::thread::hardware_concurrency();
  unsigned fib_requests = 48;
  unsigned fib_n = 18;
  unsigned lu_requests = 48;
  std::uint64_t seed = 42;
  unsigned detector_ms = 2;
};

struct ModeResult {
  double phase_fib_s = 0;
  double phase_lu_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t retunes = 0;
};

/// Submit one phase as a closed batch (all in flight together, wait all) and
/// verify every answer.
template <class MakeBody>
double run_phase(rt::TaskServer& server, unsigned n, ModeResult& r,
                 MakeBody&& make_body) {
  auto ok_flags = std::make_shared<std::vector<std::atomic<bool>>>(n);
  std::vector<rt::RegionHandle> handles(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < n; ++i) {
    handles[i] = server.submit(make_body(i, ok_flags), {}).handle;
  }
  for (unsigned i = 0; i < n; ++i) {
    const rt::RequestStatus st = handles[i].wait();
    check(st == rt::RequestStatus::completed, "request not completed");
    check(handles[i].ledger_balanced(), "per-request ledger imbalance");
    if (st == rt::RequestStatus::completed) {
      ++r.completed;
      check((*ok_flags)[i].load(std::memory_order_acquire),
            "completed request produced a wrong answer");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

ModeResult run_mode(const Options& opt, const char* mode) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = opt.threads;
  const bool fixed_hier = std::strcmp(mode, "fixed_hierarchical") == 0;
  cfg.steal_policy = fixed_hier ? rt::StealPolicyKind::hierarchical
                                : rt::StealPolicyKind::last_victim;
  rt::Scheduler sched(cfg);

  rt::ServerConfig sc;
  sc.queue_capacity = std::max(opt.fib_requests, opt.lu_requests) + 1;
  if (std::strcmp(mode, "detector") == 0) sc.retune_ms = opt.detector_ms;
  rt::TaskServer server(sched, sc);

  ModeResult r;
  std::uint64_t rng = opt.seed;
  const unsigned fib_n = opt.fib_n;
  r.phase_fib_s = run_phase(
      server, opt.fib_requests, r, [&rng, fib_n](unsigned i, auto flags) {
        const std::uint64_t seed = mix64(rng);
        const int n = static_cast<int>(fib_n + seed % 3);
        return [flags, i, n] {
          (*flags)[i].store(fib_task(n) == fib_ref(n),
                            std::memory_order_release);
        };
      });
  if (std::strcmp(mode, "oracle") == 0) {
    // The boundary is known here and nowhere else: swap exactly once.
    check(server.retune(rt::StealPolicyKind::hierarchical),
          "oracle retune refused (RT_LIVE_RECONF=0?)");
  }
  r.phase_lu_s = run_phase(
      server, opt.lu_requests, r, [&rng](unsigned i, auto flags) {
        const std::uint64_t seed = mix64(rng);
        return [flags, i, seed] {
          (*flags)[i].store(req_lu(seed), std::memory_order_release);
        };
      });
  r.retunes = server.stats().retunes;
  server.drain();

  const rt::StatsSnapshot st = sched.stats();
  check(st.total.tasks_executed + st.total.tasks_discarded ==
            st.total.tasks_deferred,
        "global executed + discarded != deferred");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want("--threads")) { opt.threads = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--fib-requests")) { opt.fib_requests = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--lu-requests")) { opt.lu_requests = static_cast<unsigned>(std::atoi(argv[++i])); }
    else if (want("--seed")) { opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i])); }
    else if (want("--detector-ms")) { opt.detector_ms = static_cast<unsigned>(std::atoi(argv[++i])); }
    else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--fib-requests N] "
                   "[--lu-requests N] [--seed S] [--detector-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.threads == 0) opt.threads = 4;

  for (const char* mode : {"fixed_last_victim", "fixed_hierarchical",
                           "oracle", "detector"}) {
    const ModeResult r = run_mode(opt, mode);
    std::printf(
        "RECONF: {\"mode\":\"%s\",\"threads\":%u,\"wall_s\":%.3f,"
        "\"phase_fib_s\":%.3f,\"phase_lu_s\":%.3f,\"completed\":%llu,"
        "\"retunes\":%llu}\n",
        mode, opt.threads, r.phase_fib_s + r.phase_lu_s, r.phase_fib_s,
        r.phase_lu_s, static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.retunes));
    std::fflush(stdout);
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "bench_ablation_reconf: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("bench_ablation_reconf: all checks held\n");
  return 0;
}
