// Section IV-D ablation: single vs multiple task generators — "the quality
// of implementations for different task generation schemes (e.g., in the
// SparseLU benchmark, which can use a single or multiple generator scheme)".
//
// Sweeps SparseLU's `single` (all tasks created by one worker inside a
// single construct) against its `for` version (each phase's task-creating
// loop spread across the team) over the thread sweep.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string version;
  unsigned threads;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, bench::Measurement> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, unsigned threads, core::InputClass input) {
  for (auto _ : state) {
    const auto rep = bench::parallel_best(*app, version, threads, input, 1);
    state.SetIterationTime(rep.seconds);
    g_results[{version, threads}].offer(rep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const auto* app = core::find_app("sparselu");
  const std::vector<std::string> versions = {"single-tied", "for-tied",
                                             "single-untied", "for-untied"};

  std::cout << "== Section IV-D: SparseLU single vs multiple generators ==\n"
            << "input: " << app->describe_input(sweep.input) << "\n";
  const auto serial = bench::serial_baseline(*app, sweep.input, sweep.reps);
  std::cout << "serial baseline: " << core::format_fixed(serial.seconds, 3)
            << " s\n";
  std::cout.flush();

  for (const auto& version : versions) {
    for (unsigned t : sweep.threads) {
      benchmark::RegisterBenchmark(
          ("sparselu/" + version + "/t" + std::to_string(t)).c_str(),
          bm_config, app, version, t, sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::SpeedupTable table(sweep.threads);
  for (const auto& version : versions) {
    std::vector<double> series;
    for (unsigned t : sweep.threads) {
      series.push_back(g_results[{version, t}].best.speedup_vs(serial));
    }
    table.add_series("sparselu " + version, series);
  }
  table.print("SparseLU generator schemes (cf. paper Section IV-D)");
  std::cout << "\nExpected shape: the single-generator version bottlenecks\n"
               "on the one producing worker as threads grow; the for version\n"
               "(the paper's Figure 3 best, 'for-tied') keeps scaling.\n";
  return 0;
}
