// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every figure bench follows the same protocol the paper describes in
// Section IV: serial baseline first (the speed-up denominator), then the
// parallel configurations across a thread sweep; Floorplan speed-ups use
// nodes/second (Section IV footnote 5), everything else elapsed time.
//
// Environment knobs:
//   BOTS_INPUT_CLASS  test|small|medium|large (per-bench default noted)
//   BOTS_MAX_THREADS  cap on the sweep (default min(32, hardware))
//   BOTS_BENCH_REPS   repetitions per configuration, best-of (default 2)
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/report.hpp"

namespace bots::bench {

struct Sweep {
  std::vector<unsigned> threads;
  core::InputClass input;
  int reps;
};

[[nodiscard]] inline unsigned env_unsigned(const char* name,
                                           unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : fallback;
}

/// The paper's sweep: 1, 2, 4, 8, 16, 24, 32 threads (Figure 4/5 x-axis),
/// clipped to this machine and BOTS_MAX_THREADS.
[[nodiscard]] inline Sweep sweep_from_env(core::InputClass default_input) {
  Sweep s;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned cap = std::min(env_unsigned("BOTS_MAX_THREADS", 32u), hw);
  for (unsigned t : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
    if (t <= cap) s.threads.push_back(t);
  }
  if (s.threads.back() != cap) s.threads.push_back(cap);
  s.input = core::input_class_from_env(default_input);
  s.reps = static_cast<int>(env_unsigned("BOTS_BENCH_REPS", 2u));
  return s;
}

/// One measured configuration.
struct Measurement {
  core::RunReport best;  ///< fastest repetition (paper-style best-of)
  bool valid = false;

  void offer(const core::RunReport& rep) {
    if (!valid || rep.seconds < best.seconds) best = rep;
    valid = true;
  }
};

/// Serial baseline for an app (best of `reps`).
[[nodiscard]] inline core::RunReport serial_baseline(const core::AppInfo& app,
                                                     core::InputClass input,
                                                     int reps) {
  Measurement m;
  for (int r = 0; r < reps; ++r) m.offer(app.run_serial(input));
  return m.best;
}

/// One parallel configuration, best of `reps`, fresh scheduler per rep.
[[nodiscard]] inline core::RunReport parallel_best(
    const core::AppInfo& app, const std::string& version, unsigned threads,
    core::InputClass input, int reps,
    rt::SchedulerConfig base_cfg = rt::SchedulerConfig{}) {
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    rt::SchedulerConfig cfg = base_cfg;
    cfg.num_threads = threads;
    rt::Scheduler sched(cfg);
    // Wake the team once before timing so pool spin-up is not measured.
    sched.run_single([] {});
    m.offer(app.run(input, version, sched, /*verify=*/false));
  }
  return m.best;
}

/// Render one speed-up series table: rows are labels, one column per thread
/// count, exactly the data behind the paper's speed-up plots.
class SpeedupTable {
 public:
  explicit SpeedupTable(const std::vector<unsigned>& threads) {
    headers_.push_back("configuration");
    for (unsigned t : threads) headers_.push_back(std::to_string(t));
    threads_ = threads;
  }

  void add_series(const std::string& label, const std::vector<double>& s) {
    std::vector<std::string> row{label};
    for (double v : s) row.push_back(core::format_fixed(v, 2));
    rows_.push_back(std::move(row));
  }

  void print(const std::string& title) const {
    std::cout << "\n" << title << "\n";
    std::cout << "(columns: speed-up vs serial at each thread count)\n";
    core::TableWriter t(headers_);
    for (const auto& r : rows_) t.add_row(r);
    t.render(std::cout);
    std::cout << "\nCSV:\n";
    t.render_csv(std::cout);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<unsigned> threads_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bots::bench
