// Runtime cut-off policy ablation (paper Section IV-D + reference [27],
// Duran et al., "An Adaptive Cut-off for Task Parallelism"): how the
// runtime-side policies behave when applications create unbounded tasks.
//
// Runs the no-cutoff versions of fib, floorplan and uts under each runtime
// policy (none / max_tasks / max_depth / adaptive) at the maximum thread
// count and compares against the best manual version.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  std::string policy;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, bench::Measurement> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, std::string policy, rt::SchedulerConfig cfg,
               core::InputClass input) {
  for (auto _ : state) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    const auto rep = app->run(input, version, sched, /*verify=*/false);
    state.SetIterationTime(rep.seconds);
    g_results[{app->name, policy}].offer(rep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // fib's medium no-cutoff run would create billions of tasks under the
  // `none` policy; small keeps every cell of the matrix feasible.
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::small);
  const unsigned threads = sweep.threads.back();
  // (app, unbounded version, manual reference version)
  const std::vector<std::array<std::string, 3>> apps = {
      {"fib", "untied", "manual-untied"},
      {"floorplan", "untied", "manual-untied"},
      {"uts", "untied", "untied"},  // uts has no manual version: same entry
  };
  struct Policy {
    std::string name;
    rt::CutoffPolicy policy;
  };
  const std::vector<Policy> policies = {
      {"none", rt::CutoffPolicy::none},
      {"max_tasks", rt::CutoffPolicy::max_tasks},
      {"max_depth", rt::CutoffPolicy::max_depth},
      {"adaptive", rt::CutoffPolicy::adaptive},
  };

  std::cout << "== Runtime cut-off policies on unbounded task creation ==\n"
            << "threads: " << threads
            << ", input class: " << to_string(sweep.input) << "\n";
  std::map<std::string, core::RunReport> serial;
  for (const auto& [name, unbounded, manual] : apps) {
    const auto* app = core::find_app(name);
    serial[name] = bench::serial_baseline(*app, sweep.input, sweep.reps);
  }

  for (const auto& [name, unbounded, manual] : apps) {
    const auto* app = core::find_app(name);
    for (const auto& pol : policies) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = threads;
      cfg.cutoff = pol.policy;
      benchmark::RegisterBenchmark((name + "/" + pol.name).c_str(), bm_config,
                                   app, unbounded, pol.name, cfg, sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
    rt::SchedulerConfig cfg;
    cfg.num_threads = threads;
    benchmark::RegisterBenchmark((name + "/manual-app-cutoff").c_str(),
                                 bm_config, app, manual, "manual-app-cutoff",
                                 cfg, sweep.input)
        ->UseManualTime()
        ->Iterations(1)
        ->Repetitions(sweep.reps)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSpeed-up vs serial per runtime policy (no-cutoff app "
               "versions):\n";
  std::vector<std::string> headers{"policy"};
  for (const auto& [name, u, m] : apps) headers.push_back(name);
  core::TableWriter t(headers);
  for (const auto& pol : policies) {
    std::vector<std::string> row{pol.name};
    for (const auto& [name, u, m] : apps) {
      row.push_back(core::format_fixed(
          g_results[{name, pol.name}].best.speedup_vs(serial[name]), 2));
    }
    t.add_row(row);
  }
  {
    std::vector<std::string> row{"manual (app-level)"};
    for (const auto& [name, u, m] : apps) {
      row.push_back(core::format_fixed(
          g_results[{name, "manual-app-cutoff"}].best.speedup_vs(serial[name]),
          2));
    }
    t.add_row(row);
  }
  t.render(std::cout);
  std::cout << "\nExpected shape: 'none' collapses under task-flood (fib);\n"
               "max_tasks (the icc-style default) and adaptive recover most\n"
               "of the manual cut-off's performance without touching the\n"
               "application — reference [27]'s thesis.\n";
  return 0;
}
