// Table I reproduction: static summary of the BOTS applications (origin,
// domain, computation structure, task directives, generator construct,
// nesting, application cut-off), printed from the registry metadata.
//
// The binary doubles as the EPCC-style runtime-overhead microbenchmark the
// paper's related work motivates: per-construct costs of spawn+join for
// tied/untied tasks, if(false) undeferred tasks and the manual-cut-off
// baseline, measured with google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "runtime/rt.hpp"

namespace core = bots::core;
namespace rt = bots::rt;

namespace {

void print_table1() {
  std::cout << "== Table I: BOTS applications summary ==\n";
  core::TableWriter t({"Application", "Origin", "Domain",
                       "Computation structure", "# task directives",
                       "tasks inside omp...", "nested tasks",
                       "Application cut-off"});
  for (const auto& app : core::apps()) {
    std::string name = app.name;
    if (app.extension) name += " (ext)";
    t.add_row({name, app.origin, app.domain, app.structure,
               std::to_string(app.task_directives), app.tasks_inside,
               app.nested_tasks ? "yes" : "no", app.app_cutoff});
  }
  t.render(std::cout);
  std::cout << "\n== Version matrix (Section III-A, \"Multiple versions\") ==\n";
  core::TableWriter v({"Application", "Version", "Tiedness", "Cut-off",
                       "Generator", "Figure 3 best"});
  for (const auto& app : core::apps()) {
    for (const auto& ver : app.versions) {
      v.add_row({app.name, ver.name, to_string(ver.tied),
                 to_string(ver.cutoff), to_string(ver.generator),
                 ver.paper_best ? "*" : ""});
    }
  }
  v.render(std::cout);
  std::cout.flush();
}

// ---------------------------------------------------------------------------
// Per-construct overhead microbenchmarks (amortized over a fib tree).
// ---------------------------------------------------------------------------

std::uint64_t fib_spawned(int n, rt::Tiedness tied) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn(tied, [&a, n, tied] { a = fib_spawned(n - 1, tied); });
  rt::spawn(tied, [&b, n, tied] { b = fib_spawned(n - 2, tied); });
  rt::taskwait();
  return a + b;
}

std::uint64_t fib_if_false(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn_if(false, [&a, n] { a = fib_if_false(n - 1); });
  rt::spawn_if(false, [&b, n] { b = fib_if_false(n - 2); });
  rt::taskwait();
  return a + b;
}

std::uint64_t fib_plain(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  return fib_plain(n - 1) + fib_plain(n - 2);
}

constexpr int micro_n = 22;

void bm_spawn(benchmark::State& state, rt::Tiedness tied) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 1;  // isolate per-construct cost from scaling effects
  rt::Scheduler sched(cfg);
  std::uint64_t r = 0;
  for (auto _ : state) {
    sched.run_single([&] { r = fib_spawned(micro_n, tied); });
    benchmark::DoNotOptimize(r);
  }
  const auto st = sched.stats();
  state.counters["ns/task"] = benchmark::Counter(
      static_cast<double>(st.total.tasks_created),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void bm_if_false(benchmark::State& state) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 1;
  rt::Scheduler sched(cfg);
  std::uint64_t r = 0;
  for (auto _ : state) {
    sched.run_single([&] { r = fib_if_false(micro_n); });
    benchmark::DoNotOptimize(r);
  }
  const auto st = sched.stats();
  state.counters["ns/task"] = benchmark::Counter(
      static_cast<double>(st.total.tasks_created),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void bm_manual(benchmark::State& state) {
  std::uint64_t r = 0;
  for (auto _ : state) {
    r = fib_plain(micro_n);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  std::cout << "\n== Task-construct overheads (fib(" << micro_n
            << "), one worker) ==\n";
  benchmark::RegisterBenchmark("spawn_taskwait/tied", bm_spawn,
                               rt::Tiedness::tied);
  benchmark::RegisterBenchmark("spawn_taskwait/untied", bm_spawn,
                               rt::Tiedness::untied);
  benchmark::RegisterBenchmark("spawn_if_false", bm_if_false);
  benchmark::RegisterBenchmark("manual_cutoff_baseline", bm_manual);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
