// Table II reproduction: application characteristics from a profiled serial
// execution — serial time, memory, number of potential tasks and the
// per-task averages (arithmetic ops, taskwaits, captured environment size,
// environment writes, % non-private writes, ops/write, arithmetic ops per
// non-private write).
//
// The paper collected these on the medium inputs with a compiler-
// instrumented serial build; here the CountingProf policy instantiation of
// each kernel plays that role (see src/prof/profile.hpp). Default input
// class: medium (override with BOTS_INPUT_CLASS).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "prof/profile.hpp"

namespace core = bots::core;
namespace prof = bots::prof;

namespace {

std::vector<prof::TableRow> g_rows;

void print_table2(core::InputClass input) {
  std::cout << "\n== Table II: application characteristics with the "
            << to_string(input) << " input sets ==\n";
  core::TableWriter t({"Application", "Input", "Serial time", "Memory",
                       "# potential tasks", "Arith ops/task", "Taskwaits/task",
                       "Captured env (B)", "Env writes/task",
                       "% writes non-private", "Ops per write",
                       "Arith ops per non-private write"});
  for (const auto& row : g_rows) {
    t.add_row({row.app, row.input_desc,
               core::format_fixed(row.serial_seconds, 2) + " s",
               core::format_bytes(row.memory_bytes),
               core::format_count(row.potential_tasks),
               core::format_count(
                   static_cast<std::uint64_t>(row.arith_ops_per_task)),
               core::format_fixed(row.taskwaits_per_task, 2),
               core::format_fixed(row.captured_env_bytes_per_task, 2),
               core::format_fixed(row.env_writes_per_task, 2),
               core::format_fixed(row.pct_writes_shared, 2) + "%",
               core::format_fixed(row.ops_per_write, 2),
               row.arith_per_shared_write > 0
                   ? core::format_fixed(row.arith_per_shared_write, 2)
                   : std::string("-")});
  }
  t.render(std::cout);
  std::cout << "\nCSV:\n";
  t.render_csv(std::cout);
  std::cout.flush();
}

void bm_profile(benchmark::State& state, const core::AppInfo* app,
                core::InputClass input) {
  for (auto _ : state) {
    const auto row = app->profile_row(input);
    state.SetIterationTime(row.serial_seconds);
    g_rows.push_back(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const core::InputClass input =
      core::input_class_from_env(core::InputClass::medium);
  for (const auto& app : core::apps()) {
    benchmark::RegisterBenchmark(("profile/" + app.name).c_str(), bm_profile,
                                 &app, input)
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table2(input);
  return 0;
}
