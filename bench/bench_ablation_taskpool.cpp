// Section III-B ablation: pre-allocated task descriptors. The paper
// observes that captured environments are tiny for most benchmarks and
// concludes "implementations that pre-allocate small memory areas
// associated with tasks descriptors might avoid to allocate in most cases
// any data related to firstprivate and thus reducing the creation
// overheads". This bench measures exactly that: per-task cost with the
// per-worker descriptor pool vs plain heap allocation, on the two
// task-flood benchmarks (fib and uts, no application cut-off) — plus the
// NUMA axis on top of pooling: node-local arenas (descriptors retire to
// their birth node, RT_NODE_POOLS semantics) vs plain per-worker pools
// (stolen descriptors drift to the thief's node, counted in the
// remote_frees column). Set RT_SYNTHETIC_TOPOLOGY=NxM for a deterministic
// multi-node shape; on one node the two pooled variants are identical by
// construction.
#include <benchmark/benchmark.h>

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernels/fib/fib.hpp"
#include "kernels/uts/uts.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

void record_pool_counters(benchmark::State& state, const rt::WorkerStats& t) {
  state.counters["tasks"] = static_cast<double>(t.tasks_created);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(t.tasks_created),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.counters["remote_frees"] = static_cast<double>(t.pool_remote_frees);
  state.counters["stash_high_water"] = static_cast<double>(t.pool_migrations);
}

void bm_fib(benchmark::State& state, rt::SchedulerConfig cfg) {
  bots::fib::Params p{27, 0};  // ~0.6M tasks, no application cut-off
  rt::WorkerStats total;
  for (auto _ : state) {
    cfg.cutoff = rt::CutoffPolicy::none;
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    core::Timer t;
    benchmark::DoNotOptimize(bots::fib::run_parallel(
        p, sched, {rt::Tiedness::untied, core::AppCutoff::none}));
    state.SetIterationTime(t.seconds());
    total = sched.stats().total;
  }
  record_pool_counters(state, total);
}

void bm_uts(benchmark::State& state, rt::SchedulerConfig cfg) {
  bots::uts::Params p = bots::uts::params_for(core::InputClass::small);
  rt::WorkerStats total;
  for (auto _ : state) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    core::Timer t;
    benchmark::DoNotOptimize(
        bots::uts::run_parallel(p, sched, {rt::Tiedness::untied}));
    state.SetIterationTime(t.seconds());
    total = sched.stats().total;
  }
  record_pool_counters(state, total);
}

// Contention axis for the PR 9 lock-free RangeMailbox (CAS-push stack with
// wholesale-drain pop, replacing the PR-3 mutex FIFO): N producers hammer
// ONE node mailbox while a single consumer drains — the real shape is
// many range-splitting workers mailing halves to one idle node, whose
// workers pop. Reports ns per delivered task end to end.
void bm_mailbox(benchmark::State& state) {
  const auto producers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t per_producer = 4096;
  const std::size_t total = producers * per_producer;
  std::vector<rt::Task> tasks(total);
  for (auto _ : state) {
    rt::RangeMailbox box;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < per_producer; ++i) {
          box.push(&tasks[p * per_producer + i]);
        }
      });
    }
    core::Timer t;
    go.store(true, std::memory_order_release);
    std::size_t drained = 0;
    while (drained < total) {
      if (box.pop() != nullptr) ++drained;
    }
    state.SetIterationTime(t.seconds());
    for (auto& th : threads) th.join();
    if (!box.empty()) state.SkipWithError("mailbox not empty after drain");
  }
  state.counters["tasks"] = static_cast<double>(total);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(total),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::small);
  std::cout << "== Section III-B: task-descriptor pooling ablation ==\n"
               "pooled (per-worker freelist) vs heap (new/delete per task),\n"
               "task-flood benchmarks without application cut-off.\n";
  struct Variant {
    const char* label;
    bool pool;
    bool node_pools;
  };
  // heap vs worker-pooled at every thread point (the PR-1 axis), and on
  // top of pooling the NUMA retirement discipline A/B at the top thread
  // count: "pooled" here runs node pools OFF (descriptors drift to the
  // thief, remote_frees counts them), "node-pooled" ON (birth-node
  // retirement; remote_frees pinned at zero, stash_high_water shows the
  // batched flights home). Identical on a single-node topology.
  for (unsigned threads : {1u, sweep.threads.back()}) {
    std::vector<Variant> variants = {{"pooled", true, false},
                                     {"heap", false, false}};
    if (threads > 1) variants.push_back({"node-pooled", true, true});
    for (const Variant& v : variants) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = threads;
      cfg.use_task_pool = v.pool;
      cfg.use_node_pools = v.node_pools;
      const std::string suffix =
          std::string(v.label) + "/t" + std::to_string(threads);
      benchmark::RegisterBenchmark(("fib_nocutoff/" + suffix).c_str(), bm_fib,
                                   cfg)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps + 1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("uts/" + suffix).c_str(), bm_uts, cfg)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps + 1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Mailbox contention sweep: producer counts from uncontended to heavily
  // contended, capped at the machine.
  const unsigned hw = sweep.threads.back();
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    if (p > hw && p != 1u) break;
    benchmark::RegisterBenchmark(
        ("mailbox_contention/p" + std::to_string(p)).c_str(), bm_mailbox)
        ->Arg(static_cast<int>(p))
        ->UseManualTime()
        ->Iterations(1)
        ->Repetitions(sweep.reps + 1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "\nExpected shape: pooled descriptors cost measurably fewer\n"
               "ns/task than heap allocation, the gap widening with thread\n"
               "count (allocator contention) — the paper's pre-allocation\n"
               "recommendation. On a multi-node topology, node-pooled should\n"
               "match pooled within noise while holding remote_frees at 0\n"
               "(pooled's remote_frees is the descriptor drift it removes).\n";
  return 0;
}
