// Section III-B ablation: pre-allocated task descriptors. The paper
// observes that captured environments are tiny for most benchmarks and
// concludes "implementations that pre-allocate small memory areas
// associated with tasks descriptors might avoid to allocate in most cases
// any data related to firstprivate and thus reducing the creation
// overheads". This bench measures exactly that: per-task cost with the
// per-worker descriptor pool vs plain heap allocation, on the two
// task-flood benchmarks (fib and uts, no application cut-off).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "kernels/fib/fib.hpp"
#include "kernels/uts/uts.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

void bm_fib(benchmark::State& state, bool use_pool, unsigned threads) {
  bots::fib::Params p{27, 0};  // ~0.6M tasks, no application cut-off
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = threads;
    cfg.cutoff = rt::CutoffPolicy::none;
    cfg.use_task_pool = use_pool;
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    core::Timer t;
    benchmark::DoNotOptimize(bots::fib::run_parallel(
        p, sched, {rt::Tiedness::untied, core::AppCutoff::none}));
    state.SetIterationTime(t.seconds());
    tasks = sched.stats().total.tasks_created;
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsIterationInvariantRate |
                                      benchmark::Counter::kInvert);
}

void bm_uts(benchmark::State& state, bool use_pool, unsigned threads) {
  bots::uts::Params p = bots::uts::params_for(core::InputClass::small);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = threads;
    cfg.use_task_pool = use_pool;
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    core::Timer t;
    benchmark::DoNotOptimize(
        bots::uts::run_parallel(p, sched, {rt::Tiedness::untied}));
    state.SetIterationTime(t.seconds());
    tasks = sched.stats().total.tasks_created;
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["ns_per_task"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsIterationInvariantRate |
                                      benchmark::Counter::kInvert);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::small);
  std::cout << "== Section III-B: task-descriptor pooling ablation ==\n"
               "pooled (per-worker freelist) vs heap (new/delete per task),\n"
               "task-flood benchmarks without application cut-off.\n";
  for (unsigned threads : {1u, sweep.threads.back()}) {
    for (bool pool : {true, false}) {
      const std::string suffix =
          std::string(pool ? "pooled" : "heap") + "/t" + std::to_string(threads);
      benchmark::RegisterBenchmark(("fib_nocutoff/" + suffix).c_str(), bm_fib,
                                   pool, threads)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps + 1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("uts/" + suffix).c_str(), bm_uts, pool,
                                   threads)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps + 1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << "\nExpected shape: pooled descriptors cost measurably fewer\n"
               "ns/task than heap allocation, the gap widening with thread\n"
               "count (allocator contention) — the paper's pre-allocation\n"
               "recommendation.\n";
  return 0;
}
