// Section IV-D ablation: the cut-off *value* study the paper describes but
// omits for space — "Choosing a low cut-off value can restrict parallelism
// opportunities but choosing a high cut-off value can saturate the system
// with a large amount of tasks".
//
// Sweeps the manual cut-off depth of Fib, NQueens and Strassen at the
// maximum thread count and reports speed-up vs serial per depth.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "kernels/fib/fib.hpp"
#include "kernels/nqueens/nqueens.hpp"
#include "kernels/strassen/strassen.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  int depth;
  auto operator<=>(const Key&) const = default;
};

std::map<Key, double> g_best;  // seconds

void offer(const Key& k, double seconds) {
  auto it = g_best.find(k);
  if (it == g_best.end() || seconds < it->second) g_best[k] = seconds;
}

template <class Fn>
void bm_depth(benchmark::State& state, std::string app, int depth,
              unsigned threads, Fn run) {
  for (auto _ : state) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = threads;
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    core::Timer t;
    run(sched, depth);
    const double secs = t.seconds();
    state.SetIterationTime(secs);
    offer({app, depth}, secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const unsigned threads = sweep.threads.back();
  const std::vector<int> depths = {1, 2, 3, 4, 6, 8, 10, 12, 16, 20};

  std::cout << "== Section IV-D: manual cut-off value sweep at " << threads
            << " threads, " << to_string(sweep.input) << " inputs ==\n";

  bots::fib::Params fp = bots::fib::params_for(sweep.input);
  bots::nqueens::Params np = bots::nqueens::params_for(sweep.input);
  bots::strassen::Params sp = bots::strassen::params_for(sweep.input);
  const auto sa = bots::strassen::make_matrix(sp, 1);
  const auto sb = bots::strassen::make_matrix(sp, 2);

  // Serial baselines.
  std::map<std::string, double> serial;
  {
    core::Timer t;
    benchmark::DoNotOptimize(bots::fib::run_serial(fp));
    serial["fib"] = t.seconds();
  }
  {
    core::Timer t;
    benchmark::DoNotOptimize(bots::nqueens::run_serial(np));
    serial["nqueens"] = t.seconds();
  }
  {
    core::Timer t;
    benchmark::DoNotOptimize(bots::strassen::run_serial(sp, sa, sb));
    serial["strassen"] = t.seconds();
  }

  for (int d : depths) {
    benchmark::RegisterBenchmark(
        ("fib/depth" + std::to_string(d)).c_str(),
        [&, d](benchmark::State& st) {
          bm_depth(st, "fib", d, threads, [&](rt::Scheduler& s, int depth) {
            bots::fib::Params p = fp;
            p.cutoff_depth = depth;
            benchmark::DoNotOptimize(bots::fib::run_parallel(
                p, s, {rt::Tiedness::untied, core::AppCutoff::manual}));
          });
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Repetitions(sweep.reps)
        ->Unit(benchmark::kMillisecond);
    if (d <= np.n) {
      benchmark::RegisterBenchmark(
          ("nqueens/depth" + std::to_string(d)).c_str(),
          [&, d](benchmark::State& st) {
            bm_depth(st, "nqueens", d, threads,
                     [&](rt::Scheduler& s, int depth) {
                       bots::nqueens::Params p = np;
                       p.cutoff_depth = depth;
                       benchmark::DoNotOptimize(bots::nqueens::run_parallel(
                           p, s,
                           {rt::Tiedness::untied, core::AppCutoff::manual}));
                     });
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
    if (d <= 5) {  // strassen depth beyond log2(n/base) adds nothing
      benchmark::RegisterBenchmark(
          ("strassen/depth" + std::to_string(d)).c_str(),
          [&, d](benchmark::State& st) {
            bm_depth(st, "strassen", d, threads,
                     [&](rt::Scheduler& s, int depth) {
                       bots::strassen::Params p = sp;
                       p.cutoff_depth = depth;
                       benchmark::DoNotOptimize(bots::strassen::run_parallel(
                           p, sa, sb, s,
                           {rt::Tiedness::tied, core::AppCutoff::manual}));
                     });
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSpeed-up vs serial per manual cut-off depth ("
            << threads << " threads):\n";
  core::TableWriter t({"depth", "fib", "nqueens", "strassen"});
  for (int d : depths) {
    auto cell = [&](const std::string& app) {
      const auto it = g_best.find({app, d});
      return it == g_best.end()
                 ? std::string("-")
                 : core::format_fixed(serial[app] / it->second, 2);
    };
    t.add_row({std::to_string(d), cell("fib"), cell("nqueens"),
               cell("strassen")});
  }
  t.render(std::cout);
  std::cout << "\nExpected shape: speed-up rises with depth until enough\n"
               "parallelism exists, then flattens (and eventually dips as\n"
               "task-creation overhead dominates — the paper's 'saturate the\n"
               "system' regime).\n";
  return 0;
}
