// Figure 3 reproduction: "Benchmark suite results as base code" — speed-up
// of the best version of each application across the thread sweep, with the
// serial execution as the baseline (Floorplan uses nodes/second, Section IV
// footnote 5).
//
// Expected shape (paper, 32-cpu Altix): NQueens and SparseLU close to
// linear; Strassen, Health and FFT saturate early. Default input class:
// medium (override with BOTS_INPUT_CLASS).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace bench = bots::bench;

namespace {

struct SeriesKey {
  std::string app;
  unsigned threads;
  auto operator<=>(const SeriesKey&) const = default;
};

std::map<SeriesKey, bench::Measurement> g_results;
std::map<std::string, core::RunReport> g_serial;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, unsigned threads, core::InputClass input) {
  for (auto _ : state) {
    const auto rep = bench::parallel_best(*app, version, threads, input, 1);
    state.SetIterationTime(rep.seconds);
    g_results[{app->name, threads}].offer(rep);
  }
  state.counters["threads"] = threads;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  std::cout << "== Figure 3: speed-up of the best version of each "
               "application ==\n"
            << "input class: " << to_string(sweep.input)
            << ", repetitions: " << sweep.reps << "\n\nSerial baselines:\n";
  for (const auto& app : core::apps()) {
    const auto serial = bench::serial_baseline(app, sweep.input, sweep.reps);
    g_serial[app.name] = serial;
    std::cout << "  " << app.name << " (" << app.describe_input(sweep.input)
              << "): " << core::format_fixed(serial.seconds, 3) << " s"
              << (serial.metric > 0
                      ? ", " + core::format_count(static_cast<std::uint64_t>(
                                   serial.metric)) +
                            " " + serial.metric_name
                      : "")
              << "\n";
    std::cout.flush();
  }

  for (const auto& app : core::apps()) {
    const std::string version = app.best_version().name;
    for (unsigned t : sweep.threads) {
      const std::string name =
          app.name + "(" + version + ")/t" + std::to_string(t);
      benchmark::RegisterBenchmark(name.c_str(), bm_config, &app, version, t,
                                   sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->ReportAggregatesOnly(false)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::SpeedupTable table(sweep.threads);
  for (const auto& app : core::apps()) {
    std::vector<double> series;
    for (unsigned t : sweep.threads) {
      series.push_back(
          g_results[{app.name, t}].best.speedup_vs(g_serial[app.name]));
    }
    std::string label = app.name + " (" + app.best_version().name + ")";
    if (app.extension) label += " [ext]";
    table.add_series(label, series);
  }
  table.print("Figure 3: speed-up of best versions (cf. paper Figure 3)");

  // Shape annotation: who is near-linear, who saturates (paper Section IV-A).
  std::cout << "\nShape summary at " << sweep.threads.back() << " threads:\n";
  for (const auto& app : core::apps()) {
    const double s = g_results[{app.name, sweep.threads.back()}].best.speedup_vs(
        g_serial[app.name]);
    const double frac = s / static_cast<double>(sweep.threads.back());
    std::cout << "  " << app.name << ": " << core::format_fixed(s, 2) << "x ("
              << (frac > 0.6   ? "near-linear"
                  : frac > 0.3 ? "sub-linear"
                               : "saturated")
              << ")\n";
  }

  // Per-entry runtime placement/grain record, machine-consumed by
  // bench/run_baseline.sh (same sentinel-block protocol as CSV:): app,
  // verifiably-pinned workers at the top thread count, and the per-site
  // adaptive grain the best run converged to.
  std::cout << "\nSITEGRAIN:\n";
  for (const auto& app : core::apps()) {
    const auto& best = g_results[{app.name, sweep.threads.back()}].best;
    std::cout << app.name << ",pinned=" << best.runtime_stats.pinned << "/"
              << sweep.threads.back() << ","
              << (best.grain_sites.empty() ? "n/a" : best.grain_sites)
              << "\n";
  }
  std::cout << "\n";
  return 0;
}
