// Per-task runtime overhead: ns/task for spawn → run → join, the baseline
// trajectory number for the spawn/steal fast path. Two workloads:
//
//   fib        — tied recursive fib with cutoff none (every spawn
//                deferred), the paper's canonical task-overhead stressor
//                (Figure 3's fib rows are dominated by exactly this cost).
//   null       — a single generator flooding N empty tasks joined by one
//                taskwait: pure descriptor + deque + accounting cost, no
//                user work and no recursion.
//   fib_inline — fib under a manual depth cut-off expressed as an if
//                clause: constructs above the bound defer, the vast
//                majority below it are INLINED. ns per construct here is
//                the undeferred-execution cost — the number the zero-alloc
//                inline path attacks. A/B toggles use_inline_fast_path
//                (everything else at the fast-path defaults).
//
// fib and null run twice on the SAME binary: once with the fast-path knobs
// on (batched accounting, steal-half, victim affinity, distributed parking
// — the defaults) and once with all of them off (the seed behaviour). The
// summary reports the relative overhead reduction.
//
// The binary doubles as the allocation-regression tripwire CI depends on:
// a fully-inlined run with the fast path on must report ZERO task-pool
// activity, else the process exits nonzero.
//
// Environment knobs:
//   BOTS_SPAWN_THREADS       team size                     (default 8)
//   BOTS_SPAWN_FIB           fib argument                  (default 30)
//   BOTS_SPAWN_NULL          null-task flood size          (default 1'000'000)
//   BOTS_SPAWN_INLINE_DEPTH  fib_inline deferral depth     (default 8)
//   BOTS_BENCH_REPS          repetitions, best-of          (default 5)
//
// Output: one JSON object per line (machine-readable, consumed by
// bench/run_baseline.sh) followed by a human-readable summary on stderr.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <utility>

#include "bench_common.hpp"
#include "runtime/rt.hpp"

namespace rt = bots::rt;
using bots::bench::env_unsigned;

namespace {

std::uint64_t fib_task(unsigned n) {
  if (n < 2) return n;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  rt::spawn(rt::Tiedness::tied, [&a, n] { a = fib_task(n - 1); });
  rt::spawn(rt::Tiedness::tied, [&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

/// Manual depth cut-off as an if clause: every call is still a task
/// CONSTRUCT (counted in tasks_created), but below `depth_left` levels it is
/// undeferred — the workload the inline fast path exists for.
std::uint64_t fib_if_task(unsigned n, unsigned depth_left) {
  if (n < 2) return n;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  const bool defer = depth_left > 0;
  const unsigned d = defer ? depth_left - 1 : 0;
  rt::spawn_if(defer, rt::Tiedness::tied,
               [&a, n, d] { a = fib_if_task(n - 1, d); });
  rt::spawn_if(defer, rt::Tiedness::tied,
               [&b, n, d] { b = fib_if_task(n - 2, d); });
  rt::taskwait();
  return a + b;
}

rt::SchedulerConfig make_config(unsigned threads, bool fastpath) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.cutoff = rt::CutoffPolicy::none;  // measure every spawn, no pruning
  cfg.batch_accounting = fastpath;
  cfg.steal_half = fastpath;
  cfg.victim_affinity = fastpath;
  cfg.distributed_parking = fastpath;
  cfg.lifo_slot = fastpath;
  cfg.fused_finish = fastpath;
  return cfg;
}

struct Result {
  double seconds = 0.0;
  std::uint64_t tasks = 0;
  [[nodiscard]] double ns_per_task() const {
    return tasks == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(tasks);
  }
};

template <class Body>
Result measure_cfg(const rt::SchedulerConfig& cfg, int reps, Body&& body) {
  Result best;
  for (int r = 0; r < reps; ++r) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});  // wake the team outside the timed section
    const auto t0 = std::chrono::steady_clock::now();
    sched.run_single([&body] { body(); });
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best.seconds) {
      best.seconds = s;
      best.tasks = sched.stats().total.tasks_created;
    }
  }
  return best;
}

template <class Body>
Result measure(unsigned threads, bool fastpath, int reps, Body&& body) {
  return measure_cfg(make_config(threads, fastpath), reps,
                     std::forward<Body>(body));
}

/// Allocation-regression tripwire: a fully-inlined run on the zero-alloc
/// path must never touch the descriptor pool. Returns false (and reports on
/// stderr) when pool activity is observed.
bool zero_alloc_tripwire(unsigned threads) {
  rt::SchedulerConfig cfg;  // all defaults: inline fast path on
  cfg.num_threads = threads;
  rt::Scheduler sched(cfg);
  std::uint64_t sink = 0;
  sched.run_single([&sink] { sink = fib_if_task(24, 0); });  // all inlined
  const auto t = sched.stats().total;
  const std::uint64_t pool = t.pool_reuse + t.pool_fresh;
  if (pool != 0 || t.tasks_inlined_fast != t.tasks_created) {
    std::fprintf(stderr,
                 "zero-alloc TRIPWIRE: pool activity %llu (reuse %llu + "
                 "fresh %llu) on a fully-inlined run, inlined_fast %llu of "
                 "%llu constructs\n",
                 static_cast<unsigned long long>(pool),
                 static_cast<unsigned long long>(t.pool_reuse),
                 static_cast<unsigned long long>(t.pool_fresh),
                 static_cast<unsigned long long>(t.tasks_inlined_fast),
                 static_cast<unsigned long long>(t.tasks_created));
    return false;
  }
  std::printf(
      "{\"bench\":\"spawn_overhead_zero_alloc_tripwire\",\"threads\":%u,"
      "\"constructs\":%llu,\"pool_activity\":0,\"ok\":true}\n",
      threads, static_cast<unsigned long long>(t.tasks_created));
  return true;
}

/// `ab_key` names the dimension the on/off toggle applies to: "fastpath"
/// for the all-knobs A/B of the fib/null workloads, "inline" for the
/// fib_inline workload (which keeps every other fast-path knob at its
/// default and toggles ONLY use_inline_fast_path — labelling it "fastpath"
/// would misattribute the off row to the all-knobs-off seed configuration).
void emit(const char* workload, unsigned threads, const char* ab_key, bool on,
          const Result& res) {
  std::printf(
      "{\"bench\":\"spawn_overhead\",\"workload\":\"%s\",\"threads\":%u,"
      "\"%s\":\"%s\",\"tasks\":%llu,\"seconds\":%.6f,"
      "\"ns_per_task\":%.2f}\n",
      workload, threads, ab_key, on ? "on" : "off",
      static_cast<unsigned long long>(res.tasks), res.seconds,
      res.ns_per_task());
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned threads = env_unsigned("BOTS_SPAWN_THREADS", 8);
  const unsigned fib_n = env_unsigned("BOTS_SPAWN_FIB", 30);
  const unsigned null_n = env_unsigned("BOTS_SPAWN_NULL", 1'000'000);
  const unsigned inline_depth = env_unsigned("BOTS_SPAWN_INLINE_DEPTH", 8);
  const int reps = static_cast<int>(env_unsigned("BOTS_BENCH_REPS", 5));

  std::fprintf(
      stderr,
      "bench_spawn_overhead: threads=%u fib=%u null=%u inline_depth=%u "
      "reps=%d\n",
      threads, fib_n, null_n, inline_depth, reps);

  std::uint64_t sink = 0;
  const auto fib_body = [fib_n, &sink] { sink += fib_task(fib_n); };
  const auto null_body = [null_n] {
    for (unsigned i = 0; i < null_n; ++i) rt::spawn([] {});
    rt::taskwait();
  };
  const auto fib_inline_body = [fib_n, inline_depth, &sink] {
    sink += fib_if_task(fib_n, inline_depth);
  };

  const Result fib_on = measure(threads, true, reps, fib_body);
  const Result fib_off = measure(threads, false, reps, fib_body);
  const Result null_on = measure(threads, true, reps, null_body);
  const Result null_off = measure(threads, false, reps, null_body);

  // Inlined-construct cost: fast-path defaults, only the inline knob A/B'd.
  rt::SchedulerConfig inline_cfg = make_config(threads, true);
  inline_cfg.use_inline_fast_path = true;
  const Result inl_on = measure_cfg(inline_cfg, reps, fib_inline_body);
  inline_cfg.use_inline_fast_path = false;
  const Result inl_off = measure_cfg(inline_cfg, reps, fib_inline_body);

  emit("fib", threads, "fastpath", true, fib_on);
  emit("fib", threads, "fastpath", false, fib_off);
  emit("null", threads, "fastpath", true, null_on);
  emit("null", threads, "fastpath", false, null_off);
  emit("fib_inline", threads, "inline", true, inl_on);
  emit("fib_inline", threads, "inline", false, inl_off);

  const auto gain = [](const Result& on, const Result& off) {
    return off.ns_per_task() > 0.0
               ? 100.0 * (off.ns_per_task() - on.ns_per_task()) /
                     off.ns_per_task()
               : 0.0;
  };
  std::printf(
      "{\"bench\":\"spawn_overhead_summary\",\"threads\":%u,"
      "\"fib_gain_pct\":%.1f,\"null_gain_pct\":%.1f,"
      "\"fib_inline_gain_pct\":%.1f}\n",
      threads, gain(fib_on, fib_off), gain(null_on, null_off),
      gain(inl_on, inl_off));
  std::fprintf(
      stderr,
      "fib:        on %.1f ns/task, off %.1f ns/task (%.1f%% lower)\n"
      "null:       on %.1f ns/task, off %.1f ns/task (%.1f%% lower)\n"
      "fib_inline: on %.1f ns/construct, off %.1f ns/construct (%.1f%% "
      "lower)\n",
      fib_on.ns_per_task(), fib_off.ns_per_task(), gain(fib_on, fib_off),
      null_on.ns_per_task(), null_off.ns_per_task(), gain(null_on, null_off),
      inl_on.ns_per_task(), inl_off.ns_per_task(), gain(inl_on, inl_off));

  // CI fails the job on any allocation regression of the zero-alloc path.
  if (!zero_alloc_tripwire(threads)) return 1;
  return 0;
}
