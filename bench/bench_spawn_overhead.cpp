// Per-task runtime overhead: ns/task for spawn → run → join, the baseline
// trajectory number for the spawn/steal fast path. Two workloads:
//
//   fib   — tied recursive fib with cutoff none (every spawn deferred), the
//           paper's canonical task-overhead stressor (Figure 3's fib rows
//           are dominated by exactly this cost).
//   null  — a single generator flooding N empty tasks joined by one
//           taskwait: pure descriptor + deque + accounting cost, no user
//           work and no recursion.
//
// Each workload runs twice on the SAME binary: once with the fast-path
// knobs on (batched accounting, steal-half, victim affinity, distributed
// parking — the defaults) and once with all of them off (the seed
// behaviour). The summary reports the relative overhead reduction.
//
// Environment knobs:
//   BOTS_SPAWN_THREADS  team size              (default 8)
//   BOTS_SPAWN_FIB      fib argument           (default 30)
//   BOTS_SPAWN_NULL     null-task flood size   (default 1'000'000)
//   BOTS_BENCH_REPS     repetitions, best-of   (default 5)
//
// Output: one JSON object per line (machine-readable, consumed by
// bench/run_baseline.sh) followed by a human-readable summary on stderr.
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"
#include "runtime/rt.hpp"

namespace rt = bots::rt;
using bots::bench::env_unsigned;

namespace {

std::uint64_t fib_task(unsigned n) {
  if (n < 2) return n;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  rt::spawn(rt::Tiedness::tied, [&a, n] { a = fib_task(n - 1); });
  rt::spawn(rt::Tiedness::tied, [&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

rt::SchedulerConfig make_config(unsigned threads, bool fastpath) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.cutoff = rt::CutoffPolicy::none;  // measure every spawn, no pruning
  cfg.batch_accounting = fastpath;
  cfg.steal_half = fastpath;
  cfg.victim_affinity = fastpath;
  cfg.distributed_parking = fastpath;
  cfg.lifo_slot = fastpath;
  cfg.fused_finish = fastpath;
  return cfg;
}

struct Result {
  double seconds = 0.0;
  std::uint64_t tasks = 0;
  [[nodiscard]] double ns_per_task() const {
    return tasks == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(tasks);
  }
};

template <class Body>
Result measure(unsigned threads, bool fastpath, int reps, Body&& body) {
  Result best;
  for (int r = 0; r < reps; ++r) {
    rt::Scheduler sched(make_config(threads, fastpath));
    sched.run_single([] {});  // wake the team outside the timed section
    const auto t0 = std::chrono::steady_clock::now();
    sched.run_single([&body] { body(); });
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best.seconds) {
      best.seconds = s;
      best.tasks = sched.stats().total.tasks_created;
    }
  }
  return best;
}

void emit(const char* workload, unsigned threads, bool fastpath,
          const Result& res) {
  std::printf(
      "{\"bench\":\"spawn_overhead\",\"workload\":\"%s\",\"threads\":%u,"
      "\"fastpath\":\"%s\",\"tasks\":%llu,\"seconds\":%.6f,"
      "\"ns_per_task\":%.2f}\n",
      workload, threads, fastpath ? "on" : "off",
      static_cast<unsigned long long>(res.tasks), res.seconds,
      res.ns_per_task());
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned threads = env_unsigned("BOTS_SPAWN_THREADS", 8);
  const unsigned fib_n = env_unsigned("BOTS_SPAWN_FIB", 30);
  const unsigned null_n = env_unsigned("BOTS_SPAWN_NULL", 1'000'000);
  const int reps = static_cast<int>(env_unsigned("BOTS_BENCH_REPS", 5));

  std::fprintf(stderr,
               "bench_spawn_overhead: threads=%u fib=%u null=%u reps=%d\n",
               threads, fib_n, null_n, reps);

  std::uint64_t sink = 0;
  const auto fib_body = [fib_n, &sink] { sink += fib_task(fib_n); };
  const auto null_body = [null_n] {
    for (unsigned i = 0; i < null_n; ++i) rt::spawn([] {});
    rt::taskwait();
  };

  const Result fib_on = measure(threads, true, reps, fib_body);
  const Result fib_off = measure(threads, false, reps, fib_body);
  const Result null_on = measure(threads, true, reps, null_body);
  const Result null_off = measure(threads, false, reps, null_body);

  emit("fib", threads, true, fib_on);
  emit("fib", threads, false, fib_off);
  emit("null", threads, true, null_on);
  emit("null", threads, false, null_off);

  const auto gain = [](const Result& on, const Result& off) {
    return off.ns_per_task() > 0.0
               ? 100.0 * (off.ns_per_task() - on.ns_per_task()) /
                     off.ns_per_task()
               : 0.0;
  };
  std::printf(
      "{\"bench\":\"spawn_overhead_summary\",\"threads\":%u,"
      "\"fib_gain_pct\":%.1f,\"null_gain_pct\":%.1f}\n",
      threads, gain(fib_on, fib_off), gain(null_on, null_off));
  std::fprintf(stderr,
               "fib:  on %.1f ns/task, off %.1f ns/task (%.1f%% lower)\n"
               "null: on %.1f ns/task, off %.1f ns/task (%.1f%% lower)\n",
               fib_on.ns_per_task(), fib_off.ns_per_task(),
               gain(fib_on, fib_off), null_on.ns_per_task(),
               null_off.ns_per_task(), gain(null_on, null_off));
  return 0;
}
