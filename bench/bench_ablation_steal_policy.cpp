// Steal/placement policy ablation: the topology-aware scheduling layer's
// A/B bench. Crosses the pluggable StealPolicy implementations (random,
// sequential, last_victim, hierarchical) over benchmarks with different
// task shapes, at the sweep's top thread count, and reports speed-up vs
// serial plus the steal-locality split (steals_local_node vs
// steals_remote_node), the remote probes the has-work hints saved, how many
// workers were verifiably pinned, and the per-site adaptive grain each run
// converged to. The hierarchical policy additionally runs a pinned × hint
// on/off axis (PR 4), so the cost/benefit of worker pinning and cross-node
// probe throttling is measurable in isolation.
//
// On a single-node host the hierarchical policy degenerates to
// last_victim, so for an interconnect-sensitive A/B set a synthetic
// topology first, e.g.:
//   RT_SYNTHETIC_TOPOLOGY=2x4 ./build/bench_ablation_steal_policy
// (Pinning against a synthetic topology only sticks where the node cpusets
// name CPUs this machine has; the `pinned` column reports reality.)
//
// Honours the usual BOTS_INPUT_CLASS / BOTS_MAX_THREADS / BOTS_BENCH_REPS.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  std::string config;
  auto operator<=>(const Key&) const = default;
};

struct Outcome {
  bench::Measurement m;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t probes_skipped = 0;
  std::uint64_t halves_redirected = 0;  ///< range halves mailed to idle nodes
  std::uint64_t remote_frees = 0;       ///< descriptor frees off the birth node
  std::uint64_t pinned = 0;  ///< verifiably pinned workers, last rep
  std::string grain;         ///< per-site converged grain, last rep
};

std::map<Key, Outcome> g_results;

/// One policy configuration of the ablation axis: the four policies plus
/// the hierarchical pinned/hint crosses.
struct ConfigCase {
  std::string label;
  rt::StealPolicyKind kind;
  bool pin = false;
  bool hints = true;
};

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, std::string config,
               rt::SchedulerConfig cfg, core::InputClass input) {
  for (auto _ : state) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    const auto rep = app->run(input, version, sched, /*verify=*/false);
    state.SetIterationTime(rep.seconds);
    Outcome& out = g_results[{app->name, config}];
    out.m.offer(rep);
    const auto t = sched.stats().total;
    out.steals_local += t.steals_local_node;
    out.steals_remote += t.steals_remote_node;
    out.probes_skipped += t.remote_probes_skipped;
    out.halves_redirected += t.range_halves_redirected;
    out.remote_frees += t.pool_remote_frees;
    out.pinned = t.pinned;
    out.grain = sched.grain_table().describe();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const unsigned threads = sweep.threads.back();
  const std::vector<std::pair<std::string, std::string>> apps = {
      {"fib", "manual-untied"},
      {"sort", "untied"},
      {"fft", "untied"},
      {"alignment", "tied"},
      {"sparselu", "for-tied"},
  };
  const std::vector<ConfigCase> configs = {
      {"random", rt::StealPolicyKind::random},
      {"sequential", rt::StealPolicyKind::sequential},
      {"last_victim", rt::StealPolicyKind::last_victim},
      {"hierarchical", rt::StealPolicyKind::hierarchical},
      // The PR-4 axis: what do pinning and probe throttling buy, alone and
      // together, on top of the hierarchical victim order?
      {"hier/nohint", rt::StealPolicyKind::hierarchical, false, false},
      {"hier/pin", rt::StealPolicyKind::hierarchical, true, true},
      {"hier/pin+nohint", rt::StealPolicyKind::hierarchical, true, false},
  };

  {
    rt::SchedulerConfig probe;
    probe.num_threads = threads;
    rt::Scheduler s(probe);
    std::cout << "== Steal-policy ablation at " << threads << " threads, "
              << to_string(sweep.input) << " inputs ==\n"
              << "topology: " << s.topology().describe() << " ("
              << s.topology().num_nodes() << " node(s); set "
              << "RT_SYNTHETIC_TOPOLOGY=NxM to override; RT_PIN_WORKERS=1 "
              << "pins every configuration)\n";
  }

  std::map<std::string, core::RunReport> serial;
  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    serial[name] = bench::serial_baseline(*app, sweep.input, sweep.reps);
  }

  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    for (const ConfigCase& cc : configs) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = threads;
      cfg.steal_policy = cc.kind;
      cfg.pin_workers = cfg.pin_workers || cc.pin;
      cfg.use_node_work_hints = cc.hints;
      benchmark::RegisterBenchmark((name + "/" + cc.label).c_str(), bm_config,
                                   app, version, cc.label, cfg, sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSpeed-up vs serial per steal policy configuration:\n";
  std::vector<std::string> headers{"config"};
  for (const auto& [name, version] : apps) headers.push_back(name);
  core::TableWriter t(headers);
  for (const ConfigCase& cc : configs) {
    std::vector<std::string> row{cc.label};
    for (const auto& [name, version] : apps) {
      row.push_back(core::format_fixed(
          g_results[{name, cc.label}].m.best.speedup_vs(serial[name]), 2));
    }
    t.add_row(row);
  }
  t.render(std::cout);

  std::cout << "\nSteal locality (successful raids, summed over reps), "
               "skipped remote probes, mailed range halves, off-birth-node "
               "descriptor frees, pinned workers and converged per-site "
               "grain:\n";
  core::TableWriter loc({"app", "config", "steals local", "steals remote",
                         "probes skipped", "halves mailed", "remote frees",
                         "pinned", "grain"});
  for (const auto& [key, out] : g_results) {
    loc.add_row({key.app, key.config, std::to_string(out.steals_local),
                 std::to_string(out.steals_remote),
                 std::to_string(out.probes_skipped),
                 std::to_string(out.halves_redirected),
                 std::to_string(out.remote_frees),
                 std::to_string(out.pinned) + "/" + std::to_string(threads),
                 out.grain});
  }
  loc.render(std::cout);
  std::cout << "\nExpected shape: on a multi-node topology, hierarchical\n"
               "shifts the raid mix toward steals-local and should match or\n"
               "beat last_victim (identical on one node by construction);\n"
               "hints should show probes-skipped > 0 whenever a node idles\n"
               "with no speed-up loss, and pinning only reports workers the\n"
               "machine could actually place on their node's cpuset.\n"
               "Hint placement mails halves only under the hierarchical\n"
               "configs with hints on (halves-mailed column), and remote\n"
               "frees stay 0 everywhere node pools are active (the default;\n"
               "RT_NODE_POOLS=0 exposes the historical descriptor drift).\n";
  return 0;
}
