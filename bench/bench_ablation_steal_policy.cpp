// Steal/placement policy ablation: the topology-aware scheduling layer's
// A/B bench. Crosses the pluggable StealPolicy implementations (random,
// sequential, last_victim, hierarchical) over benchmarks with different
// task shapes, at the sweep's top thread count, and reports speed-up vs
// serial plus the steal-locality split (steals_local_node vs
// steals_remote_node) and the adaptive grain each run converged to.
//
// On a single-node host the hierarchical policy degenerates to
// last_victim, so for an interconnect-sensitive A/B set a synthetic
// topology first, e.g.:
//   RT_SYNTHETIC_TOPOLOGY=2x4 ./build/bench_ablation_steal_policy
//
// Honours the usual BOTS_INPUT_CLASS / BOTS_MAX_THREADS / BOTS_BENCH_REPS.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace core = bots::core;
namespace rt = bots::rt;
namespace bench = bots::bench;

namespace {

struct Key {
  std::string app;
  std::string policy;
  auto operator<=>(const Key&) const = default;
};

struct Outcome {
  bench::Measurement m;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_remote = 0;
  std::int64_t grain = 1;
};

std::map<Key, Outcome> g_results;

void bm_config(benchmark::State& state, const core::AppInfo* app,
               std::string version, std::string policy,
               rt::SchedulerConfig cfg, core::InputClass input) {
  for (auto _ : state) {
    rt::Scheduler sched(cfg);
    sched.run_single([] {});
    const auto rep = app->run(input, version, sched, /*verify=*/false);
    state.SetIterationTime(rep.seconds);
    Outcome& out = g_results[{app->name, policy}];
    out.m.offer(rep);
    const auto t = sched.stats().total;
    out.steals_local += t.steals_local_node;
    out.steals_remote += t.steals_remote_node;
    out.grain = sched.grain_controller().grain();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Sweep sweep = bench::sweep_from_env(core::InputClass::medium);
  const unsigned threads = sweep.threads.back();
  const std::vector<std::pair<std::string, std::string>> apps = {
      {"fib", "manual-untied"},
      {"sort", "untied"},
      {"fft", "untied"},
      {"alignment", "tied"},
      {"sparselu", "for-tied"},
  };
  const std::vector<rt::StealPolicyKind> policies = {
      rt::StealPolicyKind::random,
      rt::StealPolicyKind::sequential,
      rt::StealPolicyKind::last_victim,
      rt::StealPolicyKind::hierarchical,
  };

  {
    rt::SchedulerConfig probe;
    probe.num_threads = threads;
    rt::Scheduler s(probe);
    std::cout << "== Steal-policy ablation at " << threads << " threads, "
              << to_string(sweep.input) << " inputs ==\n"
              << "topology: " << s.topology().describe() << " ("
              << s.topology().num_nodes() << " node(s); set "
              << "RT_SYNTHETIC_TOPOLOGY=NxM to override)\n";
  }

  std::map<std::string, core::RunReport> serial;
  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    serial[name] = bench::serial_baseline(*app, sweep.input, sweep.reps);
  }

  for (const auto& [name, version] : apps) {
    const auto* app = core::find_app(name);
    for (const rt::StealPolicyKind kind : policies) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = threads;
      cfg.steal_policy = kind;
      benchmark::RegisterBenchmark(
          (name + "/" + to_string(kind)).c_str(), bm_config, app, version,
          std::string(to_string(kind)), cfg, sweep.input)
          ->UseManualTime()
          ->Iterations(1)
          ->Repetitions(sweep.reps)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSpeed-up vs serial per steal policy:\n";
  std::vector<std::string> headers{"policy"};
  for (const auto& [name, version] : apps) headers.push_back(name);
  core::TableWriter t(headers);
  for (const rt::StealPolicyKind kind : policies) {
    std::vector<std::string> row{to_string(kind)};
    for (const auto& [name, version] : apps) {
      row.push_back(core::format_fixed(
          g_results[{name, to_string(kind)}].m.best.speedup_vs(serial[name]),
          2));
    }
    t.add_row(row);
  }
  t.render(std::cout);

  std::cout << "\nSteal locality (local/remote successful raids, summed over "
               "reps) and converged adaptive grain:\n";
  core::TableWriter loc({"app", "policy", "steals local", "steals remote",
                         "grain"});
  for (const auto& [key, out] : g_results) {
    loc.add_row({key.app, key.policy, std::to_string(out.steals_local),
                 std::to_string(out.steals_remote),
                 std::to_string(out.grain)});
  }
  loc.render(std::cout);
  std::cout << "\nExpected shape: on a multi-node topology, hierarchical\n"
               "shifts the raid mix toward steals-local and should match or\n"
               "beat last_victim; on one node the two are identical by\n"
               "construction.\n";
  return 0;
}
