// Worksharing-layer tests: splittable range tasks (spawn_range) under
// concurrent steals, and the first-arrival single_nowait gate.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

// ---------------------------------------------------------------------------
// Range tasks: no lost or duplicated iterations, any schedule.
// ---------------------------------------------------------------------------

struct RangeCase {
  unsigned threads;
  std::int64_t grain;
  rt::Tiedness tied;
};

class RangeSpawn : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeSpawn, CoversEveryIterationExactlyOnceUnderStealStress) {
  const RangeCase rc = GetParam();
  rt::SchedulerConfig cfg;
  cfg.num_threads = rc.threads;
  rt::Scheduler s(cfg);
  constexpr std::int64_t n = 20000;
  std::vector<std::atomic<std::uint32_t>> hits(n);
  rt::SingleGate gate(s.num_workers());
  for (int round = 0; round < 6; ++round) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    s.run_all([&](unsigned) {
      rt::single_nowait(gate, [&] {
        rt::spawn_range(rc.tied, 0, n, rc.grain, [&hits](std::int64_t i) {
          hits[static_cast<std::size_t>(i)].fetch_add(
              1, std::memory_order_relaxed);
        });
      });
      // The range and every split join at the region-end barrier.
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1u)
          << "iteration " << i << " round " << round;
    }
  }
  const auto t = s.stats().total;
  // Every descriptor (the ranges plus every split) executed exactly once.
  EXPECT_EQ(t.tasks_executed, t.tasks_deferred);
  EXPECT_EQ(t.range_tasks, 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RangeSpawn,
    ::testing::Values(RangeCase{1u, 1, rt::Tiedness::tied},
                      RangeCase{2u, 1, rt::Tiedness::tied},
                      RangeCase{4u, 3, rt::Tiedness::tied},
                      RangeCase{8u, 1, rt::Tiedness::untied},
                      RangeCase{8u, 16, rt::Tiedness::tied},
                      RangeCase{8u, 30000, rt::Tiedness::tied}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.threads) + "_g" +
             std::to_string(info.param.grain) + "_" +
             to_string(info.param.tied);
    });

TEST(RangeSpawn, SplitsFireWhenTheTeamIsHungry) {
  // Deterministic: with a team of two, the executing worker's deque is empty
  // at its first split check (the range was just popped), so at least one
  // half is split off for the thief.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  std::atomic<std::int64_t> sum{0};
  rt::SingleGate gate(s.num_workers());
  s.run_all([&](unsigned) {
    rt::single_nowait(gate, [&] {
      rt::spawn_range(0, 1000, 1, [&sum](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
  EXPECT_GE(s.stats().total.range_splits, 1u);
}

TEST(RangeSpawn, SingleWorkerNeverSplits) {
  // A team of one has nobody to feed: the whole range must run out of the
  // one descriptor.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 1});
  std::int64_t sum = 0;
  s.run_single([&] {
    rt::spawn_range(0, 5000, 1, [&sum](std::int64_t i) { sum += i; });
  });
  EXPECT_EQ(sum, 4999L * 5000 / 2);
  const auto t = s.stats().total;
  EXPECT_EQ(t.range_splits, 0u);
  EXPECT_EQ(t.tasks_deferred, 1u);
}

TEST(RangeSpawn, TaskwaitJoinsTheRangeAndEverySplit) {
  // Splits are published as SIBLINGS of the range (same parent), so the
  // spawner's taskwait covers the whole iteration space, not just the part
  // the original descriptor retained.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 8});
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> done{0};
    std::int64_t observed = -1;
    s.run_single([&] {
      rt::spawn_range(0, 4000, 1, [&done](std::int64_t) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
      rt::taskwait();
      observed = done.load(std::memory_order_relaxed);
    });
    ASSERT_EQ(observed, 4000) << "round " << round
                              << ": taskwait returned before a split finished";
  }
}

TEST(RangeSpawn, OutsideRegionRunsSerially) {
  std::int64_t sum = 0;
  rt::spawn_range(5, 10, 2, [&sum](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(RangeSpawn, EmptyAndNegativeRangesAreNoOps) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  int runs = 0;
  s.run_single([&] {
    rt::spawn_range(3, 3, 1, [&runs](std::int64_t) { ++runs; });
    rt::spawn_range(7, 2, 1, [&runs](std::int64_t) { ++runs; });
    rt::taskwait();
  });
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(s.stats().total.tasks_created, 0u);
}

TEST(RangeSpawn, BodiesMaySpawnOrdinaryTasks) {
  // Range iterations are full task bodies: nested spawns inside them must
  // join at the region end like any other task.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  std::atomic<int> inner{0};
  s.run_single([&] {
    rt::spawn_range(0, 200, 4, [&inner](std::int64_t) {
      rt::spawn([&inner] { inner.fetch_add(1, std::memory_order_relaxed); });
    });
  });
  EXPECT_EQ(inner.load(), 200);
}

// ---------------------------------------------------------------------------
// Adaptive grain (GrainController): convergence in both directions.
// ---------------------------------------------------------------------------

TEST(RangeSpawn, HintPlacementPreservesCoverageAndKnobOffNeverMails) {
  // Range split publication now flows through the scheduler's placement
  // layer (publish_range_half): on a multi-node hierarchical box a half
  // may land in a remote node's mailbox instead of the splitter's deque.
  // Whatever the landing spots, iteration coverage must stay exactly-once,
  // and with the knob off the redirect counter must stay at hard zero.
  for (const bool placement : {true, false}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 8;
    cfg.steal_policy = rt::StealPolicyKind::hierarchical;
    cfg.synthetic_topology = "2x4";
    cfg.use_hint_placement = placement;
    rt::Scheduler s(cfg);
    constexpr std::int64_t n = 50000;
    std::vector<std::atomic<std::uint8_t>> hits(n);
    for (int round = 0; round < 3; ++round) {
      for (auto& h : hits) h.store(0, std::memory_order_relaxed);
      s.run_single([&] {
        rt::spawn_range(rt::Tiedness::untied, 0, n, 1,
                        [&hits](std::int64_t i) {
                          hits[static_cast<std::size_t>(i)].fetch_add(
                              1, std::memory_order_relaxed);
                        });
        rt::taskwait();
      });
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1u)
            << "placement=" << placement << " round=" << round << " i=" << i;
      }
    }
    if (!placement) {
      EXPECT_EQ(s.stats().total.range_halves_redirected, 0u);
    }
  }
}

TEST(AdaptiveGrain, GrowsUnderDenseSplits) {
  // grain = 1 on a trivial-body range fragments it into descriptors that
  // average far fewer than GrainController::grow_floor iterations (the
  // owner's own split chain alone guarantees splits every region): within a
  // few retune windows the controller must raise the grain.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  ASSERT_EQ(s.grain_controller().grain(), 1);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200 && s.grain_controller().grain() == 1;
       ++round) {
    sum.store(0, std::memory_order_relaxed);
    s.run_single([&sum] {
      rt::spawn_range(0, 512, 1, [&sum](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    ASSERT_EQ(sum.load(), 511L * 512 / 2) << "round " << round;
  }
  EXPECT_GT(s.grain_controller().grain(), 1);
  EXPECT_GT(s.grain_controller().retunes(), 0u);
}

TEST(AdaptiveGrain, ShrinksUnderStarvation) {
  // A grain coarser than the whole range cannot split (hi - lo never
  // exceeds it): the team starves behind one serial executor while the
  // descriptors stay far above starve_ceiling iterations — the controller
  // must walk the grain back down.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  const std::int64_t coarse = std::int64_t{1} << 15;
  s.grain_controller().seed(coarse);
  for (int round = 0; round < 40 && s.grain_controller().grain() >= coarse;
       ++round) {
    s.run_single([] {
      rt::spawn_range(0, 8192, 1, [](std::int64_t) {
        // Starvation is only counted while the range is live, so the
        // serial execution must last long enough (tens of ms) for the
        // three starving workers to report their empty find_work rounds
        // even on a single-cpu box.
        for (volatile int spin = 0; spin < 5000; ++spin) {
        }
      });
    });
  }
  EXPECT_LT(s.grain_controller().grain(), coarse);
}

TEST(AdaptiveGrain, CallerGrainStaysAFloorAndKnobOffIsVerbatim) {
  {
    // Adaptive ON: the controller can only coarsen beyond the caller's
    // grain, never refine below it — a range no larger than the caller's
    // grain must stay a single descriptor even with the estimate at 1.
    rt::SchedulerConfig cfg;
    cfg.num_threads = 4;
    cfg.use_adaptive_grain = true;
    rt::Scheduler s(cfg);
    ASSERT_EQ(s.grain_controller().grain(), 1);
    std::int64_t sum = 0;
    rt::SingleGate gate(s.num_workers());
    s.run_all([&](unsigned) {
      rt::single_nowait(gate, [&] {
        rt::spawn_range(0, 3000, 4000, [&sum](std::int64_t i) { sum += i; });
      });
    });
    EXPECT_EQ(sum, 2999L * 3000 / 2);
    EXPECT_EQ(s.stats().total.range_splits, 0u);
    EXPECT_EQ(s.stats().total.tasks_deferred, 1u);
  }
  {
    // Adaptive OFF: the runtime must not touch the caller's grain and the
    // controller must never learn (no retunes, estimate pinned at 1).
    rt::SchedulerConfig cfg;
    cfg.num_threads = 2;
    cfg.use_adaptive_grain = false;
    rt::Scheduler s(cfg);
    std::atomic<std::int64_t> hits{0};
    for (int round = 0; round < 10; ++round) {
      s.run_single([&hits] {
        rt::spawn_range(0, 2000, 1, [&hits](std::int64_t) {
          hits.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
    EXPECT_EQ(hits.load(), 10 * 2000);
    EXPECT_EQ(s.grain_controller().grain(), 1);
    EXPECT_EQ(s.grain_controller().retunes(), 0u);
  }
}

TEST(AdaptiveGrain, RecoversWhenGrainOutgrowsChunkGranularRanges) {
  // Ratchet regression: ranges with FEW, HEAVY iterations (Sort's merge
  // phases: ~200 chunk-merges per range) average far under grow_floor
  // iterations per descriptor, so growth can push the global grain past
  // the whole range size — after which no merge range can ever split. The
  // shrink rule must be reachable in exactly that state (hungry workers,
  // zero splits), whatever the iteration count; an absolute-iteration
  // shrink gate would leave the grain stuck and the phases serial forever.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  const std::int64_t stuck = 1024;  // far above the 200-iteration ranges
  s.grain_controller().seed(stuck);
  for (int round = 0; round < 60 && s.grain_controller().grain() >= stuck;
       ++round) {
    s.run_single([] {
      rt::spawn_range(0, 200, 1, [](std::int64_t) {
        for (volatile int spin = 0; spin < 40000; ++spin) {
        }
      });
    });
  }
  EXPECT_LT(s.grain_controller().grain(), stuck)
      << "grain ratcheted above chunk-granular ranges with no way back";
}

TEST(AdaptiveGrain, RetunedGrainResetsAtRegionStart) {
  // Cross-region bleed regression (two-phase A/B): phase A retunes the
  // global estimate up on cheap dense ranges; phase B runs a SMALL range in
  // a fresh region. Without the region-start reset the phase-A estimate
  // exceeds phase B's whole range, no split is ever eligible, and phase B
  // serializes behind one worker — the poisoned-first-splits bug.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  std::atomic<std::int64_t> sink{0};
  // Phase A: many small back-to-back ranges (each popped onto an otherwise
  // dry deque, so the owner's own split chain keeps the windows dense);
  // the estimate reliably retunes to 4 within the first region.
  for (int round = 0; round < 400 && s.grain_controller().grain() <= 2;
       ++round) {
    s.run_single([&sink] {
      for (int k = 0; k < 64; ++k) {
        rt::spawn_range(0, 512, 1, [&sink](std::int64_t i) {
          sink.fetch_add(i, std::memory_order_relaxed);
        });
        rt::taskwait();
      }
    });
  }
  ASSERT_GT(s.grain_controller().grain(), 2)
      << "phase A never retuned the estimate above the phase-B range";
  // Phase B: a 3-iteration range. With the reset the effective grain is
  // back at the caller floor (1), so the executor's very first split check
  // fires (3 > 1, its queue is empty). Poisoned, 3 <= grain means the
  // split condition hi - lo > grain can never hold and phase B serializes.
  s.reset_stats();
  s.run_single([] {
    rt::spawn_range(0, 3, 1, [](std::int64_t) {
      for (volatile int spin = 0; spin < 20000; ++spin) {
      }
    });
  });
  EXPECT_GT(s.stats().total.range_splits, 0u)
      << "phase A's converged grain bled into phase B's first splits";
  EXPECT_LE(s.grain_controller().grain(), 2)
      << "the estimate should have restarted from its base this region";
}

TEST(AdaptiveGrain, SeededBaseSurvivesTheRegionStartReset) {
  // seed() sets the BASE the estimate resets to — a warm start is meant to
  // survive regions, only retuned state is discarded.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 1;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  s.grain_controller().seed(64);
  std::int64_t sum = 0;
  s.run_single([&sum] {
    rt::spawn_range(0, 100, 1, [&sum](std::int64_t i) { sum += i; });
  });
  EXPECT_EQ(sum, 99L * 100 / 2);
  EXPECT_EQ(s.grain_controller().grain(), 64);
}

TEST(AdaptiveGrain, PerSiteGrainConvergesIndependently) {
  // Two sites mixed in the SAME regions: a cheap dense-splitting range
  // (the shape that grows an estimate) and a chunk-granular range whose
  // caller grain equals its size (it can never split, so its estimate must
  // stay at the floor). One shared estimate cannot serve both; the
  // per-site table must converge them to different values.
  constexpr rt::RangeSite kCheapSite{"test/cheap"};
  constexpr rt::RangeSite kChunkySite{"test/chunky"};
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.use_adaptive_grain = true;
  ASSERT_TRUE(cfg.use_site_grain);
  rt::Scheduler s(cfg);
  std::atomic<std::int64_t> sink{0};
  // Spawn order matters for split density: the chunky range is newest, so
  // the owner pops it first (it cannot split) and then runs the cheap
  // range on a dry deque, where every split check is eligible — both
  // ranges are in flight between the same spawn and taskwait.
  for (int round = 0;
       round < 400 && s.grain_controller_for(kCheapSite).grain() == 1;
       ++round) {
    s.run_single([&sink] {
      for (int k = 0; k < 8; ++k) {
        rt::spawn_range(kCheapSite, rt::Tiedness::tied, 0, 512, 1,
                        [&sink](std::int64_t i) {
                          sink.fetch_add(i, std::memory_order_relaxed);
                        });
        rt::spawn_range(kChunkySite, rt::Tiedness::tied, 0, 32, 32,
                        [&sink](std::int64_t i) {
                          sink.fetch_add(i, std::memory_order_relaxed);
                        });
        rt::taskwait();
      }
    });
  }
  EXPECT_GT(s.grain_controller_for(kCheapSite).grain(), 1)
      << "the dense-splitting site never grew its own estimate";
  EXPECT_EQ(s.grain_controller_for(kChunkySite).grain(), 1)
      << "the chunk-granular site's estimate was dragged by the cheap site";
  EXPECT_EQ(s.grain_controller().grain(), 1)
      << "tagged sites must not leak stats into the global controller";
  // Observability: both sites (and the global estimate) show up in the
  // table description benches record.
  const std::string desc = s.grain_table().describe();
  EXPECT_NE(desc.find("global="), std::string::npos);
  EXPECT_NE(desc.find("test/cheap="), std::string::npos);
  EXPECT_NE(desc.find("test/chunky="), std::string::npos);
}

TEST(AdaptiveGrain, SiteGrainKnobOffSharesTheGlobalController) {
  constexpr rt::RangeSite kSite{"test/shared"};
  rt::SchedulerConfig cfg;
  cfg.num_threads = 1;
  cfg.use_adaptive_grain = true;
  cfg.use_site_grain = false;
  rt::Scheduler s(cfg);
  EXPECT_EQ(&s.grain_controller_for(kSite), &s.grain_controller());
}

TEST(AdaptiveGrain, ThrowingRangeBodyStillReportsCompletion) {
  // A range body that throws must not leak the controller's live-range
  // count: a wedged count keeps the starvation signal armed forever and
  // re-opens the spurious-shrink hole the live gating exists to close.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  EXPECT_THROW(
      {
        s.run_single([] {
          rt::spawn_range(0, 100, 1, [](std::int64_t i) {
            if (i == 3) throw std::runtime_error("range boom");
          });
        });
      },
      std::runtime_error);
  EXPECT_EQ(s.grain_controller().live_ranges(), 0)
      << "a throwing range body leaked its completion report";
  // And the scheduler (controller included) keeps working afterwards.
  std::atomic<std::int64_t> hits{0};
  s.run_single([&hits] {
    rt::spawn_range(0, 500, 1, [&hits](std::int64_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(hits.load(), 500);
  EXPECT_EQ(s.grain_controller().live_ranges(), 0);
}

// ---------------------------------------------------------------------------
// single_nowait: first-arrival claim semantics.
// ---------------------------------------------------------------------------

class SingleGateThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(SingleGateThreads, EachInstanceRunsExactlyOnce) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  constexpr int instances = 50;
  rt::SingleGate gate(s.num_workers());
  std::vector<std::atomic<int>> runs(instances);
  s.run_all([&](unsigned) {
    for (int i = 0; i < instances; ++i) {
      rt::single_nowait(gate, [&runs, i] { runs[i].fetch_add(1); });
    }
    rt::barrier();
  });
  for (int i = 0; i < instances; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "instance " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SingleGateThreads,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(SingleGate, FirstArriverClaimsEvenWhenWorkerZeroIsLate) {
  // Regression: single_nowait used to bind statically to worker 0, so a late
  // worker 0 stalled task generation behind it — and this very scenario,
  // where worker 0 cannot arrive until the single has run, deadlocked.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  rt::SingleGate gate(s.num_workers());
  std::atomic<bool> claimed{false};
  std::atomic<unsigned> claimer{~0u};
  s.run_all([&](unsigned id) {
    if (id == 0) {
      while (!claimed.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    rt::single_nowait(gate, [&] {
      claimer.store(rt::worker_id(), std::memory_order_relaxed);
      claimed.store(true, std::memory_order_release);
    });
    rt::barrier();
  });
  EXPECT_TRUE(claimed.load());
  EXPECT_EQ(claimer.load(), 1u);  // deterministically the non-blocked worker
}

TEST(SingleGate, InterleavesWithRangePhases) {
  // The SparseLU `for` pattern: a single elects a generator per phase, the
  // generator publishes a range, a barrier closes the phase. Values written
  // in phase k must be visible to every worker in phase k+1.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  constexpr int phases = 25;
  constexpr std::int64_t width = 64;
  std::vector<std::int64_t> data(width, 0);
  std::atomic<bool> violation{false};
  rt::SingleGate gate(s.num_workers());
  s.run_all([&](unsigned) {
    for (int ph = 0; ph < phases; ++ph) {
      rt::single_nowait(gate, [&, ph] {
        rt::spawn_range(0, width, 1, [&data, &violation, ph](std::int64_t i) {
          if (data[static_cast<std::size_t>(i)] != ph) violation.store(true);
          ++data[static_cast<std::size_t>(i)];
        });
      });
      rt::barrier();
    }
  });
  EXPECT_FALSE(violation.load());
  for (const auto v : data) EXPECT_EQ(v, phases);
}

}  // namespace
