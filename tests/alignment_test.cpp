// Alignment kernel tests: DP scoring properties, pair bookkeeping,
// worksharing-generator parallel version.
#include <gtest/gtest.h>

#include "kernels/alignment/alignment.hpp"

namespace al = bots::alignment;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

al::Params tiny() {
  al::Params p;
  p.nseq = 8;
  p.len_min = 30;
  p.len_max = 60;
  return p;
}

TEST(Alignment, WeightMatrixIsSymmetricWithPositiveDiagonal) {
  const auto& w = al::weight_matrix();
  for (int i = 0; i < 20; ++i) {
    EXPECT_GT(w[i][i], 0);
    for (int j = 0; j < 20; ++j) {
      EXPECT_EQ(w[i][j], w[j][i]);
    }
  }
}

TEST(Alignment, SelfAlignmentScoresFullDiagonal) {
  const al::Params p = tiny();
  const auto seqs = al::make_input(p);
  const auto& w = al::weight_matrix();
  for (const auto& s : seqs) {
    int expect = 0;
    for (auto r : s) expect += w[r][r];
    EXPECT_EQ(al::pair_score(s, s, p), expect);
  }
}

TEST(Alignment, ScoreIsSymmetric) {
  const al::Params p = tiny();
  const auto seqs = al::make_input(p);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_EQ(al::pair_score(seqs[i], seqs[j], p),
                al::pair_score(seqs[j], seqs[i], p));
    }
  }
}

TEST(Alignment, GapPenaltyForLengthMismatch) {
  al::Params p = tiny();
  // One residue vs k identical residues: best = match + gap of (k-1).
  const al::Sequence a{0};
  const al::Sequence b{0, 0, 0, 0};
  const auto& w = al::weight_matrix();
  const int expect = w[0][0] - (p.gap_open + 2 * p.gap_extend);
  EXPECT_EQ(al::pair_score(a, b, p), expect);
}

TEST(Alignment, AffineGapPrefersOneLongGap) {
  // Affine penalties make one gap of length 4 cheaper than two of length 2:
  // score(one long gap) = -(open + 3*ext) > -(2*open + 2*ext) for open > ext.
  al::Params p = tiny();
  EXPECT_GT(-(p.gap_open + 3 * p.gap_extend),
            -(2 * p.gap_open + 2 * p.gap_extend));
}

TEST(Alignment, EmptySequenceCostsAllGaps) {
  al::Params p = tiny();
  const al::Sequence a{};
  const al::Sequence b{1, 2, 3};
  const int expect = -(p.gap_open + 2 * p.gap_extend);
  EXPECT_EQ(al::pair_score(a, b, p), expect);
}

TEST(Alignment, SerialScoresAllPairs) {
  const al::Params p = tiny();
  const auto seqs = al::make_input(p);
  const auto scores = al::run_serial(p, seqs);
  EXPECT_EQ(scores.size(), 28u);  // C(8,2)
  EXPECT_TRUE(al::verify(p, seqs, scores));
}

class AlignmentThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlignmentThreads, ParallelMatchesSerialExactly) {
  al::Params p = tiny();
  p.nseq = 20;
  const auto seqs = al::make_input(p);
  const auto serial = al::run_serial(p, seqs);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = GetParam()});
  for (auto tied : {rt::Tiedness::tied, rt::Tiedness::untied}) {
    const auto parallel = al::run_parallel(p, seqs, sched, {tied});
    EXPECT_EQ(parallel, serial);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, AlignmentThreads,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Alignment, VerifyCatchesCorruptedScore) {
  const al::Params p = tiny();
  const auto seqs = al::make_input(p);
  auto scores = al::run_serial(p, seqs);
  scores[3] += 1;
  EXPECT_FALSE(al::verify(p, seqs, scores));
}

TEST(Alignment, TasksAreCreatedPerPair) {
  // The paper's per-pair generation scheme, kept behind use_range_tasks=false
  // as the ablation baseline.
  al::Params p = tiny();
  p.nseq = 12;
  const auto seqs = al::make_input(p);
  rt::SchedulerConfig cfg{.num_threads = 4};
  cfg.use_range_tasks = false;
  rt::Scheduler sched(cfg);
  (void)al::run_parallel(p, seqs, sched, {rt::Tiedness::untied});
  EXPECT_EQ(sched.stats().total.tasks_created, 66u);  // C(12,2)
  EXPECT_EQ(sched.stats().total.taskwaits, 0u);  // Table II: 0 taskwaits
}

TEST(Alignment, RangeTasksCreateTenfoldFewerDescriptorsSameOutput) {
  // PR-2 acceptance: the range-task generator must create >= 10x fewer
  // descriptors than per-pair generation (tasks_created stats) while the
  // verified output is unchanged.
  const al::Params p = al::params_for(core::InputClass::test);  // C(16,2)=120
  const auto seqs = al::make_input(p);

  rt::SchedulerConfig legacy_cfg{.num_threads = 4};
  legacy_cfg.use_range_tasks = false;
  rt::Scheduler legacy(legacy_cfg);
  const auto legacy_scores =
      al::run_parallel(p, seqs, legacy, {rt::Tiedness::tied});
  const auto legacy_created = legacy.stats().total.tasks_created;
  EXPECT_TRUE(al::verify(p, seqs, legacy_scores));

  rt::Scheduler ranged(rt::SchedulerConfig{.num_threads = 4});
  ASSERT_TRUE(ranged.config().use_range_tasks);  // the default
  const auto ranged_scores =
      al::run_parallel(p, seqs, ranged, {rt::Tiedness::tied});
  const auto t = ranged.stats().total;
  EXPECT_TRUE(al::verify(p, seqs, ranged_scores));
  EXPECT_EQ(ranged_scores, legacy_scores);

  EXPECT_GT(t.range_tasks, 0u);
  EXPECT_LE(t.tasks_created * 10, legacy_created)
      << "range generator lost its descriptor advantage";
}

TEST(Alignment, AdaptiveGrainStabilizesAtOrAboveSeedGrain) {
  // Tentpole acceptance: on the Alignment range workload the adaptive
  // grain controller must settle at a stable grain >= the hardcoded seed
  // value (1) while every region still verifies against the serial scores.
  // With 16 iterations per region, a retune window (1024 iterations) closes
  // every 64 regions, so the tail of an 80-region run sits strictly between
  // retunes: the estimate observed there must be constant.
  const al::Params p = al::params_for(core::InputClass::test);
  const auto seqs = al::make_input(p);
  const auto ref = al::run_serial(p, seqs);
  rt::SchedulerConfig cfg{.num_threads = 4};
  cfg.use_range_tasks = true;
  cfg.use_adaptive_grain = true;
  rt::Scheduler sched(cfg);
  std::int64_t tail_grain = -1;
  for (int round = 0; round < 80; ++round) {
    const auto scores = al::run_parallel(p, seqs, sched, {rt::Tiedness::tied});
    ASSERT_EQ(scores, ref) << "round " << round;
    const std::int64_t g = sched.grain_controller().grain();
    ASSERT_GE(g, 1) << "round " << round;
    if (round >= 70) {
      if (tail_grain < 0) tail_grain = g;
      ASSERT_EQ(g, tail_grain) << "grain still moving at round " << round;
    }
  }
  EXPECT_GE(tail_grain, 1);
}

TEST(Alignment, ProfileRowShape) {
  const auto row = al::profile_row(core::InputClass::test);
  EXPECT_EQ(row.potential_tasks, 120u);  // C(16,2)
  EXPECT_DOUBLE_EQ(row.taskwaits_per_task, 0.0);
  EXPECT_DOUBLE_EQ(row.captured_env_bytes_per_task, 16.0);
  // The DP is overwhelmingly private work; Table II reports 0.03%
  // non-private writes and ~7K ops per non-private write.
  EXPECT_LT(row.pct_writes_shared, 1.0);
  EXPECT_GT(row.arith_per_shared_write, 1000.0);
}

TEST(Alignment, AppInfoMetadata) {
  const auto app = al::make_app_info();
  EXPECT_EQ(app.origin, "AKM");
  EXPECT_EQ(app.tasks_inside, "for");
  EXPECT_FALSE(app.nested_tasks);
  EXPECT_EQ(app.structure, "Iterative");
}

}  // namespace
