// Sort kernel tests: cilksort correctness and property sweeps over array
// shapes, thresholds and tiedness.
#include <algorithm>
#include <gtest/gtest.h>

#include "kernels/sort/sort.hpp"

namespace srt = bots::sort;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

srt::Params sized(std::size_t n) {
  srt::Params p;
  p.n = n;
  return p;
}

TEST(Sort, SerialSortsRandomPermutation) {
  const srt::Params p = sized(100'000);
  auto v = srt::make_input(p);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
  srt::run_serial(p, v);
  EXPECT_TRUE(srt::verify(p, v));
}

TEST(Sort, InputIsAPermutation) {
  const srt::Params p = sized(10'000);
  auto v = srt::make_input(p);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], static_cast<srt::Elm>(i));
  }
}

TEST(Sort, InputIsDeterministic) {
  const srt::Params p = sized(4096);
  EXPECT_EQ(srt::make_input(p), srt::make_input(p));
}

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, ParallelMatchesVerifier) {
  const srt::Params p = sized(GetParam());
  auto v = srt::make_input(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
  EXPECT_TRUE(srt::verify(p, v));
}

// Sizes straddle every threshold: insertion(20), quicksort(2048),
// merge(2048), plus odd and power-of-two sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(std::size_t{1}, 2, 19, 20, 21, 100,
                                           2047, 2048, 2049, 4096, 65'536,
                                           100'001, 1u << 20),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class SortThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(SortThreads, TiedAndUntiedBothSort) {
  const srt::Params p = sized(1u << 18);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = GetParam()});
  for (auto tied : {rt::Tiedness::tied, rt::Tiedness::untied}) {
    auto v = srt::make_input(p);
    srt::run_parallel(p, v, sched, {tied});
    EXPECT_TRUE(srt::verify(p, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SortThreads, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Sort, TinyThresholdsExerciseDeepMergeRecursion) {
  srt::Params p = sized(50'000);
  p.quick_threshold = 64;
  p.merge_threshold = 64;
  auto v = srt::make_input(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
  EXPECT_TRUE(srt::verify(p, v));
  // Deep merge recursion must actually have spawned merge tasks.
  EXPECT_GT(sched.stats().total.tasks_created, 100u);
}

TEST(Sort, AlreadySortedAndReversedInputs) {
  srt::Params p = sized(100'000);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  {
    std::vector<srt::Elm> v(p.n);
    for (std::size_t i = 0; i < p.n; ++i) v[i] = static_cast<srt::Elm>(i);
    srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
    EXPECT_TRUE(srt::verify(p, v));
  }
  {
    std::vector<srt::Elm> v(p.n);
    for (std::size_t i = 0; i < p.n; ++i) {
      v[i] = static_cast<srt::Elm>(p.n - 1 - i);
    }
    srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
    EXPECT_TRUE(srt::verify(p, v));
  }
}

TEST(Sort, DuplicateHeavyInputSortsCorrectly) {
  // verify() requires a permutation, so check duplicates via is_sorted plus
  // an element count.
  srt::Params p = sized(65'536);
  std::vector<srt::Elm> v(p.n);
  for (std::size_t i = 0; i < p.n; ++i) v[i] = static_cast<srt::Elm>(i % 7);
  std::vector<std::size_t> before(7, 0);
  for (auto e : v) ++before[e];
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  std::vector<std::size_t> after(7, 0);
  for (auto e : v) ++after[e];
  EXPECT_EQ(before, after);
}

TEST(Sort, RangeTasksCutMergeDescriptorsAtIdenticalOutput) {
  // Merge phases as ONE splittable range over merge-threshold chunks of the
  // destination (co-ranking) instead of the binsplit divide-and-conquer
  // task recursion: with thresholds small enough that merges dominate, the
  // descriptor count must drop by >= 2x at identical verified output.
  srt::Params p = sized(200'000);
  p.quick_threshold = 1024;
  p.merge_threshold = 1024;
  auto run_with = [&](bool ranges, std::uint64_t& deferred) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 2;
    cfg.cutoff = rt::CutoffPolicy::none;  // every construct materializes
    cfg.use_range_tasks = ranges;
    rt::Scheduler sched(cfg);
    auto v = srt::make_input(p);
    srt::run_parallel(p, v, sched, {rt::Tiedness::untied});
    deferred = sched.stats().total.tasks_deferred;
    return v;
  };
  std::uint64_t legacy_descs = 0;
  std::uint64_t range_descs = 0;
  const auto legacy = run_with(false, legacy_descs);
  const auto ranged = run_with(true, range_descs);
  EXPECT_TRUE(srt::verify(p, legacy));
  EXPECT_EQ(legacy, ranged);  // same permutation input, identical output
  EXPECT_GE(legacy_descs, 2 * range_descs)
      << "range merges did not reduce descriptor traffic (legacy "
      << legacy_descs << ", ranges " << range_descs << ")";
}

TEST(Sort, RangeMergeHandlesDuplicateHeavyInput) {
  // Co-ranking must terminate and cover every output slot when the inputs
  // are saturated with equal keys (the binary search's tie-breaking is the
  // delicate part).
  srt::Params p = sized(65'536);
  p.quick_threshold = 512;
  p.merge_threshold = 512;
  std::vector<srt::Elm> v(p.n);
  std::vector<std::size_t> before(5, 0);
  for (std::size_t i = 0; i < p.n; ++i) {
    v[i] = static_cast<srt::Elm>(i % 5);
    ++before[i % 5];
  }
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.use_range_tasks = true;
  rt::Scheduler sched(cfg);
  srt::run_parallel(p, v, sched, {rt::Tiedness::tied});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  std::vector<std::size_t> after(5, 0);
  for (auto e : v) ++after[static_cast<std::size_t>(e)];
  EXPECT_EQ(after, before);
}

TEST(Sort, ProfileRowTaskSitesMatchStructure) {
  const auto row = srt::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  EXPECT_GT(row.arith_ops_per_task, 0.0);
  // Merge-destination writes cross task boundaries (Table II: 25.13%
  // non-private for Sort); quicksort's in-place traffic stays private.
  EXPECT_GT(row.pct_writes_shared, 5.0);
  EXPECT_LT(row.pct_writes_shared, 95.0);
}

TEST(Sort, AppInfoMetadata) {
  const auto app = srt::make_app_info();
  EXPECT_EQ(app.origin, "Cilk");
  EXPECT_EQ(app.task_directives, 9);
  EXPECT_EQ(app.structure, "At leafs");
  EXPECT_EQ(app.app_cutoff, "none");
}

}  // namespace
