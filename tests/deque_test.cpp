// Unit and stress tests for the Chase-Lev work-stealing deque.
#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/deque.hpp"
#include "runtime/task.hpp"

namespace rt = bots::rt;

namespace {

/// Dummy tasks: the deque only traffics in pointers.
struct TaskArena {
  explicit TaskArena(std::size_t n) : tasks(new rt::Task[n]), size(n) {}
  rt::Task* at(std::size_t i) { return &tasks[i]; }
  std::unique_ptr<rt::Task[]> tasks;
  std::size_t size;
};

TEST(Deque, PopFromEmptyIsNull) {
  rt::WorkStealingDeque d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty_estimate());
}

TEST(Deque, PopIsLifo) {
  rt::WorkStealingDeque d;
  TaskArena a(3);
  d.push(a.at(0));
  d.push(a.at(1));
  d.push(a.at(2));
  EXPECT_EQ(d.size_estimate(), 3);
  EXPECT_EQ(d.pop(), a.at(2));
  EXPECT_EQ(d.pop(), a.at(1));
  EXPECT_EQ(d.pop(), a.at(0));
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, StealIsFifo) {
  rt::WorkStealingDeque d;
  TaskArena a(3);
  d.push(a.at(0));
  d.push(a.at(1));
  d.push(a.at(2));
  EXPECT_EQ(d.steal(), a.at(0));
  EXPECT_EQ(d.steal(), a.at(1));
  EXPECT_EQ(d.steal(), a.at(2));
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, MixedPopAndStealDisjoint) {
  rt::WorkStealingDeque d;
  TaskArena a(4);
  for (std::size_t i = 0; i < 4; ++i) d.push(a.at(i));
  EXPECT_EQ(d.steal(), a.at(0));
  EXPECT_EQ(d.pop(), a.at(3));
  EXPECT_EQ(d.steal(), a.at(1));
  EXPECT_EQ(d.pop(), a.at(2));
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, GrowsBeyondInitialCapacity) {
  rt::WorkStealingDeque d(16);
  constexpr std::size_t n = 10'000;
  TaskArena a(n);
  for (std::size_t i = 0; i < n; ++i) d.push(a.at(i));
  EXPECT_EQ(d.size_estimate(), static_cast<std::int64_t>(n));
  for (std::size_t i = n; i-- > 0;) {
    EXPECT_EQ(d.pop(), a.at(i));
  }
}

TEST(Deque, InterleavedPushPopAcrossGrowth) {
  rt::WorkStealingDeque d(16);
  TaskArena a(100'000);
  std::size_t next = 0;
  std::vector<rt::Task*> expect;
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 73; ++k) {
      d.push(a.at(next));
      expect.push_back(a.at(next));
      ++next;
    }
    for (int k = 0; k < 31; ++k) {
      rt::Task* t = d.pop();
      ASSERT_EQ(t, expect.back());
      expect.pop_back();
    }
  }
  while (!expect.empty()) {
    ASSERT_EQ(d.pop(), expect.back());
    expect.pop_back();
  }
}

/// Concurrency stress: one owner pushes/pops, several thieves steal; every
/// task must be claimed exactly once overall.
TEST(Deque, ConcurrentStealClaimsEachTaskOnce) {
  constexpr std::size_t total = 200'000;
  constexpr int n_thieves = 6;
  rt::WorkStealingDeque d(64);
  TaskArena a(total);
  std::vector<std::atomic<int>> claimed(total);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> stolen{0};
  auto claim = [&](rt::Task* t) {
    const std::size_t idx = static_cast<std::size_t>(t - a.at(0));
    claimed[idx].fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(n_thieves);
  for (int i = 0; i < n_thieves; ++i) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (rt::Task* t = d.steal()) {
          claim(t);
          stolen.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Final drain.
      while (rt::Task* t = d.steal()) {
        claim(t);
        stolen.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::size_t popped = 0;
  for (std::size_t i = 0; i < total; ++i) {
    d.push(a.at(i));
    if (i % 3 == 0) {
      if (rt::Task* t = d.pop()) {
        claim(t);
        ++popped;
      }
    }
  }
  while (rt::Task* t = d.pop()) {
    claim(t);
    ++popped;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::size_t claimed_total = 0;
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_LE(claimed[i].load(), 1) << "task " << i << " claimed twice";
    claimed_total += static_cast<std::size_t>(claimed[i].load());
  }
  EXPECT_EQ(claimed_total, total);
  EXPECT_EQ(popped + stolen.load(), total);
}

// ---------------------------------------------------------------------------
// steal_batch.
// ---------------------------------------------------------------------------

TEST(Deque, StealBatchFromEmptyIsZero) {
  rt::WorkStealingDeque d;
  rt::Task* out[8];
  EXPECT_EQ(d.steal_batch(out, 8), 0u);
}

TEST(Deque, StealBatchTakesHalfOldestFirst) {
  rt::WorkStealingDeque d;
  TaskArena a(8);
  for (std::size_t i = 0; i < 8; ++i) d.push(a.at(i));
  rt::Task* out[16];
  // Asks for more than available: bounded by half of the observed 8.
  const std::size_t got = d.steal_batch(out, 16);
  ASSERT_EQ(got, 4u);
  for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], a.at(i));
  // The owner still holds the newer half.
  EXPECT_EQ(d.size_estimate(), 4);
  EXPECT_EQ(d.pop(), a.at(7));
  EXPECT_EQ(d.steal(), a.at(4));
}

TEST(Deque, StealBatchRespectsMaxN) {
  rt::WorkStealingDeque d;
  TaskArena a(100);
  for (std::size_t i = 0; i < 100; ++i) d.push(a.at(i));
  rt::Task* out[3];
  const std::size_t got = d.steal_batch(out, 3);
  ASSERT_EQ(got, 3u);
  EXPECT_EQ(out[0], a.at(0));
  EXPECT_EQ(out[2], a.at(2));
  EXPECT_EQ(d.size_estimate(), 97);
}

TEST(Deque, StealBatchTakesTheLastElement) {
  // Half rounds up, so a 1-element deque is still stealable.
  rt::WorkStealingDeque d;
  TaskArena a(1);
  d.push(a.at(0));
  rt::Task* out[4];
  ASSERT_EQ(d.steal_batch(out, 4), 1u);
  EXPECT_EQ(out[0], a.at(0));
  EXPECT_EQ(d.pop(), nullptr);
}

/// Concurrency stress mixing pop, steal and steal_batch: every task must be
/// claimed exactly once — no loss, no duplication — whatever the interleave.
TEST(Deque, ConcurrentStealBatchClaimsEachTaskOnce) {
  constexpr std::size_t total = 150'000;
  constexpr int n_thieves = 6;
  rt::WorkStealingDeque d(64);
  TaskArena a(total);
  std::vector<std::atomic<int>> claimed(total);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> stolen{0};
  auto claim = [&](rt::Task* t) {
    const std::size_t idx = static_cast<std::size_t>(t - a.at(0));
    claimed[idx].fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(n_thieves);
  for (int i = 0; i < n_thieves; ++i) {
    thieves.emplace_back([&, i] {
      rt::Task* batch[16];
      auto raid = [&] {
        std::size_t n = 0;
        if (i % 2 == 0) {
          n = d.steal_batch(batch, 16);
        } else if (rt::Task* t = d.steal()) {
          batch[0] = t;
          n = 1;
        }
        for (std::size_t k = 0; k < n; ++k) claim(batch[k]);
        stolen.fetch_add(n, std::memory_order_relaxed);
      };
      while (!done.load(std::memory_order_acquire)) raid();
      for (int k = 0; k < 1000; ++k) raid();  // final drain
    });
  }

  std::size_t popped = 0;
  for (std::size_t i = 0; i < total; ++i) {
    d.push(a.at(i));
    if (i % 3 == 0) {
      if (rt::Task* t = d.pop()) {
        claim(t);
        ++popped;
      }
    }
  }
  while (rt::Task* t = d.pop()) {
    claim(t);
    ++popped;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  while (rt::Task* t = d.pop()) {  // whatever the thieves left behind
    claim(t);
    ++popped;
  }

  std::size_t claimed_total = 0;
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_LE(claimed[i].load(), 1) << "task " << i << " claimed twice";
    claimed_total += static_cast<std::size_t>(claimed[i].load());
  }
  EXPECT_EQ(claimed_total, total);
  EXPECT_EQ(popped + stolen.load(), total);
}

// ---------------------------------------------------------------------------
// TaskPool.
// ---------------------------------------------------------------------------

TEST(TaskPool, FreshThenReuse) {
  rt::TaskPool pool;
  bool reused = true;
  rt::Task* t1 = pool.allocate(reused);
  EXPECT_FALSE(reused);
  pool.recycle(t1);
  rt::Task* t2 = pool.allocate(reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(t1, t2);  // freelist returns the recycled descriptor
}

TEST(TaskPool, ChunksProvideManyDescriptors) {
  rt::TaskPool pool;
  std::vector<rt::Task*> all;
  bool reused = false;
  for (int i = 0; i < 1000; ++i) all.push_back(pool.allocate(reused));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  for (rt::Task* t : all) pool.recycle(t);
}

TEST(TaskPool, RecycledTaskIsReset) {
  // The recycle contract: the fused refs/children word is re-armed and the
  // environment cleared (destroy_env on the fresh descriptor is a no-op);
  // everything else is overwritten by init_env/set_links on the next spawn.
  rt::TaskPool pool;
  bool reused = false;
  rt::Task* t = pool.allocate(reused);
  t->init_env([] {});
  t->set_links(nullptr, 7, rt::Tiedness::untied, rt::TaskStorage::pooled);
  t->add_child_ref();
  t->child_completed();
  EXPECT_FALSE(t->release_ref());  // the child's reference is still held
  t->destroy_env();
  pool.recycle(t);
  rt::Task* t2 = pool.allocate(reused);
  ASSERT_EQ(t, t2);
  EXPECT_EQ(t2->unfinished_children(), 0u);
  t2->destroy_env();  // must be a no-op on a recycled descriptor
  EXPECT_TRUE(t2->release_ref());  // refs re-armed to exactly one
}

// ---------------------------------------------------------------------------
// Task ancestry.
// ---------------------------------------------------------------------------

TEST(Task, DescendantChainWalk) {
  rt::Task root;
  root.set_links(nullptr, 0, rt::Tiedness::tied, rt::TaskStorage::stack_frame);
  rt::Task child;
  child.set_links(&root, 1, rt::Tiedness::tied, rt::TaskStorage::stack_frame);
  rt::Task grand;
  grand.set_links(&child, 2, rt::Tiedness::tied, rt::TaskStorage::stack_frame);
  rt::Task other;
  other.set_links(&root, 1, rt::Tiedness::tied, rt::TaskStorage::stack_frame);

  EXPECT_TRUE(grand.is_descendant_of(child));
  EXPECT_TRUE(grand.is_descendant_of(root));
  EXPECT_TRUE(child.is_descendant_of(root));
  EXPECT_FALSE(child.is_descendant_of(grand));
  EXPECT_FALSE(grand.is_descendant_of(other));
  EXPECT_TRUE(root.is_descendant_of(root));
}

TEST(Task, InlineVsHeapEnvironmentThreshold) {
  rt::Task t;
  int small_val = 3;
  t.init_env([small_val] { (void)small_val; });
  EXPECT_LE(t.env_bytes(), rt::Task::inline_env_capacity);
  t.destroy_env();

  t.reset_for_reuse();
  std::array<char, 512> big{};
  t.init_env([big] { (void)big; });
  EXPECT_GT(t.env_bytes(), rt::Task::inline_env_capacity);
  t.destroy_env();
}

}  // namespace
