// Tracing + pathology-detection tests (PR 10, trace.hpp / pathology.hpp):
//
//  * TraceRing mechanics: wraparound overwrites oldest, drain is
//    exactly-once, dropped accounting, wrap-proof per-event counters,
//  * event conservation against WorkerStats, per worker:
//    spawn events == tasks_deferred + tasks_inlined_fast,
//    steal-hit events == tasks_stolen, park == tsc_parked,
//    unpark == parked_claimed,
//  * the knob-off zero-cost baseline: RT_TRACE=0 allocates nothing and
//    leaves every Worker::ring null,
//  * one synthetic provocation per pathology detector — serialized creation
//    (spawn-from-root-only), depth-first starvation (max_depth cutoff
//    inlining everything), cross-node ping-pong (forced symmetric cross-node
//    mailing/stealing) — each asserting the detector FIRES,
//  * the same detectors staying QUIET on healthy default-config runs,
//  * the Chrome-trace exporter writing loadable JSON, and TaskServer
//    request slices (request_start == request_end).
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t spawn_fib(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = spawn_fib(n - 1); });
  rt::spawn([&b, n] { b = spawn_fib(n - 2); });
  rt::taskwait();
  return a + b;
}

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring mechanics.
// ---------------------------------------------------------------------------

TEST(TraceRing, DrainIsExactlyOnce) {
  rt::TraceRing ring(64);
  for (int i = 0; i < 10; ++i)
    ring.record(rt::TraceEvent::spawn, static_cast<std::uint64_t>(i));
  std::vector<rt::TraceRecord> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)].arg,
              static_cast<std::uint64_t>(i));
  // A second drain with nothing new yields nothing (exactly-once).
  out.clear();
  ring.drain(out);
  EXPECT_TRUE(out.empty());
  // New records after a drain surface exactly once too.
  ring.record(rt::TraceEvent::park, 99);
  ring.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 99u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  rt::TraceRing ring(16);  // capacity rounds to a power of two
  const std::uint64_t cap = ring.capacity();
  const std::uint64_t total = 3 * cap + 5;
  for (std::uint64_t i = 0; i < total; ++i)
    ring.record(rt::TraceEvent::spawn, i);
  std::vector<rt::TraceRecord> out;
  ring.drain(out);
  // The ring keeps exactly the newest `cap` records...
  ASSERT_EQ(out.size(), cap);
  for (std::uint64_t i = 0; i < cap; ++i)
    EXPECT_EQ(out[i].arg, total - cap + i);
  // ...counts everything overwritten as dropped...
  EXPECT_EQ(ring.dropped(), total - cap);
  // ...and the per-event counter is wrap-proof.
  EXPECT_EQ(ring.count(rt::TraceEvent::spawn), total);
}

TEST(TraceRing, WeightedCounts) {
  rt::TraceRing ring(16);
  ring.record(rt::TraceEvent::steal_hit, 7, 0, 7);  // one raid, seven tasks
  ring.record(rt::TraceEvent::steal_hit, 3, 0, 3);
  EXPECT_EQ(ring.count(rt::TraceEvent::steal_hit), 10u);
  std::vector<rt::TraceRecord> out;
  ring.drain(out);
  EXPECT_EQ(out.size(), 2u);  // weight inflates the counter, not the ring
}

// ---------------------------------------------------------------------------
// Conservation against WorkerStats, and the knob-off baseline.
// ---------------------------------------------------------------------------

TEST(TraceConservation, SpawnStealParkEventsMatchWorkerStats) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  cfg.trace_buf = 1 << 12;
  rt::Scheduler sched(cfg);
  std::uint64_t got = 0;
  sched.run_single([&] { got = spawn_fib(22); });
  std::atomic<std::uint64_t> range_sum{0};
  sched.run_single([&] {
    rt::spawn_range(0, 50000, 16, [&](std::int64_t i) {
      range_sum.fetch_add(static_cast<std::uint64_t>(i) & 1,
                          std::memory_order_relaxed);
    });
    rt::taskwait();
  });
  EXPECT_EQ(got, fib_ref(22));
  EXPECT_EQ(range_sum.load(), 25000u);

  const rt::TraceCollector* tc = sched.tracer();
  ASSERT_NE(tc, nullptr);
  const rt::StatsSnapshot snap = sched.stats();
  ASSERT_EQ(tc->num_workers(), snap.per_worker.size());
  for (unsigned i = 0; i < tc->num_workers(); ++i) {
    const rt::WorkerStats& ws = snap.per_worker[i];
    // Every deferred or fast-inlined spawn recorded exactly one spawn event
    // (split halves included on the deferred side).
    EXPECT_EQ(tc->count(i, rt::TraceEvent::spawn),
              ws.tasks_deferred + ws.tasks_inlined_fast)
        << "worker " << i;
    // steal_hit counters bump by the raid's task count.
    EXPECT_EQ(tc->count(i, rt::TraceEvent::steal_hit), ws.tasks_stolen)
        << "worker " << i;
    EXPECT_EQ(tc->count(i, rt::TraceEvent::park), ws.tsc_parked)
        << "worker " << i;
    EXPECT_EQ(tc->count(i, rt::TraceEvent::unpark), ws.parked_claimed)
        << "worker " << i;
    EXPECT_EQ(tc->count(i, rt::TraceEvent::split), ws.range_splits)
        << "worker " << i;
  }
  // The suite-wide law the satellite names.
  EXPECT_EQ(tc->total(rt::TraceEvent::spawn),
            snap.total.tasks_deferred + snap.total.tasks_inlined_fast);
  EXPECT_EQ(tc->total(rt::TraceEvent::steal_hit), snap.total.tasks_stolen);
}

TEST(TraceKnob, OffCostsNothingAndAllocatesNothing) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = false;  // the default — pinned here against env drift
  rt::Scheduler sched(cfg);
  // Zero-cost baseline: no collector, no rings — every event site reduces
  // to one predictable null-pointer branch.
  EXPECT_EQ(sched.tracer(), nullptr);
  std::uint64_t got = 0;
  sched.run_single([&] { got = spawn_fib(20); });
  EXPECT_EQ(got, fib_ref(20));
  EXPECT_EQ(sched.tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// Pathology provocations: each detector fires on its synthetic pattern.
// ---------------------------------------------------------------------------

TEST(TracePathology, CreationSerializationFiresOnRootOnlySpawns) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  cfg.cutoff = rt::CutoffPolicy::none;  // every spawn defers — all from root
  rt::Scheduler sched(cfg);
  std::atomic<std::uint64_t> sum{0};
  sched.run_single([&] {
    // The serialized-creation pattern: ONE generator sources every
    // descriptor; the leaves are too small to keep three thieves fed, so
    // the team starves behind the generator.
    for (int i = 0; i < 4000; ++i) {
      rt::spawn([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    rt::taskwait();
  });
  EXPECT_EQ(sum.load(), 4000u);
  ASSERT_NE(sched.tracer(), nullptr);
  sched.tracer()->drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(*sched.tracer());
  EXPECT_TRUE(rep.creation_serialization.fired)
      << rep.creation_serialization.detail;
  EXPECT_GE(rep.creation_serialization.score, 0.9);
}

TEST(TracePathology, DepthFirstStarvationFiresOnTinyDepthCutoff) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  // The starvation pattern: a depth cutoff this tight inlines essentially
  // the whole recursion on the encountering worker — nothing is ever
  // published, teammates spin hungry for the entire region.
  cfg.cutoff = rt::CutoffPolicy::max_depth;
  cfg.cutoff_value = 1;
  rt::Scheduler sched(cfg);
  std::uint64_t got = 0;
  sched.run_single([&] { got = spawn_fib(24); });
  EXPECT_EQ(got, fib_ref(24));
  ASSERT_NE(sched.tracer(), nullptr);
  sched.tracer()->drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(*sched.tracer());
  EXPECT_TRUE(rep.depth_first_starvation.fired)
      << rep.depth_first_starvation.detail;
}

TEST(TracePathology, CrossNodePingPongFiresOnForcedSymmetricMailing) {
  // Synthetic stream, detector-level: two workers on opposite nodes mailing
  // and stealing each other's descriptors in both directions at a rate
  // comparable to the spawn rate — the bounce pattern birth-node tags exist
  // to expose. (Healthy runs steal rarely relative to spawns and mostly in
  // one direction at a time; see the quiet tests below.)
  rt::TraceCollector tc(2, 256);
  for (int i = 0; i < 60; ++i) {
    // Worker 0 (node 0) spawns, worker 1 (node 1) steals it away...
    tc.ring(0)->record(rt::TraceEvent::spawn, 1, 1);
    tc.ring(1)->record(rt::TraceEvent::steal_hit, 1,
                       rt::trace_pack_nodes(0, 1), 1);
    // ...then node 1 splits it and mails the half straight back home.
    tc.ring(1)->record(rt::TraceEvent::spawn, 1, 1);
    tc.ring(1)->record(rt::TraceEvent::mailbox, /*birth node=*/0,
                       rt::trace_pack_nodes(/*target=*/0, /*sender=*/1));
  }
  tc.drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(tc);
  EXPECT_TRUE(rep.cross_node_ping_pong.fired) << rep.cross_node_ping_pong.detail;

  // One-directional flow of the same volume is migration, not ping-pong.
  rt::TraceCollector oneway(2, 256);
  for (int i = 0; i < 60; ++i) {
    oneway.ring(0)->record(rt::TraceEvent::spawn, 1, 1);
    oneway.ring(1)->record(rt::TraceEvent::steal_hit, 1,
                           rt::trace_pack_nodes(0, 1), 1);
  }
  oneway.drain_all();
  EXPECT_FALSE(rt::analyze_pathologies(oneway).cross_node_ping_pong.fired);
}

// ---------------------------------------------------------------------------
// ...and all three stay quiet on healthy default-config runs.
// ---------------------------------------------------------------------------

TEST(TracePathology, QuietOnHealthyFlatRun) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  rt::Scheduler sched(cfg);
  std::uint64_t got = 0;
  sched.run_single([&] { got = spawn_fib(24); });
  EXPECT_EQ(got, fib_ref(24));
  sched.tracer()->drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(*sched.tracer());
  EXPECT_FALSE(rep.creation_serialization.fired)
      << rep.creation_serialization.detail;
  EXPECT_FALSE(rep.depth_first_starvation.fired)
      << rep.depth_first_starvation.detail;
  EXPECT_FALSE(rep.cross_node_ping_pong.fired)
      << rep.cross_node_ping_pong.detail;
}

TEST(TracePathology, QuietOnHealthyNumaRangeRun) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.trace = true;
  cfg.synthetic_topology = "2x4";
  rt::Scheduler sched(cfg);
  std::atomic<std::uint64_t> sum{0};
  sched.run_single([&] {
    rt::spawn_range(0, 200000, 16, [&](std::int64_t i) {
      sum.fetch_add(static_cast<std::uint64_t>(i) % 3,
                    std::memory_order_relaxed);
    });
    rt::taskwait();
  });
  sched.tracer()->drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(*sched.tracer());
  EXPECT_FALSE(rep.creation_serialization.fired)
      << rep.creation_serialization.detail;
  EXPECT_FALSE(rep.depth_first_starvation.fired)
      << rep.depth_first_starvation.detail;
  EXPECT_FALSE(rep.cross_node_ping_pong.fired)
      << rep.cross_node_ping_pong.detail;
}

// ---------------------------------------------------------------------------
// Exporter + server request slices.
// ---------------------------------------------------------------------------

TEST(TraceExport, WritesChromeTraceJson) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  rt::Scheduler sched(cfg);
  std::uint64_t got = 0;
  sched.run_single([&] { got = spawn_fib(18); });
  EXPECT_EQ(got, fib_ref(18));
  sched.tracer()->drain_all();
  const std::string path =
      ::testing::TempDir() + "trace_export_test.json";
  ASSERT_TRUE(sched.tracer()->export_chrome_trace(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"spawn\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceServer, RequestSlicesBalance) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.trace = true;
  rt::Scheduler sched(cfg);
  {
    rt::ServerConfig sc;
    sc.queue_capacity = 32;
    rt::TaskServer server(sched, sc);
    std::vector<rt::RegionHandle> handles;
    for (int r = 0; r < 8; ++r) {
      auto res = server.submit([] { (void)spawn_fib(12); });
      ASSERT_TRUE(res.admitted);
      handles.push_back(res.handle);
    }
    for (auto& h : handles)
      EXPECT_EQ(h.wait(), rt::RequestStatus::completed);
    server.drain();
  }
  rt::TraceCollector* tc = sched.tracer();
  ASSERT_NE(tc, nullptr);
  tc->drain_all();
  // Every request that started also ended, on whatever worker ran it; the
  // exporter pairs these into perfetto "X" slices.
  EXPECT_EQ(tc->total(rt::TraceEvent::request_start),
            tc->total(rt::TraceEvent::request_end));
  EXPECT_GE(tc->total(rt::TraceEvent::request_start), 8u);
}
