// NQueens kernel tests: published solution counts, version matrix,
// threadprivate accumulation determinism.
#include <gtest/gtest.h>

#include "kernels/nqueens/nqueens.hpp"

namespace nq = bots::nqueens;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

TEST(NQueens, SerialKnownCounts) {
  EXPECT_EQ(nq::run_serial({1, 1}), 1u);
  EXPECT_EQ(nq::run_serial({4, 1}), 2u);
  EXPECT_EQ(nq::run_serial({5, 1}), 10u);
  EXPECT_EQ(nq::run_serial({6, 1}), 4u);
  EXPECT_EQ(nq::run_serial({7, 1}), 40u);
  EXPECT_EQ(nq::run_serial({8, 1}), 92u);
  EXPECT_EQ(nq::run_serial({9, 1}), 352u);
  EXPECT_EQ(nq::run_serial({10, 1}), 724u);
}

TEST(NQueens, VerifyUsesPublishedTable) {
  EXPECT_TRUE(nq::verify({8, 1}, 92u));
  EXPECT_FALSE(nq::verify({8, 1}, 93u));
  EXPECT_FALSE(nq::verify({-1, 1}, 0u));
}

struct Case {
  rt::Tiedness tied;
  core::AppCutoff cutoff;
};

class NQueensVersions
    : public ::testing::TestWithParam<std::tuple<Case, unsigned>> {};

TEST_P(NQueensVersions, CountsAllSolutions) {
  const auto [vc, threads] = GetParam();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  nq::Params p{10, 3};
  EXPECT_EQ(nq::run_parallel(p, sched, {vc.tied, vc.cutoff}), 724u);
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<Case, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.cutoff)) + "_" +
                  to_string(vc.tied) + "_t" +
                  std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NQueensVersions,
    ::testing::Combine(
        ::testing::Values(Case{rt::Tiedness::tied, core::AppCutoff::none},
                          Case{rt::Tiedness::untied, core::AppCutoff::none},
                          Case{rt::Tiedness::tied, core::AppCutoff::if_clause},
                          Case{rt::Tiedness::untied, core::AppCutoff::if_clause},
                          Case{rt::Tiedness::tied, core::AppCutoff::manual},
                          Case{rt::Tiedness::untied, core::AppCutoff::manual}),
        ::testing::Values(1u, 4u, 8u)), case_name);

TEST(NQueens, DeterministicAcrossRepetitions) {
  // The paper's device: counting all solutions makes the computational load
  // (and the result) schedule-independent.
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  nq::Params p{11, 3};
  const std::uint64_t first =
      nq::run_parallel(p, sched, {rt::Tiedness::untied, core::AppCutoff::manual});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(nq::run_parallel(
                  p, sched, {rt::Tiedness::untied, core::AppCutoff::manual}),
              first);
  }
  EXPECT_EQ(first, 2680u);
}

TEST(NQueens, CutoffDepthZeroRunsSeriallyInsideRegion) {
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  nq::Params p{9, 0};
  EXPECT_EQ(nq::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::manual}),
            352u);
  // With cut-off depth 0 the manual version never spawns a deferred task.
  EXPECT_EQ(sched.stats().total.tasks_deferred, 0u);
}

TEST(NQueens, ProfileRowHasBoardSizedEnvironment) {
  const auto row = nq::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  // Captured environment: the board prefix + indices (Table II reports
  // 42.32 bytes for the 14x14 board; ours carries the fixed 16-slot board).
  EXPECT_GT(row.captured_env_bytes_per_task, 16.0);
  EXPECT_LT(row.captured_env_bytes_per_task, 64.0);
  EXPECT_EQ(row.pct_writes_shared, 0.0);  // Table II: 0% non-private writes
}

TEST(NQueens, AppInfoMetadata) {
  const auto app = nq::make_app_info();
  EXPECT_EQ(app.origin, "Cilk");
  EXPECT_EQ(app.task_directives, 1);
  EXPECT_EQ(app.best_version().name, "manual-untied");  // Figure 3 annotation
}

}  // namespace
