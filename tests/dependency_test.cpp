// Task-dependence and taskgraph record-and-replay tests (PR 8): the
// depend(in/out/inout) clause semantics, randomized DAG stress against a
// serial reference, record/replay identity with counter conservation,
// cancellation and deadlines mid-replay with balanced ledgers, the
// reconfigure/shrink graph-invalidation regression, and the server's
// submit_graph entry point. Everything runs the REAL scheduler.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "runtime/rt.hpp"

namespace rt = bots::rt;
namespace core = bots::core;

namespace {

// CI's fault legs export RT_FAULT_PLAN to the whole suite; tests that assert
// exact record/replay counter values must not see injected allocation
// faults (a fault mid-record aborts the recording and retries — correct,
// but it shifts graphs_recorded).
rt::SchedulerConfig clean_cfg(unsigned threads) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.fault_plan.clear();
  cfg.use_taskgraph_replay = true;  // pin against RT_TASKGRAPH_REPLAY=0 legs
  return cfg;
}

void expect_accounting_balanced(const rt::StatsSnapshot& st) {
  EXPECT_EQ(st.total.tasks_created + st.total.range_splits,
            st.total.tasks_deferred + st.total.tasks_if_inlined +
                st.total.tasks_cutoff_inlined);
  EXPECT_EQ(st.total.tasks_executed + st.total.tasks_discarded,
            st.total.tasks_deferred);
}

// ---------------------------------------------------------------------------
// Dependence semantics matrix.
// ---------------------------------------------------------------------------

TEST(Dependency, InWaitsForLastWriter) {
  rt::Scheduler s(clean_cfg(8));
  for (int round = 0; round < 50; ++round) {
    int x = 0;
    std::atomic<int> seen_a{-1}, seen_b{-1};
    s.run_single([&] {
      rt::DepScope sc;
      sc.spawn({rt::inout(x)}, [&] {
        // Slow writer: readers must still observe its result.
        for (int i = 0; i < 50'000; ++i) asm volatile("");
        x = 42;
      });
      sc.spawn({rt::in(x)}, [&] { seen_a.store(x); });
      sc.spawn({rt::in(x)}, [&] { seen_b.store(x); });
    });
    ASSERT_EQ(seen_a.load(), 42) << "round " << round;
    ASSERT_EQ(seen_b.load(), 42) << "round " << round;
  }
}

TEST(Dependency, WriterWaitsForReaders) {
  // Anti-dependence: an inout spawned after two in-readers must not run
  // until both readers observed the PREVIOUS value.
  rt::Scheduler s(clean_cfg(8));
  for (int round = 0; round < 50; ++round) {
    int x = 7;
    std::atomic<int> read_a{0}, read_b{0};
    s.run_single([&] {
      rt::DepScope sc;
      sc.spawn({rt::in(x)}, [&] {
        for (int i = 0; i < 20'000; ++i) asm volatile("");
        read_a.store(x);
      });
      sc.spawn({rt::in(x)}, [&] { read_b.store(x); });
      sc.spawn({rt::inout(x)}, [&] { x = 99; });
    });
    ASSERT_EQ(read_a.load(), 7) << "round " << round;
    ASSERT_EQ(read_b.load(), 7) << "round " << round;
    ASSERT_EQ(x, 99) << "round " << round;
  }
}

TEST(Dependency, InoutChainIsTotallyOrdered) {
  rt::Scheduler s(clean_cfg(8));
  constexpr int kChain = 64;
  std::uint64_t acc = 1;
  s.run_single([&] {
    rt::DepScope sc;
    for (int i = 0; i < kChain; ++i) {
      sc.spawn(i % 2 == 0 ? rt::Tiedness::tied : rt::Tiedness::untied,
               {rt::inout(acc)}, [&acc, i] { acc = acc * 31 + static_cast<std::uint64_t>(i); });
    }
  });
  std::uint64_t expect = 1;
  for (int i = 0; i < kChain; ++i) expect = expect * 31 + static_cast<std::uint64_t>(i);
  EXPECT_EQ(acc, expect);
  // Dynamic-only conservation: every successfully published edge is
  // resolved exactly once by the finish path.
  const auto t = s.stats().total;
  EXPECT_EQ(t.edges_resolved, t.deps_edges);
  EXPECT_EQ(t.deps_declared, static_cast<std::uint64_t>(kChain));
  expect_accounting_balanced(s.stats());
}

TEST(Dependency, IndependentAddressesDoNotSerialise) {
  // No ordering asserted — just that disjoint-address tasks all run and the
  // scope joins them (deps_edges may legitimately be zero).
  rt::Scheduler s(clean_cfg(4));
  std::vector<int> cells(32, 0);
  std::atomic<int> ran{0};
  s.run_single([&] {
    rt::DepScope sc;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      sc.spawn({rt::out(cells[i])}, [&, i] {
        cells[i] = static_cast<int>(i);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(ran.load(), 32);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i], static_cast<int>(i));
  }
}

TEST(Dependency, ScopeIsReusableAndOutsideRegionRunsInline) {
  rt::Scheduler s(clean_cfg(2));
  int x = 0;
  // Outside any region: program order satisfies everything.
  {
    rt::DepScope sc;
    sc.spawn({rt::inout(x)}, [&] { x = 1; });
    sc.spawn({rt::in(x)}, [&] { EXPECT_EQ(x, 1); });
  }
  EXPECT_EQ(x, 1);
  // Same scope object reused across two regions: wait() resets the table,
  // so the second region's deps relate only to its own spawns.
  rt::DepScope sc;
  for (int round = 0; round < 3; ++round) {
    s.run_single([&] {
      sc.spawn({rt::inout(x)}, [&] { ++x; });
      sc.spawn({rt::inout(x)}, [&] { ++x; });
      sc.wait();
    });
  }
  EXPECT_EQ(x, 7);
}

// ---------------------------------------------------------------------------
// Randomized DAG stress: dataflow execution must match serial program order.
// ---------------------------------------------------------------------------

// One randomly generated step: reads some cells, read-modify-writes one.
struct Step {
  std::vector<std::size_t> reads;
  std::size_t write = 0;
  bool write_is_inout = false;
  std::uint64_t salt = 0;
};

std::uint64_t step_value(const Step& st, const std::vector<std::uint64_t>& c) {
  std::uint64_t v = st.salt;
  for (std::size_t r : st.reads) v = v * 1099511628211ull + c[r];
  if (st.write_is_inout) v = v * 1099511628211ull + c[st.write];
  return v;
}

TEST(Dependency, RandomDagMatchesSerialReference) {
  rt::Scheduler s(clean_cfg(8));
  core::Xoshiro256 rng(0xDA6u);
  for (int round = 0; round < 12; ++round) {
    const std::size_t cells = 4 + rng.next_below(12);
    const std::size_t steps = 40 + rng.next_below(160);
    std::vector<Step> plan(steps);
    for (auto& st : plan) {
      const std::size_t nreads = rng.next_below(3);
      for (std::size_t r = 0; r < nreads; ++r) {
        st.reads.push_back(rng.next_below(cells));
      }
      st.write = rng.next_below(cells);
      st.write_is_inout = rng.next_below(2) == 0;
      st.salt = rng.next();
    }
    // Serial reference: program order.
    std::vector<std::uint64_t> ref(cells, 1);
    for (const auto& st : plan) ref[st.write] = step_value(st, ref);
    // Dataflow: declared deps only; the runtime must reconstruct program
    // order per cell.
    std::vector<std::uint64_t> got(cells, 1);
    s.run_single([&] {
      rt::DepScope sc;
      for (const auto& st : plan) {
        std::vector<rt::Dep> deps;
        for (std::size_t r : st.reads) deps.push_back(rt::in(got[r]));
        deps.push_back(st.write_is_inout ? rt::inout(got[st.write])
                                         : rt::out(got[st.write]));
        // initializer_list cannot be built dynamically; spawn via the
        // worst-case 4-clause shape with duplicates collapsing naturally.
        const rt::Dep d0 = deps[0];
        const rt::Dep d1 = deps.size() > 1 ? deps[1] : deps[0];
        const rt::Dep d2 = deps.size() > 2 ? deps[2] : deps[0];
        const rt::Dep d3 = deps.size() > 3 ? deps[3] : deps[0];
        sc.spawn({d0, d1, d2, d3},
                 [&got, &st] { got[st.write] = step_value(st, got); });
      }
    });
    ASSERT_EQ(got, ref) << "round " << round;
    const auto t = s.stats().total;
    ASSERT_EQ(t.edges_resolved, t.deps_edges) << "round " << round;
    expect_accounting_balanced(s.stats());
  }
}

TEST(Dependency, DataflowAgreesWithTaskwaitPhases) {
  // A/B identity on a phased wavefront: phase k writes cell k from cell
  // k-1. The taskwait version barriers between phases; the dataflow version
  // declares the chain. Results must be identical.
  rt::Scheduler s(clean_cfg(8));
  constexpr std::size_t kN = 48;
  auto taskwait_version = [&] {
    std::vector<std::uint64_t> v(kN, 0);
    v[0] = 17;
    s.run_single([&] {
      for (std::size_t i = 1; i < kN; ++i) {
        rt::spawn([&v, i] { v[i] = v[i - 1] * 31 + i; });
        rt::taskwait();
      }
    });
    return v;
  };
  auto dataflow_version = [&] {
    std::vector<std::uint64_t> v(kN, 0);
    v[0] = 17;
    s.run_single([&] {
      rt::DepScope sc;
      for (std::size_t i = 1; i < kN; ++i) {
        sc.spawn({rt::in(v[i - 1]), rt::out(v[i])},
                 [&v, i] { v[i] = v[i - 1] * 31 + i; });
      }
    });
    return v;
  };
  EXPECT_EQ(dataflow_version(), taskwait_version());
}

// ---------------------------------------------------------------------------
// Tentpole: record-and-replay.
// ---------------------------------------------------------------------------

// A reusable build function over an 8-cell buffer: one producer, six
// middle tasks fanning out from it, one combiner declaring every cell it
// reads. Re-runnable (record-mode rule) because every body captures only
// the stable buffer pointer.
std::function<void(rt::DepScope&)> diamond_build(std::vector<std::uint64_t>* c) {
  return [c](rt::DepScope& sc) {
    auto& v = *c;
    sc.spawn({rt::out(v[0])}, [&v] { v[0] += 5; });
    for (std::size_t i = 1; i <= 6; ++i) {
      sc.spawn({rt::in(v[0]), rt::out(v[i])},
               [&v, i] { v[i] = v[0] * i; });
    }
    sc.spawn(rt::Tiedness::untied,
             {rt::in(v[1]), rt::in(v[2]), rt::in(v[3]), rt::in(v[4]),
              rt::in(v[5]), rt::in(v[6]), rt::inout(v[7])},
             [&v] {
               std::uint64_t sum = 0;
               for (std::size_t i = 1; i <= 6; ++i) sum += v[i];
               v[7] = sum;
             });
  };
}

TEST(TaskGraphReplay, RecordOnceReplayManyIdenticalResults) {
  rt::Scheduler s(clean_cfg(8));
  constexpr std::size_t kCells = 8;
  std::vector<std::uint64_t> cells(kCells, 0);
  rt::TaskGraph g;
  const auto build = diamond_build(&cells);
  constexpr int kRuns = 6;
  std::vector<std::vector<std::uint64_t>> results;
  for (int run = 0; run < kRuns; ++run) {
    std::fill(cells.begin(), cells.end(), 0);
    s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
    results.push_back(cells);
  }
  for (int run = 1; run < kRuns; ++run) {
    ASSERT_EQ(results[static_cast<std::size_t>(run)], results[0]) << "run " << run;
  }
  EXPECT_TRUE(g.frozen());
  EXPECT_EQ(g.node_count(), 8u);  // producer + 6 mids + combiner
  EXPECT_EQ(g.replays(), static_cast<std::uint64_t>(kRuns - 1));
  const auto t = s.stats().total;
  EXPECT_EQ(t.graphs_recorded, 1u);
  EXPECT_EQ(t.graphs_replayed, static_cast<std::uint64_t>(kRuns - 1));
  // Conservation: dynamic edges (the record run) each resolved once, plus
  // every baked edge resolved once per replay.
  EXPECT_EQ(t.edges_resolved,
            t.deps_edges + g.replays() * g.edge_count());
  expect_accounting_balanced(s.stats());
}

TEST(TaskGraphReplay, KnobOffNeverRecordsAndMatchesKnobOn) {
  auto run_with = [&](bool knob) {
    rt::SchedulerConfig cfg = clean_cfg(4);
    cfg.use_taskgraph_replay = knob;
    rt::Scheduler s(cfg);
    std::vector<std::uint64_t> cells(8, 0);
    rt::TaskGraph g;
    const auto build = diamond_build(&cells);
    std::vector<std::uint64_t> last;
    for (int run = 0; run < 4; ++run) {
      std::fill(cells.begin(), cells.end(), 0);
      s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
      last = cells;
    }
    const auto t = s.stats().total;
    if (knob) {
      EXPECT_EQ(t.graphs_recorded, 1u);
      EXPECT_EQ(t.graphs_replayed, 3u);
    } else {
      EXPECT_EQ(t.graphs_recorded, 0u);
      EXPECT_EQ(t.graphs_replayed, 0u);
      EXPECT_FALSE(g.frozen());
      // Pure dynamic: published edges resolved exactly once, nothing baked.
      EXPECT_EQ(t.edges_resolved, t.deps_edges);
    }
    expect_accounting_balanced(s.stats());
    return last;
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

TEST(TaskGraphReplay, DifferentKeyForcesReRecord) {
  // The key binds a recording to its buffers: replaying against different
  // storage must re-record, not touch stale addresses.
  rt::Scheduler s(clean_cfg(4));
  std::vector<std::uint64_t> a(8, 0), b(8, 0);
  rt::TaskGraph g;
  s.run_single([&] { rt::run_graph_region(s, g, &a, diamond_build(&a)); });
  EXPECT_TRUE(g.valid_for(s, &a));
  EXPECT_FALSE(g.valid_for(s, &b));
  s.run_single([&] { rt::run_graph_region(s, g, &b, diamond_build(&b)); });
  EXPECT_TRUE(g.valid_for(s, &b));
  EXPECT_EQ(s.stats().total.graphs_recorded, 2u);
  EXPECT_EQ(s.stats().total.graphs_replayed, 0u);
  EXPECT_EQ(a, b);
}

TEST(TaskGraphReplay, TagRegistryRoutesRepeatInvocations) {
  rt::Scheduler s(clean_cfg(4));
  std::vector<std::uint64_t> cells(8, 0);
  const auto build = diamond_build(&cells);
  std::vector<std::uint64_t> first;
  for (int run = 0; run < 3; ++run) {
    std::fill(cells.begin(), cells.end(), 0);
    s.run_single([&] { rt::graph_region("test.diamond", &cells, build); });
    if (run == 0) first = cells;
    ASSERT_EQ(cells, first) << "run " << run;
  }
  EXPECT_EQ(s.stats().total.graphs_recorded, 1u);
  EXPECT_EQ(s.stats().total.graphs_replayed, 2u);
}

// ---------------------------------------------------------------------------
// Satellite regression: reconfigure() must invalidate recorded graphs.
// Failing before the fix: the replay dispatched a graph recorded for the
// OLD team shape (stale placement decisions, stale worker count baked into
// the root frontier dispatch).
// ---------------------------------------------------------------------------

TEST(TaskGraphReplay, ReconfigureInvalidatesRecordedGraphs) {
  rt::Scheduler s(clean_cfg(8));
  std::vector<std::uint64_t> cells(8, 0);
  rt::TaskGraph g;
  const auto build = diamond_build(&cells);
  s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
  ASSERT_TRUE(g.valid_for(s, &cells));
  const auto before = cells;

  s.reconfigure(rt::StealPolicyKind::hierarchical, "2x4");
  // The epoch moved: the frozen graph must refuse to replay...
  EXPECT_FALSE(g.valid_for(s, &cells));
  // ...and the next invocation re-records against the new shape, then
  // replays that NEW recording.
  std::fill(cells.begin(), cells.end(), 0);
  s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
  EXPECT_EQ(cells, before);
  EXPECT_TRUE(g.valid_for(s, &cells));
  std::fill(cells.begin(), cells.end(), 0);
  s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
  EXPECT_EQ(cells, before);
  const auto t = s.stats().total;
  EXPECT_EQ(t.graphs_recorded, 2u);
  EXPECT_EQ(t.graphs_replayed, 1u);
  expect_accounting_balanced(s.stats());
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines mid-replay: ledgers stay balanced, the graph
// stays reusable.
// ---------------------------------------------------------------------------

TEST(TaskGraphReplay, CancelMidReplayDrainsByDiscardsAndGraphSurvives) {
  rt::Scheduler s(clean_cfg(4));
  std::atomic<bool> cancel_mode{false};
  std::atomic<int> executed{0};
  // A chain: node 0 optionally cancels; nodes 1..N-1 depend transitively on
  // it, so on the cancel run they are discarded (their releases still fire,
  // or the region would deadlock).
  std::uint64_t acc = 0;
  auto build = [&](rt::DepScope& sc) {
    sc.spawn({rt::inout(acc)}, [&] {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (cancel_mode.load(std::memory_order_relaxed)) rt::cancel_region();
      ++acc;
    });
    for (int i = 0; i < 40; ++i) {
      sc.spawn({rt::inout(acc)}, [&] {
        executed.fetch_add(1, std::memory_order_relaxed);
        ++acc;
      });
    }
  };
  rt::TaskGraph g;
  // Record run (clean) + one clean replay.
  s.run_single([&] { rt::run_graph_region(s, g, &acc, build); });
  ASSERT_EQ(acc, 41u);
  acc = 0;
  rt::RegionResult res =
      s.run_single([&] { rt::run_graph_region(s, g, &acc, build); },
                   std::chrono::milliseconds(0));
  ASSERT_EQ(res.status, rt::RegionStatus::completed);
  ASSERT_EQ(acc, 41u);
  // Cancelled replay: the region must terminate (discard-drain), ledgers
  // must balance, and executed+discarded must cover the whole graph.
  cancel_mode.store(true);
  acc = 0;
  executed.store(0);
  res = s.run_single([&] { rt::run_graph_region(s, g, &acc, build); },
                     std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::cancelled);
  EXPECT_LT(executed.load(), 41);
  expect_accounting_balanced(s.stats());
  const auto t = s.stats().total;
  EXPECT_GT(t.tasks_discarded, 0u);
  // The graph replays cleanly again after a cancelled replay (descriptors
  // reset in place).
  cancel_mode.store(false);
  acc = 0;
  res = s.run_single([&] { rt::run_graph_region(s, g, &acc, build); },
                     std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(acc, 41u);
  EXPECT_EQ(s.stats().total.graphs_recorded, 1u);
  EXPECT_EQ(s.stats().total.graphs_replayed, 3u);
  expect_accounting_balanced(s.stats());
}

TEST(TaskGraphReplay, DeadlineMidReplayReportsAndRecovers) {
  rt::Scheduler s(clean_cfg(4));
  std::atomic<bool> slow{false};
  std::uint64_t acc = 0;
  auto build = [&](rt::DepScope& sc) {
    for (int i = 0; i < 16; ++i) {
      sc.spawn({rt::inout(acc)}, [&] {
        if (slow.load(std::memory_order_relaxed)) {
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
          while (std::chrono::steady_clock::now() < until &&
                 !rt::cancellation_point()) {
          }
        }
        ++acc;
      });
    }
  };
  rt::TaskGraph g;
  s.run_single([&] { rt::run_graph_region(s, g, &acc, build); });
  ASSERT_EQ(acc, 16u);
  slow.store(true);
  acc = 0;
  const rt::RegionResult res =
      s.run_single([&] { rt::run_graph_region(s, g, &acc, build); },
                   std::chrono::milliseconds(25));
  EXPECT_EQ(res.status, rt::RegionStatus::deadline_exceeded);
  expect_accounting_balanced(s.stats());
  // Recovers: next replay completes.
  slow.store(false);
  acc = 0;
  const rt::RegionResult ok =
      s.run_single([&] { rt::run_graph_region(s, g, &acc, build); },
                   std::chrono::milliseconds(0));
  EXPECT_EQ(ok.status, rt::RegionStatus::completed);
  EXPECT_EQ(acc, 16u);
  expect_accounting_balanced(s.stats());
}

// ---------------------------------------------------------------------------
// Server integration: submit_graph records on the first request, replays on
// repeats, falls back to dynamic tracking when the tag is busy.
// ---------------------------------------------------------------------------

TEST(TaskGraphReplay, ServerSubmitGraphRecordsThenReplays) {
  rt::Scheduler s(clean_cfg(4));
  rt::TaskServer server(s, rt::ServerConfig{});
  std::vector<std::uint64_t> cells(8, 0);
  const auto build = diamond_build(&cells);
  std::vector<std::uint64_t> first;
  constexpr int kReqs = 5;
  for (int i = 0; i < kReqs; ++i) {
    std::fill(cells.begin(), cells.end(), 0);
    auto res = server.submit_graph("req.diamond", build, &cells);
    ASSERT_TRUE(res.admitted);
    ASSERT_EQ(res.handle.wait(), rt::RequestStatus::completed);
    EXPECT_TRUE(res.handle.ledger_balanced());
    if (i == 0) first = cells;
    ASSERT_EQ(cells, first) << "request " << i;
  }
  server.drain();
  const auto t = s.stats().total;
  EXPECT_EQ(t.graphs_recorded, 1u);
  EXPECT_EQ(t.graphs_replayed, static_cast<std::uint64_t>(kReqs - 1));
  expect_accounting_balanced(s.stats());
}

TEST(TaskGraphReplay, ConcurrentSameTagRequestsAllComplete) {
  // Two requests on one tag racing: the loser of the busy flag falls back
  // to dynamic dependence tracking — both must complete with the right
  // answer, whatever the interleaving. Each request works on its own
  // buffer, so the shared-tag graph key is pinned to a stable dummy.
  rt::Scheduler s(clean_cfg(4));
  rt::TaskServer server(s, rt::ServerConfig{});
  constexpr int kReqs = 6;
  static std::uint64_t key_anchor = 0;
  std::array<std::vector<std::uint64_t>, kReqs> bufs;
  std::vector<rt::RegionHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    bufs[static_cast<std::size_t>(i)].assign(8, 0);
    auto* buf = &bufs[static_cast<std::size_t>(i)];
    // NOTE: all requests share tag+key, so only request shapes whose
    // recorded structure is buffer-independent may share a tag. Here every
    // body captures its own buffer pointer — the recorded bodies bind to
    // request 0's buffer, so a replayed request recomputes buffer 0 (same
    // values; idempotent diamond) while the dynamic fallback writes its
    // own. To keep the assertion exact we only check completion + ledgers.
    auto res = server.submit_graph(
        "req.race",
        [buf](rt::DepScope& sc) { diamond_build(buf)(sc); }, &key_anchor);
    ASSERT_TRUE(res.admitted);
    handles.push_back(res.handle);
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.wait(), rt::RequestStatus::completed);
    EXPECT_TRUE(h.ledger_balanced());
  }
  server.drain();
  expect_accounting_balanced(s.stats());
}

// ---------------------------------------------------------------------------
// Replay under TSAN-visible load: many replays back to back on 8 threads.
// ---------------------------------------------------------------------------

TEST(TaskGraphReplay, ReplaySoakKeepsConservationLaw) {
  rt::Scheduler s(clean_cfg(8));
  std::vector<std::uint64_t> cells(16, 0);
  rt::TaskGraph g;
  // Wider diamond for real contention on the release paths.
  auto build = [&](rt::DepScope& sc) {
    auto& v = cells;
    sc.spawn({rt::out(v[0])}, [&v] { v[0] += 3; });
    for (std::size_t i = 1; i + 1 < v.size(); ++i) {
      sc.spawn({rt::in(v[0]), rt::out(v[i])}, [&v, i] { v[i] = v[0] + i; });
    }
    sc.spawn({rt::in(v[1]), rt::in(v[5]), rt::in(v[9]), rt::inout(v[15])},
             [&v] { v[15] = v[1] + v[5] + v[9]; });
  };
  constexpr int kRuns = 200;
  std::vector<std::uint64_t> first;
  for (int run = 0; run < kRuns; ++run) {
    std::fill(cells.begin(), cells.end(), 0);
    s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
    if (run == 0) first = cells;
    ASSERT_EQ(cells, first) << "run " << run;
  }
  const auto t = s.stats().total;
  EXPECT_EQ(t.graphs_recorded, 1u);
  EXPECT_EQ(t.graphs_replayed, static_cast<std::uint64_t>(kRuns - 1));
  EXPECT_EQ(t.edges_resolved, t.deps_edges + g.replays() * g.edge_count());
  expect_accounting_balanced(s.stats());
}

}  // namespace
