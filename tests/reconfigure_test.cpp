// Live reconfiguration tests (PR 9): epoch/RCU hot-swap of the steal
// policy, grain base and watchdog tunables UNDER running regions
// (Scheduler::reconfigure_live), without the global stop reconfigure()
// requires.
//
// Covered here:
//  * the failing-before regression: a policy-KIND swap under a live region
//    used to be impossible (reconfigure() throws); reconfigure_live does it
//    without throwing and without stopping anything,
//  * A/B output identity across alignment / sort / sparselu with a
//    background thread swapping the policy mid-region,
//  * swap-during-steal-storm stress (run under TSAN by the CI churn job),
//  * the conservation laws pinned across >= 100 random swap points:
//    created + range_splits == deferred + if_inlined + cutoff_inlined,
//    executed + discarded == deferred, node-pool balance, and the
//    edges_resolved law under graph replay,
//  * the graph-epoch fold: reconfigure_live does NOT invalidate frozen
//    graphs (policy kind is not structure-relevant), reconfigure() does,
//  * the RT_LIVE_RECONF=0 gate, and
//  * the last_region_status() server-mode race sentinel.
#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/alignment/alignment.hpp"
#include "kernels/sort/sort.hpp"
#include "kernels/sparselu/sparselu.hpp"
#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = fib_task(n - 1); });
  rt::spawn([&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

rt::SchedulerConfig clean_cfg(unsigned threads, const char* topo = "") {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.synthetic_topology = topo;
  // These tests pin exact ledgers and swap timing; injected faults (CI's
  // RT_FAULT_PLAN legs) would perturb both in ways the swap is innocent of.
  cfg.fault_plan.clear();
  cfg.live_reconfigure = true;  // pin against RT_LIVE_RECONF=0 legs
  return cfg;
}

void expect_accounting_balanced(const rt::StatsSnapshot& st) {
  EXPECT_EQ(st.total.tasks_created + st.total.range_splits,
            st.total.tasks_deferred + st.total.tasks_if_inlined +
                st.total.tasks_cutoff_inlined);
  EXPECT_EQ(st.total.tasks_executed + st.total.tasks_discarded,
            st.total.tasks_deferred);
}

void expect_pool_balanced(rt::Scheduler& s) {
  for (const auto& n : s.node_pool_snapshot()) {
    EXPECT_EQ(n.arena_carved, n.arena_free + n.cached + n.in_transit);
    EXPECT_EQ(n.in_transit, 0u);  // between regions nothing is in flight
  }
}

/// Background churn: hot-swap the steal policy on a tight random cadence
/// until stopped, counting successful swaps.
class PolicyChurn {
 public:
  PolicyChurn(rt::Scheduler& s, unsigned seed, int sleep_us_max = 200)
      : thread_([this, &s, seed, sleep_us_max] {
          std::mt19937 rng(seed);
          const rt::StealPolicyKind kinds[] = {
              rt::StealPolicyKind::last_victim,
              rt::StealPolicyKind::hierarchical,
              rt::StealPolicyKind::random,
              rt::StealPolicyKind::sequential,
          };
          std::uniform_int_distribution<int> pick(0, 3);
          std::uniform_int_distribution<int> pause(1, sleep_us_max);
          while (!stop_.load(std::memory_order_acquire)) {
            s.reconfigure_live(kinds[pick(rng)]);
            swaps_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(pause(rng)));
          }
        }) {}

  ~PolicyChurn() { stop(); }

  void stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] int swaps() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<int> swaps_{0};
  std::thread thread_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Failing before this PR: swapping the steal policy under a live region
// required stopping it — the only path, reconfigure(), throws under a live
// region (and still does, because it also re-detects topology and rebuilds
// arenas). reconfigure_live() performs the policy-kind swap that used to
// throw, without stopping anything.
// ---------------------------------------------------------------------------

TEST(LiveReconf, PolicyKindSwapUnderLiveRegionNoLongerThrows) {
  rt::Scheduler s(clean_cfg(4));
  std::uint64_t r = 0;
  std::atomic<bool> in_region{false};
  std::atomic<bool> swapped{false};
  std::thread swapper([&] {
    while (!in_region.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The OLD interface still refuses under a live region (it re-detects
    // topology — that stays a between-regions operation by design)...
    EXPECT_THROW(s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2"),
                 std::logic_error);
    // ...but the live interface performs the kind swap in place.
    EXPECT_NO_THROW(s.reconfigure_live(rt::StealPolicyKind::hierarchical));
    EXPECT_NO_THROW(s.reconfigure_live(rt::StealPolicyKind::last_victim));
    swapped.store(true, std::memory_order_release);
  });
  s.run_single([&] {
    in_region.store(true, std::memory_order_release);
    r = fib_task(24);  // long enough for the swapper to land mid-region
  });
  swapper.join();
  EXPECT_TRUE(swapped.load());
  EXPECT_EQ(r, fib_ref(24));
  expect_accounting_balanced(s.stats());
}

TEST(LiveReconf, SwapFromInsideATaskBody) {
  // A team worker may swap from inside a task it is executing: the
  // installer advances the caller's own pin by hand, so waiting for
  // quiescence cannot deadlock on the caller itself.
  rt::Scheduler s(clean_cfg(4, "2x2"));
  std::uint64_t r = 0;
  s.run_single([&] {
    s.reconfigure_live(rt::StealPolicyKind::hierarchical);
    r = fib_task(18);
    s.reconfigure_live(rt::StealPolicyKind::last_victim);
    r += fib_task(12);
  });
  EXPECT_EQ(r, fib_ref(18) + fib_ref(12));
  expect_accounting_balanced(s.stats());
}

TEST(LiveReconf, DisabledByConfigThrows) {
  rt::SchedulerConfig cfg = clean_cfg(2);
  cfg.live_reconfigure = false;  // RT_LIVE_RECONF=0
  rt::Scheduler s(cfg);
  EXPECT_THROW(s.reconfigure_live(rt::StealPolicyKind::hierarchical),
               std::logic_error);
  // The between-regions path is unaffected by the gate.
  s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2");
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(14); });
  EXPECT_EQ(r, fib_ref(14));
}

TEST(LiveReconf, SnapshotVersionAndActiveKindTrackSwaps) {
  rt::Scheduler s(clean_cfg(2));
  const std::uint64_t v0 = s.snapshot_version();
  EXPECT_GE(v0, 1u);  // the constructor installed generation 1
  s.reconfigure_live(rt::StealPolicyKind::hierarchical);
  EXPECT_EQ(s.snapshot_version(), v0 + 1);
  EXPECT_EQ(s.active_steal_policy(), rt::StealPolicyKind::hierarchical);
  s.reconfigure_live(rt::StealPolicyKind::random);
  EXPECT_EQ(s.snapshot_version(), v0 + 2);
  EXPECT_EQ(s.active_steal_policy(), rt::StealPolicyKind::random);
}

TEST(LiveReconf, TunablesSwapGrainAndWatchdog) {
  rt::SchedulerConfig cfg = clean_cfg(4);
  cfg.use_adaptive_grain = true;
  rt::Scheduler s(cfg);
  rt::Scheduler::LiveTunables tune;
  tune.grain_base = 32;
  tune.watchdog_ms = 5000;
  tune.watchdog_cancel = 1;  // report-only
  s.reconfigure_live(rt::StealPolicyKind::last_victim, tune);
  // The swap reseeds the live grain generation; regions still compute the
  // right answers with the retuned floor.
  std::atomic<std::int64_t> sum{0};
  s.run_single([&] {
    rt::spawn_range(0, 10000, 1,
                    [&sum](std::int64_t i) {
                      sum.fetch_add(i, std::memory_order_relaxed);
                    });
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
  expect_accounting_balanced(s.stats());
}

// ---------------------------------------------------------------------------
// A/B output identity: a mid-region policy swap moves WHERE tasks run,
// never results. Reference outputs come from an undisturbed scheduler.
// ---------------------------------------------------------------------------

TEST(LiveReconf, KernelOutputsIdenticalUnderPolicyChurn) {
  const auto ap = bots::alignment::params_for(bots::core::InputClass::test);
  const auto aseqs = bots::alignment::make_input(ap);
  const auto sp = bots::sort::params_for(bots::core::InputClass::test);
  const auto lp = bots::sparselu::params_for(bots::core::InputClass::test);

  std::vector<int> align_ref;
  std::vector<bots::sort::Elm> sort_ref = bots::sort::make_input(sp);
  bots::sparselu::BlockMatrix lu_ref = bots::sparselu::make_input(lp);
  {
    rt::Scheduler s(clean_cfg(8, "2x4"));
    align_ref = bots::alignment::run_parallel(ap, aseqs, s, {});
    bots::sort::run_parallel(sp, sort_ref, s, {});
    bots::sparselu::run_parallel(lp, lu_ref, s, {});
  }

  rt::Scheduler s(clean_cfg(8, "2x4"));
  PolicyChurn churn(s, /*seed=*/42);
  const std::vector<int> align_b =
      bots::alignment::run_parallel(ap, aseqs, s, {});
  std::vector<bots::sort::Elm> sort_b = bots::sort::make_input(sp);
  bots::sort::run_parallel(sp, sort_b, s, {});
  bots::sparselu::BlockMatrix lu_b = bots::sparselu::make_input(lp);
  bots::sparselu::run_parallel(lp, lu_b, s, {});
  churn.stop();

  EXPECT_GT(churn.swaps(), 0);
  EXPECT_EQ(align_b, align_ref);
  EXPECT_EQ(sort_b, sort_ref);
  const std::size_t nb = lu_ref.nb();
  const std::size_t bs = lu_ref.bs();
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      ASSERT_EQ(lu_b.empty(i, j), lu_ref.empty(i, j)) << i << "," << j;
      if (lu_ref.empty(i, j)) continue;
      // Bitwise: the swap may move blocks between workers but never the
      // per-element float operation order within a block task.
      ASSERT_EQ(0, std::memcmp(lu_b.block(i, j), lu_ref.block(i, j),
                               bs * bs * sizeof(float)))
          << "block " << i << "," << j;
    }
  }
  expect_accounting_balanced(s.stats());
  expect_pool_balanced(s);
}

// ---------------------------------------------------------------------------
// Steal-storm stress (the CI churn job runs this whole binary under TSAN):
// maximal steal pressure — deep fib spawns plus fine-grained ranges — while
// the policy swaps as fast as the installer can publish generations.
// ---------------------------------------------------------------------------

TEST(LiveReconf, SwapDuringStealStorm) {
  rt::Scheduler s(clean_cfg(8, "2x4"));
  PolicyChurn churn(s, /*seed=*/7, /*sleep_us_max=*/1);
  std::uint64_t r = 0;
  std::atomic<std::int64_t> sum{0};
  // A swap settles in ~a worker idle-backoff cycle, so the count is wall-
  // clock bound, not round bound: keep the storm up until enough swaps
  // landed (bounded — ~10 swaps arrive within a few storm rounds).
  std::int64_t rounds = 0;
  while ((churn.swaps() <= 10 || rounds < 3) && rounds < 200) {
    s.run_single([&] {
      rt::spawn([&r] { r = fib_task(22); });
      rt::spawn_range(0, 20000, 1, [&sum](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      rt::taskwait();
    });
    ++rounds;
    ASSERT_EQ(r, fib_ref(22)) << "round " << rounds;
  }
  churn.stop();
  EXPECT_GT(churn.swaps(), 10);
  EXPECT_EQ(sum.load(), rounds * (20000LL * 19999 / 2));
  expect_accounting_balanced(s.stats());
  expect_pool_balanced(s);
}

// ---------------------------------------------------------------------------
// Conservation across >= 100 random swap points: many short regions (mixed
// fib / range / graph-replay shapes), each under churn swapping at random
// microsecond offsets — every ledger the runtime keeps must balance after
// every round, and the graph-replay edge law must hold at the end.
// ---------------------------------------------------------------------------

TEST(LiveReconf, ConservationLawsAcrossRandomSwapPoints) {
  rt::SchedulerConfig cfg = clean_cfg(8, "2x4");
  cfg.use_taskgraph_replay = true;  // pin against RT_TASKGRAPH_REPLAY=0 legs
  rt::Scheduler s(cfg);
  std::vector<std::uint64_t> cells(8, 0);
  rt::TaskGraph g;
  const auto build = [&cells](rt::DepScope& sc) {
    auto& v = cells;
    sc.spawn({rt::out(v[0])}, [&v] { v[0] += 3; });
    for (std::size_t i = 1; i <= 6; ++i) {
      sc.spawn({rt::in(v[0]), rt::out(v[i])}, [&v, i] { v[i] = v[0] * i; });
    }
    sc.spawn({rt::in(v[1]), rt::in(v[6]), rt::inout(v[7])},
             [&v] { v[7] = v[1] + v[6]; });
  };

  // One churn thread across every round, swapping at random microsecond
  // offsets: rounds repeat until >= 100 swaps landed, so the swap points
  // sample arbitrary positions in the fib / range / replay phases of many
  // region executions (bounded: a swap settles in ~one idle-backoff cycle).
  PolicyChurn churn(s, /*seed=*/1000, /*sleep_us_max=*/25);
  std::vector<std::uint64_t> first;
  int round = 0;
  while ((churn.swaps() < 100 || round < 12) && round < 400) {
    std::uint64_t r = 0;
    std::atomic<std::int64_t> sum{0};
    std::fill(cells.begin(), cells.end(), 0);
    s.run_single([&] {
      rt::spawn([&r] { r = fib_task(19); });
      rt::spawn_range(0, 8000, 1, [&sum](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      rt::taskwait();
      rt::run_graph_region(s, g, &cells, build);
    });
    ASSERT_EQ(r, fib_ref(19)) << "round " << round;
    ASSERT_EQ(sum.load(), 8000LL * 7999 / 2) << "round " << round;
    if (round == 0) first = cells;
    ASSERT_EQ(cells, first) << "round " << round;
    // The full ledger set, re-checked after EVERY round so a swap-induced
    // leak is caught at the round that introduced it.
    const auto st = s.stats();
    expect_accounting_balanced(st);
    expect_pool_balanced(s);
    ++round;
  }
  const int total_swaps = churn.swaps();
  churn.stop();
  EXPECT_GE(total_swaps, 100) << "churn too slow to exercise the swap paths";
  // Edge law: every dynamic edge resolved once, every baked edge once per
  // replay — swaps must not have re-recorded the graph (the epoch fold) or
  // double-resolved anything.
  const auto t = s.stats().total;
  EXPECT_EQ(t.edges_resolved,
            t.deps_edges + g.replays() * g.edge_count());
}

// ---------------------------------------------------------------------------
// Graph-epoch fold: reconfigure_live is NOT structure-relevant — frozen
// graphs stay valid across any number of live swaps and re-record exactly
// when reconfigure() (team/topology) moves the epoch.
// ---------------------------------------------------------------------------

TEST(LiveReconf, DoesNotInvalidateRecordedGraphs) {
  rt::SchedulerConfig cfg = clean_cfg(8);
  cfg.use_taskgraph_replay = true;
  rt::Scheduler s(cfg);
  std::vector<std::uint64_t> cells(4, 0);
  rt::TaskGraph g;
  const auto build = [&cells](rt::DepScope& sc) {
    auto& v = cells;
    sc.spawn({rt::out(v[0])}, [&v] { v[0] = 11; });
    sc.spawn({rt::in(v[0]), rt::out(v[1])}, [&v] { v[1] = v[0] * 2; });
    sc.spawn({rt::in(v[1]), rt::inout(v[2])}, [&v] { v[2] += v[1]; });
  };
  s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
  ASSERT_TRUE(g.valid_for(s, &cells));

  const std::uint64_t epoch_before = s.graph_epoch();
  s.reconfigure_live(rt::StealPolicyKind::hierarchical);
  s.reconfigure_live(rt::StealPolicyKind::last_victim);
  EXPECT_EQ(s.graph_epoch(), epoch_before);  // the fold: tunables, not structure
  EXPECT_TRUE(g.valid_for(s, &cells));

  std::fill(cells.begin(), cells.end(), 0);
  s.run_single([&] { rt::run_graph_region(s, g, &cells, build); });
  EXPECT_EQ(s.stats().total.graphs_recorded, 1u);  // replayed, NOT re-recorded
  EXPECT_EQ(s.stats().total.graphs_replayed, 1u);

  s.reconfigure(rt::StealPolicyKind::last_victim, "");  // structure-relevant
  EXPECT_FALSE(g.valid_for(s, &cells));
}

// ---------------------------------------------------------------------------
// Server mode: live retune under the resident region, and the
// last_region_status race sentinel.
// ---------------------------------------------------------------------------

TEST(LiveReconf, ServerRetuneUnderLoad) {
  rt::Scheduler s(clean_cfg(4, "2x2"));
  rt::ServerConfig sc;
  rt::TaskServer server(s, sc);
  std::vector<rt::SubmitResult> subs;
  for (int i = 0; i < 8; ++i) {
    subs.push_back(server.submit([] { (void)fib_task(18); }));
  }
  EXPECT_TRUE(server.retune(rt::StealPolicyKind::hierarchical));
  for (int i = 0; i < 8; ++i) {
    subs.push_back(server.submit([] { (void)fib_task(16); }));
  }
  EXPECT_TRUE(server.retune(rt::StealPolicyKind::last_victim));
  for (auto& sub : subs) {
    EXPECT_EQ(sub.handle.wait(), rt::RequestStatus::completed);
    EXPECT_TRUE(sub.handle.ledger_balanced());
  }
  EXPECT_EQ(server.stats().retunes, 2u);
  server.drain();
  expect_accounting_balanced(s.stats());
}

TEST(LiveReconf, RetuneRespectsLiveReconfGate) {
  rt::SchedulerConfig cfg = clean_cfg(2);
  cfg.live_reconfigure = false;
  rt::Scheduler s(cfg);
  rt::TaskServer server(s, rt::ServerConfig{});
  EXPECT_FALSE(server.retune(rt::StealPolicyKind::hierarchical));
  EXPECT_EQ(server.stats().retunes, 0u);
  server.drain();
}

TEST(LiveReconf, LastRegionStatusReturnsSentinelWhileRegionLive) {
  // Failing before: last_region_status() during server mode silently
  // returned the PREVIOUS region's status (or the constructor default) —
  // a race the caller could not detect. Now a live region answers with the
  // explicit `unknown` sentinel, and the real status is readable again
  // once the region is down.
  rt::Scheduler s(clean_cfg(2));
  std::uint64_t r = 0;
  s.run_single([&r] { r = fib_task(10); });
  EXPECT_EQ(r, fib_ref(10));
  EXPECT_EQ(s.last_region_status(), rt::RegionStatus::completed);
  {
    rt::TaskServer server(s, rt::ServerConfig{});
    EXPECT_EQ(s.last_region_status(), rt::RegionStatus::unknown);
    auto sub = server.submit([] { (void)fib_task(12); });
    EXPECT_EQ(sub.handle.wait(), rt::RequestStatus::completed);
    EXPECT_EQ(s.last_region_status(), rt::RegionStatus::unknown);
    server.drain();
  }
  // Resident region down: the accessor is race-free again.
  EXPECT_NE(s.last_region_status(), rt::RegionStatus::unknown);
}
