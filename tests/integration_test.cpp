// Integration tests: the whole suite driven through the registry, the way
// the benches and the bots_run example drive it — every application, every
// version, several thread counts, always self-verified.
#include <gtest/gtest.h>

#include "core/registry.hpp"

namespace core = bots::core;
namespace rt = bots::rt;

namespace {

struct SuiteCase {
  std::string app;
  std::string version;
};

std::vector<SuiteCase> all_cases() {
  std::vector<SuiteCase> cases;
  for (const auto& app : core::apps()) {
    for (const auto& v : app.versions) {
      cases.push_back({app.name, v.name});
    }
  }
  return cases;
}

class SuiteMatrix : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(SuiteMatrix, TestClassRunVerifies) {
  const SuiteCase& sc = GetParam();
  const auto* app = core::find_app(sc.app);
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  const auto rep = app->run(core::InputClass::test, sc.version, sched, true);
  EXPECT_EQ(rep.verified, core::Verified::ok) << sc.app << "/" << sc.version;
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_EQ(rep.threads, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, SuiteMatrix,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           std::string n =
                               info.param.app + "_" + info.param.version;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Suite, SerialBaselinesVerify) {
  for (const auto& app : core::apps()) {
    const auto rep = app.run_serial(core::InputClass::test);
    EXPECT_EQ(rep.verified, core::Verified::ok) << app.name;
    EXPECT_EQ(rep.version, "serial");
    EXPECT_EQ(rep.threads, 1u);
  }
}

TEST(Suite, ProfileRowsAreWellFormed) {
  for (const auto& app : core::apps()) {
    const auto row = app.profile_row(core::InputClass::test);
    EXPECT_EQ(row.app, app.name);
    EXPECT_GT(row.potential_tasks, 0u) << app.name;
    EXPECT_GE(row.serial_seconds, 0.0) << app.name;
    EXPECT_GT(row.memory_bytes, 0u) << app.name;
    EXPECT_GE(row.arith_ops_per_task, 0.0) << app.name;
    EXPECT_GE(row.pct_writes_shared, 0.0) << app.name;
    EXPECT_LE(row.pct_writes_shared, 100.0) << app.name;
  }
}

TEST(Suite, UnknownVersionThrows) {
  const auto* app = core::find_app("fib");
  ASSERT_NE(app, nullptr);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 2});
  EXPECT_THROW(app->run(core::InputClass::test, "no-such-version", sched, true),
               std::invalid_argument);
}

TEST(Suite, BestVersionsRunAtEightThreads) {
  // The Figure 3 configuration, scaled to the test class.
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  for (const auto& app : core::apps()) {
    const auto& best = app.best_version();
    const auto rep = app.run(core::InputClass::test, best.name, sched, true);
    EXPECT_EQ(rep.verified, core::Verified::ok)
        << app.name << "/" << best.name;
  }
}

TEST(Suite, OneSchedulerRunsTheWholeSuite) {
  // Scheduler reuse across heterogeneous workloads (persistent worker pool).
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 6});
  for (int round = 0; round < 2; ++round) {
    for (const auto& app : core::apps()) {
      const auto rep =
          app.run(core::InputClass::test, app.best_version().name, sched, true);
      ASSERT_EQ(rep.verified, core::Verified::ok) << app.name;
    }
  }
}

TEST(Suite, RuntimeCutoffPoliciesRunBestVersions) {
  for (auto policy : {rt::CutoffPolicy::none, rt::CutoffPolicy::max_tasks,
                      rt::CutoffPolicy::max_depth, rt::CutoffPolicy::adaptive}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 4;
    cfg.cutoff = policy;
    rt::Scheduler sched(cfg);
    for (const char* name : {"fib", "nqueens", "sort", "health"}) {
      const auto* app = core::find_app(name);
      ASSERT_NE(app, nullptr);
      const auto rep =
          app->run(core::InputClass::test, app->best_version().name, sched, true);
      EXPECT_EQ(rep.verified, core::Verified::ok)
          << name << " under " << to_string(policy);
    }
  }
}

}  // namespace
