// Strassen kernel tests: algebraic identities, conventional-multiply
// cross-checks, version matrix.
#include <cmath>

#include <gtest/gtest.h>

#include "kernels/strassen/strassen.hpp"

namespace st = bots::strassen;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

st::Params sized(std::size_t n, std::size_t base = 32) {
  st::Params p;
  p.n = n;
  p.base = base;
  return p;
}

std::vector<double> identity(std::size_t n) {
  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] = 1.0;
  return m;
}

TEST(Strassen, MultiplyByIdentity) {
  const st::Params p = sized(128);
  const auto a = st::make_matrix(p, 1);
  const auto i = identity(p.n);
  const auto c = st::run_serial(p, a, i);
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_NEAR(c[k], a[k], 1e-9);
  }
}

TEST(Strassen, MultiplyByZeroIsZero) {
  const st::Params p = sized(128);
  const auto a = st::make_matrix(p, 1);
  const std::vector<double> z(p.n * p.n, 0.0);
  const auto c = st::run_serial(p, a, z);
  for (double v : c) ASSERT_EQ(v, 0.0);
}

TEST(Strassen, MatchesConventionalMultiply) {
  const st::Params p = sized(256);
  const auto a = st::make_matrix(p, 1);
  const auto b = st::make_matrix(p, 2);
  const auto c = st::run_serial(p, a, b);
  EXPECT_TRUE(st::verify(p, a, b, c));
}

TEST(Strassen, VerifyRejectsCorruption) {
  const st::Params p = sized(128);
  const auto a = st::make_matrix(p, 1);
  const auto b = st::make_matrix(p, 2);
  auto c = st::run_serial(p, a, b);
  c[p.n + 3] += 0.5;
  EXPECT_FALSE(st::verify(p, a, b, c));
}

TEST(Strassen, BaseCaseEqualsRecursiveCase) {
  // n == base: plain blocked multiply; n >> base: full Strassen recursion.
  const auto a128 = st::make_matrix(sized(128), 1);
  const auto b128 = st::make_matrix(sized(128), 2);
  const auto direct = st::run_serial(sized(128, 128), a128, b128);
  const auto recursive = st::run_serial(sized(128, 16), a128, b128);
  for (std::size_t k = 0; k < direct.size(); ++k) {
    ASSERT_NEAR(direct[k], recursive[k], 1e-7);
  }
}

struct Case {
  rt::Tiedness tied;
  core::AppCutoff cutoff;
};

class StrassenVersions
    : public ::testing::TestWithParam<std::tuple<Case, unsigned>> {};

TEST_P(StrassenVersions, MatchesVerifier) {
  const auto [vc, threads] = GetParam();
  st::Params p = sized(256);
  p.cutoff_depth = 2;
  const auto a = st::make_matrix(p, 1);
  const auto b = st::make_matrix(p, 2);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  const auto c = st::run_parallel(p, a, b, sched, {vc.tied, vc.cutoff});
  EXPECT_TRUE(st::verify(p, a, b, c));
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<Case, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.cutoff)) + "_" +
                  to_string(vc.tied) + "_t" +
                  std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrassenVersions,
    ::testing::Combine(
        ::testing::Values(Case{rt::Tiedness::tied, core::AppCutoff::none},
                          Case{rt::Tiedness::untied, core::AppCutoff::none},
                          Case{rt::Tiedness::tied, core::AppCutoff::if_clause},
                          Case{rt::Tiedness::untied, core::AppCutoff::manual}),
        ::testing::Values(1u, 7u)), case_name);

TEST(Strassen, ParallelBitwiseMatchesSerial) {
  // Same arithmetic, same association order: results must be identical.
  const st::Params p = sized(256);
  const auto a = st::make_matrix(p, 1);
  const auto b = st::make_matrix(p, 2);
  const auto serial = st::run_serial(p, a, b);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  const auto parallel =
      st::run_parallel(p, a, b, sched, {rt::Tiedness::untied, core::AppCutoff::none});
  EXPECT_EQ(serial, parallel);
}

TEST(Strassen, SevenTasksPerDecomposition) {
  st::Params p = sized(128, 64);  // exactly one decomposition level
  const auto a = st::make_matrix(p, 1);
  const auto b = st::make_matrix(p, 2);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 2});
  (void)st::run_parallel(p, a, b, sched,
                         {rt::Tiedness::tied, core::AppCutoff::none});
  EXPECT_EQ(sched.stats().total.tasks_created, 7u);
}

TEST(Strassen, ProfileRowShape) {
  const auto row = st::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  EXPECT_GT(row.arith_ops_per_task, 1000.0);  // coarse tasks
  EXPECT_GT(row.pct_writes_shared, 0.0);      // quadrant combines into C
}

TEST(Strassen, AppInfoMetadata) {
  const auto app = st::make_app_info();
  EXPECT_EQ(app.task_directives, 8);
  EXPECT_EQ(app.best_version().name, "nocutoff-tied");  // Figure 3 annotation
}

}  // namespace
