// Robustness tests for the PR-6 fault-tolerance layer: cooperative
// cancellation + deadlines, the descriptor degradation ladder, deterministic
// fault injection, the stall watchdog, hardened env parsing, and teardown
// edge cases. Everything here runs the REAL scheduler — faults are injected
// through FaultPlan, never by mocking — so the invariants checked are the
// ones production would rely on.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = fib_task(n - 1); });
  rt::spawn([&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

// Creation-side and execution-side ledgers that must balance in EVERY
// terminal region state — completed, cancelled, or deadline_exceeded.
void expect_accounting_balanced(const rt::StatsSnapshot& st) {
  EXPECT_EQ(st.total.tasks_created + st.total.range_splits,
            st.total.tasks_deferred + st.total.tasks_if_inlined + st.total.tasks_cutoff_inlined);
  EXPECT_EQ(st.total.tasks_executed + st.total.tasks_discarded, st.total.tasks_deferred);
  EXPECT_EQ(st.total.pool_home_frees + st.total.pool_remote_frees,
            st.total.pool_reuse + st.total.pool_fresh);
}

// ---------------------------------------------------------------------------
// Satellite: hardened env parsing. Malformed values fall back to defaults
// (with a stderr warning we don't capture — the contract under test is the
// RETURNED value, not the log line).
// ---------------------------------------------------------------------------

TEST(EnvParsing, ParseFlagTable) {
  struct Case {
    const char* in;
    bool ok;
    bool value;
  };
  const Case cases[] = {
      {"1", true, true},    {"true", true, true},  {"on", true, true},
      {"0", true, false},   {"false", true, false}, {"off", true, false},
      {"", false, false},   {"yes", false, false},  {"2", false, false},
      {"TRUE", false, false}, {"1 ", false, false}, {"o n", false, false},
  };
  for (const Case& c : cases) {
    bool out = false;
    EXPECT_EQ(rt::parse_flag(c.in, out), c.ok) << "input: '" << c.in << "'";
    if (c.ok) {
      EXPECT_EQ(out, c.value) << "input: '" << c.in << "'";
    }
  }
}

TEST(EnvParsing, ParseU32Table) {
  struct Case {
    const char* in;
    bool ok;
    std::uint32_t value;
  };
  const Case cases[] = {
      {"0", true, 0},
      {"17", true, 17},
      {"4294967295", true, 4294967295u},
      {"4294967296", false, 0},   // one past the u32 range
      {"", false, 0},
      {"-1", false, 0},
      {"1e3", false, 0},
      {"0x10", false, 0},
      {" 7", false, 0},
      {"7 ", false, 0},
      {"99999999999999999999999", false, 0},  // longer than any u64
  };
  for (const Case& c : cases) {
    std::uint32_t out = 0;
    EXPECT_EQ(rt::parse_u32(c.in, out), c.ok) << "input: '" << c.in << "'";
    if (c.ok) {
      EXPECT_EQ(out, c.value) << "input: '" << c.in << "'";
    }
  }
}

TEST(EnvParsing, StealPolicyFromStringTable) {
  struct Case {
    const char* in;
    bool ok;
  };
  const Case cases[] = {
      {"legacy", true},       {"random", true},     {"sequential", true},
      {"last_victim", true},  {"hierarchical", true},
      {"", false},            {"Random", false},    {"hier", false},
      {"last-victim", false}, {"random ", false},
  };
  for (const Case& c : cases) {
    rt::StealPolicyKind k = rt::StealPolicyKind::legacy;
    EXPECT_EQ(rt::steal_policy_from_string(c.in, k), c.ok)
        << "input: '" << c.in << "'";
  }
}

TEST(EnvParsing, MalformedEnvFallsBackToDefault) {
  ::setenv("RT_TEST_FLAG_KNOB", "banana", 1);
  EXPECT_TRUE(rt::env_flag("RT_TEST_FLAG_KNOB", true));
  EXPECT_FALSE(rt::env_flag("RT_TEST_FLAG_KNOB", false));
  ::setenv("RT_TEST_FLAG_KNOB", "off", 1);
  EXPECT_FALSE(rt::env_flag("RT_TEST_FLAG_KNOB", true));

  ::setenv("RT_TEST_U32_KNOB", "12abc", 1);
  EXPECT_EQ(rt::env_u32("RT_TEST_U32_KNOB", 42u), 42u);
  ::setenv("RT_TEST_U32_KNOB", "12", 1);
  EXPECT_EQ(rt::env_u32("RT_TEST_U32_KNOB", 42u), 12u);

  ::unsetenv("RT_TEST_FLAG_KNOB");
  ::unsetenv("RT_TEST_U32_KNOB");
}

TEST(EnvParsing, MalformedSyntheticTopologyFallsThrough) {
  // A malformed spec must behave exactly like an absent one (warn + fall
  // back), never crash or half-apply.
  for (const char* bad : {"x", "4x", "x4", "2y4", "0x4", "4x0", "2x4x8",
                          "-2x4", " 2x4", "2x4 "}) {
    const rt::Topology t = rt::Topology::detect(4, bad);
    EXPECT_NE(t.source(), "synthetic") << "spec: '" << bad << "'";
    EXPECT_EQ(t.num_workers(), 4u);
  }
  const rt::Topology ok = rt::Topology::detect(8, "2x4");
  EXPECT_EQ(ok.source(), "synthetic");
  EXPECT_EQ(ok.num_nodes(), 2u);
}

TEST(EnvParsing, FaultPlanMalformedEntriesIgnored) {
  rt::FaultPlan p;
  p.parse("seed=xyz,all=banana,descriptor_alloc,=0.5,bogus_site=0.5,"
          "task_body=1.5,arena_carve=0.25");
  EXPECT_EQ(p.seed(), 1u);  // malformed seed keeps the default
  EXPECT_TRUE(p.active());  // the one well-formed entry survived
  EXPECT_TRUE(p.site_active(rt::FaultSite::arena_carve));
  // task_body=1.5 is out of range -> ignored, site stays inactive.
  EXPECT_FALSE(p.site_active(rt::FaultSite::task_body));
  EXPECT_FALSE(p.site_active(rt::FaultSite::descriptor_alloc));

  p.parse("");
  EXPECT_FALSE(p.active());
  p.parse("seed=9,all=1.0");
  EXPECT_EQ(p.seed(), 9u);
  for (int i = 0; i < static_cast<int>(rt::fault_site_count); ++i) {
    EXPECT_TRUE(p.site_active(static_cast<rt::FaultSite>(i)));
  }
}

// ---------------------------------------------------------------------------
// Tentpole: deterministic fault injection.
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameVerdictSequence) {
  rt::FaultPlan a;
  rt::FaultPlan b;
  a.parse("seed=123,task_body=0.3");
  b.parse("seed=123,task_body=0.3");
  std::vector<bool> va, vb;
  for (int i = 0; i < 200; ++i) {
    va.push_back(a.should_fail(rt::FaultSite::task_body));
    vb.push_back(b.should_fail(rt::FaultSite::task_body));
  }
  EXPECT_EQ(va, vb);
  EXPECT_EQ(a.injected(rt::FaultSite::task_body),
            b.injected(rt::FaultSite::task_body));
  // ~0.3 hit rate, deterministic so an exact band is safe to assert.
  EXPECT_GT(a.total_injected(), 20u);
  EXPECT_LT(a.total_injected(), 120u);

  rt::FaultPlan c;
  c.parse("seed=124,task_body=0.3");
  std::vector<bool> vc;
  for (int i = 0; i < 200; ++i) {
    vc.push_back(c.should_fail(rt::FaultSite::task_body));
  }
  EXPECT_NE(va, vc);  // a different seed reshuffles the draws
}

TEST(FaultPlan, ProbabilityOneAlwaysFires) {
  rt::FaultPlan p;
  p.parse("seed=5,descriptor_alloc=1.0");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(p.should_fail(rt::FaultSite::descriptor_alloc));
  }
  EXPECT_FALSE(p.should_fail(rt::FaultSite::pin));  // other sites untouched
}

// ---------------------------------------------------------------------------
// Tentpole: cooperative cancellation.
// ---------------------------------------------------------------------------

TEST(Cancellation, MidRegionCancelDiscardsAndBalances) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::atomic<std::uint64_t> bodies{0};
  const rt::RegionResult full = s.run_single(
      [&] {
        bodies.store(0);
        fib_task(24);
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(full.status, rt::RegionStatus::completed);
  const std::uint64_t full_exec = full.stats.total.tasks_executed;

  s.reset_stats();  // RegionResult.stats is cumulative per scheduler
  // Defer the whole tree, then cancel from the root body: the cancel lands
  // before more than a sliver of the tree can be stolen and executed, so the
  // latency assertion below is not scheduler-timing-dependent.
  const rt::RegionResult res = s.run_single(
      [&] {
        bodies.fetch_add(1, std::memory_order_relaxed);
        rt::spawn([&] { fib_task(24); });
        rt::cancel_region();
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::cancelled);
  EXPECT_EQ(s.last_region_status(), rt::RegionStatus::cancelled);
  EXPECT_GT(res.stats.total.tasks_discarded + res.stats.total.tasks_discarded_inline, 0u);
  // Cancellation latency: the cancelled region must run far fewer bodies
  // than the full tree (fib(24) defers tens of thousands of tasks).
  EXPECT_LT(res.stats.total.tasks_executed, full_exec / 2);
  expect_accounting_balanced(res.stats);
}

TEST(Cancellation, CancellationPointObservedInBody) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  rt::Scheduler s(cfg);
  std::atomic<bool> observed{false};
  const rt::RegionResult res = s.run_single(
      [&] {
        rt::cancel_region();
        // Same task that cancelled sees the flag immediately.
        observed.store(rt::cancellation_point());
      },
      std::chrono::milliseconds(0));
  EXPECT_TRUE(observed.load());
  EXPECT_EQ(res.status, rt::RegionStatus::cancelled);
}

TEST(Cancellation, CancelOnExceptionWithNodePools) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.synthetic_topology = "2x4";
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  cfg.use_node_pools = true;
  cfg.cancel_on_exception = true;
  rt::Scheduler s(cfg);
  EXPECT_THROW(
      {
        s.run_single([&] {
          rt::spawn([] { throw std::runtime_error("boom"); });
          fib_task(24);
        });
      },
      std::runtime_error);
  EXPECT_EQ(s.last_region_status(), rt::RegionStatus::cancelled);
  const rt::StatsSnapshot st = s.stats();
  expect_accounting_balanced(st);
  // Every descriptor retired home: the node pools hold all carved memory.
  std::size_t free_sum = 0, carved_sum = 0;
  for (const auto& n : s.node_pool_snapshot()) {
    free_sum += n.arena_free + n.cached + n.in_transit;
    carved_sum += n.arena_carved;
  }
  EXPECT_EQ(free_sum, carved_sum);
}

TEST(Cancellation, ExternalCancelFromNonTeamThread) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::atomic<bool> spinning{false};
  // The helper thread issues the cancel from OUTSIDE the team once the
  // region signals it is busy — the only way out of the busy loop below.
  std::thread outside([&] {
    while (!spinning.load(std::memory_order_acquire)) {}
    s.cancel_current_region();
  });
  const rt::RegionResult res = s.run_single(
      [&] {
        spinning.store(true, std::memory_order_release);
        while (!rt::cancellation_point()) { fib_task(10); }
      },
      std::chrono::milliseconds(0));
  outside.join();
  EXPECT_EQ(res.status, rt::RegionStatus::cancelled);
  expect_accounting_balanced(res.stats);
}

// ---------------------------------------------------------------------------
// Tentpole: region deadlines.
// ---------------------------------------------------------------------------

TEST(Deadline, ExpiredDeadlineReportsDeadlineExceeded) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  const rt::RegionResult res = s.run_single(
      [&] {
        while (!rt::cancellation_point()) {
          fib_task(12);  // keep the region busy until the deadline fires
        }
      },
      std::chrono::milliseconds(30));
  EXPECT_EQ(res.status, rt::RegionStatus::deadline_exceeded);
  expect_accounting_balanced(res.stats);
}

TEST(Deadline, FastRegionCompletesUnderDeadline) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res = s.run_single(
      [&] { r = fib_task(20); }, std::chrono::milliseconds(10000));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(20));
}

TEST(Deadline, RunAllHonoursDeadline) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  const rt::RegionResult res = s.run_all(
      [&](unsigned) {
        while (!rt::cancellation_point()) { fib_task(10); }
      },
      std::chrono::milliseconds(30));
  EXPECT_EQ(res.status, rt::RegionStatus::deadline_exceeded);
}

TEST(Deadline, RunAllOverloadEveryWorkerSpawning) {
  // Overload flavour of the run_all deadline: every worker keeps GENERATING
  // deferred work when the deadline fires, so the cancel has to discard a
  // continuously refilled task population — the ledgers must still balance
  // and the region must still terminate promptly.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const rt::RegionResult res = s.run_all(
      [&](unsigned) {
        while (!rt::cancellation_point()) {
          rt::spawn([] { fib_task(8); });
          rt::spawn([] { fib_task(8); });
          rt::taskwait();
        }
      },
      std::chrono::milliseconds(40));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(res.status, rt::RegionStatus::deadline_exceeded);
  EXPECT_LT(elapsed.count(), 5000);  // terminated, not wedged
  expect_accounting_balanced(res.stats);
}

// ---------------------------------------------------------------------------
// Tentpole: stall watchdog.
// ---------------------------------------------------------------------------

TEST(Watchdog, DetectsStallAndCancels) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.watchdog_ms = 40;
  cfg.watchdog_cancel = true;
  rt::Scheduler s(cfg);
  const rt::RegionResult res = s.run_single(
      [&] {
        // No spawns, no progress ticks: the watchdog is the only way out.
        while (!rt::cancellation_point()) {}
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::cancelled);
  EXPECT_GE(s.stalls_detected(), 1u);
}

TEST(Watchdog, QuietOnHealthyRegion) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.watchdog_ms = 2000;  // far longer than the region
  cfg.watchdog_cancel = true;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(22); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(22));
  EXPECT_EQ(s.stalls_detected(), 0u);
}

// ---------------------------------------------------------------------------
// Tentpole: degradation ladder, one site at a time at p=1.0 — the outcome
// must be deterministic AND correct.
// ---------------------------------------------------------------------------

TEST(Degradation, DescriptorAllocFullFailureRunsInline) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.fault_plan = "seed=3,descriptor_alloc=1.0";
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(20); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(20));
  EXPECT_GT(res.stats.total.pool_alloc_fallbacks, 0u);
  EXPECT_GT(res.stats.total.tasks_degraded_inline, 0u);
  EXPECT_EQ(res.stats.total.tasks_deferred, 0u);  // nothing ever got a descriptor
  expect_accounting_balanced(res.stats);
}

TEST(Degradation, PoolRungFailureFallsBackToHeap) {
  // Only the pool rung fails (arena_carve at p=1.0 forces every carve to
  // fail) — the heap rung still serves descriptors, so tasks stay parallel.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.synthetic_topology = "2x4";
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  cfg.use_node_pools = true;
  cfg.fault_plan = "seed=3,arena_carve=1.0";
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(22); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(22));
  EXPECT_GT(res.stats.total.pool_alloc_fallbacks, 0u);
  EXPECT_GT(res.stats.total.tasks_deferred, 0u);  // heap rung kept tasks deferred
  expect_accounting_balanced(res.stats);
  // Nothing was ever carved, so the node pools must balance at zero carved.
  for (const auto& n : s.node_pool_snapshot()) {
    EXPECT_EQ(n.arena_carved, n.arena_free + n.cached + n.in_transit);
  }
}

TEST(Degradation, ThreadSpawnFailureShrinksTeam) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.fault_plan = "seed=3,thread_spawn=1.0";
  rt::Scheduler s(cfg);
  EXPECT_TRUE(s.team_degraded());
  EXPECT_EQ(s.num_workers(), 1u);  // the caller's worker always survives
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20); });
  EXPECT_EQ(r, fib_ref(20));
  expect_accounting_balanced(s.stats());
}

TEST(Degradation, PinFailureLeavesWorkersUnpinned) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.synthetic_topology = "1x4";
  cfg.pin_workers = true;
  cfg.fault_plan = "seed=3,pin=1.0";
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(20); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(20));
  EXPECT_EQ(res.stats.total.pinned, 0u);  // every pin attempt failed gracefully
}

TEST(Degradation, MailboxPushFailureKeepsHalvesLocal) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.synthetic_topology = "2x4";
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  cfg.use_hint_placement = true;
  cfg.fault_plan = "seed=3,mailbox_push=1.0";
  rt::Scheduler s(cfg);
  std::atomic<std::uint64_t> sum{0};
  const rt::RegionResult res = s.run_single(
      [&] {
        rt::spawn_range(0, 100000, 64, [&](std::int64_t i) {
          sum.fetch_add(static_cast<std::uint64_t>(i),
                        std::memory_order_relaxed);
        });
        rt::taskwait();
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(sum.load(), 100000ull * 99999ull / 2);  // exactly-once delivery
  EXPECT_EQ(res.stats.total.range_halves_redirected, 0u);  // every redirect refused
}

TEST(Degradation, TaskBodyFaultRetriedToCompletion) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.fault_plan = "seed=11,task_body=0.05";
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(22); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(22));
  EXPECT_GT(res.stats.total.tasks_retried, 0u);
  EXPECT_EQ(res.stats.total.tasks_retried, res.stats.total.faults_injected);
  expect_accounting_balanced(res.stats);
}

// ---------------------------------------------------------------------------
// Satellite: teardown robustness.
// ---------------------------------------------------------------------------

TEST(Teardown, DestroyImmediatelyAfterRegion) {
  for (int i = 0; i < 10; ++i) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 4;
    rt::Scheduler s(cfg);
    std::uint64_t r = 0;
    s.run_single([&] { r = fib_task(16); });
    EXPECT_EQ(r, fib_ref(16));
    // Scheduler destroyed here with all workers freshly parked.
  }
}

TEST(Teardown, DoubleReconfigureBackToBack) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(18); });
  EXPECT_EQ(r, fib_ref(18));
  // Two reconfigures with no region in between: the second must rebuild
  // cleanly over the first's topology/policy/hint state.
  s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2");
  s.reconfigure(rt::StealPolicyKind::last_victim, "1x4");
  s.run_single([&] { r = fib_task(18); });
  EXPECT_EQ(r, fib_ref(18));
  EXPECT_EQ(s.num_workers(), 4u);
}

TEST(Teardown, ReconfigureInsideLiveRegionThrows) {
  // Satellite regression test (failing before PR 7): reconfigure() used to
  // be guarded only by a debug assert, so a release-build call from inside
  // a region body would tear the policy/topology out from under running
  // workers. It is now a checked error in every build type.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::atomic<bool> threw{false};
  s.run_single([&] {
    try {
      s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2");
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  EXPECT_TRUE(threw.load());
  // The region completed despite the refused call; between regions the
  // reconfigure works as always.
  s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2");
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(16); });
  EXPECT_EQ(r, fib_ref(16));
}

TEST(Teardown, RegionReentryAfterCancelledRegion) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  const rt::RegionResult cancelled = s.run_single(
      [&] {
        rt::spawn([] { rt::cancel_region(); });
        fib_task(22);
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(cancelled.status, rt::RegionStatus::cancelled);
  // No stale cancel epoch: the next region starts clean and completes.
  std::uint64_t r = 0;
  const rt::RegionResult clean =
      s.run_single([&] { r = fib_task(20); }, std::chrono::milliseconds(0));
  EXPECT_EQ(clean.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(20));
  EXPECT_EQ(s.last_region_status(), rt::RegionStatus::completed);
  expect_accounting_balanced(clean.stats);
}

TEST(Teardown, CancelledRangeRegionKeepsGrainGateClosed) {
  // A published range must complete (truncated) even under cancellation —
  // the GrainController live-range gate would otherwise wedge the NEXT
  // region's starvation signal. Run a cancelled range region, then a full
  // one, and require the second to finish correctly.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  rt::Scheduler s(cfg);
  std::atomic<std::uint64_t> seen{0};
  const rt::RegionResult cancelled = s.run_single(
      [&] {
        rt::spawn_range(0, 1 << 20, 64, [&](std::int64_t) {
          if (seen.fetch_add(1, std::memory_order_relaxed) == 128) {
            rt::cancel_region();
          }
        });
        rt::taskwait();
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(cancelled.status, rt::RegionStatus::cancelled);
  expect_accounting_balanced(cancelled.stats);

  std::atomic<std::uint64_t> sum{0};
  const rt::RegionResult clean = s.run_single(
      [&] {
        rt::spawn_range(0, 10000, 64, [&](std::int64_t i) {
          sum.fetch_add(static_cast<std::uint64_t>(i),
                        std::memory_order_relaxed);
        });
        rt::taskwait();
      },
      std::chrono::milliseconds(0));
  EXPECT_EQ(clean.status, rt::RegionStatus::completed);
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2);
}

// ---------------------------------------------------------------------------
// Satellite: external cancel_current_region() raced against concurrent
// submit() on a live TaskServer. TSAN is the other half of this test: the
// assertions below prove no request is lost; the sanitizer proves the race
// itself is clean.
// ---------------------------------------------------------------------------

TEST(ServerStress, ExternalCancelRacesConcurrentSubmit) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.fault_plan.clear();  // exact-count assertions below
  rt::Scheduler s(cfg);
  rt::ServerConfig sc;
  sc.queue_capacity = 16;
  rt::TaskServer server(s, sc);

  std::atomic<bool> stop_submitting{false};
  std::mutex hm;
  std::vector<rt::RegionHandle> handles;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&] {
      while (!stop_submitting.load(std::memory_order_acquire)) {
        auto res = server.submit([] { (void)fib_task(12); });
        {
          std::lock_guard<std::mutex> lock(hm);
          handles.push_back(res.handle);
        }
        std::this_thread::yield();
      }
    });
  }
  // Let a batch of requests land, then hard-stop the resident region from
  // OUTSIDE the team while the submitters keep firing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.cancel_current_region();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop_submitting.store(true, std::memory_order_release);
  for (auto& t : submitters) t.join();
  server.drain();

  // No hang, no lost request: EVERY handle ever returned is terminal, with
  // a balanced per-request ledger.
  std::lock_guard<std::mutex> lock(hm);
  ASSERT_GT(handles.size(), 0u);
  std::uint64_t terminal = 0;
  for (auto& h : handles) {
    const rt::RequestStatus st = h.wait();
    EXPECT_NE(st, rt::RequestStatus::pending);
    EXPECT_TRUE(h.ledger_balanced());
    ++terminal;
  }
  EXPECT_EQ(terminal, handles.size());
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(handles.size()));
  EXPECT_EQ(st.submitted,
            st.completed + st.cancelled + st.deadline_exceeded + st.rejected);
  expect_accounting_balanced(s.stats());
}

// ---------------------------------------------------------------------------
// A/B identity: with every PR-6 knob off, a region behaves exactly as
// before — completed status, full execution, zero new-counter movement.
// ---------------------------------------------------------------------------

TEST(Baseline, KnobsOffChangeNothing) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  // The premise is every PR-6 knob OFF — pin them against the environment
  // (CI's fault legs export RT_FAULT_PLAN to the whole suite).
  cfg.fault_plan.clear();
  cfg.cancel_on_exception = false;
  cfg.region_deadline_ms = 0;
  cfg.watchdog_ms = 0;
  cfg.watchdog_cancel = false;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  const rt::RegionResult res =
      s.run_single([&] { r = fib_task(22); }, std::chrono::milliseconds(0));
  EXPECT_EQ(res.status, rt::RegionStatus::completed);
  EXPECT_EQ(r, fib_ref(22));
  EXPECT_EQ(res.stats.total.tasks_discarded, 0u);
  EXPECT_EQ(res.stats.total.tasks_discarded_inline, 0u);
  EXPECT_EQ(res.stats.total.pool_alloc_fallbacks, 0u);
  EXPECT_EQ(res.stats.total.tasks_degraded_inline, 0u);
  EXPECT_EQ(res.stats.total.faults_injected, 0u);
  EXPECT_EQ(res.stats.total.tasks_retried, 0u);
  EXPECT_EQ(res.stats.total.server_requests, 0u);  // PR 7: no server in play
  EXPECT_EQ(s.stalls_detected(), 0u);
  EXPECT_FALSE(s.team_degraded());
  expect_accounting_balanced(res.stats);
}

}  // namespace
