// Cross-cutting property tests: invariants that must hold across modules,
// schedules and repetitions — the "does the suite behave like BOTS"
// contracts beyond single-kernel correctness.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/rng.hpp"
#include "kernels/floorplan/floorplan.hpp"
#include "kernels/health/health.hpp"
#include "kernels/sort/sort.hpp"
#include "kernels/uts/uts.hpp"
#include "runtime/rt.hpp"

namespace core = bots::core;
namespace rt = bots::rt;

namespace {

// ---------------------------------------------------------------------------
// Runtime invariants under stress.
// ---------------------------------------------------------------------------

TEST(Properties, RegionQuiescenceUnderRandomSpawnTrees) {
  // Randomly shaped task trees with no taskwaits at all: the region-end
  // barrier alone must join everything, every time.
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  core::Xoshiro256 rng(99);
  for (int round = 0; round < 30; ++round) {
    std::atomic<std::uint64_t> executed{0};
    const int breadth = 1 + static_cast<int>(rng.next_below(40));
    const int depth = 1 + static_cast<int>(rng.next_below(5));
    std::function<void(int)> grow = [&](int d) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (d == 0) return;
      for (int i = 0; i < breadth; ++i) {
        rt::spawn(i % 2 == 0 ? rt::Tiedness::tied : rt::Tiedness::untied,
                  [&grow, d] { grow(d - 1); });
      }
      // deliberately no taskwait
    };
    sched.run_single([&] { grow(depth); });
    // Full (breadth)-ary tree of the given depth.
    std::uint64_t expect = 0;
    std::uint64_t layer = 1;
    for (int d = 0; d <= depth; ++d) {
      expect += layer;
      layer *= static_cast<std::uint64_t>(breadth);
    }
    ASSERT_EQ(executed.load(), expect)
        << "round " << round << " breadth " << breadth << " depth " << depth;
  }
}

TEST(Properties, TwoSchedulersCoexistSequentially) {
  rt::Scheduler a(rt::SchedulerConfig{.num_threads = 4});
  rt::Scheduler b(rt::SchedulerConfig{.num_threads = 2});
  int ra = 0;
  int rb = 0;
  for (int i = 0; i < 10; ++i) {
    a.run_single([&ra] {
      rt::spawn([&ra] { ++ra; });
      rt::taskwait();
    });
    b.run_single([&rb] {
      rt::spawn([&rb] { ++rb; });
      rt::taskwait();
    });
  }
  EXPECT_EQ(ra, 10);
  EXPECT_EQ(rb, 10);
}

TEST(Properties, ExceptionFromRunAllWorkerPropagates) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  // Worker id 2 must exist for the throw to happen: pin a fault-free team
  // (an injected thread-spawn fault would shrink it under CI's fault legs).
  cfg.fault_plan.clear();
  rt::Scheduler sched(cfg);
  EXPECT_THROW(sched.run_all([](unsigned id) {
    if (id == 2) throw std::runtime_error("worker 2 failed");
  }),
               std::runtime_error);
  // And the team is reusable afterwards.
  std::atomic<int> ok{0};
  sched.run_all([&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(Properties, DynamicScheduleIsReusableAcrossRegions) {
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  rt::DynamicSchedule dyn(0);
  for (int round = 0; round < 3; ++round) {
    dyn.reset(0);
    std::vector<std::atomic<int>> hits(500);
    sched.run_all([&](unsigned) {
      rt::for_dynamic(dyn, 500, 11, [&](std::int64_t i) { hits[i].fetch_add(1); });
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "round " << round;
  }
}

TEST(Properties, TaskwaitOnlyWaitsForDirectChildren) {
  // A child that finishes while its own (grandchild) task still runs must
  // release the parent's taskwait; the region barrier catches the rest.
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  std::atomic<bool> grandchild_done{false};
  std::atomic<bool> waited_before_grandchild{false};
  sched.run_single([&] {
    rt::spawn([&] {
      rt::spawn([&] {
        // Make the grandchild slow enough to still be pending.
        for (int i = 0; i < 2'000'000; ++i) {
          asm volatile("");
        }
        grandchild_done.store(true, std::memory_order_release);
      });
      // child returns without waiting
    });
    rt::taskwait();  // waits for the child only
    if (!grandchild_done.load(std::memory_order_acquire)) {
      waited_before_grandchild.store(true);
    }
  });
  EXPECT_TRUE(grandchild_done.load());  // region end joined it
  // Note: timing-dependent, but on any sane schedule the taskwait returns
  // before the spun-out grandchild finishes at least occasionally; we only
  // assert it is *possible* (no deadlock, correct joins), not the timing.
  SUCCEED();
}

TEST(Properties, StatsAccountingBalancesOnEveryApp) {
  // Every spawn construct is deferred or inlined, every range split adds one
  // more deferred descriptor, and every deferred descriptor executes exactly
  // once: created + range_splits == deferred + if_inlined + cutoff_inlined
  // and executed == deferred must hold after any suite run.
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  for (const auto& app : core::apps()) {
    (void)app.run(core::InputClass::test, app.best_version().name, sched,
                  false);
    const auto t = sched.stats().total;
    EXPECT_EQ(t.tasks_created + t.range_splits,
              t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined)
        << app.name;
    EXPECT_EQ(t.tasks_executed, t.tasks_deferred) << app.name;
  }
}

TEST(Properties, PoolFreesBalanceAllocationsOnEveryApp) {
  // Every pooled descriptor allocated inside a region dies inside it
  // (region quiescence covers release chains), and every death is
  // classified as exactly one home or remote free — so after any suite
  // run, home + remote frees == reuse + fresh allocations. Checked in the
  // default (flat) configuration AND on a synthetic 2x4 box under the
  // hierarchical policy, where node pools route remote-born frees through
  // the outbound stashes and remote frees must be zero by construction.
  auto check = [](rt::SchedulerConfig cfg, const char* label) {
    ASSERT_TRUE(cfg.use_task_pool);  // the invariant is about pooled storage
    rt::Scheduler sched(cfg);
    for (const auto& app : core::apps()) {
      (void)app.run(core::InputClass::test, app.best_version().name, sched,
                    false);
      const auto t = sched.stats().total;
      EXPECT_EQ(t.pool_home_frees + t.pool_remote_frees,
                t.pool_reuse + t.pool_fresh)
          << label << "/" << app.name;
      if (sched.node_pools_active()) {
        EXPECT_EQ(t.pool_remote_frees, 0u) << label << "/" << app.name;
      }
    }
  };
  check(rt::SchedulerConfig{.num_threads = 4}, "default");
  rt::SchedulerConfig numa;
  numa.num_threads = 8;
  numa.steal_policy = rt::StealPolicyKind::hierarchical;
  numa.synthetic_topology = "2x4";
  check(numa, "2x4-hierarchical");
}

TEST(Properties, ThrowingBodiesKeepAccountingAndPoolsBalanced) {
  // Exception-path stress (PR 6 regression): bodies that throw at random
  // depths — some bodies still spawning children before throwing — must
  // leave every ledger balanced: each deferred descriptor executes (or, in
  // a cancelled region, is discarded) exactly once, every pooled descriptor
  // retires to its birth node, and the node pools end each region holding
  // all carved memory. Run on a synthetic 2x4 with node pools, where an
  // unwound release chain crosses the stash machinery too.
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  cfg.synthetic_topology = "2x4";
  cfg.use_node_pools = true;
  rt::Scheduler sched(cfg);
  core::Xoshiro256 rng(2026);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t throw_mask = rng.next_below(64);
    std::atomic<std::uint64_t> spawned{0};
    std::function<void(int)> grow = [&](int d) {
      const std::uint64_t id =
          spawned.fetch_add(1, std::memory_order_relaxed);
      if (d > 0) {
        for (int i = 0; i < 3; ++i) {
          rt::spawn(i % 2 == 0 ? rt::Tiedness::tied : rt::Tiedness::untied,
                    [&grow, d] { grow(d - 1); });
        }
      }
      if ((id & 63u) == throw_mask) throw std::runtime_error("stress");
      if (d > 0 && (id & 1u) == 0u) rt::taskwait();
    };
    bool threw = false;
    try {
      sched.run_single([&] { grow(6); });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    // ~1100 bodies per round with a 1/64 throw rate: virtually certain.
    EXPECT_TRUE(threw) << "round " << round;
    const auto t = sched.stats().total;
    ASSERT_EQ(t.tasks_created + t.range_splits,
              t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined)
        << "round " << round;
    ASSERT_EQ(t.tasks_executed + t.tasks_discarded, t.tasks_deferred)
        << "round " << round;
    ASSERT_EQ(t.pool_home_frees + t.pool_remote_frees,
              t.pool_reuse + t.pool_fresh)
        << "round " << round;
    ASSERT_EQ(t.pool_remote_frees, 0u) << "round " << round;
    // The arenas got every carved descriptor back (none leaked down an
    // unwound release chain).
    for (const auto& n : sched.node_pool_snapshot()) {
      ASSERT_EQ(n.arena_carved, n.arena_free + n.cached + n.in_transit)
          << "round " << round;
    }
  }
}

TEST(Properties, InlinePathCountsCapturedEnvironmentBytes) {
  // Regression pin (ROADMAP: env_bytes on the zero-alloc inline path): a
  // construct that runs without a descriptor still captured its closure on
  // the parent's frame, so Table-II-style env statistics must be identical
  // whether the inline fast path is on or off. The max_depth cut-off makes
  // the inlined-vs-deferred partition deterministic, and both runs spawn
  // the identical closure types, so the byte totals must match exactly.
  auto env_bytes_with = [](bool inline_fast) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 2;
    cfg.cutoff = rt::CutoffPolicy::max_depth;
    cfg.cutoff_value = 3;
    cfg.use_inline_fast_path = inline_fast;
    // The exact inlined/deferred partition this test pins is meaningless
    // under injected allocation faults (CI's RT_FAULT_PLAN legs).
    cfg.fault_plan.clear();
    rt::Scheduler sched(cfg);
    std::atomic<std::uint64_t> leaves{0};
    std::function<void(int)> grow = [&](int d) {
      if (d == 0) {
        leaves.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < 3; ++i) {
        rt::spawn([&grow, d] { grow(d - 1); });
      }
      rt::spawn_if(false, [&leaves] {
        leaves.fetch_add(1, std::memory_order_relaxed);
      });
      rt::taskwait();
    };
    sched.run_single([&] { grow(6); });
    const auto t = sched.stats().total;
    EXPECT_EQ(leaves.load(),
              729u + 364u);  // 3^6 leaves + one spawn_if per interior call
    if (inline_fast) {
      EXPECT_GT(t.tasks_inlined_fast, 0u);
    } else {
      EXPECT_EQ(t.tasks_inlined_fast, 0u);
    }
    return t.env_bytes;
  };
  const std::uint64_t with_inline = env_bytes_with(true);
  const std::uint64_t without_inline = env_bytes_with(false);
  EXPECT_GT(with_inline, 0u);
  EXPECT_EQ(with_inline, without_inline)
      << "zero-alloc inlined constructs skipped the env_bytes counter";
}

TEST(Properties, DependenceEdgesResolveExactlyOnceOnDataflowApps) {
  // PR 8 conservation law, dynamic half: on any dependence-tracked run with
  // no recorded graphs, every successfully published edge is resolved by
  // the finish path exactly once — edges_resolved == deps_edges — on top of
  // the usual spawn/retire balance. Checked on every registered dataflow
  // kernel version (sparselu, strassen).
  for (const auto& app : core::apps()) {
    for (const auto& v : app.versions) {
      if (std::string_view(v.name).rfind("dataflow", 0) != 0) continue;
      rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
      const auto rep =
          app.run(core::InputClass::test, v.name, sched, true);
      EXPECT_EQ(rep.verified, core::Verified::ok) << app.name << "/" << v.name;
      const auto t = sched.stats().total;
      EXPECT_GT(t.deps_declared, 0u) << app.name << "/" << v.name;
      EXPECT_EQ(t.edges_resolved, t.deps_edges) << app.name << "/" << v.name;
      EXPECT_EQ(t.graphs_recorded, 0u) << app.name << "/" << v.name;
      EXPECT_EQ(t.tasks_created + t.range_splits,
                t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined)
          << app.name << "/" << v.name;
      EXPECT_EQ(t.tasks_executed + t.tasks_discarded, t.tasks_deferred)
          << app.name << "/" << v.name;
    }
  }
}

TEST(Properties, ReplayLedgersReconcileWithGraphSize) {
  // PR 8 conservation law, replay half: after one record and K replays of a
  // frozen graph, the whole-run ledgers must reconcile with the graph's own
  // shape — (1 + K) × node_count descriptors deferred and executed, and
  //   edges_resolved == deps_edges + K × edge_count
  // (the record run resolves its dynamic edges; each replay resolves every
  // baked edge exactly once).
  rt::SchedulerConfig cfg;
  cfg.num_threads = 8;
  cfg.fault_plan.clear();  // exact counts; CI fault legs would abort records
  cfg.use_taskgraph_replay = true;
  rt::Scheduler sched(cfg);
  std::vector<std::uint64_t> cells(8, 0);
  rt::TaskGraph g;
  auto build = [&cells](rt::DepScope& sc) {
    auto& v = cells;
    sc.spawn({rt::out(v[0])}, [&v] { v[0] += 2; });
    for (std::size_t i = 1; i <= 6; ++i) {
      sc.spawn({rt::in(v[0]), rt::out(v[i])}, [&v, i] { v[i] = v[0] + i; });
    }
    sc.spawn({rt::in(v[1]), rt::in(v[2]), rt::in(v[3]), rt::in(v[4]),
              rt::in(v[5]), rt::in(v[6]), rt::inout(v[7])},
             [&v] { v[7] = v[1] + v[6]; });
  };
  constexpr std::uint64_t kRuns = 9;
  for (std::uint64_t run = 0; run < kRuns; ++run) {
    std::fill(cells.begin(), cells.end(), 0);
    sched.run_single([&] { rt::run_graph_region(sched, g, &cells, build); });
  }
  const auto t = sched.stats().total;
  ASSERT_TRUE(g.frozen());
  EXPECT_EQ(g.replays(), kRuns - 1);
  EXPECT_EQ(t.graphs_recorded, 1u);
  EXPECT_EQ(t.graphs_replayed, kRuns - 1);
  EXPECT_EQ(t.tasks_deferred, kRuns * g.node_count());
  EXPECT_EQ(t.tasks_executed, t.tasks_deferred);
  EXPECT_EQ(t.edges_resolved,
            t.deps_edges + (kRuns - 1) * g.edge_count());
  EXPECT_EQ(t.tasks_created + t.range_splits,
            t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined);
}

// ---------------------------------------------------------------------------
// Determinism properties across thread counts (the paper's Section III-A
// indeterminism-handling contract, checked suite-wide).
// ---------------------------------------------------------------------------

TEST(Properties, DeterministicAppsAgreeAcrossThreadCounts) {
  // health: exact stats; uts: exact node count; nqueens: exact solutions —
  // whatever the team size.
  const auto hp = bots::health::params_for(core::InputClass::test);
  const auto up = bots::uts::params_for(core::InputClass::test);
  const bots::health::Stats href = bots::health::run_serial(hp);
  const std::uint64_t uref = bots::uts::run_serial(up);
  for (unsigned threads : {1u, 3u, 8u, 16u}) {
    rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
    EXPECT_EQ(bots::health::run_parallel(
                  hp, sched, {rt::Tiedness::untied, core::AppCutoff::none}),
              href)
        << threads;
    EXPECT_EQ(bots::uts::run_parallel(up, sched, {rt::Tiedness::untied}), uref)
        << threads;
  }
}

TEST(Properties, FloorplanOptimumIsScheduleInvariant) {
  const auto p = bots::floorplan::params_for(core::InputClass::test);
  const auto cells = bots::floorplan::make_input(p);
  const auto serial = bots::floorplan::run_serial(p, cells);
  std::set<std::uint64_t> node_counts;
  for (unsigned threads : {2u, 8u}) {
    rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
    for (int rep = 0; rep < 3; ++rep) {
      const auto r = bots::floorplan::run_parallel(
          p, cells, sched, {rt::Tiedness::untied, core::AppCutoff::manual});
      EXPECT_EQ(r.best_area, serial.best_area);
      node_counts.insert(r.nodes);
    }
  }
  // The node count is allowed (expected!) to vary; the optimum never.
  SUCCEED();
}

TEST(Properties, UtsDepthBoundIsMonotone) {
  bots::uts::Params p;
  p.root_children = 8;
  p.spawn_permille = 300;
  p.work_per_node = 4;
  std::uint64_t prev = 0;
  for (int depth : {0, 2, 4, 6, 8, 10}) {
    p.max_depth = depth;
    const std::uint64_t n = bots::uts::run_serial(p);
    EXPECT_GE(n, prev) << "depth " << depth;
    prev = n;
  }
}

TEST(Properties, FloorplanBestIsNeverWorseThanGreedySeed) {
  // run_serial seeds the bound with greedy-first-fit + 1; the optimum must
  // be <= the greedy area (the greedy plan itself is reachable).
  for (std::uint64_t seed : {0xF100Bull, 0xCAFEull, 0x777ull}) {
    bots::floorplan::Params p{8, 3, seed};
    const auto cells = bots::floorplan::make_input(p);
    const auto r = bots::floorplan::run_serial(p, cells);
    int total = 0;
    for (const auto& c : cells) total += c.area;
    EXPECT_GE(r.best_area, total);
    EXPECT_LE(r.best_area, bots::floorplan::board_dim *
                               bots::floorplan::board_dim);
  }
}

TEST(Properties, SortThresholdsDoNotChangeTheResult) {
  // Sorting must be invariant under every threshold configuration.
  bots::sort::Params base;
  base.n = 100'000;
  const auto expect = [&] {
    auto v = bots::sort::make_input(base);
    bots::sort::run_serial(base, v);
    return v;
  }();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  for (std::size_t quick : {64u, 1024u, 4096u}) {
    for (std::size_t merge : {64u, 4096u}) {
      bots::sort::Params p = base;
      p.quick_threshold = quick;
      p.merge_threshold = merge;
      auto v = bots::sort::make_input(p);
      bots::sort::run_parallel(p, v, sched, {rt::Tiedness::untied});
      ASSERT_EQ(v, expect) << "quick " << quick << " merge " << merge;
    }
  }
}

// ---------------------------------------------------------------------------
// Cut-off equivalence: every cut-off strategy must compute the same answer,
// only the task structure may differ.
// ---------------------------------------------------------------------------

TEST(Properties, CutoffStrategiesAgreeOnResults) {
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  for (const char* name : {"fib", "nqueens", "floorplan", "health"}) {
    const auto* app = core::find_app(name);
    ASSERT_NE(app, nullptr);
    for (const auto& v : app->versions) {
      const auto rep = app->run(core::InputClass::test, v.name, sched, true);
      EXPECT_EQ(rep.verified, core::Verified::ok) << name << "/" << v.name;
    }
  }
}

TEST(Properties, RuntimeCutoffNeverChangesAnswers) {
  for (auto policy : {rt::CutoffPolicy::none, rt::CutoffPolicy::max_tasks,
                      rt::CutoffPolicy::max_depth, rt::CutoffPolicy::adaptive}) {
    for (std::uint32_t bound : {1u, 4u, 1000u}) {
      rt::SchedulerConfig cfg;
      cfg.num_threads = 4;
      cfg.cutoff = policy;
      cfg.cutoff_value = bound;
      rt::Scheduler sched(cfg);
      const auto* app = core::find_app("nqueens");
      const auto rep =
          app->run(core::InputClass::test, "untied", sched, true);
      EXPECT_EQ(rep.verified, core::Verified::ok)
          << to_string(policy) << "/" << bound;
    }
  }
}

}  // namespace
