// Topology/steal-policy layer tests: synthetic-topology determinism, the
// hierarchical policy's same-node-before-cross-node victim order, its
// single-node degeneration to last_victim, steal locality counters, and
// correctness of every policy under the usual workloads.
#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n, rt::Tiedness tied) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn(tied, [&a, n, tied] { a = fib_task(n - 1, tied); });
  rt::spawn(tied, [&b, n, tied] { b = fib_task(n - 2, tied); });
  rt::taskwait();
  return a + b;
}

// ---------------------------------------------------------------------------
// Topology: synthetic specs are deterministic; bad specs fall through.
// ---------------------------------------------------------------------------

TEST(Topology, SyntheticSpecMapsWorkersBlockwise) {
  const rt::Topology t = rt::Topology::detect(8, "2x4");
  EXPECT_EQ(t.source(), "synthetic");
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_workers(), 8u);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(t.node_of(w), 0u) << w;
  for (unsigned w = 4; w < 8; ++w) EXPECT_EQ(t.node_of(w), 1u) << w;
  EXPECT_TRUE(t.same_node(1, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  EXPECT_EQ(t.workers_on(0), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(t.workers_on(1), (std::vector<unsigned>{4, 5, 6, 7}));
}

TEST(Topology, OversubscribedTeamWrapsAroundNodes) {
  // More workers than nodes*cores: worker (w / cores) % nodes — worker 8 of
  // a 2x4 box lands back on node 0.
  const rt::Topology t = rt::Topology::detect(10, "2x4");
  EXPECT_EQ(t.node_of(8), 0u);
  EXPECT_EQ(t.node_of(9), 0u);
}

TEST(Topology, InvalidSpecsFallBackToDiscovery) {
  for (const char* bad : {"", "x", "2x", "x4", "0x4", "2x0", "2y4", "ax4",
                          "2x4x8", "-1x4"}) {
    unsigned n = 77, c = 77;
    EXPECT_FALSE(rt::Topology::parse_synthetic(bad, n, c)) << bad;
    EXPECT_EQ(n, 77u) << bad;  // outputs untouched on failure
  }
  unsigned n = 0, c = 0;
  EXPECT_TRUE(rt::Topology::parse_synthetic("2x4", n, c));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(c, 4u);
  const rt::Topology t = rt::Topology::detect(4, "not-a-spec");
  EXPECT_GE(t.num_nodes(), 1u);  // discovery or flat, never zero nodes
  EXPECT_EQ(t.num_workers(), 4u);
}

TEST(Topology, FlatFallbackPutsEveryoneOnOneNode) {
  // A spec the parser rejects on a (likely) single-node host: every worker
  // must land somewhere, and every node list must partition the team.
  const rt::Topology t = rt::Topology::detect(6, "");
  std::size_t listed = 0;
  for (unsigned node = 0; node < t.num_nodes(); ++node) {
    listed += t.workers_on(node).size();
  }
  EXPECT_EQ(listed, 6u);
}

// ---------------------------------------------------------------------------
// Victim order: the planning decision itself, fully deterministic.
// ---------------------------------------------------------------------------

rt::SchedulerConfig policy_cfg(unsigned threads, rt::StealPolicyKind kind,
                               const char* topo) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.steal_policy = kind;
  cfg.synthetic_topology = topo;
  return cfg;
}

TEST(StealPolicy, HierarchicalProbesWholeHomeNodeBeforeCrossing) {
  rt::Scheduler s(policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4"));
  // Every planning round, for every worker, whatever the rng rotation:
  // the first three victims are exactly the home-node siblings, the last
  // four exactly the remote node.
  for (unsigned w = 0; w < 8; ++w) {
    const unsigned home = s.topology().node_of(w);
    for (int round = 0; round < 32; ++round) {
      const std::vector<unsigned> order = s.plan_steal_order(w);
      ASSERT_EQ(order.size(), 7u) << "worker " << w;
      std::set<unsigned> seen(order.begin(), order.end());
      ASSERT_EQ(seen.size(), 7u) << "duplicate victim for worker " << w;
      for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(s.topology().node_of(order[k]), home)
            << "worker " << w << " probe " << k << " crossed early";
      }
      for (std::size_t k = 3; k < 7; ++k) {
        EXPECT_NE(s.topology().node_of(order[k]), home)
            << "worker " << w << " probe " << k << " re-visited home late";
      }
    }
  }
}

TEST(StealPolicy, EveryPolicyPlansAFullValidRound) {
  for (const rt::StealPolicyKind kind :
       {rt::StealPolicyKind::random, rt::StealPolicyKind::sequential,
        rt::StealPolicyKind::last_victim, rt::StealPolicyKind::hierarchical}) {
    rt::Scheduler s(policy_cfg(6, kind, "3x2"));
    for (int round = 0; round < 16; ++round) {
      const std::vector<unsigned> order = s.plan_steal_order(2);
      ASSERT_EQ(order.size(), 5u) << to_string(kind);
      std::set<unsigned> seen(order.begin(), order.end());
      EXPECT_EQ(seen.size(), 5u) << to_string(kind);
      EXPECT_EQ(seen.count(2), 0u) << to_string(kind) << " listed self";
    }
  }
}

TEST(StealPolicy, HierarchicalOnOneNodeDegeneratesToLastVictim) {
  // Same seed, same team, single node: the hierarchical plan must be the
  // last_victim plan, round for round (the documented degeneration).
  rt::Scheduler hier(policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4"));
  rt::Scheduler last(policy_cfg(4, rt::StealPolicyKind::last_victim, "1x4"));
  for (int round = 0; round < 32; ++round) {
    EXPECT_EQ(hier.plan_steal_order(1), last.plan_steal_order(1))
        << "round " << round;
  }
}

TEST(StealPolicy, SequentialOrderIsTheNeighborRotation) {
  rt::Scheduler s(policy_cfg(4, rt::StealPolicyKind::sequential, "1x4"));
  EXPECT_EQ(s.plan_steal_order(1), (std::vector<unsigned>{2, 3, 0}));
  EXPECT_EQ(s.plan_steal_order(3), (std::vector<unsigned>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Steal locality counters (the per-raid Topology classification).
// ---------------------------------------------------------------------------

/// Force at least one steal: worker 0 publishes a flag-setting task (plus a
/// second spawn so the first is evicted from the private LIFO slot into the
/// stealable deque) and then busy-waits on the flag WITHOUT reaching a task
/// scheduling point — it cannot run the task itself, so a thief must.
rt::StatsSnapshot run_forced_steal(rt::SchedulerConfig cfg) {
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::atomic<bool> stolen{false};
  s.run_single([&stolen] {
    rt::spawn(rt::Tiedness::untied,
              [&stolen] { stolen.store(true, std::memory_order_release); });
    rt::spawn(rt::Tiedness::untied, [] {});
    while (!stolen.load(std::memory_order_acquire)) std::this_thread::yield();
    rt::taskwait();
  });
  return s.stats();
}

TEST(StealPolicy, SingleNodeTopologyNeverCountsRemoteSteals) {
  const auto t =
      run_forced_steal(policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4"))
          .total;
  EXPECT_EQ(t.steals_remote_node, 0u);
  EXPECT_GT(t.steals_local_node, 0u);  // the forced steal, at least
}

TEST(StealPolicy, EveryWorkerItsOwnNodeCountsOnlyRemoteSteals) {
  // 4 nodes of 1 core: every victim is across the interconnect, so every
  // successful raid must land in steals_remote_node — the counter the
  // hierarchical policy exists to minimize.
  const auto t =
      run_forced_steal(policy_cfg(4, rt::StealPolicyKind::hierarchical, "4x1"))
          .total;
  EXPECT_EQ(t.steals_local_node, 0u);
  EXPECT_GT(t.steals_remote_node, 0u);
}

TEST(StealPolicy, HomeNodeFeedsItsOwnBeforeTheInterconnect) {
  // 2x2, generator on worker 0, with workers 2/3 (node 1) held OUT of the
  // steal race until the region's work is done: worker 1 shares node 0
  // with the generator, so every steal it lands is same-node. Its remote
  // counter must stay zero — under the hierarchical order it never probes
  // node 1 before its home node, and node 1 never has work anyway.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  s.run_all([&](unsigned id) {
    if (id >= 2) {
      while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
      return;
    }
    if (id == 0) {
      for (int i = 0; i < 2000; ++i) {
        rt::spawn(rt::Tiedness::untied,
                  [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
      rt::taskwait();
      done.store(true, std::memory_order_release);
    }
  });
  EXPECT_EQ(executed.load(), 2000);
  const auto per = s.stats().per_worker;
  EXPECT_EQ(per[1].steals_remote_node, 0u)
      << "worker 1 crossed the interconnect despite a loaded home node";
}

// ---------------------------------------------------------------------------
// Correctness sweeps: every policy, multi-node synthetic boxes, tied and
// untied, range tasks included.
// ---------------------------------------------------------------------------

struct PolicyTopoCase {
  rt::StealPolicyKind kind;
  const char* topo;
  rt::Tiedness tied;
};

class PolicyTopoMatrix : public ::testing::TestWithParam<PolicyTopoCase> {};

TEST_P(PolicyTopoMatrix, FibCorrect) {
  const PolicyTopoCase pc = GetParam();
  rt::Scheduler s(policy_cfg(8, pc.kind, pc.topo));
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20, pc.tied); });
  EXPECT_EQ(r, fib_ref(20));
}

TEST_P(PolicyTopoMatrix, RangeTasksCoverExactlyOnce) {
  const PolicyTopoCase pc = GetParam();
  rt::Scheduler s(policy_cfg(8, pc.kind, pc.topo));
  constexpr std::int64_t n = 10000;
  std::vector<std::atomic<std::uint32_t>> hits(n);
  rt::SingleGate gate(s.num_workers());
  s.run_all([&](unsigned) {
    rt::single_nowait(gate, [&] {
      rt::spawn_range(pc.tied, 0, n, 1, [&hits](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
      });
    });
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1u) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyTopoMatrix,
    ::testing::Values(
        PolicyTopoCase{rt::StealPolicyKind::random, "2x4",
                       rt::Tiedness::untied},
        PolicyTopoCase{rt::StealPolicyKind::sequential, "4x2",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::last_victim, "2x4",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "2x4",
                       rt::Tiedness::untied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "2x4",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "8x1",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "3x3",
                       rt::Tiedness::untied}),
    [](const auto& info) {
      std::string topo = info.param.topo;
      std::replace(topo.begin(), topo.end(), 'x', '_');
      return std::string(to_string(info.param.kind)) + "_" + topo + "_" +
             to_string(info.param.tied);
    });

TEST(StealPolicy, LegacyKnobsStillSelectTheOldPolicies) {
  rt::SchedulerConfig cfg;
  cfg.steal_policy = rt::StealPolicyKind::legacy;
  cfg.victim_affinity = true;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::last_victim);
  cfg.victim_affinity = false;
  cfg.victim = rt::VictimPolicy::sequential;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::sequential);
  cfg.victim = rt::VictimPolicy::random;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::random);
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::hierarchical);
}

}  // namespace
