// Topology/steal-policy layer tests: synthetic-topology determinism, the
// hierarchical policy's same-node-before-cross-node victim order, its
// single-node degeneration to last_victim, steal locality counters,
// node-local descriptor pools (birth-node retirement, cross-node stash
// flight, the between-regions balance), hint-aware range placement
// (mailbox delivery, the placement plan, A/B output identity), and
// correctness of every policy under the usual workloads.
#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/alignment/alignment.hpp"
#include "kernels/fft/fft.hpp"
#include "kernels/sort/sort.hpp"
#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n, rt::Tiedness tied) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn(tied, [&a, n, tied] { a = fib_task(n - 1, tied); });
  rt::spawn(tied, [&b, n, tied] { b = fib_task(n - 2, tied); });
  rt::taskwait();
  return a + b;
}

rt::SchedulerConfig policy_cfg(unsigned threads, rt::StealPolicyKind kind,
                               const char* topo) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.steal_policy = kind;
  cfg.synthetic_topology = topo;
  // Every test here introspects the policy/topology structure of a team of
  // exactly `threads` workers; injected thread-spawn/pin/mailbox faults
  // (CI's RT_FAULT_PLAN legs) would reshape the very structure under test.
  cfg.fault_plan.clear();
  return cfg;
}

// ---------------------------------------------------------------------------
// Topology: synthetic specs are deterministic; bad specs fall through.
// ---------------------------------------------------------------------------

TEST(Topology, SyntheticSpecMapsWorkersBlockwise) {
  const rt::Topology t = rt::Topology::detect(8, "2x4");
  EXPECT_EQ(t.source(), "synthetic");
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_workers(), 8u);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(t.node_of(w), 0u) << w;
  for (unsigned w = 4; w < 8; ++w) EXPECT_EQ(t.node_of(w), 1u) << w;
  EXPECT_TRUE(t.same_node(1, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  EXPECT_EQ(t.workers_on(0), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(t.workers_on(1), (std::vector<unsigned>{4, 5, 6, 7}));
}

TEST(Topology, OversubscribedTeamWrapsAroundNodes) {
  // More workers than nodes*cores: worker (w / cores) % nodes — worker 8 of
  // a 2x4 box lands back on node 0.
  const rt::Topology t = rt::Topology::detect(10, "2x4");
  EXPECT_EQ(t.node_of(8), 0u);
  EXPECT_EQ(t.node_of(9), 0u);
}

TEST(Topology, InvalidSpecsFallBackToDiscovery) {
  for (const char* bad : {"", "x", "2x", "x4", "0x4", "2x0", "2y4", "ax4",
                          "2x4x8", "-1x4"}) {
    unsigned n = 77, c = 77;
    EXPECT_FALSE(rt::Topology::parse_synthetic(bad, n, c)) << bad;
    EXPECT_EQ(n, 77u) << bad;  // outputs untouched on failure
  }
  unsigned n = 0, c = 0;
  EXPECT_TRUE(rt::Topology::parse_synthetic("2x4", n, c));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(c, 4u);
  const rt::Topology t = rt::Topology::detect(4, "not-a-spec");
  EXPECT_GE(t.num_nodes(), 1u);  // discovery or flat, never zero nodes
  EXPECT_EQ(t.num_workers(), 4u);
}

TEST(Topology, FlatFallbackPutsEveryoneOnOneNode) {
  // A spec the parser rejects on a (likely) single-node host: every worker
  // must land somewhere, and every node list must partition the team.
  const rt::Topology t = rt::Topology::detect(6, "");
  std::size_t listed = 0;
  for (unsigned node = 0; node < t.num_nodes(); ++node) {
    listed += t.workers_on(node).size();
  }
  EXPECT_EQ(listed, 6u);
}

TEST(Topology, SyntheticCpusetsAreTheNodeBlocks) {
  // Node n of an "NxM" spec owns the CPU block [n*M, (n+1)*M) — the cpuset
  // pin_workers pins that node's workers to. Every worker's computed
  // cpuset is its node's block.
  const rt::Topology t = rt::Topology::detect(8, "2x4");
  EXPECT_EQ(t.cpus_on(0), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(t.cpus_on(1), (std::vector<unsigned>{4, 5, 6, 7}));
  for (unsigned w = 0; w < 8; ++w) {
    const auto& cpus = t.cpus_on(t.node_of(w));
    ASSERT_EQ(cpus.size(), 4u) << "worker " << w;
    EXPECT_EQ(cpus.front(), t.node_of(w) * 4) << "worker " << w;
  }
  // Out-of-range nodes: empty, never a crash.
  EXPECT_TRUE(t.cpus_on(99).empty());
}

TEST(Topology, FlatTopologyHasNoCpusetToPinTo) {
  // The flat fallback carries no locality information: its cpuset is empty
  // and pinning against it is defined to be a clean no-op.
  const rt::Topology t = rt::Topology::detect(4, "not-a-spec");
  if (t.source() == "flat") {
    EXPECT_TRUE(t.cpus_on(0).empty());
  } else {
    // sysfs discovery on a genuinely multi-node host: every node a worker
    // lives on must expose a non-empty cpuset.
    for (unsigned w = 0; w < t.num_workers(); ++w) {
      EXPECT_FALSE(t.cpus_on(t.node_of(w)).empty()) << "worker " << w;
    }
  }
}

// ---------------------------------------------------------------------------
// Worker pinning (cfg.pin_workers / RT_PIN_WORKERS).
// ---------------------------------------------------------------------------

TEST(Pinning, AffinityHelperRejectsImpossibleCpusets) {
  // The unavailable-affinity path must fail CLEANLY: empty cpusets and
  // cpusets entirely outside the kernel's mask range return false and
  // leave the thread's affinity untouched.
  EXPECT_FALSE(rt::pin_current_thread({}));
  EXPECT_FALSE(rt::pin_current_thread({1u << 20}));
  std::vector<unsigned> before;
  if (rt::save_current_affinity(before)) {
    ASSERT_FALSE(before.empty());
    EXPECT_FALSE(rt::pin_current_thread({1u << 20}));
    std::vector<unsigned> after;
    ASSERT_TRUE(rt::save_current_affinity(after));
    EXPECT_EQ(before, after) << "a failed pin modified the thread's mask";
    // And a valid pin round-trips: pin to the saved mask itself.
    EXPECT_TRUE(rt::pin_current_thread(before));
  }
}

TEST(Pinning, PinnedTeamRunsCorrectlyAndReportsPlacement) {
  // A single-node synthetic topology covering the machine's real CPUs: the
  // pin must stick for every worker and be verified by observed placement
  // (stats.pinned records reality, not intent).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  rt::SchedulerConfig cfg =
      policy_cfg(std::min(4u, hw), rt::StealPolicyKind::hierarchical, "");
  cfg.synthetic_topology = "1x" + std::to_string(hw);
  cfg.pin_workers = true;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(18, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(18));
  const auto snap = s.stats();
  EXPECT_EQ(snap.total.pinned, static_cast<std::uint64_t>(s.num_workers()))
      << "a worker failed to pin to a cpuset its own machine exposes";
  for (const auto& per : snap.per_worker) EXPECT_EQ(per.pinned, 1u);
}

TEST(Pinning, MismatchedSyntheticTopologyFallsBackCleanly) {
  // A synthetic "2x4" box on whatever machine this runs on: node 1's CPUs
  // 4..7 may not exist. Pinning must never break execution — workers whose
  // cpuset the machine lacks simply stay unpinned and say so.
  rt::SchedulerConfig cfg = policy_cfg(8, rt::StealPolicyKind::hierarchical,
                                       "2x4");
  cfg.pin_workers = true;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(20));
  const auto snap = s.stats();
  EXPECT_LE(snap.total.pinned, 8u);
  for (const auto& per : snap.per_worker) EXPECT_LE(per.pinned, 1u);
}

TEST(Pinning, ReconfigureRepinsWithHonestReporting) {
  // reconfigure() bumps the pin generation: every worker re-pins to the
  // NEW topology's cpusets at the next region entry. Workers whose new
  // cpuset the machine lacks must come out genuinely unpinned (stats 0,
  // pre-pin mask restored) — never silently left on the old cpuset.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "");
  cfg.synthetic_topology = "1x" + std::to_string(hw);
  cfg.pin_workers = true;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(16, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(16));
  EXPECT_EQ(s.stats().total.pinned, 4u);
  // 64x1 puts worker w alone on node w (cpuset {w}): worker 0 always
  // re-pins (cpu 0 exists everywhere), workers beyond this machine's
  // CPUs exercise the failed-re-pin fallback.
  s.reconfigure(rt::StealPolicyKind::hierarchical, "64x1");
  s.reset_stats();
  s.run_single([&] { r = fib_task(16, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(16));
  const auto snap = s.stats();
  EXPECT_EQ(snap.per_worker[0].pinned, 1u);
  for (const auto& per : snap.per_worker) EXPECT_LE(per.pinned, 1u);
}

TEST(Pinning, KnobOffReportsNobodyPinned) {
  rt::SchedulerConfig cfg = policy_cfg(4, rt::StealPolicyKind::hierarchical,
                                       "2x2");
  cfg.pin_workers = false;  // explicit: the suite may run under RT_PIN_WORKERS=1
  rt::Scheduler s(cfg);
  s.run_single([] {});
  EXPECT_EQ(s.stats().total.pinned, 0u);
}

// ---------------------------------------------------------------------------
// Victim order: the planning decision itself, fully deterministic.
// ---------------------------------------------------------------------------

TEST(StealPolicy, HierarchicalProbesWholeHomeNodeBeforeCrossing) {
  // Hints off: this test pins the raw tier contract — every round plans the
  // full team, home node strictly first. (With hints on, idle remote nodes
  // are skipped; that behaviour has its own tests below.)
  rt::SchedulerConfig cfg = policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4");
  cfg.use_node_work_hints = false;
  rt::Scheduler s(cfg);
  // Every planning round, for every worker, whatever the rng rotation:
  // the first three victims are exactly the home-node siblings, the last
  // four exactly the remote node.
  for (unsigned w = 0; w < 8; ++w) {
    const unsigned home = s.topology().node_of(w);
    for (int round = 0; round < 32; ++round) {
      const std::vector<unsigned> order = s.plan_steal_order(w);
      ASSERT_EQ(order.size(), 7u) << "worker " << w;
      std::set<unsigned> seen(order.begin(), order.end());
      ASSERT_EQ(seen.size(), 7u) << "duplicate victim for worker " << w;
      for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(s.topology().node_of(order[k]), home)
            << "worker " << w << " probe " << k << " crossed early";
      }
      for (std::size_t k = 3; k < 7; ++k) {
        EXPECT_NE(s.topology().node_of(order[k]), home)
            << "worker " << w << " probe " << k << " re-visited home late";
      }
    }
  }
}

TEST(StealPolicy, EveryPolicyPlansAFullValidRound) {
  for (const rt::StealPolicyKind kind :
       {rt::StealPolicyKind::random, rt::StealPolicyKind::sequential,
        rt::StealPolicyKind::last_victim, rt::StealPolicyKind::hierarchical}) {
    rt::SchedulerConfig cfg = policy_cfg(6, kind, "3x2");
    cfg.use_node_work_hints = false;  // plan the full team unconditionally
    rt::Scheduler s(cfg);
    for (int round = 0; round < 16; ++round) {
      const std::vector<unsigned> order = s.plan_steal_order(2);
      ASSERT_EQ(order.size(), 5u) << to_string(kind);
      std::set<unsigned> seen(order.begin(), order.end());
      EXPECT_EQ(seen.size(), 5u) << to_string(kind);
      EXPECT_EQ(seen.count(2), 0u) << to_string(kind) << " listed self";
    }
  }
}

TEST(StealPolicy, HierarchicalOnOneNodeDegeneratesToLastVictim) {
  // Same seed, same team, single node: the hierarchical plan must be the
  // last_victim plan, round for round (the documented degeneration).
  rt::Scheduler hier(policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4"));
  rt::Scheduler last(policy_cfg(4, rt::StealPolicyKind::last_victim, "1x4"));
  for (int round = 0; round < 32; ++round) {
    EXPECT_EQ(hier.plan_steal_order(1), last.plan_steal_order(1))
        << "round " << round;
  }
}

TEST(StealPolicy, SequentialOrderIsTheNeighborRotation) {
  rt::Scheduler s(policy_cfg(4, rt::StealPolicyKind::sequential, "1x4"));
  EXPECT_EQ(s.plan_steal_order(1), (std::vector<unsigned>{2, 3, 0}));
  EXPECT_EQ(s.plan_steal_order(3), (std::vector<unsigned>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Steal locality counters (the per-raid Topology classification).
// ---------------------------------------------------------------------------

/// Force at least one steal: worker 0 publishes a flag-setting task (plus a
/// second spawn so the first is evicted from the private LIFO slot into the
/// stealable deque) and then busy-waits on the flag WITHOUT reaching a task
/// scheduling point — it cannot run the task itself, so a thief must.
rt::StatsSnapshot run_forced_steal(rt::SchedulerConfig cfg) {
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::atomic<bool> stolen{false};
  s.run_single([&stolen] {
    rt::spawn(rt::Tiedness::untied,
              [&stolen] { stolen.store(true, std::memory_order_release); });
    rt::spawn(rt::Tiedness::untied, [] {});
    while (!stolen.load(std::memory_order_acquire)) std::this_thread::yield();
    rt::taskwait();
  });
  return s.stats();
}

TEST(StealPolicy, SingleNodeTopologyNeverCountsRemoteSteals) {
  const auto t =
      run_forced_steal(policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4"))
          .total;
  EXPECT_EQ(t.steals_remote_node, 0u);
  EXPECT_GT(t.steals_local_node, 0u);  // the forced steal, at least
}

TEST(StealPolicy, EveryWorkerItsOwnNodeCountsOnlyRemoteSteals) {
  // 4 nodes of 1 core: every victim is across the interconnect, so every
  // successful raid must land in steals_remote_node — the counter the
  // hierarchical policy exists to minimize.
  const auto t =
      run_forced_steal(policy_cfg(4, rt::StealPolicyKind::hierarchical, "4x1"))
          .total;
  EXPECT_EQ(t.steals_local_node, 0u);
  EXPECT_GT(t.steals_remote_node, 0u);
}

TEST(StealPolicy, HomeNodeFeedsItsOwnBeforeTheInterconnect) {
  // 2x2, generator on worker 0, with workers 2/3 (node 1) held OUT of the
  // steal race until the region's work is done: worker 1 shares node 0
  // with the generator, so every steal it lands is same-node. Its remote
  // counter must stay zero — under the hierarchical order it never probes
  // node 1 before its home node, and node 1 never has work anyway.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  s.run_all([&](unsigned id) {
    if (id >= 2) {
      while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
      return;
    }
    if (id == 0) {
      for (int i = 0; i < 2000; ++i) {
        rt::spawn(rt::Tiedness::untied,
                  [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
      rt::taskwait();
      done.store(true, std::memory_order_release);
    }
  });
  EXPECT_EQ(executed.load(), 2000);
  const auto per = s.stats().per_worker;
  EXPECT_EQ(per[1].steals_remote_node, 0u)
      << "worker 1 crossed the interconnect despite a loaded home node";
}

// ---------------------------------------------------------------------------
// Per-node has-work hints (cfg.use_node_work_hints): cross-node steal
// throttling with a liveness backoff.
// ---------------------------------------------------------------------------

TEST(StealHints, IdleRemoteNodeIsSkippedUntilTheBackoffRound) {
  // Fresh scheduler, hints on (the default): no node ever published work,
  // so planning rounds skip the whole remote node — except the periodic
  // unconditional round that bounds how long a stale hint can hide work.
  rt::Scheduler s(policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4"));
  ASSERT_TRUE(s.config().use_node_work_hints);
  int full_rounds = 0;
  int gated_rounds = 0;
  for (int round = 0; round < 40; ++round) {
    const std::vector<unsigned> order = s.plan_steal_order(0);
    if (order.size() == 7u) {
      ++full_rounds;  // the unconditional backoff round probes everyone
    } else {
      ASSERT_EQ(order.size(), 3u) << "round " << round;
      for (const unsigned v : order) {
        EXPECT_EQ(s.topology().node_of(v), s.topology().node_of(0u));
      }
      ++gated_rounds;
    }
  }
  EXPECT_GT(full_rounds, 0) << "no unconditional round: stale hints starve";
  EXPECT_GT(gated_rounds, 4 * full_rounds)
      << "gating saved too few probe rounds to be worth the hint word";
  EXPECT_GT(s.stats().total.remote_probes_skipped, 0u);
}

TEST(StealHints, OneNodeIdleSkipsRemoteProbesWithUnchangedResults) {
  // The acceptance scenario: 2x2 hierarchical, all work on node 0, node 1
  // held idle inside the region body. Node-0 workers must keep planning
  // without paying node-1 probes (remote_probes_skipped > 0) while the
  // computation is exactly as correct as without hints.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.cutoff = rt::CutoffPolicy::none;
  ASSERT_TRUE(cfg.use_node_work_hints);
  rt::Scheduler s(cfg);
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  s.run_all([&](unsigned id) {
    if (id >= 2) {  // node 1: idle until the work is gone
      while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
      return;
    }
    if (id == 0) {
      for (int i = 0; i < 2000; ++i) {
        rt::spawn(rt::Tiedness::untied, [&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      rt::taskwait();
      done.store(true, std::memory_order_release);
    }
  });
  EXPECT_EQ(executed.load(), 2000);
  EXPECT_GT(s.stats().total.remote_probes_skipped, 0u)
      << "an all-idle remote node was still probed every round";
}

TEST(StealHints, ForcedRemoteStealStillSucceedsWithHintsOn) {
  // Liveness: every-worker-its-own-node means the only way work moves is
  // across the interconnect. The generator's enqueue publishes its node's
  // hint, so remote thieves must still find it — the run completing at all
  // proves no hint-induced starvation.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "4x1");
  ASSERT_TRUE(cfg.use_node_work_hints);
  const auto t = run_forced_steal(cfg).total;
  EXPECT_EQ(t.steals_local_node, 0u);
  EXPECT_GT(t.steals_remote_node, 0u);
}

TEST(StealHints, KnobOffNeverSkips) {
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.use_node_work_hints = false;
  rt::Scheduler s(cfg);
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(s.plan_steal_order(0).size(), 3u);
  }
  EXPECT_EQ(s.stats().total.remote_probes_skipped, 0u);
}

// ---------------------------------------------------------------------------
// reconfigure(): policy/topology swap between regions must not leak stale
// per-worker victim state (the PR-4 bugfix).
// ---------------------------------------------------------------------------

TEST(StealPolicy, ReconfigureClearsStaleVictimHints) {
  // Sequential base rotation makes plans fully deterministic modulo the
  // affinity hint. Plant a hint (set_victim_hint, the introspection seam —
  // a hint earned by a real steal rarely survives the region-end idle
  // drain), verify it leads the plan, then reconfigure: the hint MUST be
  // dropped — a victim learned under the old configuration is meaningless
  // (or off-node, or out of range) under the new one.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::last_victim, "1x4");
  cfg.victim = rt::VictimPolicy::sequential;
  rt::Scheduler s(cfg);
  const auto rotation = [](unsigned w) {
    std::vector<unsigned> order;
    for (unsigned k = 0; k < 4; ++k) {
      const unsigned v = (w + 1 + k) % 4;
      if (v != w) order.push_back(v);
    }
    return order;
  };
  s.set_victim_hint(1, 3);
  ASSERT_EQ(s.plan_steal_order(1),
            (std::vector<unsigned>{3, 2, 0}))  // the hint leads the plan
      << "precondition: the planted hint should reorder the rotation";
  s.reconfigure(rt::StealPolicyKind::last_victim, "1x4");
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(s.plan_steal_order(w), rotation(w))
        << "worker " << w << " kept a stale victim across reconfigure";
  }
}

TEST(StealPolicy, ReconfigureResetsTheHintBackoffCounter) {
  // The hierarchical hint gate counts consecutive gated rounds per worker.
  // Reconfiguring swaps the hint array out from under that counter, so it
  // must restart: the first post-reconfigure rounds are all gated again
  // (16 of them before the next unconditional round).
  rt::Scheduler s(policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4"));
  ASSERT_TRUE(s.config().use_node_work_hints);
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(s.plan_steal_order(0).size(), 3u);  // gated: counter at 10
  }
  s.reconfigure(rt::StealPolicyKind::hierarchical, "2x4");
  for (int round = 0; round < 16; ++round) {
    EXPECT_EQ(s.plan_steal_order(0).size(), 3u)
        << "round " << round
        << ": stale backoff state survived reconfigure";
  }
  EXPECT_EQ(s.plan_steal_order(0).size(), 7u);  // the 17th round is full
}

TEST(StealPolicy, ReconfigureRemapsWorkerNodesForLocalityCounters) {
  // 1x4 -> 4x1 between regions: every steal after the swap is cross-node.
  // Stale cached Worker::node ids would misclassify them (and address the
  // wrong has-work hint word).
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4");
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::atomic<bool> warm{false};
  s.run_single([&warm] {
    rt::spawn(rt::Tiedness::untied,
              [&warm] { warm.store(true, std::memory_order_release); });
    rt::spawn(rt::Tiedness::untied, [] {});
    while (!warm.load(std::memory_order_acquire)) std::this_thread::yield();
    rt::taskwait();
  });
  s.reconfigure(rt::StealPolicyKind::hierarchical, "4x1");
  EXPECT_EQ(s.topology().num_nodes(), 4u);
  s.reset_stats();
  std::atomic<bool> stolen{false};
  s.run_single([&stolen] {
    rt::spawn(rt::Tiedness::untied,
              [&stolen] { stolen.store(true, std::memory_order_release); });
    rt::spawn(rt::Tiedness::untied, [] {});
    while (!stolen.load(std::memory_order_acquire)) std::this_thread::yield();
    rt::taskwait();
  });
  const auto t = s.stats().total;
  EXPECT_EQ(t.steals_local_node, 0u)
      << "a steal was classified with a stale pre-reconfigure node id";
  EXPECT_GT(t.steals_remote_node, 0u);
}

// ---------------------------------------------------------------------------
// Node-local descriptor pools (cfg.use_node_pools / RT_NODE_POOLS): birth-
// node retirement, batched stash flight, and the between-regions balance.
// ---------------------------------------------------------------------------

/// Sum of a node-pool snapshot's resting places, asserting the between-
/// regions balance: nothing in transit, and every descriptor ever carved
/// from a node's arena resting ON that node (worker caches + arena
/// freelist) — i.e. every remote-born free landed home.
void expect_pool_balance(const rt::Scheduler& s) {
  const auto snap = s.node_pool_snapshot();
  for (std::size_t n = 0; n < snap.size(); ++n) {
    EXPECT_EQ(snap[n].in_transit, 0u)
        << "node " << n << ": unflushed outbound stash after region end";
    EXPECT_EQ(snap[n].cached + snap[n].arena_free, snap[n].arena_carved)
        << "node " << n << ": descriptors rest off their birth node";
  }
}

TEST(NodePools, SingleNodeTopologyKeepsPlainWorkerPools) {
  // The documented degeneration: on one locality domain the knob is inert
  // — no arenas exist and allocation takes exactly the per-worker TaskPool
  // path, so a flat box pays nothing for the default-on knob.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4");
  ASSERT_TRUE(cfg.use_node_pools);
  rt::Scheduler s(cfg);
  EXPECT_FALSE(s.node_pools_active());
  EXPECT_TRUE(s.node_pool_snapshot().empty());
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(18, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(18));
  // Frees are still classified: on one node every free is a home free.
  const auto t = s.stats().total;
  EXPECT_GT(t.pool_home_frees, 0u);
  EXPECT_EQ(t.pool_remote_frees, 0u);
}

TEST(NodePools, FlatDegenerationMatchesWorkerPoolsCounterForCounter) {
  // One worker, one node: the same deterministic workload must produce the
  // exact same pool counter stream with the knob on and off — the
  // degeneration is bit-for-bit, not merely "also correct".
  auto counters = [](bool node_pools) {
    rt::SchedulerConfig cfg =
        policy_cfg(1, rt::StealPolicyKind::hierarchical, "1x1");
    cfg.cutoff = rt::CutoffPolicy::none;
    cfg.use_node_pools = node_pools;
    rt::Scheduler s(cfg);
    std::uint64_t r = 0;
    s.run_single([&] { r = fib_task(16, rt::Tiedness::tied); });
    EXPECT_EQ(r, fib_ref(16));
    return s.stats().total;
  };
  const auto on = counters(true);
  const auto off = counters(false);
  EXPECT_EQ(on.pool_reuse, off.pool_reuse);
  EXPECT_EQ(on.pool_fresh, off.pool_fresh);
  EXPECT_EQ(on.pool_home_frees, off.pool_home_frees);
  EXPECT_EQ(on.pool_remote_frees, 0u);
  EXPECT_EQ(off.pool_remote_frees, 0u);
}

TEST(NodePools, CrossNodeStealRetiresDescriptorsToTheirBirthNode) {
  // Every worker its own node (4x1): any successful steal crosses the
  // interconnect, so the stolen task's descriptor dies on a foreign node.
  // With node pools ON it must fly home through the outbound stash — a
  // remote free never happens (the acceptance criterion and the CI
  // tripwire), the in-transit high-water shows the flight, and the
  // between-regions balance proves the landing.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "4x1");
  cfg.cutoff = rt::CutoffPolicy::none;
  ASSERT_TRUE(cfg.use_node_pools);
  rt::Scheduler s(cfg);
  ASSERT_TRUE(s.node_pools_active());
  std::atomic<bool> stolen{false};
  s.run_single([&stolen] {
    rt::spawn(rt::Tiedness::untied,
              [&stolen] { stolen.store(true, std::memory_order_release); });
    rt::spawn(rt::Tiedness::untied, [] {});
    while (!stolen.load(std::memory_order_acquire)) std::this_thread::yield();
    rt::taskwait();
  });
  const auto t = s.stats().total;
  EXPECT_GT(t.steals_remote_node, 0u);  // the forced cross-node steal
  EXPECT_EQ(t.pool_remote_frees, 0u)
      << "a descriptor retired into a pool off its birth node";
  EXPECT_GT(t.pool_home_frees, 0u);
  EXPECT_GT(t.pool_migrations, 0u)
      << "a cross-node-finished descriptor never rode an outbound stash";
  expect_pool_balance(s);
}

TEST(NodePools, WorkerPoolsCountTheDriftNodePoolsRemove) {
  // The same forced cross-node steal with the knob OFF: the thief recycles
  // the stolen descriptor into its own freelist, and the drift counter
  // must say so — this is the measurable difference the feature exists to
  // remove, and the A/B the ablation bench reports.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "4x1");
  cfg.use_node_pools = false;
  const auto t = run_forced_steal(cfg).total;
  EXPECT_GT(t.steals_remote_node, 0u);
  EXPECT_GT(t.pool_remote_frees, 0u)
      << "knob off must reproduce (and count) the historical drift";
  EXPECT_EQ(t.pool_migrations, 0u);  // no stashes without node pools
}

TEST(NodePools, HeavyStealTrafficStaysBalancedAcrossRegions) {
  // A task flood across a 2x4 box, twice, with stats reset in between:
  // thousands of steals, every descriptor repeatedly reused — the balance
  // and the remote-free zero must hold after every region, and the second
  // region must be served mostly from recycled home memory (reuse >>
  // fresh).
  rt::SchedulerConfig cfg =
      policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4");
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  ASSERT_TRUE(s.node_pools_active());
  for (int round = 0; round < 2; ++round) {
    std::uint64_t r = 0;
    s.run_single([&] { r = fib_task(21, rt::Tiedness::untied); });
    ASSERT_EQ(r, fib_ref(21));
    const auto t = s.stats().total;
    EXPECT_EQ(t.pool_remote_frees, 0u) << "round " << round;
    EXPECT_EQ(t.pool_home_frees, t.pool_reuse + t.pool_fresh)
        << "round " << round << ": an allocated descriptor was never freed";
    expect_pool_balance(s);
    s.reset_stats();
  }
}

TEST(NodePools, HomeCacheSpillsBackUnderProducerConsumerFlow) {
  // Worker 0 generates waves of tasks and busy-waits them out (never
  // reaching a scheduling point), so its same-node sibling consumes them:
  // the consumed descriptors pile into the SIBLING's home cache, and the
  // cache must spill them back to the arena — otherwise the generator
  // finds the arena empty every wave and carves fresh chunk slots at task
  // scale (arena memory O(total tasks) instead of O(peak live)). The
  // bound is one-sided: whatever share the sibling actually won, total
  // carving must stay at cache scale.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.cutoff = rt::CutoffPolicy::none;
  cfg.lifo_slot = false;  // a slot entry is invisible while the generator spins
  rt::Scheduler s(cfg);
  ASSERT_TRUE(s.node_pools_active());
  constexpr int waves = 100;
  constexpr int per_wave = 40;
  std::atomic<bool> done{false};
  std::atomic<int> executed{0};
  s.run_all([&](unsigned id) {
    if (id >= 2) {  // node 1: held out — keep the flow intra-node
      while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
      return;
    }
    if (id == 0) {
      for (int wv = 1; wv <= waves; ++wv) {
        for (int i = 0; i < per_wave; ++i) {
          rt::spawn(rt::Tiedness::untied, [&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
        while (executed.load(std::memory_order_acquire) < wv * per_wave) {
          std::this_thread::yield();
        }
      }
      rt::taskwait();
      done.store(true, std::memory_order_release);
    }
  });
  EXPECT_EQ(executed.load(), waves * per_wave);
  const auto snap = s.node_pool_snapshot();
  std::size_t carved = 0;
  for (const auto& e : snap) carved += e.arena_carved;
  EXPECT_LE(carved, 512u)
      << "arena grew at task scale: consumed descriptors are not spilling "
         "back to the generator";
  expect_pool_balance(s);
}

// ---------------------------------------------------------------------------
// Hint-aware range placement (cfg.use_hint_placement / RT_HINT_PLACEMENT).
// ---------------------------------------------------------------------------

TEST(HintPlacement, PlacementPlanFollowsTheHintWords) {
  // The deterministic pin on the decision rule itself: redirect exactly
  // when home advertises surplus AND a populated remote node's word is
  // clear; nearest such node wins. Driven between regions by setting the
  // NodeHints words directly.
  rt::Scheduler s(policy_cfg(6, rt::StealPolicyKind::hierarchical, "3x2"));
  auto* hints = s.node_hints();
  ASSERT_NE(hints, nullptr);
  // No local surplus: never redirect, whatever the remote words say.
  hints->clear(0);
  hints->clear(1);
  hints->clear(2);
  EXPECT_EQ(s.plan_range_placement(0), rt::StealPolicy::no_node);
  // Local surplus + both remotes clear: the nearest remote node wins.
  hints->publish(0);
  EXPECT_EQ(s.plan_range_placement(0), 1u);
  // Nearest remote fed, farther one hungry: skip to the hungry one.
  hints->publish(1);
  EXPECT_EQ(s.plan_range_placement(0), 2u);
  // Everybody fed: keep the half local.
  hints->publish(2);
  EXPECT_EQ(s.plan_range_placement(0), rt::StealPolicy::no_node);
  // The scan is relative to the splitter's home node (worker 2 lives on
  // node 1): its nearest hungry remote is node 2.
  hints->clear(2);
  hints->publish(1);
  EXPECT_EQ(s.plan_range_placement(2), 2u);
}

TEST(HintPlacement, NeverTargetsANodeWithoutWorkers) {
  // 8 nodes of 1 core but only 4 workers: nodes 4..7 exist in the spec but
  // hold nobody — nobody would ever drain their mailbox, so the placement
  // scan must skip them even though their hint words are clear.
  rt::Scheduler s(policy_cfg(4, rt::StealPolicyKind::hierarchical, "8x1"));
  auto* hints = s.node_hints();
  ASSERT_NE(hints, nullptr);
  hints->publish(0);  // local surplus on worker 0's node
  // All words clear: the nearest POPULATED node wins (1, not an empty one).
  EXPECT_EQ(s.plan_range_placement(0), 1u);
  // Every populated remote node fed: nodes 4..7 are clear but hold nobody,
  // so the plan must fall back to "keep it local", never a dead mailbox.
  hints->publish(1);
  hints->publish(2);
  hints->publish(3);
  EXPECT_EQ(s.plan_range_placement(0), rt::StealPolicy::no_node);
}

TEST(HintPlacement, InertWithoutHintsOrOffKnob) {
  // The placement layer piggybacks on NodeHints: hints off, single node,
  // or the placement knob itself off must all plan "keep it local".
  rt::SchedulerConfig no_hints =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  no_hints.use_node_work_hints = false;
  rt::Scheduler a(no_hints);
  EXPECT_EQ(a.plan_range_placement(0), rt::StealPolicy::no_node);

  rt::Scheduler b(policy_cfg(4, rt::StealPolicyKind::hierarchical, "1x4"));
  EXPECT_EQ(b.plan_range_placement(0), rt::StealPolicy::no_node);

  rt::SchedulerConfig off =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  off.use_hint_placement = false;
  rt::Scheduler c(off);
  if (c.node_hints() != nullptr) c.node_hints()->publish(0);
  // The introspection reflects what the scheduler would DO: knob off means
  // no mailboxes, so the plan is "keep it local" even though the policy's
  // hint rule would have preferred node 1.
  EXPECT_EQ(c.plan_range_placement(0), rt::StealPolicy::no_node);
  std::atomic<std::uint32_t> hits{0};
  c.run_single([&] {
    rt::spawn_range(rt::Tiedness::untied, 0, 5000, 1,
                    [&hits](std::int64_t) {
                      hits.fetch_add(1, std::memory_order_relaxed);
                    });
    rt::taskwait();
  });
  EXPECT_EQ(hits.load(), 5000u);
  EXPECT_EQ(c.stats().total.range_halves_redirected, 0u)
      << "knob off must never mail a half";
}

TEST(HintPlacement, RedirectsHalvesToTheIdleNodeWithExactCoverage) {
  // The acceptance scenario: a 2x2 box whose node-1 workers are held
  // inside the region body (they never steal, so node 1's word stays
  // clear) while node 0 chews a big range. Splits on the saturated node
  // must mail at least one half to node 1's mailbox — and every iteration
  // still runs exactly once, wherever the halves landed.
  rt::SchedulerConfig cfg =
      policy_cfg(4, rt::StealPolicyKind::hierarchical, "2x2");
  cfg.cutoff = rt::CutoffPolicy::none;
  cfg.use_adaptive_grain = false;  // keep every split check eligible
  ASSERT_TRUE(cfg.use_hint_placement);
  rt::Scheduler s(cfg);
  constexpr std::int64_t n = 20000;
  std::vector<std::atomic<std::uint8_t>> hits(n);
  std::atomic<bool> done{false};
  s.run_all([&](unsigned id) {
    if (id >= 2) {  // node 1: provably hungry, word never published
      while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
      return;
    }
    if (id == 0) {
      rt::spawn_range(rt::Tiedness::untied, 0, n, 1,
                      [&hits](std::int64_t i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(
                            1, std::memory_order_relaxed);
                      });
      rt::taskwait();  // joins the range and every mailed half (liveness:
                       // the idle sweep reaches remote mailboxes)
      done.store(true, std::memory_order_release);
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1u) << i;
  }
  EXPECT_GT(s.stats().total.range_halves_redirected, 0u)
      << "no half was mailed to the provably idle node";
}

TEST(HintPlacement, MailboxDeliversExactlyOnceUnderConcurrentDrain) {
  // The RangeMailbox contract in isolation: concurrent pushers and
  // drainers, every task delivered to exactly one drainer, none lost,
  // none duplicated, FIFO per producer not required — only exactly-once.
  constexpr std::size_t producers = 4;
  constexpr std::size_t per_producer = 512;
  constexpr std::size_t total = producers * per_producer;
  std::vector<rt::Task> tasks(total);
  std::vector<std::atomic<std::uint32_t>> seen(total);
  rt::RangeMailbox box;
  std::atomic<std::size_t> drained{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        box.push(&tasks[p * per_producer + i]);
      }
    });
  }
  for (std::size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (drained.load(std::memory_order_acquire) < total) {
        rt::Task* t = box.pop();
        if (t == nullptr) {
          std::this_thread::yield();
          continue;
        }
        const std::size_t idx = static_cast<std::size_t>(t - tasks.data());
        seen[idx].fetch_add(1, std::memory_order_relaxed);
        drained.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.pop(), nullptr);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "task " << i;
  }
}

// ---------------------------------------------------------------------------
// A/B output identity: both new knobs, across the three kernel shapes the
// issue names (alignment rows / sort merges / fft butterflies). The knobs
// move descriptor memory and half placement, never results.
// ---------------------------------------------------------------------------

/// Kernel outputs under a 2x4 hierarchical box with the given knob states.
struct KnobOutputs {
  std::vector<int> alignment;
  std::vector<bots::sort::Elm> sorted;
  std::vector<bots::fft::Complex> fft;
};

KnobOutputs kernel_outputs(bool node_pools, bool hint_placement) {
  rt::SchedulerConfig cfg =
      policy_cfg(8, rt::StealPolicyKind::hierarchical, "2x4");
  cfg.use_node_pools = node_pools;
  cfg.use_hint_placement = hint_placement;
  rt::Scheduler s(cfg);
  KnobOutputs out;
  {
    const auto p = bots::alignment::params_for(bots::core::InputClass::test);
    const auto seqs = bots::alignment::make_input(p);
    out.alignment = bots::alignment::run_parallel(p, seqs, s, {});
  }
  {
    const auto p = bots::sort::params_for(bots::core::InputClass::test);
    out.sorted = bots::sort::make_input(p);
    bots::sort::run_parallel(p, out.sorted, s, {});
  }
  {
    const auto p = bots::fft::params_for(bots::core::InputClass::test);
    out.fft = bots::fft::make_input(p);
    bots::fft::run_parallel(p, out.fft, s, {});
  }
  return out;
}

TEST(KnobIdentity, NodePoolsNeverChangeKernelOutputs) {
  const KnobOutputs on = kernel_outputs(true, true);
  const KnobOutputs off = kernel_outputs(false, true);
  EXPECT_EQ(on.alignment, off.alignment);
  EXPECT_EQ(on.sorted, off.sorted);
  EXPECT_EQ(on.fft, off.fft);  // bitwise: same per-element float operations
}

TEST(KnobIdentity, HintPlacementNeverChangesKernelOutputs) {
  const KnobOutputs on = kernel_outputs(true, true);
  const KnobOutputs off = kernel_outputs(true, false);
  EXPECT_EQ(on.alignment, off.alignment);
  EXPECT_EQ(on.sorted, off.sorted);
  EXPECT_EQ(on.fft, off.fft);
}

// ---------------------------------------------------------------------------
// Correctness sweeps: every policy, multi-node synthetic boxes, tied and
// untied, range tasks included.
// ---------------------------------------------------------------------------

struct PolicyTopoCase {
  rt::StealPolicyKind kind;
  const char* topo;
  rt::Tiedness tied;
};

class PolicyTopoMatrix : public ::testing::TestWithParam<PolicyTopoCase> {};

TEST_P(PolicyTopoMatrix, FibCorrect) {
  const PolicyTopoCase pc = GetParam();
  rt::Scheduler s(policy_cfg(8, pc.kind, pc.topo));
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20, pc.tied); });
  EXPECT_EQ(r, fib_ref(20));
}

TEST_P(PolicyTopoMatrix, RangeTasksCoverExactlyOnce) {
  const PolicyTopoCase pc = GetParam();
  rt::Scheduler s(policy_cfg(8, pc.kind, pc.topo));
  constexpr std::int64_t n = 10000;
  std::vector<std::atomic<std::uint32_t>> hits(n);
  rt::SingleGate gate(s.num_workers());
  s.run_all([&](unsigned) {
    rt::single_nowait(gate, [&] {
      rt::spawn_range(pc.tied, 0, n, 1, [&hits](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
      });
    });
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1u) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyTopoMatrix,
    ::testing::Values(
        PolicyTopoCase{rt::StealPolicyKind::random, "2x4",
                       rt::Tiedness::untied},
        PolicyTopoCase{rt::StealPolicyKind::sequential, "4x2",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::last_victim, "2x4",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "2x4",
                       rt::Tiedness::untied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "2x4",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "8x1",
                       rt::Tiedness::tied},
        PolicyTopoCase{rt::StealPolicyKind::hierarchical, "3x3",
                       rt::Tiedness::untied}),
    [](const auto& info) {
      std::string topo = info.param.topo;
      std::replace(topo.begin(), topo.end(), 'x', '_');
      return std::string(to_string(info.param.kind)) + "_" + topo + "_" +
             to_string(info.param.tied);
    });

TEST(StealPolicy, LegacyKnobsStillSelectTheOldPolicies) {
  rt::SchedulerConfig cfg;
  cfg.steal_policy = rt::StealPolicyKind::legacy;
  cfg.victim_affinity = true;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::last_victim);
  cfg.victim_affinity = false;
  cfg.victim = rt::VictimPolicy::sequential;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::sequential);
  cfg.victim = rt::VictimPolicy::random;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::random);
  cfg.steal_policy = rt::StealPolicyKind::hierarchical;
  EXPECT_EQ(cfg.resolved_steal_policy(), rt::StealPolicyKind::hierarchical);
}

}  // namespace
