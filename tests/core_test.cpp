// Tests for the suite core: input classes, RNG, reporting, profiling math,
// registry integrity (Table I metadata invariants).
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "prof/profile.hpp"

namespace core = bots::core;
namespace prof = bots::prof;

namespace {

TEST(InputClass, ParseRoundTrip) {
  for (auto c : {core::InputClass::test, core::InputClass::small,
                 core::InputClass::medium, core::InputClass::large}) {
    const auto parsed = core::parse_input_class(core::to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(core::parse_input_class("huge").has_value());
  EXPECT_FALSE(core::parse_input_class("").has_value());
}

TEST(InputClass, EnvOverride) {
  ::setenv("BOTS_INPUT_CLASS", "large", 1);
  EXPECT_EQ(core::input_class_from_env(core::InputClass::small),
            core::InputClass::large);
  ::setenv("BOTS_INPUT_CLASS", "nonsense", 1);
  EXPECT_EQ(core::input_class_from_env(core::InputClass::small),
            core::InputClass::small);
  ::unsetenv("BOTS_INPUT_CLASS");
  EXPECT_EQ(core::input_class_from_env(core::InputClass::medium),
            core::InputClass::medium);
}

TEST(Rng, Xoshiro256IsDeterministic) {
  core::Xoshiro256 a(42);
  core::Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  core::Xoshiro256 a(1);
  core::Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  core::Xoshiro256 r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleIsUnitInterval) {
  core::Xoshiro256 r(11);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(Report, SpeedupUsesTimeByDefault) {
  core::RunReport serial;
  serial.seconds = 10.0;
  core::RunReport par;
  par.seconds = 2.5;
  EXPECT_DOUBLE_EQ(par.speedup_vs(serial), 4.0);
}

TEST(Report, SpeedupUsesMetricWhenPresent) {
  // Floorplan-style: node rate improvement, not elapsed time.
  core::RunReport serial;
  serial.seconds = 1.0;
  serial.metric = 100.0;
  core::RunReport par;
  par.seconds = 2.0;  // slower wall clock...
  par.metric = 500.0; // ...but 5x the node rate
  EXPECT_DOUBLE_EQ(par.speedup_vs(serial), 5.0);
}

TEST(Report, TableWriterRendersAlignedTable) {
  core::TableWriter t({"app", "value"});
  t.add_row({"fib", "1"});
  t.add_row({"alignment", "2"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| app "), std::string::npos);
  EXPECT_NE(out.find("| alignment "), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, TableWriterCsv) {
  core::TableWriter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, TableWriterRejectsRaggedRows) {
  core::TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(core::format_count(42), "42");
  EXPECT_EQ(core::format_count(40'000'000'000ull), "~ 40 G");
  EXPECT_EQ(core::format_count(17'000'000ull), "~ 17 M");
  EXPECT_EQ(core::format_bytes(3ull << 30), "3.0 GB");
  EXPECT_EQ(core::format_bytes(120ull << 20), "120.0 MB");
  EXPECT_EQ(core::format_fixed(3.14159, 2), "3.14");
}

TEST(Prof, CountersAccumulateAndReset) {
  prof::CountingProf::reset();
  prof::CountingProf::task(40);
  prof::CountingProf::task(40);
  prof::CountingProf::taskwait();
  prof::CountingProf::ops(10);
  prof::CountingProf::write_private(3);
  prof::CountingProf::write_shared(1);
  prof::CountingProf::write_env(2);
  const auto& t = prof::CountingProf::totals();
  EXPECT_EQ(t.potential_tasks, 2u);
  EXPECT_EQ(t.captured_env_bytes, 80u);
  EXPECT_EQ(t.taskwaits, 1u);
  EXPECT_EQ(t.arithmetic_ops, 10u);
  EXPECT_EQ(t.private_writes, 5u);  // 3 + 2 env writes
  EXPECT_EQ(t.shared_writes, 1u);
  EXPECT_EQ(t.env_writes, 2u);
  EXPECT_EQ(t.total_writes(), 6u);
  prof::CountingProf::reset();
  EXPECT_EQ(prof::CountingProf::totals().potential_tasks, 0u);
}

TEST(Prof, MakeRowComputesPaperColumns) {
  prof::Totals t;
  t.potential_tasks = 100;
  t.arithmetic_ops = 5000;
  t.taskwaits = 50;
  t.captured_env_bytes = 1600;
  t.env_writes = 100;
  t.private_writes = 900;  // includes env writes
  t.shared_writes = 100;
  const auto row = prof::make_row("x", "input", 1.5, 1 << 20, t);
  EXPECT_DOUBLE_EQ(row.arith_ops_per_task, 50.0);
  EXPECT_DOUBLE_EQ(row.taskwaits_per_task, 0.5);
  EXPECT_DOUBLE_EQ(row.captured_env_bytes_per_task, 16.0);
  EXPECT_DOUBLE_EQ(row.env_writes_per_task, 1.0);
  EXPECT_DOUBLE_EQ(row.pct_writes_shared, 10.0);
  EXPECT_DOUBLE_EQ(row.ops_per_write, 5.0);
  EXPECT_DOUBLE_EQ(row.arith_per_shared_write, 50.0);
}

TEST(Prof, NoProfIsZeroCostNoOp) {
  // Compile-time check mostly; the calls must exist and do nothing.
  prof::NoProf::task(100);
  prof::NoProf::taskwait();
  prof::NoProf::ops(5);
  prof::NoProf::write_private(1);
  prof::NoProf::write_shared(1);
  prof::NoProf::write_env(1);
  EXPECT_FALSE(prof::NoProf::enabled);
  EXPECT_TRUE(prof::CountingProf::enabled);
}

// ---------------------------------------------------------------------------
// Registry integrity: Table I of the paper, as machine-checkable metadata.
// ---------------------------------------------------------------------------

TEST(Registry, ContainsTheNinePaperApplications) {
  const char* paper_apps[] = {"alignment", "fft",  "fib",      "floorplan",
                              "health",    "nqueens", "sort", "sparselu",
                              "strassen"};
  for (const char* name : paper_apps) {
    const auto* app = core::find_app(name);
    ASSERT_NE(app, nullptr) << name;
    EXPECT_FALSE(app->extension) << name;
  }
  EXPECT_EQ(core::find_app("nonexistent"), nullptr);
}

TEST(Registry, EveryAppHasRunnableEntryPoints) {
  for (const auto& app : core::apps()) {
    EXPECT_TRUE(app.run) << app.name;
    EXPECT_TRUE(app.run_serial) << app.name;
    EXPECT_TRUE(app.profile_row) << app.name;
    EXPECT_TRUE(app.describe_input) << app.name;
    EXPECT_FALSE(app.versions.empty()) << app.name;
  }
}

TEST(Registry, ExactlyOnePaperBestVersionPerApp) {
  for (const auto& app : core::apps()) {
    int best = 0;
    for (const auto& v : app.versions) best += v.paper_best;
    EXPECT_EQ(best, 1) << app.name;
  }
}

TEST(Registry, VersionNamesAreUnique) {
  for (const auto& app : core::apps()) {
    for (std::size_t i = 0; i < app.versions.size(); ++i) {
      for (std::size_t j = i + 1; j < app.versions.size(); ++j) {
        EXPECT_NE(app.versions[i].name, app.versions[j].name) << app.name;
      }
    }
  }
}

TEST(Registry, TableOneStaticFieldsMatchThePaper) {
  struct Row {
    const char* name;
    const char* origin;
    int directives;
    const char* inside;
    bool nested;
    const char* cutoff;
  };
  const Row table1[] = {
      {"alignment", "AKM", 1, "for", false, "none"},
      {"fft", "Cilk", 41, "single", true, "none"},
      {"fib", "-", 2, "single", true, "depth-based"},
      {"floorplan", "AKM", 1, "single", true, "depth-based"},
      {"health", "Olden", 1, "single", true, "depth-based"},
      {"nqueens", "Cilk", 1, "single", true, "depth-based"},
      {"sort", "Cilk", 9, "single", true, "none"},
      {"sparselu", "-", 4, "single/for", false, "none"},
      {"strassen", "Cilk", 8, "single", true, "depth-based"},
  };
  for (const auto& row : table1) {
    const auto* app = core::find_app(row.name);
    ASSERT_NE(app, nullptr) << row.name;
    EXPECT_EQ(app->origin, row.origin) << row.name;
    EXPECT_EQ(app->task_directives, row.directives) << row.name;
    EXPECT_EQ(app->tasks_inside, row.inside) << row.name;
    EXPECT_EQ(app->nested_tasks, row.nested) << row.name;
    EXPECT_EQ(app->app_cutoff, row.cutoff) << row.name;
  }
}

TEST(Registry, TiedAndUntiedVersionsExistForEveryApp) {
  // Section III-A: "All benchmarks come with versions with tied and untied
  // tasks".
  for (const auto& app : core::apps()) {
    bool has_tied = false;
    bool has_untied = false;
    for (const auto& v : app.versions) {
      has_tied |= v.tied == bots::rt::Tiedness::tied;
      has_untied |= v.tied == bots::rt::Tiedness::untied;
    }
    EXPECT_TRUE(has_tied) << app.name;
    EXPECT_TRUE(has_untied) << app.name;
  }
}

}  // namespace
