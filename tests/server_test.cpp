// Server-mode tests (PR 7): the resident TaskServer multiplexing many
// concurrent request regions over one pinned worker pool. Everything runs
// the REAL scheduler and a REAL resident region; the invariants asserted —
// non-blocking admission, exactly-one-terminal-state, per-request ledgers
// and fault isolation, deadline/shed behaviour, the reconfigure guard — are
// the ones bench_server_mix and the CI soak job rely on.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = fib_task(n - 1); });
  rt::spawn([&b, n] { b = fib_task(n - 2); });
  rt::taskwait();
  return a + b;
}

// Scheduler config pinned against the environment (CI's fault legs export
// RT_FAULT_PLAN to the whole suite; server tests that assert exact admission
// counts must not see injected admission faults).
rt::SchedulerConfig clean_cfg(unsigned threads) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.fault_plan.clear();
  return cfg;
}

void expect_accounting_balanced(const rt::StatsSnapshot& st) {
  EXPECT_EQ(st.total.tasks_created + st.total.range_splits,
            st.total.tasks_deferred + st.total.tasks_if_inlined +
                st.total.tasks_cutoff_inlined);
  EXPECT_EQ(st.total.tasks_executed + st.total.tasks_discarded,
            st.total.tasks_deferred);
}

// The conservation law: after drain, every submit() call ended in exactly
// one terminal state.
void expect_conservation(const rt::ServerStats& st) {
  EXPECT_EQ(st.submitted,
            st.completed + st.cancelled + st.deadline_exceeded + st.rejected);
}

// ---------------------------------------------------------------------------
// Tentpole: concurrent requests complete with per-request ledgers.
// ---------------------------------------------------------------------------

TEST(Server, MixedRequestsAllComplete) {
  rt::Scheduler s(clean_cfg(4));
  rt::ServerConfig sc;
  sc.queue_capacity = 32;
  rt::TaskServer server(s, sc);
  EXPECT_TRUE(server.running());

  constexpr int kReqs = 8;
  std::array<std::uint64_t, kReqs> out{};
  std::vector<rt::RegionHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    const int n = 16 + (i % 3);
    auto res = server.submit([&out, i, n] { out[static_cast<std::size_t>(i)] = fib_task(n); });
    ASSERT_TRUE(res.admitted);
    ASSERT_TRUE(res.handle.valid());
    handles.push_back(res.handle);
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.wait(), rt::RequestStatus::completed);
    EXPECT_TRUE(h.ledger_balanced());
    EXPECT_GT(h.tasks_executed(), 0u);
    EXPECT_EQ(h.tasks_discarded(), 0u);
    EXPECT_EQ(h.exception(), nullptr);
    EXPECT_GT(h.latency().count(), 0);
  }
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], fib_ref(16 + (i % 3)));
  }
  server.drain();
  EXPECT_FALSE(server.running());
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kReqs));
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(kReqs));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kReqs));
  EXPECT_EQ(st.rejected, 0u);
  expect_conservation(st);
  const rt::StatsSnapshot snap = s.stats();
  EXPECT_GE(snap.total.server_requests, static_cast<std::uint64_t>(kReqs));
  expect_accounting_balanced(snap);
}

// ---------------------------------------------------------------------------
// Satellite: per-region status via handles — two OVERLAPPING requests with
// independently queryable, distinct statuses (the scheduler-global
// last_region_status() cannot express this; it is deprecated for server use).
// ---------------------------------------------------------------------------

TEST(Server, OverlappingRequestsHaveIndependentStatus) {
  rt::Scheduler s(clean_cfg(4));
  rt::ServerConfig sc;
  sc.queue_capacity = 8;
  rt::TaskServer server(s, sc);

  std::atomic<bool> a_started{false};
  auto ra = server.submit([&] {
    a_started.store(true, std::memory_order_release);
    while (!rt::cancellation_point()) { std::this_thread::yield(); }
  });
  auto rb = server.submit([] { (void)fib_task(18); });
  ASSERT_TRUE(ra.admitted);
  ASSERT_TRUE(rb.admitted);
  while (!a_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // B completes while A is still live: two regions, two statuses.
  EXPECT_EQ(rb.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(ra.handle.status(), rt::RequestStatus::pending);
  ra.handle.cancel();
  EXPECT_EQ(ra.handle.wait(), rt::RequestStatus::cancelled);
  EXPECT_EQ(rb.handle.status(), rt::RequestStatus::completed);
  server.drain();
  expect_conservation(server.stats());
}

// ---------------------------------------------------------------------------
// Tentpole: per-request fault isolation — one client's exception cancels
// only that client's region; siblings and the server survive.
// ---------------------------------------------------------------------------

TEST(Server, ExceptionCancelsOnlyItsOwnRequest) {
  rt::Scheduler s(clean_cfg(4));
  rt::ServerConfig sc;
  sc.queue_capacity = 8;
  rt::TaskServer server(s, sc);

  std::uint64_t good_out = 0;
  auto bad = server.submit([] {
    rt::spawn([] { throw std::runtime_error("client A boom"); });
    (void)fib_task(18);
  });
  auto good = server.submit([&good_out] { good_out = fib_task(20); });
  ASSERT_TRUE(bad.admitted);
  ASSERT_TRUE(good.admitted);

  EXPECT_EQ(bad.handle.wait(), rt::RequestStatus::cancelled);
  ASSERT_NE(bad.handle.exception(), nullptr);
  try {
    std::rethrow_exception(bad.handle.exception());
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "client A boom");
  }
  EXPECT_TRUE(bad.handle.ledger_balanced());

  EXPECT_EQ(good.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(good_out, fib_ref(20));
  EXPECT_EQ(good.handle.exception(), nullptr);

  // The server itself is unharmed: a THIRD request still completes.
  EXPECT_TRUE(server.running());
  auto after = server.submit([] { (void)fib_task(14); });
  ASSERT_TRUE(after.admitted);
  EXPECT_EQ(after.handle.wait(), rt::RequestStatus::completed);
  server.drain();
  expect_conservation(server.stats());
}

// ---------------------------------------------------------------------------
// Tentpole: bounded admission — submit() never blocks; a full queue rejects
// with a retry-after hint.
// ---------------------------------------------------------------------------

TEST(Server, BackpressureRejectsWithRetryHint) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  sc.queue_capacity = 2;
  sc.max_live = 1;
  sc.shed_on_overload = false;  // plain rejection, no shedding
  rt::TaskServer server(s, sc);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  auto blocker_body = [&] {
    started.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire) &&
           !rt::cancellation_point()) {
      std::this_thread::yield();
    }
  };
  std::vector<rt::RegionHandle> admitted;
  auto live = server.submit(blocker_body);
  ASSERT_TRUE(live.admitted);
  admitted.push_back(live.handle);
  // Wait until the blocker occupies the single live slot, then fill the
  // queue behind it.
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 2; ++i) {
    auto r = server.submit(blocker_body);
    ASSERT_TRUE(r.admitted);
    admitted.push_back(r.handle);
  }
  // Queue is now full: every further submit is rejected IMMEDIATELY (no
  // blocking) with a terminal handle and a non-zero retry hint.
  for (int i = 0; i < 8; ++i) {
    auto r = server.submit([] {});
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.handle.status(), rt::RequestStatus::rejected_overload);
    EXPECT_TRUE(r.handle.done());
    EXPECT_GE(r.retry_after.count(), 1);
  }
  release.store(true, std::memory_order_release);
  for (auto& h : admitted) {
    EXPECT_EQ(h.wait(), rt::RequestStatus::completed);
  }
  server.drain();
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, 11u);
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.rejected, 8u);
  EXPECT_EQ(st.shed, 0u);
  expect_conservation(st);
}

// ---------------------------------------------------------------------------
// Tentpole: load shedding — on saturation the pending request closest to
// its deadline is cancelled to admit the new one.
// ---------------------------------------------------------------------------

TEST(Server, ShedCancelsNearestDeadlinePending) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  sc.queue_capacity = 2;
  sc.max_live = 1;
  sc.shed_on_overload = true;
  rt::TaskServer server(s, sc);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  auto blocker = server.submit([&] {
    started.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire) &&
           !rt::cancellation_point()) {
      std::this_thread::yield();
    }
  });
  ASSERT_TRUE(blocker.admitted);
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  // Queue: p_far (10s deadline), p_near (2s deadline). Both far enough out
  // that the monitor cannot beat the shed — the terminal cause below is
  // deterministically the shedder.
  auto p_far = server.submit([] {}, {.weight = 1, .deadline_ms = 10000});
  auto p_near = server.submit([] {}, {.weight = 1, .deadline_ms = 2000});
  ASSERT_TRUE(p_far.admitted);
  ASSERT_TRUE(p_near.admitted);
  // Saturating submit: p_near (nearest deadline) is shed to make room.
  auto p_new = server.submit([] {}, {.weight = 1, .deadline_ms = 5000});
  EXPECT_TRUE(p_new.admitted);
  EXPECT_EQ(p_near.handle.status(), rt::RequestStatus::cancelled);
  EXPECT_TRUE(p_near.handle.ledger_balanced());  // never ran: 0 == 0

  release.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(p_far.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(p_new.handle.wait(), rt::RequestStatus::completed);
  server.drain();
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.shed, 1u);
  expect_conservation(st);
}

// ---------------------------------------------------------------------------
// Tentpole: per-request deadlines enforced by the server monitor.
// ---------------------------------------------------------------------------

TEST(Server, PerRequestDeadlineExceeded) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  sc.queue_capacity = 8;
  rt::TaskServer server(s, sc);

  auto slow = server.submit(
      [] {
        while (!rt::cancellation_point()) { std::this_thread::yield(); }
      },
      {.weight = 1, .deadline_ms = 30});
  auto fast = server.submit([] { (void)fib_task(14); });
  ASSERT_TRUE(slow.admitted);
  ASSERT_TRUE(fast.admitted);
  EXPECT_EQ(slow.handle.wait(), rt::RequestStatus::deadline_exceeded);
  EXPECT_TRUE(slow.handle.ledger_balanced());
  EXPECT_GT(slow.handle.latency().count(), 0);
  // The neighbour is untouched by the deadline kill.
  EXPECT_EQ(fast.handle.wait(), rt::RequestStatus::completed);
  server.drain();
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.deadline_exceeded, 1u);
  expect_conservation(st);
}

// ---------------------------------------------------------------------------
// Tentpole: weighted-share fairness — a heavier request is picked first
// under contention (stride scheduling).
// ---------------------------------------------------------------------------

TEST(Server, WeightedShareFavorsHeavyRequest) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  sc.queue_capacity = 8;
  sc.max_live = 1;
  sc.fairness = rt::ServerFairness::weighted_share;
  rt::TaskServer server(s, sc);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  auto blocker = server.submit([&] {
    started.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire) &&
           !rt::cancellation_point()) {
      std::this_thread::yield();
    }
  });
  ASSERT_TRUE(blocker.admitted);
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  std::mutex om;
  std::vector<char> order;
  // Light submitted FIRST; the weight-4 heavy one must still be picked
  // first (stride: pass advances by stride/weight).
  auto light = server.submit(
      [&] {
        std::lock_guard<std::mutex> l(om);
        order.push_back('L');
      },
      {.weight = 1, .deadline_ms = 0});
  auto heavy = server.submit(
      [&] {
        std::lock_guard<std::mutex> l(om);
        order.push_back('H');
      },
      {.weight = 4, .deadline_ms = 0});
  ASSERT_TRUE(light.admitted);
  ASSERT_TRUE(heavy.admitted);
  release.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(light.handle.wait(), rt::RequestStatus::completed);
  EXPECT_EQ(heavy.handle.wait(), rt::RequestStatus::completed);
  {
    std::lock_guard<std::mutex> l(om);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 'H');
    EXPECT_EQ(order[1], 'L');
  }
  server.drain();
  expect_conservation(server.stats());
}

// ---------------------------------------------------------------------------
// Shutdown paths.
// ---------------------------------------------------------------------------

TEST(Server, DrainRejectsNewSubmitsPermanently) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  rt::TaskServer server(s, sc);
  auto ok = server.submit([] { (void)fib_task(12); });
  ASSERT_TRUE(ok.admitted);
  server.drain();
  EXPECT_EQ(ok.handle.status(), rt::RequestStatus::completed);
  EXPECT_FALSE(server.running());
  auto late = server.submit([] {});
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.handle.status(), rt::RequestStatus::rejected_overload);
  EXPECT_EQ(late.retry_after.count(), 0);  // permanent: do not retry
  server.drain();  // idempotent
  expect_conservation(server.stats());
}

TEST(Server, StopCancelsPendingAndLiveRequests) {
  rt::Scheduler s(clean_cfg(2));
  rt::ServerConfig sc;
  sc.queue_capacity = 8;
  sc.max_live = 1;
  rt::TaskServer server(s, sc);

  std::atomic<int> started{0};
  auto live = server.submit([&] {
    started.fetch_add(1, std::memory_order_acq_rel);
    while (!rt::cancellation_point()) { std::this_thread::yield(); }
  });
  auto q1 = server.submit([] { (void)fib_task(16); });
  auto q2 = server.submit([] { (void)fib_task(16); });
  ASSERT_TRUE(live.admitted);
  ASSERT_TRUE(q1.admitted);
  ASSERT_TRUE(q2.admitted);
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  server.stop();
  EXPECT_EQ(live.handle.wait(), rt::RequestStatus::cancelled);
  EXPECT_EQ(q1.handle.wait(), rt::RequestStatus::cancelled);
  EXPECT_EQ(q2.handle.wait(), rt::RequestStatus::cancelled);
  EXPECT_TRUE(live.handle.ledger_balanced());
  EXPECT_FALSE(server.running());
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.cancelled, 3u);
  expect_conservation(st);
}

// ---------------------------------------------------------------------------
// Satellite: reconfigure() against a LIVE region is a checked error.
// ---------------------------------------------------------------------------

TEST(Server, ReconfigureWhileServerRunningThrows) {
  rt::Scheduler s(clean_cfg(4));
  rt::ServerConfig sc;
  rt::TaskServer server(s, sc);
  ASSERT_TRUE(server.running());
  EXPECT_THROW(s.reconfigure(rt::StealPolicyKind::hierarchical, "2x2"),
               std::logic_error);
  server.drain();
  // Between regions reconfigure works again, exactly as before.
  s.reconfigure(rt::StealPolicyKind::last_victim, "1x4");
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(16); });
  EXPECT_EQ(r, fib_ref(16));
}

// ---------------------------------------------------------------------------
// Injected admission faults: transient rejects, same client contract as a
// real overload.
// ---------------------------------------------------------------------------

TEST(Server, AdmissionFaultInjectionRejectsTransiently) {
  rt::SchedulerConfig cfg = clean_cfg(2);
  cfg.fault_plan = "seed=3,server_admit=1.0";
  rt::Scheduler s(cfg);
  rt::ServerConfig sc;
  rt::TaskServer server(s, sc);
  for (int i = 0; i < 5; ++i) {
    auto r = server.submit([] {});
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.handle.status(), rt::RequestStatus::rejected_overload);
    EXPECT_GE(r.retry_after.count(), 1);  // transient: retry IS advised
  }
  EXPECT_EQ(s.fault_plan().injected(rt::FaultSite::server_admit), 5u);
  server.drain();
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.rejected, 5u);
  expect_conservation(st);
}

}  // namespace
