// SparseLU kernel tests: factorization correctness (LU reconstruction),
// fill-in behaviour, single vs multiple generator versions.
#include <cmath>

#include <gtest/gtest.h>

#include "kernels/sparselu/sparselu.hpp"

namespace slu = bots::sparselu;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

slu::Params tiny() { return {6, 16, 0x10Fu}; }

/// Expand the block matrix to a dense n x n double matrix (empty block = 0).
std::vector<double> to_dense(const slu::BlockMatrix& m) {
  const std::size_t nb = m.nb();
  const std::size_t bs = m.bs();
  const std::size_t n = nb * bs;
  std::vector<double> d(n * n, 0.0);
  for (std::size_t ii = 0; ii < nb; ++ii) {
    for (std::size_t jj = 0; jj < nb; ++jj) {
      if (m.empty(ii, jj)) continue;
      const float* b = m.block(ii, jj);
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          d[(ii * bs + r) * n + (jj * bs + c)] = b[r * bs + c];
        }
      }
    }
  }
  return d;
}

/// Property test: with A0 the original dense matrix and A the factored one
/// (L strictly below the diagonal with unit diagonal, U on/above), L*U must
/// reconstruct A0 up to float accumulation error.
TEST(SparseLu, LuReconstructsOriginalMatrix) {
  const slu::Params p = tiny();
  slu::BlockMatrix original = slu::make_input(p);
  const auto a0 = to_dense(original);
  slu::run_serial(p, original);
  const auto lu = to_dense(original);
  const std::size_t n = p.nb * p.bs;
  double max_err = 0.0;
  double max_abs = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k < kmax; ++k) {
        acc += lu[i * n + k] * lu[k * n + j];  // L(i,k) * U(k,j)
      }
      acc += i <= j ? lu[i * n + j] : lu[i * n + j] * lu[j * n + j];
      // i <= j: L(i,i)=1 times U(i,j). i > j: L(i,j)*U(j,j).
      max_err = std::max(max_err, std::abs(acc - a0[i * n + j]));
      max_abs = std::max(max_abs, std::abs(a0[i * n + j]));
    }
  }
  EXPECT_LT(max_err, 1e-2 * max_abs);  // float accumulation over n terms
}

TEST(SparseLu, InputIsDeterministicAndDiagonalPresent) {
  const slu::Params p = tiny();
  const slu::BlockMatrix a = slu::make_input(p);
  const slu::BlockMatrix b = slu::make_input(p);
  EXPECT_EQ(a.allocated_blocks(), b.allocated_blocks());
  for (std::size_t i = 0; i < p.nb; ++i) {
    EXPECT_FALSE(a.empty(i, i));
  }
  // Sparse: strictly fewer than all blocks allocated.
  EXPECT_LT(a.allocated_blocks(), p.nb * p.nb);
  EXPECT_GT(a.allocated_blocks(), p.nb);
}

TEST(SparseLu, FactorizationCreatesFillIn) {
  const slu::Params p = tiny();
  slu::BlockMatrix m = slu::make_input(p);
  const std::size_t before = m.allocated_blocks();
  slu::run_serial(p, m);
  EXPECT_GE(m.allocated_blocks(), before);
}

TEST(SparseLu, SerialVerifiesAgainstItself) {
  const slu::Params p = tiny();
  slu::BlockMatrix m = slu::make_input(p);
  slu::run_serial(p, m);
  EXPECT_TRUE(slu::verify(p, m));
}

TEST(SparseLu, VerifyRejectsCorruption) {
  const slu::Params p = tiny();
  slu::BlockMatrix m = slu::make_input(p);
  slu::run_serial(p, m);
  m.block(0, 0)[3] += 1.0f;
  EXPECT_FALSE(slu::verify(p, m));
}

struct Case {
  rt::Tiedness tied;
  core::Generator gen;
};

class SparseLuVersions
    : public ::testing::TestWithParam<std::tuple<Case, unsigned>> {};

TEST_P(SparseLuVersions, MatchesSerialFactorization) {
  const auto [vc, threads] = GetParam();
  const slu::Params p{8, 24, 0x10Fu};
  slu::BlockMatrix m = slu::make_input(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  slu::run_parallel(p, m, sched, {vc.tied, vc.gen});
  EXPECT_TRUE(slu::verify(p, m));
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<Case, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.gen)) + "_" + to_string(vc.tied) +
                  "_t" + std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseLuVersions,
    ::testing::Combine(
        ::testing::Values(
            Case{rt::Tiedness::tied, core::Generator::single_gen},
            Case{rt::Tiedness::untied, core::Generator::single_gen},
            Case{rt::Tiedness::tied, core::Generator::multiple_gen},
            Case{rt::Tiedness::untied, core::Generator::multiple_gen}),
        ::testing::Values(1u, 4u, 8u)), case_name);

TEST(SparseLu, BothGeneratorsProduceIdenticalResults) {
  const slu::Params p{8, 24, 0x10Fu};
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  slu::BlockMatrix m_single = slu::make_input(p);
  slu::run_parallel(p, m_single, sched,
                    {rt::Tiedness::tied, core::Generator::single_gen});
  slu::BlockMatrix m_for = slu::make_input(p);
  slu::run_parallel(p, m_for, sched,
                    {rt::Tiedness::tied, core::Generator::multiple_gen});
  for (std::size_t ii = 0; ii < p.nb; ++ii) {
    for (std::size_t jj = 0; jj < p.nb; ++jj) {
      ASSERT_EQ(m_single.empty(ii, jj), m_for.empty(ii, jj));
      if (m_single.empty(ii, jj)) continue;
      const float* a = m_single.block(ii, jj);
      const float* b = m_for.block(ii, jj);
      for (std::size_t k = 0; k < p.bs * p.bs; ++k) {
        ASSERT_EQ(a[k], b[k]);  // same arithmetic, same order: bitwise equal
      }
    }
  }
}

TEST(SparseLu, RangeTasksCreateFarFewerDescriptorsSameFactorization) {
  // The `for` version's per-phase range tasks vs per-block spawning: the
  // descriptor-count ratio grows with nb (one range per phase instead of one
  // task per non-empty block; ~23x at nb=24, ~32x at nb=32). The small test
  // matrix here already shows a >= 4x reduction at bitwise-identical output.
  const slu::Params p = slu::params_for(core::InputClass::test);  // nb=12

  rt::SchedulerConfig legacy_cfg{.num_threads = 4};
  legacy_cfg.use_range_tasks = false;
  rt::Scheduler legacy(legacy_cfg);
  slu::BlockMatrix m_legacy = slu::make_input(p);
  slu::run_parallel(p, m_legacy, legacy,
                    {rt::Tiedness::tied, core::Generator::multiple_gen});
  const auto legacy_created = legacy.stats().total.tasks_created;
  EXPECT_TRUE(slu::verify(p, m_legacy));

  rt::Scheduler ranged(rt::SchedulerConfig{.num_threads = 4});
  ASSERT_TRUE(ranged.config().use_range_tasks);  // the default
  slu::BlockMatrix m_ranged = slu::make_input(p);
  slu::run_parallel(p, m_ranged, ranged,
                    {rt::Tiedness::tied, core::Generator::multiple_gen});
  const auto t = ranged.stats().total;
  EXPECT_TRUE(slu::verify(p, m_ranged));

  EXPECT_GT(t.range_tasks, 0u);
  EXPECT_LE(t.tasks_created * 4, legacy_created)
      << "range generator lost its descriptor advantage";

  for (std::size_t ii = 0; ii < p.nb; ++ii) {
    for (std::size_t jj = 0; jj < p.nb; ++jj) {
      ASSERT_EQ(m_legacy.empty(ii, jj), m_ranged.empty(ii, jj));
      if (m_legacy.empty(ii, jj)) continue;
      const float* a = m_legacy.block(ii, jj);
      const float* b = m_ranged.block(ii, jj);
      for (std::size_t k = 0; k < p.bs * p.bs; ++k) {
        ASSERT_EQ(a[k], b[k]);  // same arithmetic, same order: bitwise equal
      }
    }
  }
}

TEST(SparseLu, ProfileRowShape) {
  const auto row = slu::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  // All kernel writes hit shared blocks: Table II reports 49.46%
  // non-private with ~12 ops per non-private write.
  EXPECT_GT(row.pct_writes_shared, 90.0);
  EXPECT_GT(row.arith_per_shared_write, 1.5);
  EXPECT_LT(row.arith_per_shared_write, 200.0);
}

TEST(SparseLu, AppInfoMetadata) {
  const auto app = slu::make_app_info();
  EXPECT_EQ(app.tasks_inside, "single/for");
  EXPECT_EQ(app.task_directives, 4);
  EXPECT_EQ(app.best_version().name, "for-tied");  // Figure 3 annotation
  EXPECT_FALSE(app.nested_tasks);
}

}  // namespace
