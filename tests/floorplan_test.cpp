// Floorplan kernel tests: optimality invariants, bound behaviour, the
// nodes-visited metric, version matrix.
#include <numeric>

#include <gtest/gtest.h>

#include "kernels/floorplan/floorplan.hpp"

namespace fp = bots::floorplan;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

fp::Params tiny() { return {5, 2, 0xF100Bu}; }

int total_cell_area(const std::vector<fp::Cell>& cells) {
  int a = 0;
  for (const auto& c : cells) a += c.area;
  return a;
}

TEST(Floorplan, InputShapesPreserveArea) {
  const fp::Params p = tiny();
  const auto cells = fp::make_input(p);
  EXPECT_EQ(cells.size(), 5u);
  for (const auto& c : cells) {
    EXPECT_FALSE(c.shapes.empty());
    for (const auto& [w, h] : c.shapes) {
      EXPECT_EQ(w * h, c.area);
      EXPECT_GE(w, 1);
      EXPECT_LE(w, 8);
      EXPECT_GE(h, 1);
      EXPECT_LE(h, 8);
    }
  }
}

TEST(Floorplan, SerialOptimumBounds) {
  const fp::Params p = tiny();
  const auto cells = fp::make_input(p);
  const fp::Result r = fp::run_serial(p, cells);
  // The optimal bounding box is at least the total cell area and at most
  // the whole board.
  EXPECT_GE(r.best_area, total_cell_area(cells));
  EXPECT_LE(r.best_area, fp::board_dim * fp::board_dim);
  EXPECT_GT(r.nodes, 0u);
}

TEST(Floorplan, SerialIsDeterministic) {
  const fp::Params p = tiny();
  const auto cells = fp::make_input(p);
  const fp::Result a = fp::run_serial(p, cells);
  const fp::Result b = fp::run_serial(p, cells);
  EXPECT_EQ(a.best_area, b.best_area);
  EXPECT_EQ(a.nodes, b.nodes);  // serial search order is fixed
}

TEST(Floorplan, SingleSquareCellIsItsOwnArea) {
  // One 2x3 cell: minimal bounding box is exactly the cell.
  fp::Params p{1, 1, 0xF100Bu};
  std::vector<fp::Cell> cells(1);
  cells[0].area = 6;
  cells[0].shapes = {{2, 3}, {3, 2}, {1, 6}, {6, 1}};
  const fp::Result r = fp::run_serial(p, cells);
  EXPECT_EQ(r.best_area, 6);
}

TEST(Floorplan, TwoCellsPackPerfectly) {
  // Two 2x4 cells can tile a 4x4 square (area 16).
  fp::Params p{2, 1, 0xF100Bu};
  std::vector<fp::Cell> cells(2);
  for (auto& c : cells) {
    c.area = 8;
    c.shapes = {{2, 4}, {4, 2}, {1, 8}, {8, 1}};
  }
  const fp::Result r = fp::run_serial(p, cells);
  EXPECT_EQ(r.best_area, 16);
}

struct Case {
  rt::Tiedness tied;
  core::AppCutoff cutoff;
};

class FloorplanVersions
    : public ::testing::TestWithParam<std::tuple<Case, unsigned>> {};

TEST_P(FloorplanVersions, FindsTheSerialOptimum) {
  const auto [vc, threads] = GetParam();
  const fp::Params p = tiny();
  const auto cells = fp::make_input(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  const fp::Result r = fp::run_parallel(p, cells, sched, {vc.tied, vc.cutoff});
  // Node counts are schedule-dependent (the paper's controlled
  // indeterminism) but the optimum is not.
  EXPECT_TRUE(fp::verify(p, cells, r));
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<Case, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.cutoff)) + "_" +
                  to_string(vc.tied) + "_t" +
                  std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FloorplanVersions,
    ::testing::Combine(
        ::testing::Values(Case{rt::Tiedness::tied, core::AppCutoff::none},
                          Case{rt::Tiedness::untied, core::AppCutoff::none},
                          Case{rt::Tiedness::untied, core::AppCutoff::if_clause},
                          Case{rt::Tiedness::tied, core::AppCutoff::manual},
                          Case{rt::Tiedness::untied, core::AppCutoff::manual}),
        ::testing::Values(1u, 4u, 8u)), case_name);

TEST(Floorplan, LargeStateForcesHeapEnvironments) {
  // The copied search state is ~4.2 KB — far beyond the inline descriptor
  // buffer; this is the suite's heap-environment stressor.
  const fp::Params p = tiny();
  const auto cells = fp::make_input(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  (void)fp::run_parallel(p, cells, sched,
                         {rt::Tiedness::untied, core::AppCutoff::none});
  const auto st = sched.stats().total;
  ASSERT_GT(st.tasks_created, 0u);
  EXPECT_GT(st.env_bytes / st.tasks_created, rt::Task::inline_env_capacity);
}

TEST(Floorplan, ProfileRowShowsBigCapturedEnvironment) {
  const auto row = fp::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  // Table II: ~5 KB captured per task for Floorplan — ours is the 4.2 KB
  // board + placement state.
  EXPECT_GT(row.captured_env_bytes_per_task, 4000.0);
  EXPECT_GT(row.env_writes_per_task, 0.0);
}

TEST(Floorplan, AppInfoMetadata) {
  const auto app = fp::make_app_info();
  EXPECT_EQ(app.origin, "AKM");
  EXPECT_EQ(app.domain, "Optimization");
  EXPECT_EQ(app.best_version().name, "manual-untied");  // Figure 3 annotation
}

}  // namespace
