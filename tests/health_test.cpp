// Health kernel tests: exact determinism across schedules (the paper's
// per-village-seed device), conservation laws, version matrix.
#include <gtest/gtest.h>

#include "kernels/health/health.hpp"

namespace hl = bots::health;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

hl::Params tiny() {
  hl::Params p;
  p.levels = 3;
  p.branch = 3;
  p.population = 6;
  p.sim_steps = 25;
  p.cutoff_level = 1;
  return p;
}

std::uint64_t total_patients(const hl::Params& p) {
  std::uint64_t villages = 0;
  std::uint64_t layer = 1;
  for (int l = 0; l < p.levels; ++l) {
    villages += layer;
    layer *= static_cast<std::uint64_t>(p.branch);
  }
  return villages * static_cast<std::uint64_t>(p.population);
}

TEST(Health, PatientsAreConserved) {
  const hl::Params p = tiny();
  const hl::Stats s = hl::run_serial(p);
  // No patient is created or destroyed during simulation; realloc queues
  // are drained every step, so everyone is in one of the four states.
  EXPECT_EQ(s.population + s.waiting + s.assess + s.inside, total_patients(p));
}

TEST(Health, SimulationActuallyHospitalizesPeople) {
  const hl::Params p = tiny();
  const hl::Stats s = hl::run_serial(p);
  EXPECT_GT(s.total_hosps_visited, 0u);
  EXPECT_GT(s.total_time, 0u);
}

TEST(Health, SerialRunIsReproducible) {
  const hl::Params p = tiny();
  EXPECT_EQ(hl::run_serial(p), hl::run_serial(p));
}

TEST(Health, DifferentSeedsGiveDifferentHistories) {
  hl::Params a = tiny();
  hl::Params b = tiny();
  b.seed ^= 0xDEADBEEFu;
  const hl::Stats sa = hl::run_serial(a);
  const hl::Stats sb = hl::run_serial(b);
  EXPECT_TRUE(sa.total_time != sb.total_time ||
              sa.total_hosps_visited != sb.total_hosps_visited);
}

struct Case {
  rt::Tiedness tied;
  core::AppCutoff cutoff;
};

class HealthVersions
    : public ::testing::TestWithParam<std::tuple<Case, unsigned>> {};

TEST_P(HealthVersions, ExactlyMatchesSerialSimulation) {
  const auto [vc, threads] = GetParam();
  const hl::Params p = tiny();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  const hl::Stats s = hl::run_parallel(p, sched, {vc.tied, vc.cutoff});
  // The paper's determinism device makes the parallel simulation *exactly*
  // equal to the serial one, for any schedule and thread count.
  EXPECT_EQ(s, hl::run_serial(p));
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<Case, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.cutoff)) + "_" +
                  to_string(vc.tied) + "_t" +
                  std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HealthVersions,
    ::testing::Combine(
        ::testing::Values(Case{rt::Tiedness::tied, core::AppCutoff::none},
                          Case{rt::Tiedness::untied, core::AppCutoff::none},
                          Case{rt::Tiedness::tied, core::AppCutoff::if_clause},
                          Case{rt::Tiedness::untied, core::AppCutoff::manual}),
        ::testing::Values(1u, 4u, 8u)), case_name);

TEST(Health, ForVersionLevelSweepExactlyMatchesSerial) {
  // The `for` version simulates whole levels bottom-up (children before
  // parents, like the recursion's taskwaits) with a splittable range task
  // per level — or per-village spawns when use_range_tasks is off. Both must
  // reproduce the serial history exactly, on any team.
  const hl::Params p = tiny();
  const hl::Stats serial = hl::run_serial(p);
  for (bool ranges : {true, false}) {
    for (unsigned threads : {1u, 4u, 8u}) {
      for (rt::Tiedness tied : {rt::Tiedness::tied, rt::Tiedness::untied}) {
        rt::SchedulerConfig cfg{.num_threads = threads};
        cfg.use_range_tasks = ranges;
        rt::Scheduler sched(cfg);
        const hl::Stats s = hl::run_parallel(
            p, sched, {tied, core::AppCutoff::none,
                       core::Generator::multiple_gen});
        EXPECT_EQ(s, serial) << "ranges=" << ranges << " threads=" << threads
                             << " tied=" << to_string(tied);
      }
    }
  }
}

TEST(Health, ForVersionCreatesFarFewerDescriptors) {
  const hl::Params p = tiny();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  (void)hl::run_parallel(
      p, sched,
      {rt::Tiedness::tied, core::AppCutoff::none, core::Generator::single_gen});
  const auto single_created = sched.stats().total.tasks_created;
  (void)hl::run_parallel(p, sched,
                         {rt::Tiedness::tied, core::AppCutoff::none,
                          core::Generator::multiple_gen});
  const auto for_created = sched.stats().total.tasks_created - single_created;
  EXPECT_LT(for_created * 2, single_created);
}

TEST(Health, RepeatedParallelRunsIdentical) {
  const hl::Params p = tiny();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 8});
  const hl::Stats first =
      hl::run_parallel(p, sched, {rt::Tiedness::untied, core::AppCutoff::none});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(hl::run_parallel(p, sched,
                               {rt::Tiedness::untied, core::AppCutoff::none}),
              first);
  }
}

TEST(Health, ManualCutoffSpawnsFewerTasks) {
  hl::Params p = tiny();
  p.levels = 4;
  p.cutoff_level = 3;  // only the top of the hierarchy spawns
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  (void)hl::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::manual});
  const auto manual = sched.stats().total.tasks_created;
  (void)hl::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::none});
  const auto none = sched.stats().total.tasks_created;
  EXPECT_LT(manual, none);
}

TEST(Health, ZeroStepsLeavesEveryoneHealthy) {
  hl::Params p = tiny();
  p.sim_steps = 0;
  const hl::Stats s = hl::run_serial(p);
  EXPECT_EQ(s.population, total_patients(p));
  EXPECT_EQ(s.total_hosps_visited, 0u);
}

TEST(Health, ProfileRowShape) {
  const auto row = hl::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  // One task per village per step; small captured environment (a pointer —
  // Table II reports 8 bytes).
  EXPECT_LE(row.captured_env_bytes_per_task, 16.0);
  EXPECT_GT(row.taskwaits_per_task, 0.0);
}

TEST(Health, AppInfoMetadata) {
  const auto app = hl::make_app_info();
  EXPECT_EQ(app.origin, "Olden");
  EXPECT_EQ(app.domain, "Simulation");
  EXPECT_EQ(app.app_cutoff, "depth-based");
  EXPECT_EQ(app.best_version().name, "manual-tied");  // Figure 3 annotation
}

}  // namespace
