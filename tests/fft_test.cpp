// FFT kernel tests: analytic known answers, DFT cross-checks, linearity and
// Parseval properties, version/thread sweeps.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "kernels/fft/fft.hpp"

namespace fft = bots::fft;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

fft::Params sized(std::size_t n) {
  fft::Params p;
  p.n = n;
  return p;
}

double max_abs_diff(const std::vector<fft::Complex>& a,
                    const std::vector<fft::Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  const fft::Params p = sized(256);
  std::vector<fft::Complex> v(p.n, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  fft::run_serial(p, v);
  for (const auto& z : v) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantGivesDeltaAtZero) {
  const fft::Params p = sized(512);
  std::vector<fft::Complex> v(p.n, {1.0, 0.0});
  fft::run_serial(p, v);
  EXPECT_NEAR(v[0].real(), 512.0, 1e-9);
  for (std::size_t i = 1; i < p.n; ++i) {
    EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsInRightBin) {
  const fft::Params p = sized(1024);
  std::vector<fft::Complex> v(p.n);
  const std::size_t k0 = 37;
  for (std::size_t j = 0; j < p.n; ++j) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k0 * j) /
                       static_cast<double>(p.n);
    v[j] = {std::cos(ang), std::sin(ang)};
  }
  fft::run_serial(p, v);
  EXPECT_NEAR(v[k0].real(), 1024.0, 1e-8);
  for (std::size_t i = 0; i < p.n; ++i) {
    if (i != k0) ASSERT_NEAR(std::abs(v[i]), 0.0, 1e-8) << "bin " << i;
  }
}

TEST(Fft, MatchesDirectDftOnRandomInput) {
  const fft::Params p = sized(2048);
  auto v = fft::make_input(p);
  const auto input = v;
  fft::run_serial(p, v);
  EXPECT_TRUE(fft::verify(p, input, v));  // direct DFT compare at this size
}

TEST(Fft, Linearity) {
  const fft::Params p = sized(512);
  auto a = fft::make_input(p);
  fft::Params p2 = p;
  p2.seed ^= 0x1234;
  auto b = fft::make_input(p2);
  std::vector<fft::Complex> sum(p.n);
  for (std::size_t i = 0; i < p.n; ++i) sum[i] = a[i] + 2.0 * b[i];
  fft::run_serial(p, a);
  fft::run_serial(p, b);
  fft::run_serial(p, sum);
  std::vector<fft::Complex> expect(p.n);
  for (std::size_t i = 0; i < p.n; ++i) expect[i] = a[i] + 2.0 * b[i];
  EXPECT_LT(max_abs_diff(sum, expect), 1e-9);
}

TEST(Fft, ParsevalHoldsOnLargerSizes) {
  const fft::Params p = sized(1u << 16);
  auto v = fft::make_input(p);
  double in_energy = 0.0;
  for (const auto& z : v) in_energy += std::norm(z);
  fft::run_serial(p, v);
  double out_energy = 0.0;
  for (const auto& z : v) out_energy += std::norm(z);
  EXPECT_NEAR(out_energy / static_cast<double>(p.n), in_energy,
              1e-9 * in_energy);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, ParallelMatchesSerial) {
  const fft::Params p = sized(GetParam());
  auto serial = fft::make_input(p);
  auto parallel = serial;
  fft::run_serial(p, serial);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  fft::run_parallel(p, parallel, sched, {rt::Tiedness::untied});
  EXPECT_LT(max_abs_diff(serial, parallel), 1e-12);  // identical arithmetic
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(std::size_t{64}, 128, 4096,
                                           std::size_t{1} << 15,
                                           std::size_t{1} << 18),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class FftThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftThreads, TiedAndUntiedVerify) {
  const fft::Params p = sized(1u << 14);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = GetParam()});
  for (auto tied : {rt::Tiedness::tied, rt::Tiedness::untied}) {
    auto v = fft::make_input(p);
    const auto input = v;
    fft::run_parallel(p, v, sched, {tied});
    EXPECT_TRUE(fft::verify(p, input, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, FftThreads, ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Fft, RangeTasksCutLoopDescriptorsAtIdenticalOutput) {
  // The butterfly data-motion loops (deinterleave + combine) as splittable
  // ranges instead of per-chunk tasks: on a loop-dominated shape (big leaf,
  // small chunk) the descriptor count must drop by >= 3x — and because the
  // per-iteration arithmetic is unchanged, the spectra must be
  // bit-identical, not merely within tolerance.
  fft::Params p;
  p.n = 1u << 18;
  p.leaf = 1u << 14;
  p.loop_chunk = 1024;
  auto legacy = fft::make_input(p);
  auto ranged = legacy;
  const auto input = legacy;
  auto deferred_with = [&](bool ranges, std::vector<fft::Complex>& data) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 2;
    cfg.cutoff = rt::CutoffPolicy::none;  // every construct materializes
    cfg.use_range_tasks = ranges;
    rt::Scheduler sched(cfg);
    fft::run_parallel(p, data, sched, {rt::Tiedness::untied});
    return sched.stats().total.tasks_deferred;
  };
  const std::uint64_t legacy_descs = deferred_with(false, legacy);
  const std::uint64_t range_descs = deferred_with(true, ranged);
  EXPECT_TRUE(fft::verify(p, input, legacy));
  EXPECT_EQ(legacy, ranged);  // identical arithmetic, identical spectrum
  EXPECT_GE(legacy_descs, 3 * range_descs)
      << "range tasks did not reduce descriptor traffic (legacy "
      << legacy_descs << ", ranges " << range_descs << ")";
}

TEST(Fft, LeafOnlyTransformWorks) {
  // n == leaf size: the recursion immediately uses the iterative kernel.
  fft::Params p = sized(64);
  p.leaf = 64;
  auto v = fft::make_input(p);
  const auto input = v;
  fft::run_serial(p, v);
  EXPECT_TRUE(fft::verify(p, input, v));
}

TEST(Fft, VerifyRejectsCorruptedSpectrum) {
  const fft::Params p = sized(1024);
  auto v = fft::make_input(p);
  const auto input = v;
  fft::run_serial(p, v);
  v[13] += fft::Complex{0.5, 0.0};
  EXPECT_FALSE(fft::verify(p, input, v));
}

TEST(Fft, ProfileRowShape) {
  const auto row = fft::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  // Only the top-level combine writes count as non-private (a few % — the
  // paper reports 3.49%).
  EXPECT_GT(row.pct_writes_shared, 0.0);
  EXPECT_LT(row.pct_writes_shared, 20.0);
}

TEST(Fft, AppInfoMetadata) {
  const auto app = fft::make_app_info();
  EXPECT_EQ(app.origin, "Cilk");
  EXPECT_EQ(app.task_directives, 41);
  EXPECT_EQ(app.structure, "At leafs");
}

}  // namespace
