// Fib kernel tests: known answers, version matrix, cut-off equivalence.
#include <gtest/gtest.h>

#include "kernels/fib/fib.hpp"

namespace fib = bots::fib;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

TEST(Fib, SerialKnownAnswers) {
  EXPECT_EQ(fib::run_serial({0, 1}), 0u);
  EXPECT_EQ(fib::run_serial({1, 1}), 1u);
  EXPECT_EQ(fib::run_serial({2, 1}), 1u);
  EXPECT_EQ(fib::run_serial({10, 1}), 55u);
  EXPECT_EQ(fib::run_serial({20, 1}), 6765u);
  EXPECT_EQ(fib::run_serial({30, 1}), 832040u);
}

TEST(Fib, VerifyAcceptsCorrectAndRejectsWrong) {
  EXPECT_TRUE(fib::verify({20, 1}, 6765u));
  EXPECT_FALSE(fib::verify({20, 1}, 6766u));
}

struct FibCase {
  rt::Tiedness tied;
  core::AppCutoff cutoff;
};

class FibVersions
    : public ::testing::TestWithParam<std::tuple<FibCase, unsigned>> {};

TEST_P(FibVersions, MatchesSerial) {
  const auto [vc, threads] = GetParam();
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = threads});
  fib::Params p{24, 6};
  fib::VersionOpts opts{vc.tied, vc.cutoff};
  EXPECT_EQ(fib::run_parallel(p, sched, opts), 46368u);
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<FibCase, unsigned>>& info) {
  const auto& vc = std::get<0>(info.param);
  std::string n = std::string(to_string(vc.cutoff)) + "_" +
                  to_string(vc.tied) + "_t" +
                  std::to_string(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FibVersions,
    ::testing::Combine(
        ::testing::Values(FibCase{rt::Tiedness::tied, core::AppCutoff::none},
                          FibCase{rt::Tiedness::untied, core::AppCutoff::none},
                          FibCase{rt::Tiedness::tied, core::AppCutoff::if_clause},
                          FibCase{rt::Tiedness::untied, core::AppCutoff::if_clause},
                          FibCase{rt::Tiedness::tied, core::AppCutoff::manual},
                          FibCase{rt::Tiedness::untied, core::AppCutoff::manual}),
        ::testing::Values(1u, 4u)), case_name);

TEST(Fib, ManualCutoffCreatesFewerTasks) {
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 4});
  fib::Params p{22, 5};
  (void)fib::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::manual});
  const auto manual_created = sched.stats().total.tasks_created;
  (void)fib::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::none});
  const auto none_created = sched.stats().total.tasks_created;
  EXPECT_LT(manual_created, none_created);
  // Manual cut-off at depth 5: at most 2^6 - 2 tasks.
  EXPECT_LE(manual_created, 62u);
}

TEST(Fib, IfClauseStillRegistersTasks) {
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = 2});
  fib::Params p{18, 4};
  (void)fib::run_parallel(p, sched, {rt::Tiedness::tied, core::AppCutoff::if_clause});
  const auto t = sched.stats().total;
  // The if-clause version encounters every task site (the paper's point:
  // the runtime still manages the hierarchy for if(false) tasks) ...
  EXPECT_GT(t.tasks_if_inlined, 0u);
  // ... but only the above-cutoff ones are deferred.
  EXPECT_LT(t.tasks_deferred, t.tasks_created);
}

TEST(Fib, ProfileRowCountsBinaryTree) {
  // fib task-site counting: every node with n >= 2 spawns two child tasks.
  const auto row = fib::profile_row(core::InputClass::test);  // n = 20
  // Number of internal nodes of the fib(20) call tree: calls(20) = 2*F(21)-1
  // total calls; internal calls (n >= 2) spawn 2 tasks each.
  // calls(n) = calls(n-1) + calls(n-2) + 1; internal = (calls - leaves).
  EXPECT_EQ(row.potential_tasks, 21890u);  // 2 * internal nodes
  EXPECT_DOUBLE_EQ(row.taskwaits_per_task, 0.5);  // one taskwait per 2 spawns
  EXPECT_GT(row.arith_ops_per_task, 0.0);
  EXPECT_EQ(row.pct_writes_shared, 100.0);  // results return via parent stack
}

TEST(Fib, AppInfoRegistryMetadata) {
  const auto app = fib::make_app_info();
  EXPECT_EQ(app.name, "fib");
  EXPECT_EQ(app.task_directives, 2);
  EXPECT_TRUE(app.nested_tasks);
  EXPECT_EQ(app.app_cutoff, "depth-based");
  EXPECT_EQ(app.versions.size(), 6u);
}

}  // namespace
