// UTS extension kernel tests: deterministic tree size, thread-count
// invariance, adaptive cut-off interaction.
#include <gtest/gtest.h>

#include "kernels/uts/uts.hpp"

namespace uts = bots::uts;
namespace rt = bots::rt;
namespace core = bots::core;

namespace {

uts::Params tiny() {
  uts::Params p;
  p.root_children = 16;
  p.spawn_permille = 140;
  p.max_depth = 15;
  p.work_per_node = 8;
  return p;
}

TEST(Uts, TreeSizeIsDeterministic) {
  const uts::Params p = tiny();
  const std::uint64_t a = uts::run_serial(p);
  EXPECT_EQ(a, uts::run_serial(p));
  EXPECT_GT(a, static_cast<std::uint64_t>(p.root_children));
}

TEST(Uts, DifferentSeedsDifferentTrees) {
  uts::Params a = tiny();
  uts::Params b = tiny();
  b.seed ^= 0xABCDEFu;
  EXPECT_NE(uts::run_serial(a), uts::run_serial(b));
}

TEST(Uts, DepthZeroBoundGivesRootOnly) {
  uts::Params p = tiny();
  p.max_depth = 0;
  EXPECT_EQ(uts::run_serial(p), 1u);
}

TEST(Uts, DepthOneGivesRootPlusChildren) {
  uts::Params p = tiny();
  p.max_depth = 1;
  EXPECT_EQ(uts::run_serial(p), 1u + static_cast<std::uint64_t>(p.root_children));
}

class UtsThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(UtsThreads, ParallelCountMatchesSerial) {
  const uts::Params p = tiny();
  const std::uint64_t expect = uts::run_serial(p);
  rt::Scheduler sched(rt::SchedulerConfig{.num_threads = GetParam()});
  for (auto tied : {rt::Tiedness::tied, rt::Tiedness::untied}) {
    EXPECT_EQ(uts::run_parallel(p, sched, {tied}), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, UtsThreads, ::testing::Values(1u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Uts, WorksUnderEveryRuntimeCutoff) {
  const uts::Params p = tiny();
  const std::uint64_t expect = uts::run_serial(p);
  for (auto policy :
       {rt::CutoffPolicy::none, rt::CutoffPolicy::max_tasks,
        rt::CutoffPolicy::max_depth, rt::CutoffPolicy::adaptive}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 4;
    cfg.cutoff = policy;
    rt::Scheduler sched(cfg);
    EXPECT_EQ(uts::run_parallel(p, sched, {rt::Tiedness::untied}), expect)
        << "policy " << to_string(policy);
  }
}

TEST(Uts, AdaptiveCutoffInlinesUnderFlood) {
  const uts::Params p = tiny();
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.cutoff = rt::CutoffPolicy::adaptive;
  cfg.cutoff_value = 8;
  rt::Scheduler sched(cfg);
  (void)uts::run_parallel(p, sched, {rt::Tiedness::untied});
  EXPECT_GT(sched.stats().total.tasks_cutoff_inlined, 0u);
}

TEST(Uts, ProfileRowShape) {
  const auto row = uts::profile_row(core::InputClass::test);
  EXPECT_GT(row.potential_tasks, 0u);
  EXPECT_LT(row.captured_env_bytes_per_task, 32.0);  // tiny environments
}

TEST(Uts, AppInfoIsMarkedExtension) {
  const auto app = uts::make_app_info();
  EXPECT_TRUE(app.extension);
  EXPECT_EQ(app.versions.size(), 2u);
}

}  // namespace
