// Unit tests for the bots::rt task runtime: scheduler semantics, cut-off
// policies, tiedness/TSC behaviour, worksharing, worker-local storage.
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib_ref(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = a + b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t fib_task(int n, rt::Tiedness tied) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn(tied, [&a, n, tied] { a = fib_task(n - 1, tied); });
  rt::spawn(tied, [&b, n, tied] { b = fib_task(n - 2, tied); });
  rt::taskwait();
  return a + b;
}

// ---------------------------------------------------------------------------
// Scheduler correctness across thread counts (parameterized).
// ---------------------------------------------------------------------------

class SchedulerThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchedulerThreads, FibTiedCorrect) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(22, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(22));
}

TEST_P(SchedulerThreads, FibUntiedCorrect) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(22, rt::Tiedness::untied); });
  EXPECT_EQ(r, fib_ref(22));
}

TEST_P(SchedulerThreads, DeepTiedRecursionNoCutoffTerminates) {
  // Regression test: deep tied recursion once deadlocked when TSC-refused
  // claims were parked worker-privately instead of staying globally visible.
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  cfg.cutoff = rt::CutoffPolicy::none;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(20));
}

TEST_P(SchedulerThreads, FireAndForgetTasksCompleteAtRegionEnd) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  rt::Scheduler s(cfg);
  std::atomic<int> done{0};
  s.run_single([&] {
    for (int i = 0; i < 500; ++i) {
      rt::spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // no taskwait: the region-end barrier must join them
  });
  EXPECT_EQ(done.load(), 500);
}

TEST_P(SchedulerThreads, RunAllExecutesEveryWorkerOnce) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  // Exactly GetParam() workers must exist: pin a fault-free team (an
  // injected thread-spawn fault would shrink it under CI's fault legs).
  cfg.fault_plan.clear();
  rt::Scheduler s(cfg);
  std::vector<std::atomic<int>> hits(cfg.num_threads);
  s.run_all([&](unsigned id) { hits[id].fetch_add(1); });
  for (unsigned i = 0; i < cfg.num_threads; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_P(SchedulerThreads, BarrierSeparatesPhases) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  rt::Scheduler s(cfg);
  std::atomic<int> phase1{0};
  std::atomic<bool> phase_violation{false};
  s.run_all([&](unsigned) {
    for (int i = 0; i < 50; ++i) {
      rt::spawn([&phase1] { phase1.fetch_add(1, std::memory_order_relaxed); });
    }
    rt::barrier();  // completes all phase-1 tasks
    if (phase1.load() != static_cast<int>(50 * rt::team_size())) {
      phase_violation.store(true);
    }
    rt::barrier();
  });
  EXPECT_FALSE(phase_violation.load());
  EXPECT_EQ(phase1.load(), static_cast<int>(50 * s.num_workers()));
}

TEST_P(SchedulerThreads, ManyRegionsReuseWorkers) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  rt::Scheduler s(cfg);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 100; ++rep) {
    s.run_single([&] {
      for (int i = 0; i < 20; ++i) {
        rt::spawn([&total, i] { total.fetch_add(i, std::memory_order_relaxed); });
      }
      rt::taskwait();
    });
  }
  EXPECT_EQ(total.load(), 100L * (19 * 20 / 2));
}

INSTANTIATE_TEST_SUITE_P(Threads, SchedulerThreads,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Spawn/steal fast path: batched accounting, steal-half, parking.
// ---------------------------------------------------------------------------

TEST_P(SchedulerThreads, QuiescenceWithBatchedAccountingDeltas) {
  // The flush threshold is far larger than the task count, so the region can
  // only end correctly if every worker's delta is flushed at the barrier —
  // an unflushed increment would let the quiescence check miss live tasks,
  // an unflushed decrement would hang the region (caught by the timeout).
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  cfg.cutoff = rt::CutoffPolicy::none;
  cfg.batch_accounting = true;
  cfg.accounting_batch = 1u << 20;
  rt::Scheduler s(cfg);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    s.run_single([&] {
      for (int i = 0; i < 300; ++i) {
        rt::spawn([&done] {
          rt::spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // no taskwait: the region-end barrier alone joins everything
    });
    ASSERT_EQ(done.load(), 600) << "round " << round;
  }
}

TEST_P(SchedulerThreads, QuiescenceWithBatchedAccountingAcrossPhases) {
  // Mid-region barriers must also observe batched deltas: tasks spawned by
  // tasks executed inside the barrier drain flush eagerly.
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  cfg.cutoff = rt::CutoffPolicy::none;
  cfg.accounting_batch = 1u << 20;
  rt::Scheduler s(cfg);
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  s.run_all([&](unsigned) {
    for (int i = 0; i < 40; ++i) {
      rt::spawn([&phase1] {
        rt::spawn(
            [&phase1] { phase1.fetch_add(1, std::memory_order_relaxed); });
        phase1.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt::barrier();
    if (phase1.load() != static_cast<int>(80 * rt::team_size())) {
      violation.store(true);
    }
    rt::barrier();
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase1.load(), static_cast<int>(80 * s.num_workers()));
}

TEST_P(SchedulerThreads, FibCorrectWithFastPathDisabled) {
  // The A/B baseline bench_spawn_overhead compares against: all overhaul
  // knobs off must still be a correct scheduler.
  rt::SchedulerConfig cfg;
  cfg.num_threads = GetParam();
  cfg.batch_accounting = false;
  cfg.steal_half = false;
  cfg.victim_affinity = false;
  cfg.distributed_parking = false;
  cfg.lifo_slot = false;
  cfg.fused_finish = false;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(20, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(20));
}

/// A tied task refused by the Task Scheduling Constraint is parked and later
/// executed by an eligible claimant. The scenario is deterministic: with
/// FIFO local order the body spawns tied A then tied X; the worker picks up
/// A (oldest first), A spawns child B and taskwaits. Waiting inside tied A,
/// the worker pulls X — the oldest pending task in its own deque — and MUST
/// refuse it (X is A's sibling, not a descendant), parking it. B unblocks
/// the taskwait, and the region-end barrier (which suspends no tied task)
/// claims X back from the parked pool and runs it. Run with both parking
/// implementations.
void exercise_parked_path(bool distributed, unsigned threads) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.cutoff = rt::CutoffPolicy::none;  // A, B and X must all be deferred
  cfg.local_order = rt::LocalOrder::fifo;
  cfg.distributed_parking = distributed;
  rt::Scheduler s(cfg);
  std::atomic<bool> x_ran{false};
  std::atomic<bool> b_ran{false};
  s.run_single([&] {
    rt::spawn(rt::Tiedness::tied, [&b_ran] {  // A
      rt::spawn(rt::Tiedness::tied,
                [&b_ran] { b_ran.store(true); });  // B
      rt::taskwait();
    });
    rt::spawn(rt::Tiedness::tied, [&x_ran] { x_ran.store(true); });  // X
    // no taskwait: the implicit task constrains nothing at the barrier
  });
  EXPECT_TRUE(x_ran.load());
  EXPECT_TRUE(b_ran.load());
  const auto t = s.stats().total;
  // Everything deferred was executed: the parked task was not lost.
  EXPECT_EQ(t.tasks_executed, t.tasks_deferred);
  if (threads == 1) {
    // Single worker: the refusal above is unavoidable, so the parked path
    // is guaranteed to have fired (with >1 worker a thief may legally run X
    // first). Each parked task is claimed back exactly once.
    EXPECT_GT(t.tsc_parked, 0u) << "TSC parking not exercised";
    EXPECT_EQ(t.parked_claimed, t.tsc_parked);
  } else {
    EXPECT_EQ(t.parked_claimed, t.tsc_parked);
  }
}

TEST(Scheduler, MultipleParkedSiblingsAllReclaimed) {
  // Regression: claim_parked once republished the survivors found after its
  // `take` without re-checking them and without re-arming the own-inbox
  // rescan — with a single worker every parked sibling beyond the first was
  // stranded and the region-end barrier hung (caught as a test timeout).
  for (bool distributed : {true, false}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 1;
    cfg.cutoff = rt::CutoffPolicy::none;
    cfg.local_order = rt::LocalOrder::fifo;
    cfg.distributed_parking = distributed;
    rt::Scheduler s(cfg);
    std::atomic<int> ran{0};
    s.run_single([&ran] {
      rt::spawn(rt::Tiedness::tied, [&ran] {  // A: suspends over B
        rt::spawn(rt::Tiedness::tied,
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        rt::taskwait();  // pulls the X siblings first (FIFO) and parks them
      });
      for (int i = 0; i < 3; ++i) {  // X1..X3: A's siblings, refused under A
        rt::spawn(rt::Tiedness::tied,
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    EXPECT_EQ(ran.load(), 4) << "distributed=" << distributed;
    const auto t = s.stats().total;
    EXPECT_EQ(t.tasks_executed, t.tasks_deferred) << "distributed=" << distributed;
    EXPECT_GE(t.tsc_parked, 3u) << "distributed=" << distributed;
  }
}

TEST(Scheduler, ParkedTiedTaskExecutedByEligibleClaimantDistributed) {
  exercise_parked_path(/*distributed=*/true, 1);
  exercise_parked_path(/*distributed=*/true, 4);
}

TEST(Scheduler, ParkedTiedTaskExecutedByEligibleClaimantGlobalOverflow) {
  exercise_parked_path(/*distributed=*/false, 1);
  exercise_parked_path(/*distributed=*/false, 4);
}

/// Regression: tsc_allows must check EVERY suspended tied task, not only the
/// deepest one. The suspended stack is not an ancestry chain: untied tasks
/// are claimed without a TSC check, and a tied task inlined under one pushes
/// a taskwait entry that need not descend from the deeper entries. Forced
/// scenario (2 threads, FIFO): worker 0 spawns tied A and untied U; at the
/// region barrier it runs A, which spawns B and taskwaits (stack [A]); the
/// wait claims U (untied, unconstrained), which inlines tied C via
/// spawn_if(false); C spawns tied D and taskwaits (stack [A, C]). D descends
/// from C — the stack top — but NOT from A, so worker 0 must refuse it; a
/// back()-only check would run D on worker 0 while A is suspended there,
/// violating the constraint. Worker 1 spins in its implicit body until C
/// waits (so it cannot perturb the setup), then drains the parked tasks at
/// the barrier, which keeps the refusing schedule deadlock-free.
///
/// Runs with the zero-alloc inline path both on and off: with it on, C never
/// gets a descriptor — its constraint is represented by the tied-stack entry
/// the inline path pushes for its parent U (D reattaches to U as well), and
/// the refusal must still fire; with it off, C is a descriptor-carrying
/// undeferred task (the seed behaviour PR 1 fixed).
void exercise_tsc_broken_chain(bool distributed, bool inline_fast) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 2;
  cfg.cutoff = rt::CutoffPolicy::none;  // A, U, B, D must all be deferred
  cfg.local_order = rt::LocalOrder::fifo;
  cfg.distributed_parking = distributed;
  cfg.use_inline_fast_path = inline_fast;
  rt::Scheduler s(cfg);
  std::atomic<bool> violation{false};
  std::atomic<bool> c_waiting{false};
  std::atomic<bool> d_ran{false};
  std::atomic<unsigned> a_worker{~0u};
  std::atomic<bool> a_waiting{false};
  s.run_all([&](unsigned id) {
    if (id != 0) {
      while (!c_waiting.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return;  // proceed to the barrier and drain the parked tasks
    }
    rt::spawn(rt::Tiedness::tied, [&] {  // A
      a_worker.store(rt::worker_id(), std::memory_order_relaxed);
      rt::spawn(rt::Tiedness::tied, [] {});  // B: keeps A's taskwait open
      a_waiting.store(true, std::memory_order_release);
      rt::taskwait();
      a_waiting.store(false, std::memory_order_release);
    });
    rt::spawn(rt::Tiedness::untied, [&] {  // U
      rt::spawn_if(false, rt::Tiedness::tied, [&] {  // C, inlined under U
        rt::spawn(rt::Tiedness::tied, [&] {  // D: descendant of C, not of A
          if (a_waiting.load(std::memory_order_acquire) &&
              rt::worker_id() == a_worker.load(std::memory_order_relaxed)) {
            violation.store(true);
          }
          d_ran.store(true);
        });
        c_waiting.store(true, std::memory_order_release);
        rt::taskwait();
      });
    });
  });
  EXPECT_TRUE(d_ran.load()) << "distributed=" << distributed
                            << " inline_fast=" << inline_fast;
  EXPECT_FALSE(violation.load())
      << "a tied task ran on a worker holding a suspended non-ancestor "
         "tied task (distributed="
      << distributed << " inline_fast=" << inline_fast << ")";
  const auto t = s.stats().total;
  EXPECT_EQ(t.tasks_executed, t.tasks_deferred)
      << "distributed=" << distributed << " inline_fast=" << inline_fast;
  if (inline_fast) {
    EXPECT_EQ(t.tasks_inlined_fast, 1u);  // exactly C took the zero-alloc path
  } else {
    EXPECT_EQ(t.tasks_inlined_fast, 0u);
  }
}

TEST(Scheduler, TscChecksEveryStackEntryAcrossUntiedAndInlinedTasks) {
  for (bool distributed : {true, false}) {
    exercise_tsc_broken_chain(distributed, /*inline_fast=*/false);
  }
}

TEST(Scheduler, TscEnforcedAcrossZeroAllocInlinedTiedTasks) {
  for (bool distributed : {true, false}) {
    exercise_tsc_broken_chain(distributed, /*inline_fast=*/true);
  }
}

std::uint64_t fib_if(int n, int depth_left) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  const bool defer = depth_left > 0;
  const int d = defer ? depth_left - 1 : 0;
  rt::spawn_if(defer, rt::Tiedness::tied, [&a, n, d] { a = fib_if(n - 1, d); });
  rt::spawn_if(defer, rt::Tiedness::tied, [&b, n, d] { b = fib_if(n - 2, d); });
  rt::taskwait();
  return a + b;
}

TEST(Scheduler, ZeroAllocInlinePathAllocatesNoDescriptors) {
  // The allocation-regression tripwire (also enforced in CI through
  // bench_spawn_overhead): with every construct inlined and the fast path
  // on, the run must report ZERO pool activity — any pool_fresh/pool_reuse
  // means a descriptor sneaked back onto the zero-alloc path.
  // This tripwire pins the EXACT alloc/inline partition — meaningless under
  // injected allocation faults (CI's RT_FAULT_PLAN legs), so pin them off.
  rt::SchedulerConfig on;
  on.num_threads = 2;
  on.fault_plan.clear();
  rt::Scheduler s(on);
  ASSERT_TRUE(s.config().use_inline_fast_path);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_if(20, 0); });  // depth 0: everything inlined
  EXPECT_EQ(r, fib_ref(20));
  const auto t = s.stats().total;
  EXPECT_EQ(t.pool_fresh + t.pool_reuse, 0u)
      << "the zero-alloc inline path allocated a descriptor";
  EXPECT_EQ(t.tasks_inlined_fast, t.tasks_created);
  EXPECT_EQ(t.tasks_deferred, 0u);

  // A/B: with the knob off, every undeferred construct still allocates.
  rt::SchedulerConfig off;
  off.num_threads = 2;
  off.use_inline_fast_path = false;
  off.fault_plan.clear();
  rt::Scheduler s2(off);
  std::uint64_t r2 = 0;
  s2.run_single([&] { r2 = fib_if(20, 0); });
  EXPECT_EQ(r2, fib_ref(20));
  const auto t2 = s2.stats().total;
  EXPECT_EQ(t2.pool_fresh + t2.pool_reuse, t2.tasks_created);
  EXPECT_EQ(t2.tasks_inlined_fast, 0u);
}

TEST(Scheduler, InlineFastPathMixedWithDeferredTasksIsCorrect) {
  // Constructs above the manual depth defer, everything below runs on the
  // zero-alloc path; children spawned inside inline bodies reattach to the
  // nearest descriptor-carrying ancestor and the taskwaits stay
  // conservative, so the result is exact on any team.
  for (unsigned threads : {1u, 4u, 8u}) {
    rt::Scheduler s(rt::SchedulerConfig{.num_threads = threads});
    std::uint64_t r = 0;
    s.run_single([&] { r = fib_if(22, 6); });
    EXPECT_EQ(r, fib_ref(22)) << "threads=" << threads;
    const auto t = s.stats().total;
    EXPECT_GT(t.tasks_inlined_fast, 0u);
    EXPECT_GT(t.tasks_deferred, 0u);
  }
}

TEST(Scheduler, ExceptionFromZeroAllocInlinedTaskPropagates) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  EXPECT_THROW(
      {
        s.run_single([] {
          rt::spawn_if(false, [] { throw std::runtime_error("inline boom"); });
        });
      },
      std::runtime_error);
  int ok = 0;  // the scheduler survives
  s.run_single([&ok] { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(Scheduler, InlineTaskExceptionPropagatesAtTheSpawnSite) {
  // OpenMP fidelity regression: an undeferred task runs synchronously on
  // the encountering thread, so its exception must be catchable AT THE
  // SPAWN CALL — not captured into the region and rethrown only after
  // run_single returns (the old behaviour, under which the try below never
  // catches and the region itself throws).
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  ASSERT_TRUE(s.config().use_inline_fast_path);
  bool caught_at_site = false;
  bool stack_intact = false;
  s.run_single([&] {
    try {
      rt::spawn_if(false, [] { throw std::runtime_error("inline boom"); });
    } catch (const std::runtime_error& e) {
      caught_at_site = std::string(e.what()) == "inline boom";
    }
    // Stack intact after the unwind: the same task context keeps spawning
    // and joining as if nothing happened.
    int x = 0;
    rt::spawn([&x] { x = 1; });
    rt::taskwait();
    stack_intact = x == 1;
  });  // must NOT throw: the exception was consumed at its site
  EXPECT_TRUE(caught_at_site);
  EXPECT_TRUE(stack_intact);
  const auto t = s.stats().total;
  // No descriptor leaked: the throwing construct ran on the zero-alloc
  // path (no descriptor at all); only the follow-up spawn allocated.
  EXPECT_EQ(t.pool_fresh + t.pool_reuse, 1u);
  EXPECT_EQ(t.tasks_inlined_fast, 1u);
}

TEST(Scheduler, InlineTaskExceptionUnwindsTiedBookkeeping) {
  // A tied inlined task throwing from inside another tied inlined task:
  // both frames must unwind their inline-depth and tied-stack entries on
  // the way out, or later tied scheduling (the TSC check) would consult a
  // stack describing frames that no longer exist.
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  std::uint64_t r = 0;
  s.run_single([&] {
    try {
      rt::spawn_if(false, rt::Tiedness::tied, [] {
        rt::spawn_if(false, rt::Tiedness::tied,
                     [] { throw std::runtime_error("deep inline boom"); });
      });
    } catch (const std::runtime_error&) {
    }
    r = fib_task(16, rt::Tiedness::tied);
  });
  EXPECT_EQ(r, fib_ref(16));
}

TEST(Scheduler, UndeferredDescriptorExceptionPropagatesAtTheSpawnSite) {
  // Same OpenMP semantics on the descriptor-carrying undeferred path
  // (inline fast path off): synchronous propagation AND the descriptor
  // retired — parent's child count dropped, storage recycled, not leaked.
  rt::SchedulerConfig cfg{.num_threads = 2};
  cfg.use_inline_fast_path = false;
  rt::Scheduler s(cfg);
  bool caught_at_site = false;
  s.run_single([&] {
    try {
      rt::spawn_if(false, [] { throw std::logic_error("undeferred boom"); });
    } catch (const std::logic_error& e) {
      caught_at_site = std::string(e.what()) == "undeferred boom";
    }
    rt::taskwait();  // the dead child must already be accounted: no hang
  });
  EXPECT_TRUE(caught_at_site);
  const auto t = s.stats().total;
  EXPECT_EQ(t.pool_fresh + t.pool_reuse, t.tasks_created);
  // The recycled descriptor is reusable: a follow-up undeferred construct
  // must be served from the pool freelist, proving the throw path released
  // it rather than leaking it.
  s.reset_stats();
  int ran = 0;
  s.run_single([&ran] { rt::spawn_if(false, [&ran] { ran = 1; }); });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.stats().total.pool_reuse, 1u);
  EXPECT_EQ(s.stats().total.pool_fresh, 0u);
}

/// Regression stress for the fused finish path: fire-and-forget trees where
/// every interior task finishes (and releases its descriptor reference)
/// while its children may still be running. The dying task must announce
/// child_completed() to its parent BEFORE dropping its own reference (or
/// fuse both into one RMW, only legal when observably exclusive): releasing
/// first lets a concurrent child's release chain recycle the parent under
/// the announcement — a use-after-free that surfaced as corrupted counts or
/// hangs on recycled pooled descriptors.
TEST_P(SchedulerThreads, FireAndForgetTreesFusedFinishStress) {
  constexpr int depth = 9;                         // 2^10 - 1 nodes per tree
  constexpr long nodes = (1L << (depth + 1)) - 1;  // all levels counted
  struct Fire {
    static void tree(int d, std::atomic<long>& count) {
      count.fetch_add(1, std::memory_order_relaxed);
      if (d == 0) return;
      rt::spawn([d, &count] { tree(d - 1, count); });
      rt::spawn([d, &count] { tree(d - 1, count); });
      // no taskwait: the parent dies with its children possibly running
    }
  };
  // Heap descriptors matter here: with the pool a corrupted recycled
  // descriptor only shows up as a wrong count or a hang, while plain
  // new/delete turns the parent being released under the announcement into
  // a heap-use-after-free the sanitizers can attribute.
  for (bool pooled : {true, false}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = GetParam();
    cfg.cutoff = rt::CutoffPolicy::none;
    cfg.fused_finish = true;
    cfg.use_task_pool = pooled;
    rt::Scheduler s(cfg);
    for (int round = 0; round < 10; ++round) {
      std::atomic<long> count{0};
      s.run_single([&count] { Fire::tree(depth, count); });
      ASSERT_EQ(count.load(), nodes)
          << "round " << round << " pooled=" << pooled;
    }
  }
}

// ---------------------------------------------------------------------------
// Single-threaded semantic tests.
// ---------------------------------------------------------------------------

TEST(Scheduler, SpawnOutsideRegionExecutesInline) {
  int x = 0;
  rt::spawn([&x] { x = 42; });
  EXPECT_EQ(x, 42);
  rt::taskwait();  // must be a no-op
  EXPECT_FALSE(rt::in_region());
  EXPECT_EQ(rt::worker_id(), 0u);
  EXPECT_EQ(rt::team_size(), 1u);
}

TEST(Scheduler, SpawnIfFalseIsUndeferredAndSynchronous) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  int order = 0;
  int task_saw = -1;
  s.run_single([&] {
    rt::spawn_if(false, [&] { task_saw = order; });
    order = 1;  // runs after the undeferred task finished
  });
  EXPECT_EQ(task_saw, 0);
  const auto st = s.stats();
  EXPECT_EQ(st.total.tasks_if_inlined, 1u);
  EXPECT_EQ(st.total.tasks_deferred, 0u);
}

TEST(Scheduler, SpawnIfTrueDefers) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  int x = 0;
  s.run_single([&] {
    rt::spawn_if(true, [&x] { x = 7; });
    rt::taskwait();
  });
  EXPECT_EQ(x, 7);
  EXPECT_EQ(s.stats().total.tasks_deferred, 1u);
}

TEST(Scheduler, NestedRegionSerializesAsTeamOfOne) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  unsigned inner_team = 0;
  int inner_done = 0;
  s.run_single([&] {
    s.run_single([&] {
      inner_team = rt::team_size();
      rt::spawn([&inner_done] { inner_done = 1; });
      // no explicit taskwait: the nested scope must join its children
    });
    EXPECT_EQ(inner_done, 1);
  });
  // The nested region inherits the outer team's context but runs the body
  // serially on the calling worker.
  EXPECT_EQ(inner_team, 4u);
}

TEST(Scheduler, ExceptionFromTaskPropagatesToCaller) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  EXPECT_THROW(
      {
        s.run_single([] {
          rt::spawn([] { throw std::runtime_error("task boom"); });
          rt::taskwait();
        });
      },
      std::runtime_error);
}

TEST(Scheduler, ExceptionFromRegionBodyPropagates) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  EXPECT_THROW(s.run_single([] { throw std::logic_error("body boom"); }),
               std::logic_error);
}

TEST(Scheduler, RegionUsableAfterException) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  EXPECT_THROW(s.run_single([] { throw std::runtime_error("x"); }),
               std::runtime_error);
  int ok = 0;
  s.run_single([&ok] { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(Scheduler, ZeroThreadConfigClampsToOne) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 0});
  EXPECT_EQ(s.num_workers(), 1u);
  int x = 0;
  s.run_single([&x] { x = 1; });
  EXPECT_EQ(x, 1);
}

// ---------------------------------------------------------------------------
// Cut-off policies.
// ---------------------------------------------------------------------------

TEST(Cutoff, NoneDefersEverything) {
  rt::SchedulerConfig cfg{.num_threads = 2, .cutoff = rt::CutoffPolicy::none};
  // "Everything defers" pins the exact partition — incompatible with
  // injected allocation faults (CI's RT_FAULT_PLAN legs).
  cfg.fault_plan.clear();
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(15, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(15));
  const auto st = s.stats();
  EXPECT_EQ(st.total.tasks_cutoff_inlined, 0u);
  EXPECT_EQ(st.total.tasks_deferred, st.total.tasks_created);
  EXPECT_EQ(st.total.tasks_executed, st.total.tasks_deferred);
}

TEST(Cutoff, MaxDepthInlinesBelowDepth) {
  rt::SchedulerConfig cfg{.num_threads = 2,
                          .cutoff = rt::CutoffPolicy::max_depth,
                          .cutoff_value = 4};
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(16, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(16));
  const auto st = s.stats();
  EXPECT_GT(st.total.tasks_cutoff_inlined, 0u);
  // Depth <= 4 spawns are deferred: at most 2^5 - 2 of them... count loosely.
  EXPECT_LT(st.total.tasks_deferred, st.total.tasks_created);
}

TEST(Cutoff, MaxDepthSeesThroughZeroAllocInlineFrames) {
  // Descriptor-less inlined tasks still occupy a depth level
  // (Worker::inline_depth): the max_depth cut-off must defer exactly the
  // same spawns whether inlined tasks carry a descriptor or not. fib's task
  // tree is fixed, so the per-depth spawn counts — and with them
  // tasks_deferred under a depth bound — are schedule-independent.
  auto deferred_with = [](bool inline_fast) {
    rt::SchedulerConfig cfg{.num_threads = 2,
                            .cutoff = rt::CutoffPolicy::max_depth,
                            .cutoff_value = 5};
    cfg.use_inline_fast_path = inline_fast;
    rt::Scheduler s(cfg);
    std::uint64_t r = 0;
    s.run_single([&] { r = fib_task(17, rt::Tiedness::tied); });
    EXPECT_EQ(r, fib_ref(17));
    return s.stats().total.tasks_deferred;
  };
  EXPECT_EQ(deferred_with(true), deferred_with(false));
}

TEST(Cutoff, InlineDepthDoesNotLeakIntoClaimedTasks) {
  // Regression: a task claimed at a scheduling point INSIDE an inline body
  // is a fresh frame whose depth is fully recorded in its descriptor, so
  // the claimer's inline_depth must not inflate depths computed under it.
  // Deterministic scenario (1 worker, FIFO, max_depth bound 2): the root
  // spawns untied T0 and T1 (depth 1, deferred). The region barrier runs T0
  // first (FIFO); T0 spawns A (depth 2, deferred — keeps its taskwait open)
  // and inlines untied C via spawn_if(false) (inline_depth = 1). C's
  // taskwait claims T1 — the oldest pending task, unconstrained because
  // everything is untied — and T1's spawn of X must see depth 2 (deferred):
  // a leaked inline_depth makes it 3 and wrongly inlines it. With the
  // inline path off, C carries a descriptor and waits on no one, and X is
  // plainly deferred — both runs must defer exactly {T0, T1, A, X}.
  for (bool inline_fast : {true, false}) {
    rt::SchedulerConfig cfg;
    cfg.num_threads = 1;
    cfg.local_order = rt::LocalOrder::fifo;
    cfg.cutoff = rt::CutoffPolicy::max_depth;
    cfg.cutoff_value = 2;
    cfg.use_inline_fast_path = inline_fast;
    rt::Scheduler s(cfg);
    std::atomic<int> x_ran{0};
    s.run_single([&] {
      rt::spawn(rt::Tiedness::untied, [&] {  // T0
        rt::spawn(rt::Tiedness::untied, [] {});  // A: keeps the wait open
        rt::spawn_if(false, rt::Tiedness::untied, [&] {  // C, inlined
          rt::taskwait();  // claims T1 while inline_depth = 1
        });
      });
      rt::spawn(rt::Tiedness::untied, [&] {  // T1
        rt::spawn(rt::Tiedness::untied, [&x_ran] {  // X: depth 2, MUST defer
          x_ran.fetch_add(1);
        });
      });
    });
    EXPECT_EQ(x_ran.load(), 1) << "inline_fast=" << inline_fast;
    EXPECT_EQ(s.stats().total.tasks_deferred, 4u)
        << "inline_fast=" << inline_fast
        << " (X was wrongly inlined: inline_depth leaked into a claimed "
           "task)";
  }
}

TEST(Cutoff, MaxTasksBoundsLiveTasks) {
  rt::SchedulerConfig cfg{.num_threads = 2,
                          .cutoff = rt::CutoffPolicy::max_tasks,
                          .cutoff_value = 8};
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(18, rt::Tiedness::tied); });
  EXPECT_EQ(r, fib_ref(18));
  EXPECT_GT(s.stats().total.tasks_cutoff_inlined, 0u);
}

TEST(Cutoff, AdaptiveThrottlesUnderFlood) {
  rt::SchedulerConfig cfg{.num_threads = 2,
                          .cutoff = rt::CutoffPolicy::adaptive,
                          .cutoff_value = 16};
  rt::Scheduler s(cfg);
  std::atomic<int> done{0};
  s.run_single([&] {
    for (int i = 0; i < 5000; ++i) {
      rt::spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    rt::taskwait();
  });
  EXPECT_EQ(done.load(), 5000);
  EXPECT_GT(s.stats().total.tasks_cutoff_inlined, 0u);
}

TEST(Cutoff, ResolvedBoundDefaults) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.cutoff = rt::CutoffPolicy::max_tasks;
  cfg.cutoff_value = 0;
  EXPECT_EQ(cfg.resolved_cutoff_bound(), 256u);
  cfg.cutoff = rt::CutoffPolicy::max_depth;
  EXPECT_EQ(cfg.resolved_cutoff_bound(), 16u);
  cfg.cutoff_value = 9;
  EXPECT_EQ(cfg.resolved_cutoff_bound(), 9u);
}

// ---------------------------------------------------------------------------
// Statistics accounting.
// ---------------------------------------------------------------------------

TEST(Stats, CreatedEqualsDeferredPlusInlined) {
  rt::SchedulerConfig cfg{.num_threads = 4,
                          .cutoff = rt::CutoffPolicy::max_tasks,
                          .cutoff_value = 16};
  rt::Scheduler s(cfg);
  s.run_single([] {
    for (int i = 0; i < 1000; ++i) {
      rt::spawn_if(i % 3 != 0, [] {});
    }
    rt::taskwait();
  });
  const auto t = s.stats().total;
  EXPECT_EQ(t.tasks_created,
            t.tasks_deferred + t.tasks_if_inlined + t.tasks_cutoff_inlined);
  EXPECT_EQ(t.tasks_executed, t.tasks_deferred);
  EXPECT_GT(t.env_bytes, 0u);
  EXPECT_EQ(t.taskwaits, 1u);
}

TEST(Stats, ResetClearsCounters) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  s.run_single([] {
    rt::spawn([] {});
    rt::taskwait();
  });
  EXPECT_GT(s.stats().total.tasks_created, 0u);
  s.reset_stats();
  EXPECT_EQ(s.stats().total.tasks_created, 0u);
}

TEST(Stats, PoolReuseAfterFirstWave) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 1});
  s.run_single([] {
    for (int wave = 0; wave < 4; ++wave) {
      for (int i = 0; i < 100; ++i) rt::spawn([] {});
      rt::taskwait();
    }
  });
  EXPECT_GT(s.stats().total.pool_reuse, 0u);
}

TEST(Stats, NoPoolModeUsesFreshAllocations) {
  rt::SchedulerConfig cfg{.num_threads = 2};
  cfg.use_task_pool = false;
  // "Every construct hits the allocator" pins the exact alloc partition —
  // incompatible with injected allocation faults (CI's RT_FAULT_PLAN legs).
  cfg.fault_plan.clear();
  rt::Scheduler s(cfg);
  s.run_single([] {
    for (int wave = 0; wave < 3; ++wave) {
      for (int i = 0; i < 50; ++i) rt::spawn([] {});
      rt::taskwait();
    }
  });
  const auto t = s.stats().total;
  EXPECT_EQ(t.pool_reuse, 0u);
  EXPECT_EQ(t.pool_fresh, t.tasks_created);
}

// ---------------------------------------------------------------------------
// Large captured environments take the heap path.
// ---------------------------------------------------------------------------

TEST(Environment, LargeCaptureIsCopiedCorrectly) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  struct Big {
    std::array<std::uint8_t, 4096> bytes;
  };
  Big big{};
  for (std::size_t i = 0; i < big.bytes.size(); ++i) {
    big.bytes[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::atomic<int> failures{0};
  s.run_single([&] {
    for (int t = 0; t < 64; ++t) {
      rt::spawn([big, &failures] {  // 4 KB captured by value (heap env)
        for (std::size_t i = 0; i < big.bytes.size(); ++i) {
          if (big.bytes[i] != static_cast<std::uint8_t>(i * 7)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    rt::taskwait();
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(s.stats().total.env_bytes, 64u * sizeof(Big));
}

TEST(Environment, CaptureDestructorsRun) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  auto marker = std::make_shared<int>(13);
  std::weak_ptr<int> weak = marker;
  s.run_single([m = std::move(marker)] {
    rt::spawn([m] { EXPECT_EQ(*m, 13); });
    rt::taskwait();
  });
  EXPECT_TRUE(weak.expired());  // every captured copy destroyed
}

// ---------------------------------------------------------------------------
// Worksharing.
// ---------------------------------------------------------------------------

class WorksharingThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(WorksharingThreads, ForStaticCoversExactlyOnce) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  std::vector<std::atomic<int>> hits(1000);
  s.run_all([&](unsigned) {
    rt::for_static(0, 1000, [&](std::int64_t i) { hits[i].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorksharingThreads, ForStaticChunkedCoversExactlyOnce) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  std::vector<std::atomic<int>> hits(777);
  s.run_all([&](unsigned) {
    rt::for_static_chunked(0, 777, 13,
                           [&](std::int64_t i) { hits[i].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorksharingThreads, ForDynamicCoversExactlyOnce) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  std::vector<std::atomic<int>> hits(997);
  rt::DynamicSchedule dyn(0);
  s.run_all([&](unsigned) {
    rt::for_dynamic(dyn, 997, 7, [&](std::int64_t i) { hits[i].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorksharingThreads, SingleNowaitRunsOnce) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  rt::SingleGate gate(s.num_workers());
  std::atomic<int> runs{0};
  s.run_all([&](unsigned) {
    rt::single_nowait(gate, [&] { runs.fetch_add(1); });
    rt::barrier();
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST_P(WorksharingThreads, TasksInsideForJoinAtBarrier) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = GetParam()});
  std::atomic<long> sum{0};
  rt::DynamicSchedule dyn(0);
  s.run_all([&](unsigned) {
    rt::for_dynamic(dyn, 200, 3, [&](std::int64_t i) {
      rt::spawn([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    });
  });
  EXPECT_EQ(sum.load(), 199L * 200 / 2);
}

INSTANTIATE_TEST_SUITE_P(Threads, WorksharingThreads,
                         ::testing::Values(1u, 3u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// WorkerLocal (threadprivate) storage.
// ---------------------------------------------------------------------------

TEST(WorkerLocal, AccumulatesAndReduces) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 4});
  rt::WorkerLocal<std::uint64_t> acc(s, 0);
  s.run_single([&] {
    for (int i = 0; i < 1000; ++i) {
      rt::spawn([&acc] { ++acc.local(); });
    }
    rt::taskwait();
  });
  EXPECT_EQ(acc.reduce(std::uint64_t{0},
                       [](std::uint64_t a, std::uint64_t b) { return a + b; }),
            1000u);
}

TEST(WorkerLocal, ResetRestoresInitial) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  rt::WorkerLocal<int> acc(s, 5);
  acc.local() += 10;
  acc.reset();
  EXPECT_EQ(acc.reduce(0, [](int a, int b) { return a + b; }), 10);  // 2 x 5
}

TEST(WorkerLocal, SlotsAreCacheLinePadded) {
  rt::Scheduler s(rt::SchedulerConfig{.num_threads = 2});
  rt::WorkerLocal<char> acc(s, 0);
  const auto* a = &acc.slot(0);
  const auto* b = &acc.slot(1);
  EXPECT_GE(reinterpret_cast<std::ptrdiff_t>(b) -
                reinterpret_cast<std::ptrdiff_t>(a),
            64);
}

// ---------------------------------------------------------------------------
// Scheduling policy configurations all yield correct results.
// ---------------------------------------------------------------------------

struct PolicyCase {
  rt::LocalOrder local;
  rt::VictimPolicy victim;
  rt::Tiedness tied;
};

class PolicyMatrix : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyMatrix, FibCorrectUnderPolicy) {
  const PolicyCase pc = GetParam();
  rt::SchedulerConfig cfg;
  cfg.num_threads = 4;
  cfg.local_order = pc.local;
  cfg.victim = pc.victim;
  rt::Scheduler s(cfg);
  std::uint64_t r = 0;
  s.run_single([&] { r = fib_task(18, pc.tied); });
  EXPECT_EQ(r, fib_ref(18));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyMatrix,
    ::testing::Values(
        PolicyCase{rt::LocalOrder::lifo, rt::VictimPolicy::random,
                   rt::Tiedness::tied},
        PolicyCase{rt::LocalOrder::lifo, rt::VictimPolicy::sequential,
                   rt::Tiedness::untied},
        PolicyCase{rt::LocalOrder::fifo, rt::VictimPolicy::random,
                   rt::Tiedness::untied},
        PolicyCase{rt::LocalOrder::fifo, rt::VictimPolicy::sequential,
                   rt::Tiedness::tied}),
    [](const auto& info) {
      return std::string(to_string(info.param.local)) + "_" +
             to_string(info.param.victim) + "_" + to_string(info.param.tied);
    });

}  // namespace
