#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bots::core {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableWriter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TableWriter::render(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(width[c], '-');
    }
    os << "-+\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TableWriter::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_count(std::uint64_t n) {
  char buf[64];
  if (n >= 10'000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "~ %.0f G", static_cast<double>(n) / 1e9);
  } else if (n >= 10'000'000ULL) {
    std::snprintf(buf, sizeof buf, "~ %.0f M", static_cast<double>(n) / 1e6);
  } else if (n >= 100'000ULL) {
    std::snprintf(buf, sizeof buf, "~ %.0f K", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1ULL << 30) {
    std::snprintf(buf, sizeof buf, "%.1f GB", b / static_cast<double>(1ULL << 30));
  } else if (bytes >= 1ULL << 20) {
    std::snprintf(buf, sizeof buf, "%.1f MB", b / static_cast<double>(1ULL << 20));
  } else if (bytes >= 1ULL << 10) {
    std::snprintf(buf, sizeof buf, "%.1f KB", b / static_cast<double>(1ULL << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace bots::core
