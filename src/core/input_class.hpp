// Input classes (paper Section III-A, "Input sets").
//
// The paper defines four classes sized for an SGI Altix 4700 reference
// platform (serial medium <= 10 min, <= 4 GB). This reproduction keeps the
// same four-class structure and per-class ratios but rescales the absolute
// sizes so that a serial *medium* run takes on the order of seconds on a
// commodity machine; the per-application parameters live with each kernel
// and the mapping to paper sizes is documented in EXPERIMENTS.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace bots::core {

enum class InputClass { test, small, medium, large };

[[nodiscard]] constexpr const char* to_string(InputClass c) noexcept {
  switch (c) {
    case InputClass::test: return "test";
    case InputClass::small: return "small";
    case InputClass::medium: return "medium";
    case InputClass::large: return "large";
  }
  return "?";
}

[[nodiscard]] std::optional<InputClass> parse_input_class(std::string_view s);

/// Reads BOTS_INPUT_CLASS from the environment; falls back to `fallback`.
[[nodiscard]] InputClass input_class_from_env(InputClass fallback);

}  // namespace bots::core
