#include "core/input_class.hpp"

#include <cstdlib>

namespace bots::core {

std::optional<InputClass> parse_input_class(std::string_view s) {
  if (s == "test") return InputClass::test;
  if (s == "small") return InputClass::small;
  if (s == "medium") return InputClass::medium;
  if (s == "large") return InputClass::large;
  return std::nullopt;
}

InputClass input_class_from_env(InputClass fallback) {
  const char* v = std::getenv("BOTS_INPUT_CLASS");
  if (v == nullptr) return fallback;
  if (auto c = parse_input_class(v)) return *c;
  return fallback;
}

}  // namespace bots::core
