// Deterministic random number generation for input synthesis.
//
// Every BOTS input in this reproduction is generated from a fixed seed so
// that runs are bit-reproducible across machines and thread counts
// (self-verification depends on it). splitmix64 seeds xoshiro256**.
#pragma once

#include <array>
#include <cstdint>

namespace bots::core {

/// splitmix64 (Steele, Lea, Flood); used for seeding and one-shot hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman, Vigna).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) (bound > 0), Lemire-style rejection-free
  /// approximation is unnecessary here; modulo bias is irrelevant for
  /// workload synthesis but we use the high bits for quality.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return (next() >> 11) % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// FNV-1a, for order-independent-free checksums of outputs.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h,
                                            std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline constexpr std::uint64_t fnv_offset = 0xCBF29CE484222325ULL;

}  // namespace bots::core
