// Run reports and table rendering (the bots_main-style output harness).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "runtime/stats.hpp"

namespace bots::core {

/// Wall-clock timer (steady clock).
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

enum class Verified : std::int8_t { not_checked = -1, failed = 0, ok = 1 };

[[nodiscard]] constexpr const char* to_string(Verified v) noexcept {
  switch (v) {
    case Verified::not_checked: return "n/a";
    case Verified::failed: return "FAILED";
    case Verified::ok: return "ok";
  }
  return "?";
}

/// Result of one benchmark execution (serial or parallel).
struct RunReport {
  std::string app;
  std::string version;  ///< "serial" or a version-matrix name
  InputClass input = InputClass::small;
  unsigned threads = 1;
  double seconds = 0.0;
  /// Application throughput metric. For Floorplan the paper uses nodes/s
  /// ("the number of nodes per second should increase ... even if it takes
  /// more time to find a solution"); other apps leave this 0 and compare
  /// times directly.
  double metric = 0.0;
  std::string metric_name;
  Verified verified = Verified::not_checked;
  rt::WorkerStats runtime_stats;  ///< aggregated scheduler counters
  /// Converged grain per spawn site after the run (GrainTable::describe,
  /// e.g. "global=1 sort/merge=8"); empty for serial runs. Recorded by
  /// run_baseline.sh next to each Figure-3 entry so per-site convergence
  /// stays visible in the perf trajectory.
  std::string grain_sites;

  /// Speed-up versus a serial baseline, using the metric when present
  /// (Floorplan) and elapsed time otherwise.
  [[nodiscard]] double speedup_vs(const RunReport& serial) const {
    if (metric > 0.0 && serial.metric > 0.0) return metric / serial.metric;
    if (seconds > 0.0) return serial.seconds / seconds;
    return 0.0;
  }
};

/// Fixed-width ASCII table writer used by the bench harnesses to print
/// paper-style rows; also emits CSV for plotting.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void render(std::ostream& os) const;
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers matching the paper's table style.
[[nodiscard]] std::string format_count(std::uint64_t n);      // "~ 40 G"
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);  // "3.2 MB"
[[nodiscard]] std::string format_fixed(double v, int precision);

}  // namespace bots::core
