// Shared harness glue for kernel entry points: timing, scheduler stats
// collection and verification bookkeeping for one benchmark execution.
#pragma once

#include <string>
#include <utility>

#include "core/input_class.hpp"
#include "core/report.hpp"
#include "runtime/scheduler.hpp"

namespace bots::core {

/// Runs `work` once under the timer, then verifies with `check` when asked.
/// `check` is only invoked when `verify` is true and must return bool.
template <class Work, class Check>
[[nodiscard]] RunReport run_and_report(std::string app, std::string version,
                                       InputClass input, rt::Scheduler& sched,
                                       bool verify, Work&& work,
                                       Check&& check) {
  RunReport rep;
  rep.app = std::move(app);
  rep.version = std::move(version);
  rep.input = input;
  rep.threads = sched.num_workers();
  sched.reset_stats();
  Timer timer;
  work();
  rep.seconds = timer.seconds();
  rep.runtime_stats = sched.stats().total;
  rep.grain_sites = sched.grain_table().describe();
  rep.verified = verify ? (check() ? Verified::ok : Verified::failed)
                        : Verified::not_checked;
  return rep;
}

/// Serial-run variant (no scheduler involved).
template <class Work, class Check>
[[nodiscard]] RunReport run_serial_and_report(std::string app,
                                              InputClass input, bool verify,
                                              Work&& work, Check&& check) {
  RunReport rep;
  rep.app = std::move(app);
  rep.version = "serial";
  rep.input = input;
  rep.threads = 1;
  Timer timer;
  work();
  rep.seconds = timer.seconds();
  rep.verified = verify ? (check() ? Verified::ok : Verified::failed)
                        : Verified::not_checked;
  return rep;
}

}  // namespace bots::core
