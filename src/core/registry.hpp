// Application and version registry: the suite's metadata backbone.
//
// Table I of the paper is a *static* summary (origin, domain, computation
// structure, number of task directives, generator construct, nesting,
// application-level cut-off); the registry carries exactly those fields per
// application plus the version matrix (Section III-A, "Multiple versions")
// and type-erased entry points used by the generic driver, the benches and
// the integration tests.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/input_class.hpp"
#include "core/report.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::core {

/// Application-level cut-off style of a version (paper Figures 1 and 2).
enum class AppCutoff : std::uint8_t {
  none,       ///< unconstrained task creation; runtime cut-off applies
  if_clause,  ///< `#pragma omp task if(condition)` style
  manual      ///< condition checked in application code, serial branch
};

/// Task generator scheme of a version (Table I "tasks inside omp ...").
enum class Generator : std::uint8_t {
  single_gen,   ///< tasks created under a `single` construct
  multiple_gen  ///< tasks created under a `for` worksharing construct
};

[[nodiscard]] constexpr const char* to_string(AppCutoff c) noexcept {
  switch (c) {
    case AppCutoff::none: return "none";
    case AppCutoff::if_clause: return "if-clause";
    case AppCutoff::manual: return "manual";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Generator g) noexcept {
  return g == Generator::single_gen ? "single" : "for";
}

struct VersionInfo {
  std::string name;  ///< e.g. "untied", "manual-tied", "for-tied"
  rt::Tiedness tied = rt::Tiedness::tied;
  AppCutoff cutoff = AppCutoff::none;
  Generator generator = Generator::single_gen;
  /// Marks the version Figure 3 reports as best for this application.
  bool paper_best = false;
};

struct AppInfo {
  // ---- Table I static fields ----
  std::string name;
  std::string origin;      ///< "Cilk", "AKM", "Olden", "-"
  std::string domain;      ///< e.g. "Dynamic programming"
  std::string structure;   ///< "Iterative", "At each node", "At leafs"
  int task_directives = 0;
  std::string tasks_inside;  ///< "for", "single", "single/for"
  bool nested_tasks = false;
  std::string app_cutoff;  ///< "none" or "depth-based"
  bool extension = false;  ///< not part of the ICPP'09 suite (future work)

  std::vector<VersionInfo> versions;

  // ---- type-erased entry points ----
  /// Runs one parallel version inside the given scheduler; verifies when
  /// asked (every BOTS benchmark self-verifies, Section III-A).
  std::function<RunReport(InputClass, const std::string& version,
                          rt::Scheduler&, bool verify)>
      run;
  /// Serial reference execution; the Figure 3/4/5 speed-up baseline.
  std::function<RunReport(InputClass)> run_serial;
  /// Profiled serial execution producing this app's Table II row.
  std::function<prof::TableRow(InputClass)> profile_row;
  /// Human-readable input description ("14x14 board", ...).
  std::function<std::string(InputClass)> describe_input;

  [[nodiscard]] const VersionInfo* find_version(std::string_view v) const {
    for (const auto& ver : versions) {
      if (ver.name == v) return &ver;
    }
    return nullptr;
  }

  [[nodiscard]] const VersionInfo& best_version() const {
    for (const auto& ver : versions) {
      if (ver.paper_best) return ver;
    }
    return versions.front();
  }
};

/// The full suite. Defined in kernels/apps.cpp (links against every kernel).
[[nodiscard]] const std::vector<AppInfo>& apps();

[[nodiscard]] const AppInfo* find_app(std::string_view name);

}  // namespace bots::core
