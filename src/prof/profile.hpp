// Compile-time profiling instrumentation regenerating Table II of the paper.
//
// The paper collected its per-task characteristics from "a serial execution
// ... of a specially profiled version where the compiler added additional
// code", and stresses the counts are "actual operations which are
// independent of the architecture". We reproduce that with a policy
// template: kernels are written against a `Prof` policy whose hooks either
// vanish (`NoProf`, the timed configuration) or accumulate abstract counts
// (`CountingProf`, the Table II configuration).
//
// Counted quantities (one column each in Table II):
//   * potential tasks     — every task-creation site encountered
//   * arithmetic ops      — abstract arithmetic operations executed
//   * taskwaits           — taskwait constructs executed
//   * captured environment— bytes copied from parent to child at creation
//   * env writes          — writes to the captured environment
//   * private writes      — writes to task-private storage
//   * shared writes       — writes to non-private data (locality-sensitive)
#pragma once

#include <cstdint>
#include <string>

namespace bots::prof {

struct Totals {
  std::uint64_t potential_tasks = 0;
  std::uint64_t arithmetic_ops = 0;
  std::uint64_t taskwaits = 0;
  std::uint64_t captured_env_bytes = 0;
  std::uint64_t env_writes = 0;
  std::uint64_t private_writes = 0;
  std::uint64_t shared_writes = 0;

  [[nodiscard]] std::uint64_t total_writes() const noexcept {
    return private_writes + shared_writes;
  }

  Totals& operator+=(const Totals& o) noexcept {
    potential_tasks += o.potential_tasks;
    arithmetic_ops += o.arithmetic_ops;
    taskwaits += o.taskwaits;
    captured_env_bytes += o.captured_env_bytes;
    env_writes += o.env_writes;
    private_writes += o.private_writes;
    shared_writes += o.shared_writes;
    return *this;
  }
};

/// Zero-cost policy used by all timed runs.
struct NoProf {
  static constexpr bool enabled = false;
  static void task(std::uint64_t /*captured_bytes*/) noexcept {}
  static void taskwait() noexcept {}
  static void ops(std::uint64_t) noexcept {}
  static void write_private(std::uint64_t) noexcept {}
  static void write_shared(std::uint64_t) noexcept {}
  static void write_env(std::uint64_t) noexcept {}
};

/// Accumulating policy used by the Table II profiled (serial) runs.
/// Counters are a single translation-unit-wide accumulator: profiled runs
/// are serial, exactly as in the paper.
struct CountingProf {
  static constexpr bool enabled = true;

  static Totals& totals() noexcept {
    static Totals t;
    return t;
  }

  static void reset() noexcept { totals() = Totals{}; }

  static void task(std::uint64_t captured_bytes) noexcept {
    totals().potential_tasks += 1;
    totals().captured_env_bytes += captured_bytes;
  }
  static void taskwait() noexcept { totals().taskwaits += 1; }
  static void ops(std::uint64_t n) noexcept { totals().arithmetic_ops += n; }
  static void write_private(std::uint64_t n) noexcept {
    totals().private_writes += n;
  }
  static void write_shared(std::uint64_t n) noexcept {
    totals().shared_writes += n;
  }
  static void write_env(std::uint64_t n) noexcept {
    totals().env_writes += n;
    totals().private_writes += n;  // the captured env is task-private data
  }
};

/// One row of Table II, in paper units (per-task averages).
struct TableRow {
  std::string app;
  std::string input_desc;
  double serial_seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  std::uint64_t potential_tasks = 0;
  double arith_ops_per_task = 0.0;
  double taskwaits_per_task = 0.0;
  double captured_env_bytes_per_task = 0.0;
  double env_writes_per_task = 0.0;
  double pct_writes_shared = 0.0;
  double ops_per_write = 0.0;
  double arith_per_shared_write = 0.0;  // NaN/0 when no shared writes
};

/// Convert raw totals to the per-task averages the paper reports.
[[nodiscard]] inline TableRow make_row(std::string app, std::string input_desc,
                                       double serial_seconds,
                                       std::uint64_t memory_bytes,
                                       const Totals& t) {
  TableRow r;
  r.app = std::move(app);
  r.input_desc = std::move(input_desc);
  r.serial_seconds = serial_seconds;
  r.memory_bytes = memory_bytes;
  r.potential_tasks = t.potential_tasks;
  const double nt = t.potential_tasks > 0
                        ? static_cast<double>(t.potential_tasks)
                        : 1.0;
  r.arith_ops_per_task = static_cast<double>(t.arithmetic_ops) / nt;
  r.taskwaits_per_task = static_cast<double>(t.taskwaits) / nt;
  r.captured_env_bytes_per_task =
      static_cast<double>(t.captured_env_bytes) / nt;
  r.env_writes_per_task = static_cast<double>(t.env_writes) / nt;
  const double writes = static_cast<double>(t.total_writes());
  r.pct_writes_shared =
      writes > 0 ? 100.0 * static_cast<double>(t.shared_writes) / writes : 0.0;
  r.ops_per_write =
      writes > 0 ? static_cast<double>(t.arithmetic_ops) / writes : 0.0;
  r.arith_per_shared_write =
      t.shared_writes > 0
          ? static_cast<double>(t.arithmetic_ops) /
                static_cast<double>(t.shared_writes)
          : 0.0;
  return r;
}

}  // namespace bots::prof
