#include "kernels/nqueens/nqueens.hpp"

#include <array>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "runtime/worker_local.hpp"

namespace bots::nqueens {

namespace {

constexpr int max_n = 16;

/// Board prefix: column of the queen in each of the first `row` rows.
/// This is the state copied from parent to child at every task creation
/// (the "captured environment" of Table II: ~42 bytes for the 14x14 board).
struct Board {
  std::array<std::int8_t, max_n> col{};
};

/// Can a queen be placed at (row, c) given the prefix `b[0..row)`?
template <class Prof>
bool safe(const Board& b, int row, int c) {
  for (int i = 0; i < row; ++i) {
    const int d = b.col[i] - c;
    Prof::ops(3);  // column compare + two diagonal compares
    if (d == 0 || d == row - i || d == -(row - i)) return false;
  }
  return true;
}

template <class Prof>
std::uint64_t count_serial(Board& b, int n, int row) {
  if (row == n) return 1;
  std::uint64_t found = 0;
  for (int c = 0; c < n; ++c) {
    if (safe<Prof>(b, row, c)) {
      b.col[row] = static_cast<std::int8_t>(c);
      Prof::write_private(1);
      found += count_serial<Prof>(b, n, row + 1);
      Prof::ops(1);
    }
  }
  return found;
}

/// Profiled walk marking every task-creation site (task per placement step)
/// exactly as the parallel version would create them.
template <class Prof>
std::uint64_t count_tasksites(Board& b, int n, int row) {
  if (row == n) return 1;
  std::uint64_t found = 0;
  for (int c = 0; c < n; ++c) {
    if (safe<Prof>(b, row, c)) {
      Prof::task(sizeof(Board) + 2 * sizeof(int));
      Prof::write_env(sizeof(Board) / 8);
      Board child = b;
      child.col[row] = static_cast<std::int8_t>(c);
      found += count_tasksites<Prof>(child, n, row + 1);
      Prof::ops(1);
    }
  }
  Prof::taskwait();
  return found;
}

struct TaskSearch {
  rt::WorkerLocal<std::uint64_t>* counts;
  const VersionOpts* opts;
  int n;
  int cutoff_depth;

  void descend(const Board& b, int row) const {
    if (row == n) {
      // A solution: accumulate into this worker's threadprivate counter.
      ++counts->local();
      return;
    }
    for (int c = 0; c < n; ++c) {
      if (!safe<prof::NoProf>(b, row, c)) continue;
      Board child = b;  // parent state copied into the task environment
      child.col[row] = static_cast<std::int8_t>(c);
      switch (opts->cutoff) {
        case core::AppCutoff::none:
          rt::spawn(opts->tied, [this, child, row] { descend(child, row + 1); });
          break;
        case core::AppCutoff::if_clause:
          rt::spawn_if(row < cutoff_depth, opts->tied,
                       [this, child, row] { descend(child, row + 1); });
          break;
        case core::AppCutoff::manual:
          if (row < cutoff_depth) {
            rt::spawn(opts->tied, [this, child, row] { descend(child, row + 1); });
          } else {
            Board scratch = child;
            counts->local() += count_serial<prof::NoProf>(scratch, n, row + 1);
          }
          break;
      }
    }
    rt::taskwait();
  }
};

constexpr std::array<std::uint64_t, 17> known_counts = {
    1,        1,       0,       0,      2,       10,       4,        40,
    92,       352,     724,     2680,   14200,   73712,    365596,   2279184,
    14772512};

}  // namespace

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {8, 3};
    case core::InputClass::small: return {11, 3};
    case core::InputClass::medium: return {13, 3};
    case core::InputClass::large: return {14, 4};
  }
  throw std::invalid_argument("nqueens: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.n) + "x" + std::to_string(p.n) + " board";
}

std::uint64_t run_serial(const Params& p) {
  Board b;
  return count_serial<prof::NoProf>(b, p.n, 0);
}

std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                           const VersionOpts& opts) {
  rt::WorkerLocal<std::uint64_t> counts(sched, 0);
  TaskSearch search{&counts, &opts, p.n, p.cutoff_depth};
  sched.run_single([&] {
    Board b;
    search.descend(b, 0);
  });
  // The end-of-region reduction the paper implements with `critical`.
  return counts.reduce(std::uint64_t{0},
                       [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

bool verify(const Params& p, std::uint64_t solutions) {
  if (p.n < 0 || p.n > 16) return false;
  return solutions == known_counts[static_cast<std::size_t>(p.n)];
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  prof::CountingProf::reset();
  core::Timer timer;
  Board b;
  const std::uint64_t r = count_tasksites<prof::CountingProf>(b, p.n, 0);
  const double secs = timer.seconds();
  if (!verify(p, r)) throw std::logic_error("nqueens profile run mis-verified");
  const std::uint64_t mem =
      static_cast<std::uint64_t>(p.n) * sizeof(Board) + (1u << 20);
  return prof::make_row("nqueens", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "nqueens";
  app.origin = "Cilk";
  app.domain = "Search";
  app.structure = "At each node";
  app.task_directives = 1;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "depth-based";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"if-tied", rt::Tiedness::tied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"if-untied", rt::Tiedness::untied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"manual-tied", rt::Tiedness::tied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
      {"manual-untied", rt::Tiedness::untied, core::AppCutoff::manual,
       core::Generator::single_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("nqueens");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("nqueens: unknown version " + version);
    }
    const Params p = params_for(ic);
    VersionOpts opts{v->tied, v->cutoff};
    std::uint64_t result = 0;
    return core::run_and_report(
        "nqueens", version, ic, sched, verify_run,
        [&] { result = run_parallel(p, sched, opts); },
        [&] { return verify(p, result); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    std::uint64_t result = 0;
    return core::run_serial_and_report(
        "nqueens", ic, true, [&] { result = run_serial(p); },
        [&] { return verify(p, result); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::nqueens
