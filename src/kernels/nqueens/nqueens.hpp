// NQueens: count all solutions of the n-queens problem (paper Section III-B).
//
// Backtracking search with pruning; a task per placement step; the parent
// board state is copied into every child task. To keep the computational
// load deterministic the kernel counts *all* solutions, accumulated in
// worker-local (threadprivate) counters and reduced at the end of the
// parallel region — exactly the contention-avoidance idiom the paper
// describes.
#pragma once

#include <cstdint>
#include <string>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::nqueens {

struct Params {
  int n = 8;
  int cutoff_depth = 3;  ///< rows handled by task recursion before going serial
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

[[nodiscard]] std::uint64_t run_serial(const Params& p);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::AppCutoff cutoff = core::AppCutoff::manual;
};

[[nodiscard]] std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                                         const VersionOpts& opts);

/// Known-answer verification (published solution counts for n <= 16).
[[nodiscard]] bool verify(const Params& p, std::uint64_t solutions);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::nqueens
