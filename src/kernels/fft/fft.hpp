// FFT: one-dimensional complex FFT via the Cooley-Tukey divide-and-conquer
// algorithm (paper Section III-B; from the Cilk suite).
//
// "This is a divide and conquer algorithm that recursively breaks down a
// DFT into many smaller DFTs. In each of the divisions multiple tasks are
// generated" — tasks are created for the two half-transforms and for the
// chunks of the deinterleave/combine loops; small transforms use an
// iterative leaf kernel (the Cilk code's specialized base cases).
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::fft {

using Complex = std::complex<double>;

struct Params {
  std::size_t n = 1u << 12;  ///< transform size (power of two)
  std::uint64_t seed = 0xFF7u;
  std::size_t leaf = 64;          ///< iterative base-case size
  std::size_t loop_chunk = 4096;  ///< task granularity of data-motion loops
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

[[nodiscard]] std::vector<Complex> make_input(const Params& p);

/// Forward transform, serial reference. Result replaces `data`.
void run_serial(const Params& p, std::vector<Complex>& data);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::untied;
};

void run_parallel(const Params& p, std::vector<Complex>& data,
                  rt::Scheduler& sched, const VersionOpts& opts);

/// Verification: direct O(n^2) DFT comparison for small n; inverse-transform
/// round trip plus Parseval's identity for large n.
[[nodiscard]] bool verify(const Params& p, const std::vector<Complex>& input,
                          const std::vector<Complex>& output);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::fft
