#include "kernels/fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worksharing.hpp"

namespace bots::fft {

namespace {

/// Twiddle factors for the full transform: w[k] = exp(-2*pi*i*k / N),
/// k < N/2. A sub-transform of size m at stride s = N/m uses w[j*s].
struct Twiddles {
  explicit Twiddles(std::size_t n) : size(n), w(n / 2) {
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
      w[k] = Complex(std::cos(ang), std::sin(ang));
    }
  }
  std::size_t size;
  std::vector<Complex> w;
};

std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

/// Iterative in-place base case (the leaf kernel).
template <class Prof>
void leaf_fft(Complex* a, std::size_t m, std::size_t stride,
              const Twiddles& tw) {
  int bits = 0;
  while ((std::size_t{1} << bits) < m) ++bits;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = bit_reverse(i, bits);
    if (i < j) {
      std::swap(a[i], a[j]);
      Prof::write_private(2);
    }
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t wstep = (tw.size / len);
    for (std::size_t i = 0; i < m; i += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const Complex t = tw.w[j * wstep] * a[i + j + half];
        a[i + j + half] = a[i + j] - t;
        a[i + j] = a[i + j] + t;
        Prof::ops(10);  // complex multiply (6) + two complex adds (4)
        Prof::write_private(2);
      }
    }
  }
  (void)stride;
}

// ---------------------------------------------------------------------------
// Serial recursion (Prof marks the task sites the parallel version creates).
// ---------------------------------------------------------------------------

template <class Prof>
void fft_serial_rec(Complex* a, Complex* scratch, std::size_t n,
                    std::size_t stride, const Twiddles& tw, bool top,
                    std::size_t leaf, std::size_t chunk) {
  if (n <= leaf) {
    leaf_fft<Prof>(a, n, stride, tw);
    return;
  }
  const std::size_t half = n / 2;
  for (std::size_t off = 0; off < half; off += chunk) {
    Prof::task(4 * sizeof(void*));  // deinterleave chunk task
    const std::size_t end = off + chunk < half ? off + chunk : half;
    for (std::size_t i = off; i < end; ++i) {
      scratch[i] = a[2 * i];
      scratch[i + half] = a[2 * i + 1];
      Prof::write_private(2);
    }
  }
  Prof::taskwait();
  Prof::task(6 * sizeof(void*));
  fft_serial_rec<Prof>(scratch, a, half, stride * 2, tw, false, leaf, chunk);
  Prof::task(6 * sizeof(void*));
  fft_serial_rec<Prof>(scratch + half, a + half, half, stride * 2, tw, false,
                       leaf, chunk);
  Prof::taskwait();
  for (std::size_t off = 0; off < half; off += chunk) {
    Prof::task(4 * sizeof(void*));  // combine chunk task
    const std::size_t end = off + chunk < half ? off + chunk : half;
    for (std::size_t k = off; k < end; ++k) {
      const Complex t = tw.w[k * stride] * scratch[k + half];
      a[k] = scratch[k] + t;
      a[k + half] = scratch[k] - t;
      Prof::ops(10);
      // Only the writes into the caller-visible output array count as
      // non-private in the paper's classification; scratch traffic is
      // task-private working set.
      if (top) {
        Prof::write_shared(2);
      } else {
        Prof::write_private(2);
      }
    }
  }
  Prof::taskwait();
}

// ---------------------------------------------------------------------------
// Task-parallel recursion.
// ---------------------------------------------------------------------------

struct TaskFft {
  const Twiddles* tw;
  std::size_t leaf;
  std::size_t chunk;
  rt::Tiedness tied;
  /// SchedulerConfig::use_range_tasks: express each butterfly data-motion
  /// loop (deinterleave, combine) as ONE splittable range instead of one
  /// task per chunk — `chunk` becomes the range's grain floor, so an
  /// uncontended worker runs the loop out of a single descriptor and
  /// halves only split off when thieves are hungry. Off: the per-chunk
  /// task generation above stays as the A/B baseline.
  bool use_range;

  void transform(Complex* a, Complex* scratch, std::size_t n,
                 std::size_t stride) const {
    if (n <= leaf) {
      leaf_fft<prof::NoProf>(a, n, stride, *tw);
      return;
    }
    const std::size_t half = n / 2;
    if (use_range) {
      // Data-motion iterations; the caller chunk stays the floor and the
      // site converges its own estimate above it (grain.hpp).
      constexpr rt::RangeSite kScatterSite{"fft/scatter"};
      rt::spawn_range(kScatterSite, tied, 0, static_cast<std::int64_t>(half),
                      static_cast<std::int64_t>(chunk),
                      [a, scratch, half](std::int64_t i) {
                        scratch[i] = a[2 * i];
                        scratch[i + half] = a[2 * i + 1];
                      });
    } else {
      for (std::size_t off = 0; off < half; off += chunk) {
        const std::size_t end = off + chunk < half ? off + chunk : half;
        rt::spawn(tied, [a, scratch, off, end, half] {
          for (std::size_t i = off; i < end; ++i) {
            scratch[i] = a[2 * i];
            scratch[i + half] = a[2 * i + 1];
          }
        });
      }
    }
    rt::taskwait();
    rt::spawn(tied, [this, scratch, a, half, stride] {
      transform(scratch, a, half, stride * 2);
    });
    rt::spawn(tied, [this, scratch, a, half, stride] {
      transform(scratch + half, a + half, half, stride * 2);
    });
    rt::taskwait();
    const Twiddles& twr = *tw;
    if (use_range) {
      constexpr rt::RangeSite kButterflySite{"fft/butterfly"};
      rt::spawn_range(kButterflySite, tied, 0,
                      static_cast<std::int64_t>(half),
                      static_cast<std::int64_t>(chunk),
                      [a, scratch, half, stride, &twr](std::int64_t k) {
                        const Complex t = twr.w[static_cast<std::size_t>(k) *
                                                stride] *
                                          scratch[k + half];
                        a[k] = scratch[k] + t;
                        a[k + half] = scratch[k] - t;
                      });
    } else {
      for (std::size_t off = 0; off < half; off += chunk) {
        const std::size_t end = off + chunk < half ? off + chunk : half;
        rt::spawn(tied, [a, scratch, off, end, half, stride, &twr] {
          for (std::size_t k = off; k < end; ++k) {
            const Complex t = twr.w[k * stride] * scratch[k + half];
            a[k] = scratch[k] + t;
            a[k + half] = scratch[k] - t;
          }
        });
      }
    }
    rt::taskwait();
  }
};

std::vector<Complex> direct_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {std::size_t{1} << 12, 0xFF7u};
    case core::InputClass::small: return {std::size_t{1} << 20, 0xFF7u};
    case core::InputClass::medium: return {std::size_t{1} << 22, 0xFF7u};
    case core::InputClass::large: return {std::size_t{1} << 24, 0xFF7u};
  }
  throw std::invalid_argument("fft: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.n) + " complex values";
}

std::vector<Complex> make_input(const Params& p) {
  std::vector<Complex> v(p.n);
  core::Xoshiro256 rng(p.seed);
  for (auto& z : v) {
    z = Complex(2.0 * rng.next_double() - 1.0, 2.0 * rng.next_double() - 1.0);
  }
  return v;
}

void run_serial(const Params& p, std::vector<Complex>& data) {
  const Twiddles tw(p.n);
  std::vector<Complex> scratch(p.n);
  fft_serial_rec<prof::NoProf>(data.data(), scratch.data(), p.n, 1, tw, true,
                               p.leaf, p.loop_chunk);
}

void run_parallel(const Params& p, std::vector<Complex>& data,
                  rt::Scheduler& sched, const VersionOpts& opts) {
  const Twiddles tw(p.n);
  std::vector<Complex> scratch(p.n);
  TaskFft tf{&tw, p.leaf, p.loop_chunk, opts.tied,
             sched.config().use_range_tasks};
  sched.run_single([&] { tf.transform(data.data(), scratch.data(), p.n, 1); });
}

bool verify(const Params& p, const std::vector<Complex>& input,
            const std::vector<Complex>& output) {
  if (input.size() != p.n || output.size() != p.n) return false;
  if (p.n <= (std::size_t{1} << 12)) {
    const std::vector<Complex> ref = direct_dft(input);
    double max_err = 0.0;
    double scale = 0.0;
    for (std::size_t i = 0; i < p.n; ++i) {
      max_err = std::max(max_err, std::abs(ref[i] - output[i]));
      scale = std::max(scale, std::abs(ref[i]));
    }
    return max_err <= 1e-9 * std::max(1.0, scale);
  }
  // Large transforms: Parseval + inverse round trip (via conjugation).
  double in_energy = 0.0;
  double out_energy = 0.0;
  for (std::size_t i = 0; i < p.n; ++i) in_energy += std::norm(input[i]);
  for (std::size_t i = 0; i < p.n; ++i) out_energy += std::norm(output[i]);
  const double parseval =
      std::abs(out_energy / static_cast<double>(p.n) - in_energy) /
      std::max(1.0, in_energy);
  if (parseval > 1e-9) return false;

  std::vector<Complex> back(p.n);
  for (std::size_t i = 0; i < p.n; ++i) back[i] = std::conj(output[i]);
  Params q = p;
  run_serial(q, back);
  double max_err = 0.0;
  for (std::size_t i = 0; i < p.n; ++i) {
    const Complex rec = std::conj(back[i]) / static_cast<double>(p.n);
    max_err = std::max(max_err, std::abs(rec - input[i]));
  }
  return max_err <= 1e-9;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  std::vector<Complex> data = make_input(p);
  const std::vector<Complex> input = data;
  const Twiddles tw(p.n);
  std::vector<Complex> scratch(p.n);
  prof::CountingProf::reset();
  core::Timer timer;
  fft_serial_rec<prof::CountingProf>(data.data(), scratch.data(), p.n, 1, tw,
                                     true, p.leaf, p.loop_chunk);
  const double secs = timer.seconds();
  if (!verify(p, input, data)) {
    throw std::logic_error("fft profile run mis-verified");
  }
  const std::uint64_t mem = 3ull * p.n * sizeof(Complex);  // data+scratch+tw
  return prof::make_row("fft", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "fft";
  app.origin = "Cilk";
  app.domain = "Spectral method";
  app.structure = "At leafs";
  app.task_directives = 41;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "none";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("fft");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) throw std::invalid_argument("fft: unknown version " + version);
    const Params p = params_for(ic);
    std::vector<Complex> data = make_input(p);
    const std::vector<Complex> input = verify_run ? data : std::vector<Complex>{};
    VersionOpts opts{v->tied};
    return core::run_and_report(
        "fft", version, ic, sched, verify_run,
        [&] { run_parallel(p, data, sched, opts); },
        [&] { return verify(p, input, data); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    std::vector<Complex> data = make_input(p);
    const std::vector<Complex> input = data;
    return core::run_serial_and_report(
        "fft", ic, true, [&] { run_serial(p, data); },
        [&] { return verify(p, input, data); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::fft
