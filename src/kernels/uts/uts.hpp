// UTS: unbalanced tree search (suite extension).
//
// The paper's conclusions announce "we are working to add new benchmarks to
// the suite to cover more problem domains"; UTS is the canonical candidate:
// counting the nodes of an unpredictable, heavily unbalanced tree whose
// shape is derived deterministically from per-node hashes. It is the
// natural stress test for the adaptive runtime cut-off of Duran et al. [27]
// (bench_ablation_adaptive).
#pragma once

#include <cstdint>
#include <string>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::uts {

struct Params {
  int root_children = 64;    ///< branching at the root
  int max_children = 8;      ///< branching of internal nodes
  int spawn_permille = 150;  ///< probability (/1000) an internal child exists
  int max_depth = 20;        ///< hard depth bound
  int work_per_node = 32;    ///< synthetic per-node work (hash iterations)
  std::uint64_t seed = 0x075u;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Total number of tree nodes (root included).
[[nodiscard]] std::uint64_t run_serial(const Params& p);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::untied;
};

[[nodiscard]] std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                                         const VersionOpts& opts);

/// The tree is a pure function of the seed: parallel must equal serial.
[[nodiscard]] bool verify(const Params& p, std::uint64_t count);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::uts
