#include "kernels/uts/uts.hpp"

#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worker_local.hpp"

namespace bots::uts {

namespace {

/// Node identity -> child identity, and the per-node synthetic work: a
/// splitmix64 chain standing in for UTS's SHA-1 node descriptors.
std::uint64_t child_hash(std::uint64_t node, int index) {
  std::uint64_t s = node ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  return core::splitmix64(s);
}

template <class Prof>
std::uint64_t node_work(std::uint64_t node, int iterations) {
  std::uint64_t h = node;
  for (int i = 0; i < iterations; ++i) {
    h = core::splitmix64(h);
  }
  // The hash chain is the node's synthetic payload; keep it observable so
  // the optimizer cannot elide the loop.
  asm volatile("" : "+r"(h));
  Prof::ops(static_cast<std::uint64_t>(iterations) * 5);
  return h;
}

template <class Prof>
int child_count(const Params& p, std::uint64_t node, int depth) {
  if (depth >= p.max_depth) return 0;
  if (depth == 0) return p.root_children;
  int n = 0;
  for (int i = 0; i < p.max_children; ++i) {
    std::uint64_t s = node ^ (0xD1B54A32D192ED03ULL * (i + 17));
    const std::uint64_t h = core::splitmix64(s);
    Prof::ops(6);
    if (static_cast<int>(h % 1000) < p.spawn_permille) ++n;
  }
  return n;
}

template <class Prof>
std::uint64_t count_serial(const Params& p, std::uint64_t node, int depth,
                           bool mark_task_sites) {
  (void)node_work<Prof>(node, p.work_per_node);
  const int nc = child_count<Prof>(p, node, depth);
  std::uint64_t total = 1;
  for (int i = 0; i < nc; ++i) {
    if (mark_task_sites) Prof::task(sizeof(std::uint64_t) + 2 * sizeof(int));
    total += count_serial<Prof>(p, child_hash(node, i), depth + 1,
                                mark_task_sites);
  }
  if (mark_task_sites) Prof::taskwait();
  Prof::write_shared(1);
  return total;
}

struct TaskCount {
  const Params* p;
  rt::WorkerLocal<std::uint64_t>* counts;
  rt::Tiedness tied;

  void descend(std::uint64_t node, int depth) const {
    (void)node_work<prof::NoProf>(node, p->work_per_node);
    ++counts->local();
    const int nc = child_count<prof::NoProf>(*p, node, depth);
    for (int i = 0; i < nc; ++i) {
      const std::uint64_t child = child_hash(node, i);
      rt::spawn(tied, [this, child, depth] { descend(child, depth + 1); });
    }
    // No taskwait: pure counting needs no join before returning (the region
    // barrier joins everything) — the classic UTS continuation-free shape.
  }
};

}  // namespace

Params params_for(core::InputClass c) {
  Params p;
  switch (c) {
    case core::InputClass::test:
      p.root_children = 32;
      p.spawn_permille = 150;
      p.max_depth = 20;
      p.work_per_node = 50;
      return p;
    case core::InputClass::small:
      p.root_children = 64;
      p.spawn_permille = 170;
      p.max_depth = 28;
      p.work_per_node = 200;
      return p;
    case core::InputClass::medium:
      p.root_children = 96;
      p.spawn_permille = 170;
      p.max_depth = 30;
      p.work_per_node = 150;
      return p;
    case core::InputClass::large:
      p.root_children = 128;
      p.spawn_permille = 172;
      p.max_depth = 34;
      p.work_per_node = 400;
      return p;
  }
  throw std::invalid_argument("uts: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.root_children) + "-ary root, p=" +
         std::to_string(p.spawn_permille) + "/1000";
}

std::uint64_t run_serial(const Params& p) {
  return count_serial<prof::NoProf>(p, p.seed, 0, false);
}

std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                           const VersionOpts& opts) {
  rt::WorkerLocal<std::uint64_t> counts(sched, 0);
  TaskCount tc{&p, &counts, opts.tied};
  sched.run_single([&] { tc.descend(p.seed, 0); });
  return counts.reduce(std::uint64_t{0},
                       [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

bool verify(const Params& p, std::uint64_t count) {
  return count == run_serial(p);
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  prof::CountingProf::reset();
  core::Timer timer;
  const std::uint64_t n = count_serial<prof::CountingProf>(p, p.seed, 0, true);
  const double secs = timer.seconds();
  if (n == 0) throw std::logic_error("uts profile run produced no nodes");
  const std::uint64_t mem = static_cast<std::uint64_t>(p.max_depth) * 64;
  return prof::make_row("uts", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "uts";
  app.origin = "UTS";
  app.domain = "Search (extension)";
  app.structure = "At each node";
  app.task_directives = 1;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "none";
  app.extension = true;
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("uts");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) throw std::invalid_argument("uts: unknown version " + version);
    const Params p = params_for(ic);
    VersionOpts opts{v->tied};
    std::uint64_t count = 0;
    return core::run_and_report(
        "uts", version, ic, sched, verify_run,
        [&] { count = run_parallel(p, sched, opts); },
        [&] { return verify(p, count); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    std::uint64_t count = 0;
    return core::run_serial_and_report(
        "uts", ic, true, [&] { count = run_serial(p); },
        [&] { return verify(p, count); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::uts
