// Assembly of the suite registry: the only translation unit that knows
// every kernel. Order matches Table I of the paper; extensions follow.
#include "core/registry.hpp"

#include "kernels/alignment/alignment.hpp"
#include "kernels/fft/fft.hpp"
#include "kernels/fib/fib.hpp"
#include "kernels/floorplan/floorplan.hpp"
#include "kernels/health/health.hpp"
#include "kernels/nqueens/nqueens.hpp"
#include "kernels/sort/sort.hpp"
#include "kernels/sparselu/sparselu.hpp"
#include "kernels/strassen/strassen.hpp"
#include "kernels/uts/uts.hpp"

namespace bots::core {

const AppInfo* find_app(std::string_view name) {
  for (const AppInfo& app : apps()) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

const std::vector<AppInfo>& apps() {
  static const std::vector<AppInfo> registry = [] {
    std::vector<AppInfo> v;
    v.push_back(bots::alignment::make_app_info());
    v.push_back(bots::fft::make_app_info());
    v.push_back(bots::fib::make_app_info());
    v.push_back(bots::floorplan::make_app_info());
    v.push_back(bots::health::make_app_info());
    v.push_back(bots::nqueens::make_app_info());
    v.push_back(bots::sort::make_app_info());
    v.push_back(bots::sparselu::make_app_info());
    v.push_back(bots::strassen::make_app_info());
    v.push_back(bots::uts::make_app_info());
    return v;
  }();
  return registry;
}

}  // namespace bots::core
