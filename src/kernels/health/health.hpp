// Health: simulation of the Columbian Health Care System (paper
// Section III-B; Olden suite origin, after Das & Fujimoto [25]).
//
// "It uses multilevel lists where each element in the structure represents
// a village with a list of potential patients and one hospital. The
// hospital has several double-linked lists representing the possible status
// of a patient inside it (waiting, in assessment, in treatment or waiting
// for reallocation). At each timestep all patients are simulated ... A task
// is created for each village being simulated."
//
// Determinism (paper Section III-A, "Handling indeterminism"): every
// village owns its RNG seed, so all probability draws inside a village —
// which are computed by a single task — are identical across executions and
// thread counts; reallocated patients are admitted in ascending patient-id
// order so cross-village arrival order cannot leak scheduling
// nondeterminism into the simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::health {

struct Params {
  int levels = 3;            ///< depth of the village hierarchy
  int branch = 4;            ///< children per non-leaf village
  int population = 10;       ///< initial patients per village
  int sim_steps = 50;
  int assess_time = 3;
  int treatment_time = 10;
  /// Fixed-point probabilities out of 10'000 (integer draws keep the
  /// simulation bit-deterministic).
  int p_sick = 400;          ///< population -> waiting, per step
  int p_cured = 6500;        ///< assess -> population
  int p_treatment = 2000;    ///< assess -> inside (else realloc up)
  int cutoff_level = 2;      ///< villages at level > cutoff spawn tasks
  std::uint64_t seed = 0x4EA17Au;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Aggregate simulation outcome used for (exact) verification.
struct Stats {
  std::uint64_t population = 0;  ///< healthy patients
  std::uint64_t waiting = 0;
  std::uint64_t assess = 0;
  std::uint64_t inside = 0;
  std::uint64_t total_time = 0;           ///< sum of time spent in hospitals
  std::uint64_t total_hosps_visited = 0;  ///< sum over all patients
  bool operator==(const Stats&) const = default;
};

[[nodiscard]] Stats run_serial(const Params& p);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::AppCutoff cutoff = core::AppCutoff::manual;
  /// single_gen: the paper's recursive per-village tasks under a `single`.
  /// multiple_gen: a level-ordered sweep — every village of one level is
  /// simulated before the next level up (children before parents, the same
  /// topological order the recursion's taskwaits enforce), each level driven
  /// by a splittable range task (or per-village spawns from a `for`
  /// worksharing construct when use_range_tasks is off).
  core::Generator generator = core::Generator::single_gen;
};

[[nodiscard]] Stats run_parallel(const Params& p, rt::Scheduler& sched,
                                 const VersionOpts& opts);

/// The parallel simulation is exactly deterministic, so verification is an
/// exact comparison against a serial run of the same parameters.
[[nodiscard]] bool verify(const Params& p, const Stats& result);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::health
