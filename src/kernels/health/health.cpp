#include "kernels/health/health.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worksharing.hpp"

namespace bots::health {

namespace {

struct Village;

struct Patient {
  std::uint64_t id = 0;
  int time = 0;            ///< time spent in hospitals so far
  int time_left = 0;       ///< remaining time in the current phase
  int hosps_visited = 0;
  Patient* next = nullptr;
  Patient* prev = nullptr;
};

/// Intrusive doubly-linked patient list (the paper's "double-linked lists").
class PatientList {
 public:
  [[nodiscard]] Patient* head() const noexcept { return head_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }

  void push_back(Patient* p) noexcept {
    p->next = nullptr;
    p->prev = tail_;
    if (tail_ != nullptr) {
      tail_->next = p;
    } else {
      head_ = p;
    }
    tail_ = p;
  }

  void remove(Patient* p) noexcept {
    if (p->prev != nullptr) {
      p->prev->next = p->next;
    } else {
      head_ = p->next;
    }
    if (p->next != nullptr) {
      p->next->prev = p->prev;
    } else {
      tail_ = p->prev;
    }
    p->next = nullptr;
    p->prev = nullptr;
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    std::uint64_t n = 0;
    for (Patient* p = head_; p != nullptr; p = p->next) ++n;
    return n;
  }

 private:
  Patient* head_ = nullptr;
  Patient* tail_ = nullptr;
};

struct Hospital {
  int personnel = 0;
  int free_personnel = 0;
  PatientList waiting;
  PatientList assess;
  PatientList inside;
  PatientList realloc;
  std::mutex realloc_mutex;  ///< sibling tasks push reallocations up here
};

struct Village {
  int id = 0;
  int level = 1;  ///< leaves are level 1
  std::uint64_t seed = 0;
  Village* parent = nullptr;
  std::vector<std::unique_ptr<Village>> children;
  PatientList population;
  Hospital hosp;
  std::vector<std::unique_ptr<Patient>> patient_storage;
};

/// Deterministic per-village LCG (the paper's one-seed-per-village device).
int draw(std::uint64_t& seed) noexcept {
  seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<int>((seed >> 33) % 10000);
}

struct Builder {
  const Params* p;
  int next_village_id = 0;
  std::uint64_t next_patient_id = 1;

  std::unique_ptr<Village> build(int level, Village* parent) {
    auto v = std::make_unique<Village>();
    v->id = next_village_id++;
    v->level = level;
    v->parent = parent;
    std::uint64_t sm = p->seed + static_cast<std::uint64_t>(v->id);
    v->seed = core::splitmix64(sm);  // one independent seed per village
    v->hosp.personnel = level * 2;
    v->hosp.free_personnel = v->hosp.personnel;
    for (int i = 0; i < p->population; ++i) {
      auto pat = std::make_unique<Patient>();
      pat->id = next_patient_id++;
      v->population.push_back(pat.get());
      v->patient_storage.push_back(std::move(pat));
    }
    if (level > 1) {
      v->children.reserve(static_cast<std::size_t>(p->branch));
      for (int c = 0; c < p->branch; ++c) {
        v->children.push_back(build(level - 1, v.get()));
      }
    }
    return v;
  }
};

// ---------------------------------------------------------------------------
// One simulation step for a single village (serial within the village; this
// is the body executed by one task).
// ---------------------------------------------------------------------------

template <class Prof>
void check_patients_inside(Village& v) {
  Patient* p = v.hosp.inside.head();
  while (p != nullptr) {
    Patient* next = p->next;
    --p->time_left;
    Prof::ops(1);
    Prof::write_shared(1);
    if (p->time_left == 0) {
      ++v.hosp.free_personnel;
      v.hosp.inside.remove(p);
      v.population.push_back(p);
      Prof::write_shared(4);
    }
    p = next;
  }
}

template <class Prof>
void check_patients_assess(const Params& prm, Village& v) {
  Patient* p = v.hosp.assess.head();
  while (p != nullptr) {
    Patient* next = p->next;
    --p->time_left;
    Prof::ops(1);
    Prof::write_shared(1);
    if (p->time_left == 0) {
      const int r = draw(v.seed);
      Prof::ops(4);
      if (r < prm.p_cured) {
        // Cured: release personnel, back to the healthy population.
        ++v.hosp.free_personnel;
        v.hosp.assess.remove(p);
        v.population.push_back(p);
        Prof::write_shared(4);
      } else if (r < prm.p_cured + prm.p_treatment || v.parent == nullptr) {
        // Admitted for treatment here.
        p->time_left = prm.treatment_time;
        p->time += prm.treatment_time;
        v.hosp.assess.remove(p);
        v.hosp.inside.push_back(p);
        Prof::write_shared(5);
      } else {
        // Referred to the upper-level hospital.
        ++v.hosp.free_personnel;
        v.hosp.assess.remove(p);
        Hospital& up = v.parent->hosp;
        {
          std::lock_guard<std::mutex> lock(up.realloc_mutex);
          up.realloc.push_back(p);
        }
        Prof::write_shared(5);
      }
    }
    p = next;
  }
}

template <class Prof>
void put_in_hosp(const Params& prm, Village& v, Patient* p) {
  ++p->hosps_visited;
  Prof::write_shared(1);
  if (v.hosp.free_personnel > 0) {
    --v.hosp.free_personnel;
    p->time_left = prm.assess_time;
    p->time += prm.assess_time;
    v.hosp.assess.push_back(p);
    Prof::write_shared(4);
  } else {
    p->time_left = 0;
    v.hosp.waiting.push_back(p);
    Prof::write_shared(2);
  }
}

template <class Prof>
void check_patients_waiting(const Params& prm, Village& v) {
  Patient* p = v.hosp.waiting.head();
  while (p != nullptr) {
    Patient* next = p->next;
    if (v.hosp.free_personnel > 0) {
      --v.hosp.free_personnel;
      p->time_left = prm.assess_time;
      p->time += prm.assess_time;
      v.hosp.waiting.remove(p);
      v.hosp.assess.push_back(p);
      Prof::write_shared(5);
    } else {
      ++p->time;
      Prof::write_shared(1);
    }
    Prof::ops(1);
    p = next;
  }
}

/// Admit reallocated patients in ascending id order: arrival order into the
/// realloc list depends on sibling task completion order, so a deterministic
/// admission order is what keeps the simulation schedule-independent.
template <class Prof>
void check_patients_realloc(const Params& prm, Village& v) {
  while (!v.hosp.realloc.empty()) {
    Patient* min_p = v.hosp.realloc.head();
    for (Patient* p = min_p->next; p != nullptr; p = p->next) {
      Prof::ops(1);
      if (p->id < min_p->id) min_p = p;
    }
    v.hosp.realloc.remove(min_p);
    put_in_hosp<Prof>(prm, v, min_p);
  }
}

template <class Prof>
void check_patients_population(const Params& prm, Village& v) {
  Patient* p = v.population.head();
  while (p != nullptr) {
    Patient* next = p->next;
    const int r = draw(v.seed);
    Prof::ops(4);
    if (r < prm.p_sick) {
      v.population.remove(p);
      put_in_hosp<Prof>(prm, v, p);
      Prof::write_shared(2);
    }
    p = next;
  }
}

/// The per-village, per-step body (everything except child recursion).
template <class Prof>
void sim_village_local(const Params& prm, Village& v) {
  check_patients_inside<Prof>(v);
  check_patients_assess<Prof>(prm, v);
  check_patients_waiting<Prof>(prm, v);
  check_patients_realloc<Prof>(prm, v);
  check_patients_population<Prof>(prm, v);
}

template <class Prof>
void sim_village_serial(const Params& prm, Village& v, bool mark_task_sites) {
  for (auto& child : v.children) {
    if (mark_task_sites) Prof::task(sizeof(void*));
    sim_village_serial<Prof>(prm, *child, mark_task_sites);
  }
  if (mark_task_sites) Prof::taskwait();
  sim_village_local<Prof>(prm, v);
}

struct TaskSim {
  const Params* prm;
  rt::Tiedness tied;
  core::AppCutoff cutoff;

  void simulate(Village& v) const {
    for (auto& child : v.children) {
      Village* c = child.get();
      switch (cutoff) {
        case core::AppCutoff::none:
          rt::spawn(tied, [this, c] { simulate(*c); });
          break;
        case core::AppCutoff::if_clause:
          rt::spawn_if(c->level > prm->cutoff_level, tied,
                       [this, c] { simulate(*c); });
          break;
        case core::AppCutoff::manual:
          if (c->level > prm->cutoff_level) {
            rt::spawn(tied, [this, c] { simulate(*c); });
          } else {
            sim_village_serial<prof::NoProf>(*prm, *c, false);
          }
          break;
      }
    }
    // Lower levels must be fully simulated before this village admits the
    // patients they reallocated upward (paper: "Once the lower levels have
    // been simulated synchronization occurs").
    rt::taskwait();
    sim_village_local<prof::NoProf>(*prm, v);
  }
};

/// Group villages by level (leaves = 1 ... root = p.levels), build order
/// within a level. Any order that simulates a whole level before the next
/// level up is equivalent to the recursion's children-before-parent
/// taskwaits: villages interact only by pushing reallocated patients into
/// their parent's mutex-protected list, and the parent admits them in
/// ascending patient-id order, so same-level ordering cannot leak into the
/// simulation (the paper's determinism device).
void collect_levels(Village* v, std::vector<std::vector<Village*>>& levels) {
  levels[static_cast<std::size_t>(v->level)].push_back(v);
  for (auto& c : v->children) collect_levels(c.get(), levels);
}

void collect(const Village& v, Stats& s) {
  s.population += v.population.size();
  s.waiting += v.hosp.waiting.size();
  s.assess += v.hosp.assess.size();
  s.inside += v.hosp.inside.size();
  for (const auto& pat : v.patient_storage) {
    s.total_time += static_cast<std::uint64_t>(pat->time);
    s.total_hosps_visited += static_cast<std::uint64_t>(pat->hosps_visited);
  }
  for (const auto& c : v.children) collect(*c, s);
}

std::uint64_t count_villages(int levels, int branch) {
  std::uint64_t total = 0;
  std::uint64_t layer = 1;
  for (int l = 0; l < levels; ++l) {
    total += layer;
    layer *= static_cast<std::uint64_t>(branch);
  }
  return total;
}

}  // namespace

Params params_for(core::InputClass c) {
  Params p;
  switch (c) {
    case core::InputClass::test:
      p.levels = 3;
      p.branch = 4;
      p.population = 8;
      p.sim_steps = 30;
      p.cutoff_level = 1;
      return p;
    case core::InputClass::small:
      p.levels = 5;
      p.branch = 6;
      p.population = 20;
      p.sim_steps = 100;
      p.cutoff_level = 2;
      return p;
    case core::InputClass::medium:
      p.levels = 5;
      p.branch = 8;
      p.population = 40;
      p.sim_steps = 300;
      p.cutoff_level = 2;
      return p;
    case core::InputClass::large:
      p.levels = 6;
      p.branch = 6;
      p.population = 30;
      p.sim_steps = 250;
      p.cutoff_level = 3;
      return p;
  }
  throw std::invalid_argument("health: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.levels) + " levels with " + std::to_string(p.branch) +
         "-way branching";
}

Stats run_serial(const Params& p) {
  Builder b{&p, 0, 1};
  auto root = b.build(p.levels, nullptr);
  for (int step = 0; step < p.sim_steps; ++step) {
    sim_village_serial<prof::NoProf>(p, *root, false);
  }
  Stats s;
  collect(*root, s);
  return s;
}

Stats run_parallel(const Params& p, rt::Scheduler& sched,
                   const VersionOpts& opts) {
  Builder b{&p, 0, 1};
  auto root = b.build(p.levels, nullptr);
  if (opts.generator == core::Generator::multiple_gen) {
    // `for` version: level-ordered sweep, barriers between levels (see
    // VersionOpts::generator for the equivalence argument).
    std::vector<std::vector<Village*>> levels(
        static_cast<std::size_t>(p.levels) + 1);
    collect_levels(root.get(), levels);
    const bool ranges = sched.config().use_range_tasks;
    const rt::Tiedness tied = opts.tied;
    const Params* prm = &p;
    rt::SingleGate gate(sched.num_workers());
    sched.run_all([&](unsigned) {
      for (int step = 0; step < p.sim_steps; ++step) {
        for (int l = 1; l <= p.levels; ++l) {
          auto& vs = levels[static_cast<std::size_t>(l)];
          const auto n = static_cast<std::int64_t>(vs.size());
          if (ranges) {
            rt::single_nowait(gate, [&] {
              constexpr rt::RangeSite kLevelSite{"health/levels"};
              Village** vptr = vs.data();
              rt::spawn_range(kLevelSite, tied, 0, n, 1,
                              [vptr, prm](std::int64_t idx) {
                                sim_village_local<prof::NoProf>(*prm,
                                                               *vptr[idx]);
                              });
            });
          } else {
            rt::for_static(0, n, [&](std::int64_t idx) {
              Village* v = vs[static_cast<std::size_t>(idx)];
              rt::spawn(tied, [v, prm] {
                sim_village_local<prof::NoProf>(*prm, *v);
              });
            });
          }
          rt::barrier();  // a level's tasks (and splits) complete before the next
        }
      }
    });
    Stats s;
    collect(*root, s);
    return s;
  }
  TaskSim sim{&p, opts.tied, opts.cutoff};
  sched.run_single([&] {
    for (int step = 0; step < p.sim_steps; ++step) {
      sim.simulate(*root);
    }
  });
  Stats s;
  collect(*root, s);
  return s;
}

bool verify(const Params& p, const Stats& result) {
  return result == run_serial(p);
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  Builder b{&p, 0, 1};
  auto root = b.build(p.levels, nullptr);
  prof::CountingProf::reset();
  core::Timer timer;
  for (int step = 0; step < p.sim_steps; ++step) {
    sim_village_serial<prof::CountingProf>(p, *root, true);
  }
  const double secs = timer.seconds();
  Stats s;
  collect(*root, s);
  if (!(s == run_serial(p))) {
    throw std::logic_error("health profile run mis-verified");
  }
  const std::uint64_t villages = count_villages(p.levels, p.branch);
  const std::uint64_t mem =
      villages * (sizeof(Village) +
                  static_cast<std::uint64_t>(p.population) * sizeof(Patient));
  return prof::make_row("health", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "health";
  app.origin = "Olden";
  app.domain = "Simulation";
  app.structure = "At each node";
  app.task_directives = 1;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "depth-based";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"if-tied", rt::Tiedness::tied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"if-untied", rt::Tiedness::untied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"manual-tied", rt::Tiedness::tied, core::AppCutoff::manual,
       core::Generator::single_gen, true},
      {"manual-untied", rt::Tiedness::untied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
      {"for-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::multiple_gen, false},
      {"for-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::multiple_gen, false},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("health");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("health: unknown version " + version);
    }
    const Params p = params_for(ic);
    VersionOpts opts{v->tied, v->cutoff, v->generator};
    Stats result;
    return core::run_and_report(
        "health", version, ic, sched, verify_run,
        [&] { result = run_parallel(p, sched, opts); },
        [&] { return verify(p, result); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    Stats result;
    return core::run_serial_and_report(
        "health", ic, true, [&] { result = run_serial(p); },
        [&] { return verify(p, result); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::health
