#include "kernels/alignment/alignment.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worksharing.hpp"

namespace bots::alignment {

namespace {

constexpr int alphabet = 20;
constexpr int neg_inf = -(1 << 28);

[[nodiscard]] std::size_t pair_count(int nseq) {
  return static_cast<std::size_t>(nseq) * (nseq - 1) / 2;
}

[[nodiscard]] std::size_t pair_index(int nseq, int i, int j) {
  // Pairs (i, j), i < j, in lexicographic order.
  return static_cast<std::size_t>(i) * (2 * nseq - i - 1) / 2 +
         static_cast<std::size_t>(j - i - 1);
}

/// Gotoh affine-gap global alignment, two-row DP, instrumented.
template <class Prof>
int score_pair(const Sequence& a, const Sequence& b, int gap_open,
               int gap_extend) {
  const auto& w = weight_matrix();
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  // H: best score ending at (i, j); E: gap in `a` (horizontal);
  // F: gap in `b` (vertical). Two rolling rows, task-private storage.
  std::vector<int> h(lb + 1);
  std::vector<int> h_prev(lb + 1);
  std::vector<int> f(lb + 1);
  std::vector<int> f_prev(lb + 1, neg_inf);

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= lb; ++j) {
    h_prev[j] = -(gap_open + gap_extend * static_cast<int>(j - 1));
  }

  for (std::size_t i = 1; i <= la; ++i) {
    h[0] = -(gap_open + gap_extend * static_cast<int>(i - 1));
    f[0] = neg_inf;
    int e_run = neg_inf;
    const auto& wrow = w[a[i - 1]];
    for (std::size_t j = 1; j <= lb; ++j) {
      e_run = std::max(h[j - 1] - gap_open, e_run - gap_extend);
      f[j] = std::max(h_prev[j] - gap_open, f_prev[j] - gap_extend);
      const int diag = h_prev[j - 1] + wrow[b[j - 1]];
      h[j] = std::max({diag, e_run, f[j]});
      Prof::ops(8);
      Prof::write_private(3);
    }
    std::swap(h, h_prev);
    std::swap(f, f_prev);
  }
  return h_prev[lb];
}

}  // namespace

const std::array<std::array<int, 20>, 20>& weight_matrix() {
  // Deterministic BLOSUM-shaped substitution matrix: diagonal 4..11,
  // off-diagonal in [-4, 3], symmetric (see DESIGN.md substitution table).
  static const auto matrix = [] {
    std::array<std::array<int, 20>, 20> m{};
    core::Xoshiro256 rng(0xB105u);
    for (int i = 0; i < alphabet; ++i) {
      m[i][i] = 4 + static_cast<int>(rng.next_below(8));
      for (int j = i + 1; j < alphabet; ++j) {
        const int v = static_cast<int>(rng.next_below(8)) - 4;
        m[i][j] = v;
        m[j][i] = v;
      }
    }
    return m;
  }();
  return matrix;
}

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {16, 60, 100, 10, 1, 0xA115u};
    case core::InputClass::small: return {40, 140, 220, 10, 1, 0xA115u};
    case core::InputClass::medium: return {96, 200, 300, 10, 1, 0xA115u};
    case core::InputClass::large: return {128, 240, 360, 10, 1, 0xA115u};
  }
  throw std::invalid_argument("alignment: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.nseq) + " proteins";
}

std::vector<Sequence> make_input(const Params& p) {
  std::vector<Sequence> seqs(static_cast<std::size_t>(p.nseq));
  core::Xoshiro256 rng(p.seed);
  for (auto& s : seqs) {
    const std::size_t len =
        static_cast<std::size_t>(p.len_min) +
        rng.next_below(static_cast<std::uint64_t>(p.len_max - p.len_min + 1));
    s.resize(len);
    for (auto& r : s) r = static_cast<std::uint8_t>(rng.next_below(alphabet));
  }
  return seqs;
}

int pair_score(const Sequence& a, const Sequence& b, const Params& p) {
  return score_pair<prof::NoProf>(a, b, p.gap_open, p.gap_extend);
}

std::vector<int> run_serial(const Params& p,
                            const std::vector<Sequence>& seqs) {
  std::vector<int> scores(pair_count(p.nseq));
  for (int i = 0; i < p.nseq; ++i) {
    for (int j = i + 1; j < p.nseq; ++j) {
      scores[pair_index(p.nseq, i, j)] =
          score_pair<prof::NoProf>(seqs[i], seqs[j], p.gap_open, p.gap_extend);
    }
  }
  return scores;
}

std::vector<int> run_parallel(const Params& p,
                              const std::vector<Sequence>& seqs,
                              rt::Scheduler& sched, const VersionOpts& opts) {
  std::vector<int> scores(pair_count(p.nseq));
  int* out = scores.data();
  const Sequence* sq = seqs.data();
  const int nseq = p.nseq;
  const int gap_open = p.gap_open;
  const int gap_extend = p.gap_extend;
  const rt::Tiedness tied = opts.tied;
  if (sched.config().use_range_tasks) {
    // Range-task scheme: the first-arriving worker publishes ONE splittable
    // range over the outer rows (each iteration scores its row's pairs
    // serially); everyone else is already at the region barrier stealing
    // halves, so load balance comes from split-on-steal instead of
    // one-descriptor-per-pair generation.
    // Site-tagged so the row ranges converge their own grain estimate
    // (expensive DP iterations) instead of sharing one with cheap-iteration
    // ranges elsewhere in a mixed workload.
    constexpr rt::RangeSite kRowsSite{"alignment/rows"};
    rt::SingleGate gate(sched.num_workers());
    sched.run_all([&](unsigned) {
      rt::single_nowait(gate, [&] {
        rt::spawn_range(
            kRowsSite, tied, 0, nseq, 1,
            [out, sq, nseq, gap_open, gap_extend](std::int64_t i) {
              for (int j = static_cast<int>(i) + 1; j < nseq; ++j) {
                out[pair_index(nseq, static_cast<int>(i), j)] =
                    score_pair<prof::NoProf>(sq[i], sq[j], gap_open,
                                             gap_extend);
              }
            });
      });
      // The range and its splits join at the implicit region-end barrier.
    });
    return scores;
  }
  // The paper's scheme: outer loop under a dynamically scheduled `for`
  // worksharing construct, one task per pair inside the parallel loop.
  rt::DynamicSchedule dyn(0);
  sched.run_all([&](unsigned) {
    rt::for_dynamic(dyn, nseq, 1, [&](std::int64_t i) {
      for (int j = static_cast<int>(i) + 1; j < nseq; ++j) {
        const std::size_t idx = pair_index(nseq, static_cast<int>(i), j);
        rt::spawn(tied, [out, idx, sq, i, j, gap_open, gap_extend] {
          out[idx] = score_pair<prof::NoProf>(sq[i], sq[j], gap_open,
                                              gap_extend);
        });
      }
    });
    // Tasks join at the implicit region-end barrier (no taskwait: the
    // paper's Table II shows 0.00 taskwaits per task for Alignment).
  });
  return scores;
}

bool verify(const Params& p, const std::vector<Sequence>& seqs,
            const std::vector<int>& scores) {
  if (scores.size() != pair_count(p.nseq)) return false;
  const bool full = pair_count(p.nseq) <= 2048;
  if (full) {
    for (int i = 0; i < p.nseq; ++i) {
      for (int j = i + 1; j < p.nseq; ++j) {
        if (scores[pair_index(p.nseq, i, j)] != pair_score(seqs[i], seqs[j], p)) {
          return false;
        }
      }
    }
    return true;
  }
  core::Xoshiro256 rng(0x5EEDu);
  for (int s = 0; s < 64; ++s) {
    const int i = static_cast<int>(rng.next_below(p.nseq - 1));
    const int j =
        i + 1 + static_cast<int>(rng.next_below(p.nseq - 1 - i));
    if (scores[pair_index(p.nseq, i, j)] != pair_score(seqs[i], seqs[j], p)) {
      return false;
    }
  }
  return true;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  const std::vector<Sequence> seqs = make_input(p);
  std::vector<int> scores(pair_count(p.nseq));
  prof::CountingProf::reset();
  core::Timer timer;
  for (int i = 0; i < p.nseq; ++i) {
    for (int j = i + 1; j < p.nseq; ++j) {
      // Captured environment: the pair's indices and destination (the
      // sequences themselves stay shared) — Table II reports 16 bytes.
      prof::CountingProf::task(16);
      scores[pair_index(p.nseq, i, j)] = score_pair<prof::CountingProf>(
          seqs[i], seqs[j], p.gap_open, p.gap_extend);
      prof::CountingProf::write_shared(1);  // the result score
    }
  }
  const double secs = timer.seconds();
  if (!verify(p, seqs, scores)) {
    throw std::logic_error("alignment profile run mis-verified");
  }
  std::uint64_t mem = scores.size() * sizeof(int);
  for (const auto& s : seqs) mem += s.size();
  mem += 2ull * static_cast<std::uint64_t>(p.len_max) * sizeof(int) * 4;
  return prof::make_row("alignment", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "alignment";
  app.origin = "AKM";
  app.domain = "Dynamic programming";
  app.structure = "Iterative";
  app.task_directives = 1;
  app.tasks_inside = "for";
  app.nested_tasks = false;
  app.app_cutoff = "none";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::multiple_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::multiple_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("alignment");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("alignment: unknown version " + version);
    }
    const Params p = params_for(ic);
    const std::vector<Sequence> seqs = make_input(p);
    std::vector<int> scores;
    VersionOpts opts{v->tied};
    return core::run_and_report(
        "alignment", version, ic, sched, verify_run,
        [&] { scores = run_parallel(p, seqs, sched, opts); },
        [&] { return verify(p, seqs, scores); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    const std::vector<Sequence> seqs = make_input(p);
    std::vector<int> scores;
    return core::run_serial_and_report(
        "alignment", ic, true, [&] { scores = run_serial(p, seqs); },
        [&] { return verify(p, seqs, scores); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::alignment
