// Alignment: all-pairs protein sequence alignment scoring (paper
// Section III-B; Application Kernel Matrix origin, Myers-Miller [23]).
//
// "Aligns all protein sequences from an input file against every other
// sequence ... The scoring method is a full dynamic programming algorithm.
// It uses a weight matrix to score mismatches, and assigns penalties for
// opening and extending gaps. The output is the best score for each pair."
//
// This reproduction scores with the Gotoh affine-gap global-alignment DP
// (same O(L1*L2) full-DP structure, weight matrix + open/extend penalties;
// see DESIGN.md substitution table). Parallelization matches the paper: the
// outer loop is a `for` worksharing construct and a task is created per
// pair inside it — the only iterative/for-generator benchmark in the suite.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::alignment {

struct Params {
  int nseq = 16;            ///< number of protein sequences
  int len_min = 80;         ///< sequence length range
  int len_max = 120;
  int gap_open = 10;        ///< affine gap penalties (positive costs)
  int gap_extend = 1;
  std::uint64_t seed = 0xA115u;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Residues are 0..19 (the 20-letter amino-acid alphabet).
using Sequence = std::vector<std::uint8_t>;

[[nodiscard]] std::vector<Sequence> make_input(const Params& p);

/// Symmetric 20x20 substitution weight matrix (BLOSUM-like shape:
/// positive diagonal, mostly negative off-diagonal; deterministic).
[[nodiscard]] const std::array<std::array<int, 20>, 20>& weight_matrix();

/// Pairwise score of two sequences (Gotoh affine-gap global alignment).
[[nodiscard]] int pair_score(const Sequence& a, const Sequence& b,
                             const Params& p);

/// Best score for every pair (i < j), flattened in row-major pair order.
[[nodiscard]] std::vector<int> run_serial(const Params& p,
                                          const std::vector<Sequence>& seqs);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
};

[[nodiscard]] std::vector<int> run_parallel(const Params& p,
                                            const std::vector<Sequence>& seqs,
                                            rt::Scheduler& sched,
                                            const VersionOpts& opts);

/// Verification: exact score equality on a deterministic random subset of
/// pairs recomputed serially (full compare for test/small sizes).
[[nodiscard]] bool verify(const Params& p, const std::vector<Sequence>& seqs,
                          const std::vector<int>& scores);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::alignment
