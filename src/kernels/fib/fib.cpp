#include "kernels/fib/fib.hpp"

#include <stdexcept>

#include "core/kernel_glue.hpp"

namespace bots::fib {

namespace {

/// Serial recursion, instrumented via the Prof policy. One abstract
/// arithmetic op per addition; results return through the parent stack
/// (shared writes in the task version — the paper notes "in Fib all shared
/// access are writes to the parent task stack").
template <class Prof>
std::uint64_t fib_seq(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  const std::uint64_t a = fib_seq<Prof>(n - 1);
  const std::uint64_t b = fib_seq<Prof>(n - 2);
  Prof::ops(1);
  return a + b;
}

/// Profiled *potential-task* walk: in the paper's methodology every task
/// construct encountered in the serial profiled run counts as a potential
/// task, with its captured environment and the taskwait per node.
template <class Prof>
std::uint64_t fib_seq_tasksites(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  Prof::task(sizeof(int) + sizeof(std::uint64_t*));  // n + result location
  const std::uint64_t a = fib_seq_tasksites<Prof>(n - 1);
  Prof::task(sizeof(int) + sizeof(std::uint64_t*));
  const std::uint64_t b = fib_seq_tasksites<Prof>(n - 2);
  Prof::taskwait();
  Prof::ops(1);
  Prof::write_shared(2);  // both children write their result to the parent
  return a + b;
}

struct TaskBody {
  const VersionOpts* opts;
  int cutoff_depth;

  std::uint64_t run(int n, int depth) const {
    if (n < 2) return static_cast<std::uint64_t>(n);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    switch (opts->cutoff) {
      case core::AppCutoff::none:
        rt::spawn(opts->tied, [this, n, &a, depth] { a = run(n - 1, depth + 1); });
        rt::spawn(opts->tied, [this, n, &b, depth] { b = run(n - 2, depth + 1); });
        rt::taskwait();
        break;
      case core::AppCutoff::if_clause:
        rt::spawn_if(depth < cutoff_depth, opts->tied,
                     [this, n, &a, depth] { a = run(n - 1, depth + 1); });
        rt::spawn_if(depth < cutoff_depth, opts->tied,
                     [this, n, &b, depth] { b = run(n - 2, depth + 1); });
        rt::taskwait();
        break;
      case core::AppCutoff::manual:
        if (depth < cutoff_depth) {
          rt::spawn(opts->tied, [this, n, &a, depth] { a = run(n - 1, depth + 1); });
          rt::spawn(opts->tied, [this, n, &b, depth] { b = run(n - 2, depth + 1); });
          rt::taskwait();
        } else {
          a = fib_seq<prof::NoProf>(n - 1);
          b = fib_seq<prof::NoProf>(n - 2);
        }
        break;
    }
    return a + b;
  }
};

}  // namespace

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {20, 6};
    case core::InputClass::small: return {36, 10};
    case core::InputClass::medium: return {42, 12};
    case core::InputClass::large: return {45, 13};
  }
  throw std::invalid_argument("fib: bad input class");
}

std::string describe(const Params& p) { return std::to_string(p.n); }

std::uint64_t run_serial(const Params& p) {
  return fib_seq<prof::NoProf>(p.n);
}

std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                           const VersionOpts& opts) {
  std::uint64_t result = 0;
  TaskBody body{&opts, p.cutoff_depth};
  sched.run_single([&] { result = body.run(p.n, 0); });
  return result;
}

bool verify(const Params& p, std::uint64_t result) {
  std::uint64_t a = 0;
  std::uint64_t b = 1;
  for (int i = 0; i < p.n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return result == a;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  prof::CountingProf::reset();
  core::Timer timer;
  const std::uint64_t r = fib_seq_tasksites<prof::CountingProf>(p.n);
  const double secs = timer.seconds();
  if (!verify(p, r)) throw std::logic_error("fib profile run mis-verified");
  // Memory footprint: the recursion stack only.
  const std::uint64_t mem = static_cast<std::uint64_t>(p.n) * 64;
  return prof::make_row("fib", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "fib";
  app.origin = "-";
  app.domain = "Integer";
  app.structure = "At each node";
  app.task_directives = 2;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "depth-based";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"if-tied", rt::Tiedness::tied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"if-untied", rt::Tiedness::untied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"manual-tied", rt::Tiedness::tied, core::AppCutoff::manual,
       core::Generator::single_gen, true},
      {"manual-untied", rt::Tiedness::untied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("fib");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) throw std::invalid_argument("fib: unknown version " + version);
    const Params p = params_for(ic);
    VersionOpts opts{v->tied, v->cutoff};
    std::uint64_t result = 0;
    return core::run_and_report(
        "fib", version, ic, sched, verify_run,
        [&] { result = run_parallel(p, sched, opts); },
        [&] { return verify(p, result); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    std::uint64_t result = 0;
    return core::run_serial_and_report(
        "fib", ic, true, [&] { result = run_serial(p); },
        [&] { return verify(p, result); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::fib
