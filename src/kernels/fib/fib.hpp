// Fib: nth Fibonacci number by naive recursion (paper Section III-B).
//
// "While not representative of an efficient fibonacci computation it is
// still useful because it is a simple test case of a deep tree composed of
// very fine grain tasks." Ships with depth-based cut-off versions.
#pragma once

#include <cstdint>
#include <string>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::fib {

struct Params {
  int n = 20;
  int cutoff_depth = 10;  ///< used by the manual / if-clause versions
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Serial reference (plain recursion; exponential on purpose).
[[nodiscard]] std::uint64_t run_serial(const Params& p);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::AppCutoff cutoff = core::AppCutoff::manual;
};

/// Task-parallel execution inside `sched`.
[[nodiscard]] std::uint64_t run_parallel(const Params& p, rt::Scheduler& sched,
                                         const VersionOpts& opts);

/// Known-answer check (closed-form iterative recomputation).
[[nodiscard]] bool verify(const Params& p, std::uint64_t result);

/// Table II profiled serial run.
[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::fib
