// Strassen: dense matrix multiplication by hierarchical decomposition
// (paper Section III-B; Cilk origin, algorithm of Fischer & Probert [13]).
//
// "Decomposition is done by dividing each dimension of the matrix into two
// sections of equal size. For each decomposition a task is created. To
// avoid the creation of many small tasks, we developed versions with depth
// based cut-offs."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::strassen {

struct Params {
  std::size_t n = 128;      ///< matrix dimension (power of two)
  std::size_t base = 64;    ///< conventional multiply below this size
  int cutoff_depth = 3;     ///< manual / if-clause task depth cut-off
  std::uint64_t seed = 0x57A55Eu;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Row-major n*n matrices.
[[nodiscard]] std::vector<double> make_matrix(const Params& p,
                                              std::uint64_t salt);

/// Serial Strassen reference.
[[nodiscard]] std::vector<double> run_serial(const Params& p,
                                             const std::vector<double>& a,
                                             const std::vector<double>& b);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::AppCutoff cutoff = core::AppCutoff::manual;
  bool dataflow = false;  ///< depend()-based version (no taskwait barriers)
};

[[nodiscard]] std::vector<double> run_parallel(const Params& p,
                                               const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               rt::Scheduler& sched,
                                               const VersionOpts& opts);

/// Dataflow multiply into caller-owned buffers: each decomposition level is
/// a dependence scope — the seven products `out` their scratch slots and the
/// combine task `in`s all seven and `inout`s C, replacing the taskwait at
/// every node of the recursion tree. With `graph_tag` non-null the TOP level
/// (7 products + combine) runs under rt::graph_region and replays on
/// repeated invocations; a/b/c must then outlive the tag (same tag ⇒ same
/// buffers).
void multiply_dataflow(const Params& p, const double* a, const double* b,
                       double* c, rt::Scheduler& sched, rt::Tiedness tied,
                       const char* graph_tag = nullptr);

/// Verification against a blocked conventional multiply: full element-wise
/// compare up to 512x512, random row sampling above.
[[nodiscard]] bool verify(const Params& p, const std::vector<double>& a,
                          const std::vector<double>& b,
                          const std::vector<double>& c);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::strassen
