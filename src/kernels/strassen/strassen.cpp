#include "kernels/strassen/strassen.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/dependency.hpp"
#include "runtime/taskgraph.hpp"

namespace bots::strassen {

namespace {

/// View into a row-major matrix with a leading dimension (stride), so the
/// quadrant decomposition never copies inputs.
struct View {
  const double* p;
  std::size_t ld;
  [[nodiscard]] const double* row(std::size_t i) const { return p + i * ld; }
  [[nodiscard]] View quad(std::size_t qi, std::size_t qj,
                          std::size_t half) const {
    return {p + qi * half * ld + qj * half, ld};
  }
};

struct MutView {
  double* p;
  std::size_t ld;
  [[nodiscard]] double* row(std::size_t i) const { return p + i * ld; }
  [[nodiscard]] MutView quad(std::size_t qi, std::size_t qj,
                             std::size_t half) const {
    return {p + qi * half * ld + qj * half, ld};
  }
  [[nodiscard]] View as_const() const { return {p, ld}; }
};

/// Conventional blocked multiply (ikj order), the recursion base case.
template <class Prof>
void matmul_base(View a, View b, MutView c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    Prof::write_private(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a.row(i)[k];
      const double* bk = b.row(k);
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aik * bk[j];
      }
      Prof::ops(2 * n);
      Prof::write_private(n);
    }
  }
}

template <class Prof>
void add(View x, View y, MutView out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x.row(i);
    const double* yi = y.row(i);
    double* oi = out.row(i);
    for (std::size_t j = 0; j < n; ++j) oi[j] = xi[j] + yi[j];
    Prof::ops(n);
    Prof::write_private(n);
  }
}

template <class Prof>
void sub(View x, View y, MutView out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x.row(i);
    const double* yi = y.row(i);
    double* oi = out.row(i);
    for (std::size_t j = 0; j < n; ++j) oi[j] = xi[j] - yi[j];
    Prof::ops(n);
    Prof::write_private(n);
  }
}

/// Temporaries for one recursion level: 7 products + 2 operand scratch
/// areas, each half*half, allocated contiguously per recursive call (the
/// BOTS code likewise heap-allocates per decomposition).
struct Scratch {
  explicit Scratch(std::size_t half)
      : buf(9 * half * half), h(half) {}
  [[nodiscard]] MutView m(std::size_t idx) {
    return {buf.data() + idx * h * h, h};
  }
  std::vector<double> buf;
  std::size_t h;
};

/// One Strassen step: the 7 recursive products M1..M7 and the quadrant
/// combination. `Recurse` is invoked as recurse(slot, prepare) where
/// prepare(t0, t1) builds the two operands, so the serial, profiled and task
/// versions share this body.
template <class Prof, class Recurse>
void strassen_step(View a, View b, MutView c, std::size_t n,
                   Recurse&& recurse) {
  const std::size_t half = n / 2;
  View a11 = a.quad(0, 0, half);
  View a12 = a.quad(0, 1, half);
  View a21 = a.quad(1, 0, half);
  View a22 = a.quad(1, 1, half);
  View b11 = b.quad(0, 0, half);
  View b12 = b.quad(0, 1, half);
  View b21 = b.quad(1, 0, half);
  View b22 = b.quad(1, 1, half);

  // Each product owns a private operand scratch so the seven tasks are
  // independent (no shared temporaries between siblings).
  recurse(0, [=](MutView t0, MutView t1) {  // M1=(A11+A22)(B11+B22)
    add<Prof>(a11, a22, t0, half);
    add<Prof>(b11, b22, t1, half);
    return std::pair<View, View>{t0.as_const(), t1.as_const()};
  });
  recurse(1, [=](MutView t0, MutView) {  // M2=(A21+A22)B11
    add<Prof>(a21, a22, t0, half);
    return std::pair<View, View>{t0.as_const(), b11};
  });
  recurse(2, [=](MutView, MutView t1) {  // M3=A11(B12-B22)
    sub<Prof>(b12, b22, t1, half);
    return std::pair<View, View>{a11, t1.as_const()};
  });
  recurse(3, [=](MutView, MutView t1) {  // M4=A22(B21-B11)
    sub<Prof>(b21, b11, t1, half);
    return std::pair<View, View>{a22, t1.as_const()};
  });
  recurse(4, [=](MutView t0, MutView) {  // M5=(A11+A12)B22
    add<Prof>(a11, a12, t0, half);
    return std::pair<View, View>{t0.as_const(), b22};
  });
  recurse(5, [=](MutView t0, MutView t1) {  // M6=(A21-A11)(B11+B12)
    sub<Prof>(a21, a11, t0, half);
    add<Prof>(b11, b12, t1, half);
    return std::pair<View, View>{t0.as_const(), t1.as_const()};
  });
  recurse(6, [=](MutView t0, MutView t1) {  // M7=(A12-A22)(B21+B22)
    sub<Prof>(a12, a22, t0, half);
    add<Prof>(b21, b22, t1, half);
    return std::pair<View, View>{t0.as_const(), t1.as_const()};
  });
  (void)c;
}

/// Combine M1..M7 into C.
template <class Prof>
void strassen_combine(Scratch& s, MutView c, std::size_t half) {
  View m1 = s.m(0).as_const();
  View m2 = s.m(1).as_const();
  View m3 = s.m(2).as_const();
  View m4 = s.m(3).as_const();
  View m5 = s.m(4).as_const();
  View m6 = s.m(5).as_const();
  View m7 = s.m(6).as_const();
  MutView c11 = c.quad(0, 0, half);
  MutView c12 = c.quad(0, 1, half);
  MutView c21 = c.quad(1, 0, half);
  MutView c22 = c.quad(1, 1, half);
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; j < half; ++j) {
      c11.row(i)[j] = m1.row(i)[j] + m4.row(i)[j] - m5.row(i)[j] + m7.row(i)[j];
      c12.row(i)[j] = m3.row(i)[j] + m5.row(i)[j];
      c21.row(i)[j] = m2.row(i)[j] + m4.row(i)[j];
      c22.row(i)[j] = m1.row(i)[j] - m2.row(i)[j] + m3.row(i)[j] + m6.row(i)[j];
    }
    Prof::ops(8 * half);
    Prof::write_shared(4 * half);  // writes land in the caller-visible C
  }
}

// ---------------------------------------------------------------------------
// Serial / profiled recursion.
// ---------------------------------------------------------------------------

template <class Prof>
void strassen_serial(View a, View b, MutView c, std::size_t n,
                     std::size_t base) {
  if (n <= base) {
    matmul_base<Prof>(a, b, c, n);
    return;
  }
  const std::size_t half = n / 2;
  Scratch products(half);
  // Operand scratch reused across the 7 serial products.
  std::vector<double> tbuf(2 * half * half);
  MutView t0{tbuf.data(), half};
  MutView t1{tbuf.data() + half * half, half};
  auto recurse = [&](std::size_t slot, auto&& prepare) {
    Prof::task(2 * sizeof(View) + sizeof(MutView) + sizeof(std::size_t));
    MutView dst = products.m(slot);
    auto [x, y] = prepare(t0, t1);
    strassen_serial<Prof>(x, y, dst, half, base);
  };
  strassen_step<Prof>(a, b, c, n, recurse);
  Prof::taskwait();
  strassen_combine<Prof>(products, c, half);
}

// ---------------------------------------------------------------------------
// Task-parallel recursion: one task per product (7 per decomposition).
// ---------------------------------------------------------------------------

struct TaskStrassen {
  std::size_t base;
  int cutoff_depth;
  rt::Tiedness tied;
  core::AppCutoff cutoff;

  void multiply(View a, View b, MutView c, std::size_t n, int depth) const {
    if (n <= base) {
      matmul_base<prof::NoProf>(a, b, c, n);
      return;
    }
    const std::size_t half = n / 2;
    auto products = std::make_shared<Scratch>(half);
    // Each parallel product gets its own operand scratch (independence).
    auto operands = std::make_shared<std::vector<double>>(14 * half * half);
    auto recurse = [&](std::size_t slot, auto&& prepare) {
      MutView dst = products->m(slot);
      MutView t0{operands->data() + (2 * slot) * half * half, half};
      MutView t1{operands->data() + (2 * slot + 1) * half * half, half};
      auto body = [this, prepare, dst, t0, t1, half, depth] {
        auto [x, y] = prepare(t0, t1);
        multiply(x, y, dst, half, depth + 1);
      };
      switch (cutoff) {
        case core::AppCutoff::none:
          rt::spawn(tied, body);
          break;
        case core::AppCutoff::if_clause:
          rt::spawn_if(depth < cutoff_depth, tied, body);
          break;
        case core::AppCutoff::manual:
          if (depth < cutoff_depth) {
            rt::spawn(tied, body);
          } else {
            auto [x, y] = prepare(t0, t1);
            strassen_serial<prof::NoProf>(x, y, dst, half, base);
          }
          break;
      }
    };
    strassen_step<prof::NoProf>(a, b, c, n, recurse);
    rt::taskwait();
    strassen_combine<prof::NoProf>(*products, c, half);
  }
};

// ---------------------------------------------------------------------------
// Dataflow recursion: per decomposition level, the 7 products `out` their
// scratch slot and one combine task `in`s all seven + `inout`s C — true
// edges instead of the taskwait. Bodies capture everything BY VALUE (plus
// shared_ptr-owned scratch): in record mode the copies stored in the graph
// must stay invocable at replay, long after this stack frame is gone.
// ---------------------------------------------------------------------------

void dataflow_multiply(std::size_t base, rt::Tiedness tied, View a, View b,
                       MutView c, std::size_t n, rt::DepScope& sc) {
  if (n <= base) {
    // Even the degenerate case must be a TASK: in record mode, work done
    // directly by the generator would run at record and never at replay.
    sc.spawn(tied, {rt::inout(c.p)},
             [a, b, c, n] { matmul_base<prof::NoProf>(a, b, c, n); });
    return;
  }
  const std::size_t half = n / 2;
  auto products = std::make_shared<Scratch>(half);
  auto operands = std::make_shared<std::vector<double>>(14 * half * half);
  auto recurse = [&](std::size_t slot, auto&& prepare) {
    MutView dst = products->m(slot);
    MutView t0{operands->data() + (2 * slot) * half * half, half};
    MutView t1{operands->data() + (2 * slot + 1) * half * half, half};
    sc.spawn(tied, {rt::out(dst.p)},
             [base, tied, products, operands, prepare, dst, t0, t1, half] {
               auto [x, y] = prepare(t0, t1);
               if (half <= base) {
                 matmul_base<prof::NoProf>(x, y, dst, half);
                 return;
               }
               // Nested levels are dependence scopes of their own (never
               // recorded: only the top level freezes into a graph).
               rt::DepScope inner;
               dataflow_multiply(base, tied, x, y, dst, half, inner);
               inner.wait();
             });
  };
  strassen_step<prof::NoProf>(a, b, c, n, recurse);
  sc.spawn(tied,
           {rt::in(products->m(0).p), rt::in(products->m(1).p),
            rt::in(products->m(2).p), rt::in(products->m(3).p),
            rt::in(products->m(4).p), rt::in(products->m(5).p),
            rt::in(products->m(6).p), rt::inout(c.p)},
           [products, c, half] {
             strassen_combine<prof::NoProf>(*products, c, half);
           });
}

}  // namespace

void multiply_dataflow(const Params& p, const double* a, const double* b,
                       double* c, rt::Scheduler& sched, rt::Tiedness tied,
                       const char* graph_tag) {
  const View av{a, p.n};
  const View bv{b, p.n};
  const MutView cv{c, p.n};
  sched.run_single([&] {
    auto build = [&](rt::DepScope& sc) {
      dataflow_multiply(p.base, tied, av, bv, cv, p.n, sc);
    };
    if (graph_tag != nullptr) {
      rt::graph_region(graph_tag, c, build);
    } else {
      rt::DepScope sc;
      build(sc);
      sc.wait();
    }
  });
}

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {128, 32, 2, 0x57A55Eu};
    case core::InputClass::small: return {512, 64, 3, 0x57A55Eu};
    case core::InputClass::medium: return {1024, 64, 4, 0x57A55Eu};
    case core::InputClass::large: return {2048, 64, 5, 0x57A55Eu};
  }
  throw std::invalid_argument("strassen: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.n) + "x" + std::to_string(p.n) + " matrix";
}

std::vector<double> make_matrix(const Params& p, std::uint64_t salt) {
  std::vector<double> m(p.n * p.n);
  core::Xoshiro256 rng(p.seed ^ salt);
  for (auto& v : m) v = 2.0 * rng.next_double() - 1.0;
  return m;
}

std::vector<double> run_serial(const Params& p, const std::vector<double>& a,
                               const std::vector<double>& b) {
  std::vector<double> c(p.n * p.n);
  strassen_serial<prof::NoProf>(View{a.data(), p.n}, View{b.data(), p.n},
                                MutView{c.data(), p.n}, p.n, p.base);
  return c;
}

std::vector<double> run_parallel(const Params& p, const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 rt::Scheduler& sched,
                                 const VersionOpts& opts) {
  std::vector<double> c(p.n * p.n);
  if (opts.dataflow) {
    multiply_dataflow(p, a.data(), b.data(), c.data(), sched, opts.tied);
    return c;
  }
  TaskStrassen ts{p.base, p.cutoff_depth, opts.tied, opts.cutoff};
  sched.run_single([&] {
    ts.multiply(View{a.data(), p.n}, View{b.data(), p.n},
                MutView{c.data(), p.n}, p.n, 0);
  });
  return c;
}

bool verify(const Params& p, const std::vector<double>& a,
            const std::vector<double>& b, const std::vector<double>& c) {
  const std::size_t n = p.n;
  if (c.size() != n * n) return false;
  // Error tolerance: Strassen is less numerically stable than conventional
  // multiplication; bound grows with n.
  const double tol = 1e-9 * static_cast<double>(n) * 16.0;
  auto check_row = [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      if (std::abs(acc - c[i * n + j]) > tol) return false;
    }
    return true;
  };
  if (n <= 512) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!check_row(i)) return false;
    }
    return true;
  }
  core::Xoshiro256 rng(0xC0FFEEu);
  for (int s = 0; s < 32; ++s) {
    if (!check_row(rng.next_below(n))) return false;
  }
  return true;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  const std::vector<double> a = make_matrix(p, 1);
  const std::vector<double> b = make_matrix(p, 2);
  std::vector<double> out(p.n * p.n);
  prof::CountingProf::reset();
  core::Timer timer;
  strassen_serial<prof::CountingProf>(View{a.data(), p.n}, View{b.data(), p.n},
                                      MutView{out.data(), p.n}, p.n, p.base);
  const double secs = timer.seconds();
  if (!verify(p, a, b, out)) {
    throw std::logic_error("strassen profile run mis-verified");
  }
  const std::uint64_t mem = 3ull * p.n * p.n * sizeof(double);
  return prof::make_row("strassen", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "strassen";
  app.origin = "Cilk";
  app.domain = "Dense linear algebra";
  app.structure = "At each node";
  app.task_directives = 8;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "depth-based";
  app.versions = {
      {"nocutoff-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, true},
      {"nocutoff-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"if-tied", rt::Tiedness::tied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"if-untied", rt::Tiedness::untied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"manual-tied", rt::Tiedness::tied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
      {"manual-untied", rt::Tiedness::untied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
      {"dataflow-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"dataflow-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("strassen");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("strassen: unknown version " + version);
    }
    const Params p = params_for(ic);
    const std::vector<double> a = make_matrix(p, 1);
    const std::vector<double> b = make_matrix(p, 2);
    std::vector<double> out;
    VersionOpts opts{v->tied, v->cutoff, version.rfind("dataflow", 0) == 0};
    return core::run_and_report(
        "strassen", version, ic, sched, verify_run,
        [&] { out = run_parallel(p, a, b, sched, opts); },
        [&] { return verify(p, a, b, out); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    const std::vector<double> a = make_matrix(p, 1);
    const std::vector<double> b = make_matrix(p, 2);
    std::vector<double> out;
    return core::run_serial_and_report(
        "strassen", ic, true, [&] { out = run_serial(p, a, b); },
        [&] { return verify(p, a, b, out); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::strassen
