#include "kernels/sort/sort.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worksharing.hpp"

namespace bots::sort {

namespace {

// The cilksort family works on inclusive [low, high] pointer ranges, as in
// the original Cilk code the BOTS benchmark ports.

template <class Prof>
Elm med3(Elm a, Elm b, Elm c) {
  Prof::ops(2);
  if (a < b) {
    if (b < c) return b;
    Prof::ops(1);
    return a < c ? c : a;
  }
  if (b > c) return b;
  Prof::ops(1);
  return a > c ? c : a;
}

template <class Prof>
void insertion_sort(Elm* low, Elm* high) {
  for (Elm* q = low + 1; q <= high; ++q) {
    const Elm qv = *q;
    Elm* p = q - 1;
    while (p >= low && *p > qv) {
      Prof::ops(1);
      p[1] = p[0];
      Prof::write_private(1);
      --p;
    }
    p[1] = qv;
    Prof::write_private(1);
  }
}

template <class Prof>
Elm* seqpart(Elm* low, Elm* high) {
  const Elm pivot = med3<Prof>(*low, *(low + (high - low) / 2), *high);
  Elm* curr_low = low;
  Elm* curr_high = high;
  for (;;) {
    Elm h;
    Elm l;
    while ((h = *curr_high) > pivot) {
      Prof::ops(1);
      --curr_high;
    }
    while ((l = *curr_low) < pivot) {
      Prof::ops(1);
      ++curr_low;
    }
    if (curr_low >= curr_high) break;
    *curr_high-- = l;
    *curr_low++ = h;
    Prof::write_private(2);
  }
  return curr_high < high ? curr_high : curr_high - 1;
}

template <class Prof>
void seqquick(Elm* low, Elm* high, std::ptrdiff_t insertion_threshold) {
  while (high - low >= insertion_threshold) {
    Elm* p = seqpart<Prof>(low, high);
    seqquick<Prof>(low, p, insertion_threshold);
    low = p + 1;
  }
  insertion_sort<Prof>(low, high);
}

template <class Prof>
void seqmerge(const Elm* low1, const Elm* high1, const Elm* low2,
              const Elm* high2, Elm* lowdest) {
  while (low1 <= high1 && low2 <= high2) {
    Prof::ops(1);
    if (*low1 <= *low2) {
      *lowdest++ = *low1++;
    } else {
      *lowdest++ = *low2++;
    }
    Prof::write_shared(1);
  }
  while (low1 <= high1) {
    *lowdest++ = *low1++;
    Prof::write_shared(1);
  }
  while (low2 <= high2) {
    *lowdest++ = *low2++;
    Prof::write_shared(1);
  }
}

/// Largest position in [low, high] whose element is <= val; low - 1 when
/// val precedes everything.
template <class Prof>
Elm* binsplit(Elm val, Elm* low, Elm* high) {
  while (low != high) {
    Elm* mid = low + ((high - low + 1) / 2);
    Prof::ops(1);
    if (val <= *mid) {
      high = mid - 1;
    } else {
      low = mid;
    }
  }
  return *low > val ? low - 1 : low;
}

struct Thresholds {
  std::ptrdiff_t quick;
  std::ptrdiff_t merge;
  std::ptrdiff_t insertion;
};

// ---------------------------------------------------------------------------
// Serial (and profiled-serial) recursion. The Prof hooks also mark every
// task-creation site so the profiled serial run counts potential tasks the
// way the paper's instrumented compiler did.
// ---------------------------------------------------------------------------

template <class Prof>
void merge_serial(Elm* low1, Elm* high1, Elm* low2, Elm* high2, Elm* lowdest,
                  const Thresholds& th) {
  if (high2 - low2 > high1 - low1) {
    std::swap(low1, low2);
    std::swap(high1, high2);
  }
  if (high2 < low2) {
    std::memcpy(lowdest, low1,
                static_cast<std::size_t>(high1 - low1 + 1) * sizeof(Elm));
    Prof::write_shared(static_cast<std::uint64_t>(high1 - low1 + 1));
    return;
  }
  if ((high2 - low2) + (high1 - low1) + 2 <= th.merge) {
    seqmerge<Prof>(low1, high1, low2, high2, lowdest);
    return;
  }
  Elm* split1 = low1 + (high1 - low1 + 1) / 2;
  Elm* split2 = binsplit<Prof>(*split1, low2, high2);
  const std::ptrdiff_t lowsize = (split1 - low1) + (split2 - low2);
  *(lowdest + lowsize + 1) = *split1;
  Prof::write_shared(1);
  Prof::task(5 * sizeof(Elm*));
  merge_serial<Prof>(low1, split1 - 1, low2, split2, lowdest, th);
  Prof::task(5 * sizeof(Elm*));
  merge_serial<Prof>(split1 + 1, high1, split2 + 1, high2,
                     lowdest + lowsize + 2, th);
  Prof::taskwait();
}

template <class Prof>
void sort_serial(Elm* low, Elm* tmp, std::ptrdiff_t size,
                 const Thresholds& th) {
  if (size < th.quick) {
    seqquick<Prof>(low, low + size - 1, th.insertion);
    return;
  }
  const std::ptrdiff_t quarter = size / 4;
  Elm* a = low;
  Elm* tmp_a = tmp;
  Elm* b = a + quarter;
  Elm* tmp_b = tmp_a + quarter;
  Elm* c = b + quarter;
  Elm* tmp_c = tmp_b + quarter;
  Elm* d = c + quarter;
  Elm* tmp_d = tmp_c + quarter;
  Prof::task(3 * sizeof(Elm*));
  sort_serial<Prof>(a, tmp_a, quarter, th);
  Prof::task(3 * sizeof(Elm*));
  sort_serial<Prof>(b, tmp_b, quarter, th);
  Prof::task(3 * sizeof(Elm*));
  sort_serial<Prof>(c, tmp_c, quarter, th);
  Prof::task(3 * sizeof(Elm*));
  sort_serial<Prof>(d, tmp_d, size - 3 * quarter, th);
  Prof::taskwait();
  Prof::task(5 * sizeof(Elm*));
  merge_serial<Prof>(a, a + quarter - 1, b, b + quarter - 1, tmp_a, th);
  Prof::task(5 * sizeof(Elm*));
  merge_serial<Prof>(c, c + quarter - 1, d, low + size - 1, tmp_c, th);
  Prof::taskwait();
  merge_serial<Prof>(tmp_a, tmp_c - 1, tmp_c, tmp + size - 1, a, th);
}

// ---------------------------------------------------------------------------
// Task-parallel recursion (tasks at splits and merges, Table I "At leafs").
// ---------------------------------------------------------------------------

struct TaskSort {
  Thresholds th;
  rt::Tiedness tied;
  /// SchedulerConfig::use_range_tasks: run each merge phase as ONE
  /// splittable range over merge-threshold-sized chunks of the
  /// destination (co-ranking locates each chunk's input subranges), so an
  /// uncontended merge costs one descriptor and halves split off only
  /// under thief demand. Off: the binsplit divide-and-conquer recursion
  /// below generates ~2 tasks per threshold chunk (the A/B baseline).
  bool use_range;

  /// Co-rank: how many elements of a[0..n1) precede output position k of
  /// the merged sequence, with a-before-b on ties — the same tie rule as
  /// seqmerge (*low1 <= *low2 takes from the first array), so chunked
  /// merges produce byte-identical output.
  static std::ptrdiff_t corank(std::ptrdiff_t k, const Elm* a,
                               std::ptrdiff_t n1, const Elm* b,
                               std::ptrdiff_t n2) {
    std::ptrdiff_t ilo = k - n2 > 0 ? k - n2 : 0;
    std::ptrdiff_t ihi = k < n1 ? k : n1;
    for (;;) {
      const std::ptrdiff_t i = ilo + (ihi - ilo) / 2;
      const std::ptrdiff_t j = k - i;
      if (i > 0 && j < n2 && a[i - 1] > b[j]) {
        ihi = i - 1;  // took an a element that belongs after b[j]
      } else if (j > 0 && i < n1 && b[j - 1] >= a[i]) {
        ilo = i + 1;  // a[i] precedes the last taken b (ties take a first)
      } else {
        return i;
      }
    }
  }

  /// Range-task merge: one splittable range over ceil(total/chunk) output
  /// chunks; each iteration co-ranks its chunk's boundaries and seqmerges
  /// the two input subranges straight into place.
  void merge_range(const Elm* a, std::ptrdiff_t n1, const Elm* b,
                   std::ptrdiff_t n2, Elm* dest) const {
    const std::ptrdiff_t total = n1 + n2;
    const std::ptrdiff_t chunk = th.merge > 1 ? th.merge : 1;
    const std::ptrdiff_t nchunks = (total + chunk - 1) / chunk;
    // Chunk-granular heavy iterations: a dedicated site keeps the merge
    // grain independent of cheap-iteration ranges (grain.hpp).
    constexpr rt::RangeSite kMergeSite{"sort/merge"};
    rt::spawn_range(
        kMergeSite, tied, 0, nchunks, 1,
        [a, n1, b, n2, dest, chunk, total](std::int64_t c) {
          const std::ptrdiff_t k0 = c * chunk;
          const std::ptrdiff_t k1 = k0 + chunk < total ? k0 + chunk : total;
          const std::ptrdiff_t i0 = corank(k0, a, n1, b, n2);
          const std::ptrdiff_t i1 = corank(k1, a, n1, b, n2);
          const std::ptrdiff_t j0 = k0 - i0;
          const std::ptrdiff_t j1 = k1 - i1;
          // An empty subrange is a straight copy; it also keeps seqmerge's
          // inclusive bounds from forming a pointer before the array.
          if (i1 == i0) {
            std::memcpy(dest + k0, b + j0,
                        static_cast<std::size_t>(j1 - j0) * sizeof(Elm));
          } else if (j1 == j0) {
            std::memcpy(dest + k0, a + i0,
                        static_cast<std::size_t>(i1 - i0) * sizeof(Elm));
          } else {
            seqmerge<prof::NoProf>(a + i0, a + i1 - 1, b + j0, b + j1 - 1,
                                   dest + k0);
          }
        });
    rt::taskwait();
  }

  void merge(Elm* low1, Elm* high1, Elm* low2, Elm* high2,
             Elm* lowdest) const {
    if (high2 - low2 > high1 - low1) {
      std::swap(low1, low2);
      std::swap(high1, high2);
    }
    if (high2 < low2) {
      std::memcpy(lowdest, low1,
                  static_cast<std::size_t>(high1 - low1 + 1) * sizeof(Elm));
      return;
    }
    if ((high2 - low2) + (high1 - low1) + 2 <= th.merge) {
      seqmerge<prof::NoProf>(low1, high1, low2, high2, lowdest);
      return;
    }
    if (use_range) {
      merge_range(low1, high1 - low1 + 1, low2, high2 - low2 + 1, lowdest);
      return;
    }
    Elm* split1 = low1 + (high1 - low1 + 1) / 2;
    Elm* split2 = binsplit<prof::NoProf>(*split1, low2, high2);
    const std::ptrdiff_t lowsize = (split1 - low1) + (split2 - low2);
    *(lowdest + lowsize + 1) = *split1;
    rt::spawn(tied, [this, low1, split1, low2, split2, lowdest] {
      merge(low1, split1 - 1, low2, split2, lowdest);
    });
    rt::spawn(tied, [this, split1, high1, split2, high2, lowdest, lowsize] {
      merge(split1 + 1, high1, split2 + 1, high2, lowdest + lowsize + 2);
    });
    rt::taskwait();
  }

  void sort(Elm* low, Elm* tmp, std::ptrdiff_t size) const {
    if (size < th.quick) {
      seqquick<prof::NoProf>(low, low + size - 1, th.insertion);
      return;
    }
    const std::ptrdiff_t quarter = size / 4;
    Elm* a = low;
    Elm* tmp_a = tmp;
    Elm* b = a + quarter;
    Elm* tmp_b = tmp_a + quarter;
    Elm* c = b + quarter;
    Elm* tmp_c = tmp_b + quarter;
    Elm* d = c + quarter;
    Elm* tmp_d = tmp_c + quarter;
    rt::spawn(tied, [this, a, tmp_a, quarter] { sort(a, tmp_a, quarter); });
    rt::spawn(tied, [this, b, tmp_b, quarter] { sort(b, tmp_b, quarter); });
    rt::spawn(tied, [this, c, tmp_c, quarter] { sort(c, tmp_c, quarter); });
    rt::spawn(tied, [this, d, tmp_d, size, quarter] {
      sort(d, tmp_d, size - 3 * quarter);
    });
    rt::taskwait();
    rt::spawn(tied, [this, a, b, quarter, tmp_a] {
      merge(a, a + quarter - 1, b, b + quarter - 1, tmp_a);
    });
    rt::spawn(tied, [this, c, d, low, size, quarter, tmp_c] {
      merge(c, c + quarter - 1, d, low + size - 1, tmp_c);
    });
    rt::taskwait();
    merge(tmp_a, tmp_c - 1, tmp_c, tmp + size - 1, a);
  }
};

}  // namespace

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {std::size_t{1} << 15, 0xB075u};
    case core::InputClass::small: return {std::size_t{1} << 22, 0xB075u};
    case core::InputClass::medium: return {std::size_t{1} << 24, 0xB075u};
    case core::InputClass::large: return {std::size_t{1} << 25, 0xB075u};
  }
  throw std::invalid_argument("sort: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.n) + " integers";
}

std::vector<Elm> make_input(const Params& p) {
  // A random permutation of 0..n-1 (the paper sorts "a random permutation
  // of n 32-bit numbers"): Fisher-Yates over the identity.
  std::vector<Elm> v(p.n);
  for (std::size_t i = 0; i < p.n; ++i) v[i] = static_cast<Elm>(i);
  core::Xoshiro256 rng(p.seed);
  for (std::size_t i = p.n - 1; i > 0; --i) {
    const std::size_t j = rng.next_below(i + 1);
    std::swap(v[i], v[j]);
  }
  return v;
}

void run_serial(const Params& p, std::vector<Elm>& data) {
  std::vector<Elm> tmp(data.size());
  const Thresholds th{static_cast<std::ptrdiff_t>(p.quick_threshold),
                      static_cast<std::ptrdiff_t>(p.merge_threshold),
                      static_cast<std::ptrdiff_t>(p.insertion_threshold)};
  sort_serial<prof::NoProf>(data.data(), tmp.data(),
                            static_cast<std::ptrdiff_t>(data.size()), th);
}

void run_parallel(const Params& p, std::vector<Elm>& data,
                  rt::Scheduler& sched, const VersionOpts& opts) {
  std::vector<Elm> tmp(data.size());
  TaskSort ts{{static_cast<std::ptrdiff_t>(p.quick_threshold),
               static_cast<std::ptrdiff_t>(p.merge_threshold),
               static_cast<std::ptrdiff_t>(p.insertion_threshold)},
              opts.tied,
              sched.config().use_range_tasks};
  sched.run_single([&] {
    ts.sort(data.data(), tmp.data(), static_cast<std::ptrdiff_t>(data.size()));
  });
}

bool verify(const Params& p, const std::vector<Elm>& sorted) {
  if (sorted.size() != p.n) return false;
  if (!std::is_sorted(sorted.begin(), sorted.end())) return false;
  // The input was a permutation of 0..n-1, so sorted[i] must equal i.
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<Elm>(i)) return false;
  }
  return true;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  std::vector<Elm> data = make_input(p);
  std::vector<Elm> tmp(data.size());
  const Thresholds th{static_cast<std::ptrdiff_t>(p.quick_threshold),
                      static_cast<std::ptrdiff_t>(p.merge_threshold),
                      static_cast<std::ptrdiff_t>(p.insertion_threshold)};
  prof::CountingProf::reset();
  core::Timer timer;
  sort_serial<prof::CountingProf>(data.data(), tmp.data(),
                                  static_cast<std::ptrdiff_t>(data.size()), th);
  const double secs = timer.seconds();
  if (!verify(p, data)) throw std::logic_error("sort profile run mis-verified");
  const std::uint64_t mem = 2ull * p.n * sizeof(Elm);
  return prof::make_row("sort", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "sort";
  app.origin = "Cilk";
  app.domain = "Integer sorting";
  app.structure = "At leafs";
  app.task_directives = 9;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "none";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("sort");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) throw std::invalid_argument("sort: unknown version " + version);
    const Params p = params_for(ic);
    std::vector<Elm> data = make_input(p);
    VersionOpts opts{v->tied};
    return core::run_and_report(
        "sort", version, ic, sched, verify_run,
        [&] { run_parallel(p, data, sched, opts); },
        [&] { return verify(p, data); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    std::vector<Elm> data = make_input(p);
    return core::run_serial_and_report(
        "sort", ic, true, [&] { run_serial(p, data); },
        [&] { return verify(p, data); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::sort
