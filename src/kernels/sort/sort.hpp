// Sort: cilksort — parallel mergesort whose merge is itself divide-and-
// conquer (paper Section III-B; Akl & Santoro [26] via the Cilk suite).
//
// "First, it divides an array of elements in two halves, sorting each half
// recursively, and then merging the sorted halves with a parallel divide-
// and-conquer method rather than the conventional serial merge. Tasks are
// used for each split and merge. When the array is too small, a serial
// quicksort is used to increase task granularity" with insertion sort below
// 20 elements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::sort {

using Elm = std::uint32_t;

struct Params {
  std::size_t n = 1u << 15;
  std::uint64_t seed = 0xB075u;
  std::size_t quick_threshold = 2048;      ///< below: serial quicksort
  std::size_t merge_threshold = 2048;      ///< below: serial merge
  std::size_t insertion_threshold = 20;    ///< below: insertion sort
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Deterministic random permutation input.
[[nodiscard]] std::vector<Elm> make_input(const Params& p);

/// Serial cilksort (same recursion without tasks).
void run_serial(const Params& p, std::vector<Elm>& data);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
};

void run_parallel(const Params& p, std::vector<Elm>& data,
                  rt::Scheduler& sched, const VersionOpts& opts);

/// Sortedness + multiset-preservation check against the generator.
[[nodiscard]] bool verify(const Params& p, const std::vector<Elm>& sorted);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::sort
