// Floorplan: optimal floorplan of a set of cells by branch-and-bound search
// (paper Section III-B; Application Kernel Matrix origin).
//
// "The algorithm gets an input file with cell's description and it returns
// the minimum area size which includes all cells. This minimum area is
// found through a recursive branch and bound search. We hierarchically
// generate tasks for each branch of the solution space. The state of the
// algorithm needs to be copied into each newly created task."
//
// The pruning bound is the best area found so far — a shared, racy-by-design
// quantity that makes the search indeterministic in how many nodes it
// visits. The paper's device, reproduced here: every node costs roughly the
// same, so the suite reports *nodes visited per second* and computes
// speed-ups on that metric rather than on wall-clock time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::floorplan {

inline constexpr int board_dim = 64;  ///< placement grid (as in BOTS)

/// One cell: a set of alternative shapes (all factor pairs of its area,
/// mirroring BOTS cells whose alternatives are rotations/aspect variants).
struct Cell {
  std::vector<std::pair<int, int>> shapes;  ///< (width, height) alternatives
  int area = 0;
};

struct Params {
  int ncells = 8;
  int cutoff_depth = 4;  ///< cells placed by task recursion before serial
  std::uint64_t seed = 0xF100Bu;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

[[nodiscard]] std::vector<Cell> make_input(const Params& p);

struct Result {
  int best_area = 0;            ///< minimal bounding-box area
  std::uint64_t nodes = 0;      ///< placement nodes visited (the paper metric)
};

[[nodiscard]] Result run_serial(const Params& p, const std::vector<Cell>& cells);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::AppCutoff cutoff = core::AppCutoff::manual;
};

[[nodiscard]] Result run_parallel(const Params& p,
                                  const std::vector<Cell>& cells,
                                  rt::Scheduler& sched,
                                  const VersionOpts& opts);

/// The optimum is schedule-independent even though the node count is not:
/// verification compares the parallel best area against the serial one.
[[nodiscard]] bool verify(const Params& p, const std::vector<Cell>& cells,
                          const Result& result);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::floorplan
