#include "kernels/floorplan/floorplan.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/worker_local.hpp"

namespace bots::floorplan {

namespace {

constexpr int max_cells = 24;

/// Search state copied into every child task (the paper's point about
/// Floorplan: a large captured environment, ~5 KB per task, which forces
/// the runtime's out-of-line environment path).
struct State {
  std::array<std::int8_t, board_dim * board_dim> board{};  ///< 0 = free
  std::array<std::int8_t, max_cells> px{}, py{}, pw{}, ph{};  ///< placements
  int foot_w = 0;  ///< current footprint (bounding box of placed cells)
  int foot_h = 0;
};

[[nodiscard]] bool region_free(const State& st, int x, int y, int w, int h) {
  for (int j = y; j < y + h; ++j) {
    for (int i = x; i < x + w; ++i) {
      if (st.board[j * board_dim + i] != 0) return false;
    }
  }
  return true;
}

void lay_down(State& st, int idx, int x, int y, int w, int h) {
  for (int j = y; j < y + h; ++j) {
    for (int i = x; i < x + w; ++i) {
      st.board[j * board_dim + i] = static_cast<std::int8_t>(idx + 1);
    }
  }
  st.px[idx] = static_cast<std::int8_t>(x);
  st.py[idx] = static_cast<std::int8_t>(y);
  st.pw[idx] = static_cast<std::int8_t>(w);
  st.ph[idx] = static_cast<std::int8_t>(h);
  if (x + w > st.foot_w) st.foot_w = x + w;
  if (y + h > st.foot_h) st.foot_h = y + h;
}

/// Candidate coordinates: the origin plus the right/bottom edges of every
/// placed cell — the corner positions the BOTS `starts()` routine derives
/// from already-placed cells. This keeps branching O(idx^2) per shape.
struct Candidates {
  std::array<std::int8_t, max_cells + 1> xs{}, ys{};
  int nx = 0, ny = 0;
};

[[nodiscard]] Candidates candidate_coords(const State& st, int idx) {
  Candidates c;
  c.xs[c.nx++] = 0;
  c.ys[c.ny++] = 0;
  for (int k = 0; k < idx; ++k) {
    const int xe = st.px[k] + st.pw[k];
    const int ye = st.py[k] + st.ph[k];
    if (std::find(c.xs.begin(), c.xs.begin() + c.nx,
                  static_cast<std::int8_t>(xe)) == c.xs.begin() + c.nx) {
      c.xs[c.nx++] = static_cast<std::int8_t>(xe);
    }
    if (std::find(c.ys.begin(), c.ys.begin() + c.ny,
                  static_cast<std::int8_t>(ye)) == c.ys.begin() + c.ny) {
      c.ys[c.ny++] = static_cast<std::int8_t>(ye);
    }
  }
  return c;
}

/// Enumerate the candidate placements of cell `idx` that pass the area
/// bound. Visit receives (x, y, w, h, new_area).
template <class Prof, class Visit>
void for_each_placement(const State& st, const Cell& cell, int idx, int bound,
                        Visit&& visit) {
  const Candidates cand = candidate_coords(st, idx);
  for (const auto& [w, h] : cell.shapes) {
    for (int yi = 0; yi < cand.ny; ++yi) {
      const int y = cand.ys[yi];
      if (y + h > board_dim) continue;
      for (int xi = 0; xi < cand.nx; ++xi) {
        const int x = cand.xs[xi];
        if (x + w > board_dim) continue;
        const int new_w = x + w > st.foot_w ? x + w : st.foot_w;
        const int new_h = y + h > st.foot_h ? y + h : st.foot_h;
        const int new_area = new_w * new_h;
        Prof::ops(6);
        if (new_area >= bound) continue;  // branch-and-bound pruning
        if (!region_free(st, x, y, w, h)) continue;
        visit(x, y, w, h, new_area);
      }
    }
  }
}

/// Greedy first fit: seeds the branch-and-bound with a valid upper bound so
/// the initial search is pruned from the start (deterministic, so serial
/// and parallel runs search the same bounded space initially).
[[nodiscard]] int greedy_bound(const std::vector<Cell>& cells) {
  State st;
  const int n = static_cast<int>(cells.size());
  for (int idx = 0; idx < n; ++idx) {
    int best_x = -1, best_y = 0, best_w = 0, best_h = 0;
    int best_area = board_dim * board_dim + 1;
    for_each_placement<prof::NoProf>(
        st, cells[idx], idx, best_area,
        [&](int x, int y, int w, int h, int new_area) {
          if (new_area < best_area) {
            best_area = new_area;
            best_x = x;
            best_y = y;
            best_w = w;
            best_h = h;
          }
        });
    if (best_x < 0) return board_dim * board_dim;  // should not happen
    lay_down(st, idx, best_x, best_y, best_w, best_h);
  }
  return st.foot_w * st.foot_h + 1;  // +1: the greedy plan itself must be findable
}

// ---------------------------------------------------------------------------
// Serial / profiled search. The profiled version copies the state per node
// (as every parallel version does) so per-node cost and captured-environment
// size match what the task versions pay.
// ---------------------------------------------------------------------------

template <class Prof>
void place_serial(const std::vector<Cell>& cells, const State& st, int idx,
                  int& best, std::uint64_t& nodes, bool mark_task_sites) {
  const int n = static_cast<int>(cells.size());
  for_each_placement<Prof>(
      st, cells[idx], idx, best,
      [&](int x, int y, int w, int h, int new_area) {
        if (mark_task_sites) {
          Prof::task(sizeof(State) + 2 * sizeof(int));
          Prof::write_env(sizeof(State) / 8);
        }
        State child = st;  // state copied into the (potential) task
        lay_down(child, idx, x, y, w, h);
        ++nodes;
        Prof::write_private(1);
        if (idx + 1 == n) {
          if (new_area < best) best = new_area;
        } else {
          place_serial<Prof>(cells, child, idx + 1, best, nodes,
                             mark_task_sites);
        }
      });
  if (mark_task_sites) Prof::taskwait();
}

// ---------------------------------------------------------------------------
// Task-parallel search: a task per branch; shared best bound (atomic min).
// ---------------------------------------------------------------------------

struct TaskSearch {
  const std::vector<Cell>* cells;
  std::atomic<int>* best;
  rt::WorkerLocal<std::uint64_t>* nodes;
  rt::Tiedness tied;
  core::AppCutoff cutoff;
  int cutoff_depth;

  void update_best(int area) const {
    int cur = best->load(std::memory_order_relaxed);
    while (area < cur &&
           !best->compare_exchange_weak(cur, area, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    }
  }

  void place(const State& st, int idx) const {
    const int n = static_cast<int>(cells->size());
    const int bound = best->load(std::memory_order_relaxed);
    for_each_placement<prof::NoProf>(
        st, (*cells)[idx], idx, bound,
        [&](int x, int y, int w, int h, int new_area) {
          State child = st;
          lay_down(child, idx, x, y, w, h);
          ++nodes->local();
          if (idx + 1 == n) {
            update_best(new_area);
            return;
          }
          switch (cutoff) {
            case core::AppCutoff::none:
              rt::spawn(tied, [this, child, idx] { place(child, idx + 1); });
              break;
            case core::AppCutoff::if_clause:
              rt::spawn_if(idx < cutoff_depth, tied,
                           [this, child, idx] { place(child, idx + 1); });
              break;
            case core::AppCutoff::manual:
              if (idx < cutoff_depth) {
                rt::spawn(tied, [this, child, idx] { place(child, idx + 1); });
              } else {
                serial_tail(child, idx + 1);
              }
              break;
          }
        });
    rt::taskwait();
  }

  /// Below the manual cut-off: serial descent, still pruning against (and
  /// publishing into) the shared bound.
  void serial_tail(const State& st, int idx) const {
    const int n = static_cast<int>(cells->size());
    const int bound = best->load(std::memory_order_relaxed);
    for_each_placement<prof::NoProf>(
        st, (*cells)[idx], idx, bound,
        [&](int x, int y, int w, int h, int new_area) {
          State child = st;
          lay_down(child, idx, x, y, w, h);
          ++nodes->local();
          if (idx + 1 == n) {
            update_best(new_area);
          } else {
            serial_tail(child, idx + 1);
          }
        });
  }
};

}  // namespace

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {7, 3, 0xF100Bu};
    case core::InputClass::small: return {11, 3, 0xCAFEu};
    case core::InputClass::medium: return {12, 3, 0xCAFEu};
    case core::InputClass::large: return {13, 4, 0xCAFEu};
  }
  throw std::invalid_argument("floorplan: bad input class");
}

std::string describe(const Params& p) {
  return std::to_string(p.ncells) + " cells";
}

std::vector<Cell> make_input(const Params& p) {
  if (p.ncells > max_cells) {
    throw std::invalid_argument("floorplan: too many cells");
  }
  std::vector<Cell> cells(static_cast<std::size_t>(p.ncells));
  core::Xoshiro256 rng(p.seed);
  for (auto& cell : cells) {
    const int w = 2 + static_cast<int>(rng.next_below(5));  // 2..6
    const int h = 2 + static_cast<int>(rng.next_below(5));
    cell.area = w * h;
    // Alternatives: every factor pair of the area with sides in 1..8 —
    // the aspect-ratio variants BOTS cells list explicitly.
    for (int a = 1; a <= 8; ++a) {
      if (cell.area % a != 0) continue;
      const int b = cell.area / a;
      if (b < 1 || b > 8) continue;
      cell.shapes.emplace_back(a, b);
    }
  }
  // Largest cells first: the standard branch-and-bound ordering (placing
  // big cells early makes the area bound prune far more aggressively).
  std::stable_sort(cells.begin(), cells.end(),
                   [](const Cell& a, const Cell& b) { return a.area > b.area; });
  return cells;
}

Result run_serial(const Params& p, const std::vector<Cell>& cells) {
  (void)p;
  State st;
  int best = greedy_bound(cells);
  std::uint64_t nodes = 0;
  place_serial<prof::NoProf>(cells, st, 0, best, nodes, false);
  return {best, nodes};
}

Result run_parallel(const Params& p, const std::vector<Cell>& cells,
                    rt::Scheduler& sched, const VersionOpts& opts) {
  std::atomic<int> best{greedy_bound(cells)};
  rt::WorkerLocal<std::uint64_t> nodes(sched, 0);
  TaskSearch search{&cells, &best,  &nodes,
                    opts.tied, opts.cutoff, p.cutoff_depth};
  sched.run_single([&] {
    State st;
    search.place(st, 0);
  });
  Result r;
  r.best_area = best.load(std::memory_order_relaxed);
  r.nodes = nodes.reduce(std::uint64_t{0},
                         [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return r;
}

bool verify(const Params& p, const std::vector<Cell>& cells,
            const Result& result) {
  const Result serial = run_serial(p, cells);
  return result.best_area == serial.best_area && result.nodes > 0;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  const std::vector<Cell> cells = make_input(p);
  prof::CountingProf::reset();
  core::Timer timer;
  State st;
  int best = greedy_bound(cells);
  std::uint64_t nodes = 0;
  place_serial<prof::CountingProf>(cells, st, 0, best, nodes, true);
  const double secs = timer.seconds();
  const std::uint64_t mem = sizeof(State) * static_cast<std::uint64_t>(p.ncells) +
                            (1u << 20);
  return prof::make_row("floorplan", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "floorplan";
  app.origin = "AKM";
  app.domain = "Optimization";
  app.structure = "At each node";
  app.task_directives = 1;
  app.tasks_inside = "single";
  app.nested_tasks = true;
  app.app_cutoff = "depth-based";
  app.versions = {
      {"tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"if-tied", rt::Tiedness::tied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"if-untied", rt::Tiedness::untied, core::AppCutoff::if_clause,
       core::Generator::single_gen, false},
      {"manual-tied", rt::Tiedness::tied, core::AppCutoff::manual,
       core::Generator::single_gen, false},
      {"manual-untied", rt::Tiedness::untied, core::AppCutoff::manual,
       core::Generator::single_gen, true},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("floorplan");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("floorplan: unknown version " + version);
    }
    const Params p = params_for(ic);
    const std::vector<Cell> cells = make_input(p);
    VersionOpts opts{v->tied, v->cutoff};
    Result result;
    auto rep = core::run_and_report(
        "floorplan", version, ic, sched, verify_run,
        [&] { result = run_parallel(p, cells, sched, opts); },
        [&] { return verify(p, cells, result); });
    // The paper's metric: nodes visited per second (speed-ups for Floorplan
    // are computed on this, Section IV).
    rep.metric = rep.seconds > 0.0
                     ? static_cast<double>(result.nodes) / rep.seconds
                     : 0.0;
    rep.metric_name = "nodes/s";
    return rep;
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    const std::vector<Cell> cells = make_input(p);
    Result result;
    auto rep = core::run_serial_and_report(
        "floorplan", ic, true, [&] { result = run_serial(p, cells); },
        [&] { return verify(p, cells, result); });
    rep.metric = rep.seconds > 0.0
                     ? static_cast<double>(result.nodes) / rep.seconds
                     : 0.0;
    rep.metric_name = "nodes/s";
    return rep;
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::floorplan
