#include "kernels/sparselu/sparselu.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/kernel_glue.hpp"
#include "core/rng.hpp"
#include "runtime/dependency.hpp"
#include "runtime/taskgraph.hpp"
#include "runtime/worksharing.hpp"

namespace bots::sparselu {

namespace {

// The four BOTS block kernels. All operate on bs x bs row-major blocks.

/// Unblocked LU (no pivoting) of the diagonal block.
template <class Prof>
void lu0(float* diag, std::size_t bs) {
  for (std::size_t k = 0; k < bs; ++k) {
    for (std::size_t i = k + 1; i < bs; ++i) {
      diag[i * bs + k] /= diag[k * bs + k];
      Prof::ops(1);
      Prof::write_shared(1);
      const float lik = diag[i * bs + k];
      for (std::size_t j = k + 1; j < bs; ++j) {
        diag[i * bs + j] -= lik * diag[k * bs + j];
      }
      Prof::ops(2 * (bs - k - 1));
      Prof::write_shared(bs - k - 1);
    }
  }
}

/// Forward elimination of a row-panel block: col = L(diag)^-1 * col.
template <class Prof>
void fwd(const float* diag, float* col, std::size_t bs) {
  for (std::size_t k = 0; k < bs; ++k) {
    for (std::size_t i = k + 1; i < bs; ++i) {
      const float lik = diag[i * bs + k];
      for (std::size_t j = 0; j < bs; ++j) {
        col[i * bs + j] -= lik * col[k * bs + j];
      }
      Prof::ops(2 * bs);
      Prof::write_shared(bs);
    }
  }
}

/// Backward division of a column-panel block: row = row * U(diag)^-1.
template <class Prof>
void bdiv(const float* diag, float* row, std::size_t bs) {
  for (std::size_t i = 0; i < bs; ++i) {
    for (std::size_t k = 0; k < bs; ++k) {
      row[i * bs + k] /= diag[k * bs + k];
      Prof::ops(1);
      Prof::write_shared(1);
      const float rik = row[i * bs + k];
      for (std::size_t j = k + 1; j < bs; ++j) {
        row[i * bs + j] -= rik * diag[k * bs + j];
      }
      Prof::ops(2 * (bs - k - 1));
      Prof::write_shared(bs - k - 1);
    }
  }
}

/// Schur update: target -= row * col.
template <class Prof>
void bmod(const float* row, const float* col, float* target, std::size_t bs) {
  for (std::size_t i = 0; i < bs; ++i) {
    for (std::size_t k = 0; k < bs; ++k) {
      const float rik = row[i * bs + k];
      for (std::size_t j = 0; j < bs; ++j) {
        target[i * bs + j] -= rik * col[k * bs + j];
      }
      Prof::ops(2 * bs);
      Prof::write_shared(bs);
    }
  }
}

template <class Prof>
void factor_serial(BlockMatrix& m, bool mark_task_sites) {
  const std::size_t nb = m.nb();
  const std::size_t bs = m.bs();
  const std::uint64_t env = 3 * sizeof(void*);
  for (std::size_t kk = 0; kk < nb; ++kk) {
    lu0<Prof>(m.ensure(kk, kk), bs);
    for (std::size_t jj = kk + 1; jj < nb; ++jj) {
      if (!m.empty(kk, jj)) {
        if (mark_task_sites) Prof::task(env);
        fwd<Prof>(m.block(kk, kk), m.block(kk, jj), bs);
      }
    }
    for (std::size_t ii = kk + 1; ii < nb; ++ii) {
      if (!m.empty(ii, kk)) {
        if (mark_task_sites) Prof::task(env);
        bdiv<Prof>(m.block(kk, kk), m.block(ii, kk), bs);
      }
    }
    if (mark_task_sites) Prof::taskwait();
    for (std::size_t ii = kk + 1; ii < nb; ++ii) {
      if (m.empty(ii, kk)) continue;
      for (std::size_t jj = kk + 1; jj < nb; ++jj) {
        if (m.empty(kk, jj)) continue;
        if (mark_task_sites) Prof::task(env + sizeof(void*));
        bmod<Prof>(m.block(ii, kk), m.block(kk, jj), m.ensure(ii, jj), bs);
      }
    }
    if (mark_task_sites) Prof::taskwait();
  }
}

/// Single-generator parallel version: the whole phase loop runs inside a
/// `single`; one task per non-empty block per phase, taskwait between the
/// panel phase and the update phase.
void factor_single(BlockMatrix& m, rt::Scheduler& sched, rt::Tiedness tied) {
  const std::size_t nb = m.nb();
  const std::size_t bs = m.bs();
  sched.run_single([&] {
    for (std::size_t kk = 0; kk < nb; ++kk) {
      lu0<prof::NoProf>(m.ensure(kk, kk), bs);
      const float* diag = m.block(kk, kk);
      for (std::size_t jj = kk + 1; jj < nb; ++jj) {
        if (!m.empty(kk, jj)) {
          float* blk = m.block(kk, jj);
          rt::spawn(tied, [diag, blk, bs] { fwd<prof::NoProf>(diag, blk, bs); });
        }
      }
      for (std::size_t ii = kk + 1; ii < nb; ++ii) {
        if (!m.empty(ii, kk)) {
          float* blk = m.block(ii, kk);
          rt::spawn(tied, [diag, blk, bs] { bdiv<prof::NoProf>(diag, blk, bs); });
        }
      }
      rt::taskwait();
      for (std::size_t ii = kk + 1; ii < nb; ++ii) {
        if (m.empty(ii, kk)) continue;
        for (std::size_t jj = kk + 1; jj < nb; ++jj) {
          if (m.empty(kk, jj)) continue;
          const float* row = m.block(ii, kk);
          const float* col = m.block(kk, jj);
          float* target = m.ensure(ii, jj);  // fill-in by the generator
          rt::spawn(tied, [row, col, target, bs] {
            bmod<prof::NoProf>(row, col, target, bs);
          });
        }
      }
      rt::taskwait();
    }
  });
}

/// Multiple-generator parallel version. With use_range_tasks (the default)
/// each phase publishes ONE splittable range task over its block loop — the
/// first-arriving worker factors the diagonal and spawns the ranges, the
/// rest are already at the phase barrier stealing halves — so descriptor
/// count per phase drops from one-per-nonempty-block to one-plus-splits.
/// With the knob off, each phase's task-creating loop is a static `for`
/// worksharing construct across the team (one descriptor per block, the
/// paper's scheme). Phases are separated by team barriers, which complete
/// all tasks as OpenMP guarantees.
void factor_for(BlockMatrix& m, rt::Scheduler& sched, rt::Tiedness tied) {
  const std::size_t nb = m.nb();
  const std::size_t bs = m.bs();
  const bool ranges = sched.config().use_range_tasks;
  rt::SingleGate gate(sched.num_workers());
  sched.run_all([&](unsigned) {
    for (std::size_t kk = 0; kk < nb; ++kk) {
      const auto lo = static_cast<std::int64_t>(kk) + 1;
      const auto hi = static_cast<std::int64_t>(nb);
      if (ranges) {
        // One grain site per phase kind: fwd/bdiv rows are much cheaper
        // than bmod's O(nb) inner sweep, so each converges independently.
        constexpr rt::RangeSite kFwdSite{"sparselu/fwd"};
        constexpr rt::RangeSite kBdivSite{"sparselu/bdiv"};
        constexpr rt::RangeSite kBmodSite{"sparselu/bmod"};
        rt::single_nowait(gate, [&] {
          lu0<prof::NoProf>(m.ensure(kk, kk), bs);
          const float* diag = m.block(kk, kk);
          rt::spawn_range(kFwdSite, tied, lo, hi, 1,
                          [&m, diag, bs, kk](std::int64_t jj) {
            const auto j = static_cast<std::size_t>(jj);
            if (!m.empty(kk, j)) fwd<prof::NoProf>(diag, m.block(kk, j), bs);
          });
          rt::spawn_range(kBdivSite, tied, lo, hi, 1,
                          [&m, diag, bs, kk](std::int64_t ii) {
            const auto i = static_cast<std::size_t>(ii);
            if (!m.empty(i, kk)) bdiv<prof::NoProf>(diag, m.block(i, kk), bs);
          });
        });
        rt::barrier();
        rt::single_nowait(gate, [&] {
          rt::spawn_range(kBmodSite, tied, lo, hi, 1,
                          [&m, bs, kk, nb](std::int64_t ii) {
            const auto i = static_cast<std::size_t>(ii);
            if (m.empty(i, kk)) return;
            const float* row = m.block(i, kk);
            for (std::size_t jj = kk + 1; jj < nb; ++jj) {
              if (m.empty(kk, jj)) continue;
              // Fill-in by the (unique) iteration owning row i.
              bmod<prof::NoProf>(row, m.block(kk, jj), m.ensure(i, jj), bs);
            }
          });
        });
        rt::barrier();
        continue;
      }
      rt::single_nowait(gate,
                        [&] { lu0<prof::NoProf>(m.ensure(kk, kk), bs); });
      rt::barrier();
      const float* diag = m.block(kk, kk);
      rt::for_static(lo, hi, [&](std::int64_t jj) {
        if (!m.empty(kk, static_cast<std::size_t>(jj))) {
          float* blk = m.block(kk, static_cast<std::size_t>(jj));
          rt::spawn(tied, [diag, blk, bs] { fwd<prof::NoProf>(diag, blk, bs); });
        }
      });
      rt::for_static(lo, hi, [&](std::int64_t ii) {
        if (!m.empty(static_cast<std::size_t>(ii), kk)) {
          float* blk = m.block(static_cast<std::size_t>(ii), kk);
          rt::spawn(tied, [diag, blk, bs] { bdiv<prof::NoProf>(diag, blk, bs); });
        }
      });
      rt::barrier();
      rt::for_static(lo, hi, [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        if (m.empty(i, kk)) return;
        for (std::size_t jj = kk + 1; jj < nb; ++jj) {
          if (m.empty(kk, jj)) continue;
          const float* row = m.block(i, kk);
          const float* col = m.block(kk, jj);
          float* target = m.ensure(i, jj);  // unique generator per (i,*)
          rt::spawn(tied, [row, col, target, bs] {
            bmod<prof::NoProf>(row, col, target, bs);
          });
        }
      });
      rt::barrier();
    }
  });
}

}  // namespace

void factor_dataflow(BlockMatrix& m, rt::Scheduler& sched, rt::Tiedness tied,
                     const char* graph_tag) {
  const std::size_t nb = m.nb();
  const std::size_t bs = m.bs();
  sched.run_single([&] {
    // One dependence-tracked region for the WHOLE factorization: true edges
    // replace both per-iteration taskwaits, so a bmod waits only on its own
    // row/column panels and iteration kk+1's panel work overlaps the tail
    // of iteration kk's updates. Addresses are the dependence keys: the
    // kk diagonal chains lu0 -> {fwd,bdiv} (in after inout), every panel
    // block chains its fwd/bdiv to the bmods reading it, and each bmod
    // target chains update-to-update across iterations — including into the
    // iteration where it becomes the diagonal or a panel itself.
    auto build = [&m, nb, bs, tied](rt::DepScope& sc) {
      for (std::size_t kk = 0; kk < nb; ++kk) {
        float* diag = m.ensure(kk, kk);
        sc.spawn(tied, {rt::inout(diag)},
                 [diag, bs] { lu0<prof::NoProf>(diag, bs); });
        for (std::size_t jj = kk + 1; jj < nb; ++jj) {
          if (m.empty(kk, jj)) continue;
          float* blk = m.block(kk, jj);
          sc.spawn(tied, {rt::in(diag), rt::inout(blk)},
                   [diag, blk, bs] { fwd<prof::NoProf>(diag, blk, bs); });
        }
        for (std::size_t ii = kk + 1; ii < nb; ++ii) {
          if (m.empty(ii, kk)) continue;
          float* blk = m.block(ii, kk);
          sc.spawn(tied, {rt::in(diag), rt::inout(blk)},
                   [diag, blk, bs] { bdiv<prof::NoProf>(diag, blk, bs); });
        }
        for (std::size_t ii = kk + 1; ii < nb; ++ii) {
          if (m.empty(ii, kk)) continue;
          for (std::size_t jj = kk + 1; jj < nb; ++jj) {
            if (m.empty(kk, jj)) continue;
            const float* row = m.block(ii, kk);
            const float* col = m.block(kk, jj);
            // Fill-in is decided at BUILD time (by the generator), so the
            // recorded graph's shape and addresses are replay-stable.
            float* target = m.ensure(ii, jj);
            sc.spawn(tied, {rt::in(row), rt::in(col), rt::inout(target)},
                     [row, col, target, bs] {
                       bmod<prof::NoProf>(row, col, target, bs);
                     });
          }
        }
      }
    };
    if (graph_tag != nullptr) {
      rt::graph_region(graph_tag, &m, build);
    } else {
      rt::DepScope sc;
      build(sc);
      sc.wait();
    }
  });
}

Params params_for(core::InputClass c) {
  switch (c) {
    case core::InputClass::test: return {12, 32, 0x10Fu};
    case core::InputClass::small: return {24, 48, 0x10Fu};
    case core::InputClass::medium: return {32, 64, 0x10Fu};
    case core::InputClass::large: return {48, 64, 0x10Fu};
  }
  throw std::invalid_argument("sparselu: bad input class");
}

std::string describe(const Params& p) {
  const std::size_t n = p.nb * p.bs;
  return std::to_string(n) + "x" + std::to_string(n) + " sparse matrix of " +
         std::to_string(p.bs) + "x" + std::to_string(p.bs) + " blocks";
}

BlockMatrix make_input(const Params& p) {
  BlockMatrix m(p.nb, p.bs);
  core::Xoshiro256 structure(p.seed);
  for (std::size_t ii = 0; ii < p.nb; ++ii) {
    for (std::size_t jj = 0; jj < p.nb; ++jj) {
      const bool present = ii == jj || structure.next_double() < 0.55;
      if (!present) continue;
      float* b = m.ensure(ii, jj);
      core::Xoshiro256 vals(p.seed ^ (ii * 7919 + jj * 104729 + 13));
      for (std::size_t k = 0; k < p.bs * p.bs; ++k) {
        b[k] = static_cast<float>(vals.next_double() - 0.5);
      }
      if (ii == jj) {
        // Diagonal dominance keeps the pivot-free factorization stable.
        for (std::size_t d = 0; d < p.bs; ++d) {
          b[d * p.bs + d] += static_cast<float>(p.bs);
        }
      }
    }
  }
  return m;
}

void reset_values(const Params& p, BlockMatrix& m) {
  // Mirrors make_input's structure walk exactly (same rng consumption), but
  // writes into the EXISTING blocks: input blocks get their pristine values
  // back, blocks that only exist as fill-in from a previous factorization
  // are zeroed (the state bmod fill-in starts from).
  core::Xoshiro256 structure(p.seed);
  for (std::size_t ii = 0; ii < p.nb; ++ii) {
    for (std::size_t jj = 0; jj < p.nb; ++jj) {
      const bool present = ii == jj || structure.next_double() < 0.55;
      float* b = m.block(ii, jj);
      if (b == nullptr) continue;
      if (!present) {
        std::memset(b, 0, p.bs * p.bs * sizeof(float));
        continue;
      }
      core::Xoshiro256 vals(p.seed ^ (ii * 7919 + jj * 104729 + 13));
      for (std::size_t k = 0; k < p.bs * p.bs; ++k) {
        b[k] = static_cast<float>(vals.next_double() - 0.5);
      }
      if (ii == jj) {
        for (std::size_t d = 0; d < p.bs; ++d) {
          b[d * p.bs + d] += static_cast<float>(p.bs);
        }
      }
    }
  }
}

void run_serial(const Params& p, BlockMatrix& m) {
  (void)p;
  factor_serial<prof::NoProf>(m, false);
}

void run_parallel(const Params& p, BlockMatrix& m, rt::Scheduler& sched,
                  const VersionOpts& opts) {
  (void)p;
  if (opts.dataflow) {
    factor_dataflow(m, sched, opts.tied);
  } else if (opts.generator == core::Generator::single_gen) {
    factor_single(m, sched, opts.tied);
  } else {
    factor_for(m, sched, opts.tied);
  }
}

bool verify(const Params& p, const BlockMatrix& factored) {
  BlockMatrix ref = make_input(p);
  factor_serial<prof::NoProf>(ref, false);
  if (ref.nb() != factored.nb() || ref.bs() != factored.bs()) return false;
  const std::size_t bs2 = p.bs * p.bs;
  for (std::size_t ii = 0; ii < p.nb; ++ii) {
    for (std::size_t jj = 0; jj < p.nb; ++jj) {
      const bool re = ref.empty(ii, jj);
      if (re != factored.empty(ii, jj)) return false;
      if (re) continue;
      const float* a = ref.block(ii, jj);
      const float* b = factored.block(ii, jj);
      for (std::size_t k = 0; k < bs2; ++k) {
        const float scale = std::max(1.0f, std::fabs(a[k]));
        if (std::fabs(a[k] - b[k]) > 1e-4f * scale) return false;
      }
    }
  }
  return true;
}

prof::TableRow profile_row(core::InputClass c) {
  const Params p = params_for(c);
  BlockMatrix m = make_input(p);
  prof::CountingProf::reset();
  core::Timer timer;
  factor_serial<prof::CountingProf>(m, true);
  const double secs = timer.seconds();
  const std::uint64_t mem =
      m.allocated_blocks() * p.bs * p.bs * sizeof(float) +
      p.nb * p.nb * sizeof(void*);
  return prof::make_row("sparselu", describe(p), secs, mem,
                        prof::CountingProf::totals());
}

core::AppInfo make_app_info() {
  core::AppInfo app;
  app.name = "sparselu";
  app.origin = "-";
  app.domain = "Sparse linear algebra";
  app.structure = "Iterative";
  app.task_directives = 4;
  app.tasks_inside = "single/for";
  app.nested_tasks = false;
  app.app_cutoff = "none";
  app.versions = {
      {"single-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"single-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"for-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::multiple_gen, true},
      {"for-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::multiple_gen, false},
      {"dataflow-tied", rt::Tiedness::tied, core::AppCutoff::none,
       core::Generator::single_gen, false},
      {"dataflow-untied", rt::Tiedness::untied, core::AppCutoff::none,
       core::Generator::single_gen, false},
  };
  app.run = [](core::InputClass ic, const std::string& version,
               rt::Scheduler& sched, bool verify_run) {
    const core::AppInfo& self = *core::find_app("sparselu");
    const core::VersionInfo* v = self.find_version(version);
    if (v == nullptr) {
      throw std::invalid_argument("sparselu: unknown version " + version);
    }
    const Params p = params_for(ic);
    BlockMatrix m = make_input(p);
    VersionOpts opts{v->tied, v->generator,
                     version.rfind("dataflow", 0) == 0};
    return core::run_and_report(
        "sparselu", version, ic, sched, verify_run,
        [&] { run_parallel(p, m, sched, opts); },
        [&] { return verify(p, m); });
  };
  app.run_serial = [](core::InputClass ic) {
    const Params p = params_for(ic);
    BlockMatrix m = make_input(p);
    return core::run_serial_and_report(
        "sparselu", ic, true, [&] { run_serial(p, m); },
        [&] { return verify(p, m); });
  };
  app.profile_row = [](core::InputClass ic) { return profile_row(ic); };
  app.describe_input = [](core::InputClass ic) {
    return describe(params_for(ic));
  };
  return app;
}

}  // namespace bots::sparselu
