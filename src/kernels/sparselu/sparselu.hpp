// SparseLU: LU factorization of a sparse blocked matrix (paper
// Section III-B; in-house BSC benchmark).
//
// "A first level matrix is composed by pointers to small submatrices that
// may not be allocated. Due to the sparseness of the matrix, a lot of
// imbalance exists. ... In each of the sparseLU phases, a task is created
// for each block of the matrix that is not empty." Two generator schemes
// exist: all tasks from inside a `single` construct, or each phase's
// task-creating loops spread over the team with a `for` worksharing
// construct (the paper's single vs. multiple generator study, Section IV-D).
//
// Fill-in: a bmod target block that is still empty is allocated by its
// (unique) owning task, exactly as in BOTS.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/input_class.hpp"
#include "core/registry.hpp"
#include "prof/profile.hpp"
#include "runtime/scheduler.hpp"

namespace bots::sparselu {

struct Params {
  std::size_t nb = 12;   ///< blocks per dimension
  std::size_t bs = 32;   ///< block size (bs x bs floats)
  std::uint64_t seed = 0x10Fu;
};

[[nodiscard]] Params params_for(core::InputClass c);
[[nodiscard]] std::string describe(const Params& p);

/// Sparse block matrix: an nb x nb grid of optionally-allocated bs x bs
/// dense float blocks.
class BlockMatrix {
 public:
  BlockMatrix(std::size_t nb, std::size_t bs) : nb_(nb), bs_(bs), blocks_(nb * nb) {}

  [[nodiscard]] std::size_t nb() const noexcept { return nb_; }
  [[nodiscard]] std::size_t bs() const noexcept { return bs_; }

  [[nodiscard]] float* block(std::size_t i, std::size_t j) noexcept {
    return blocks_[i * nb_ + j].get();
  }
  [[nodiscard]] const float* block(std::size_t i, std::size_t j) const noexcept {
    return blocks_[i * nb_ + j].get();
  }
  [[nodiscard]] bool empty(std::size_t i, std::size_t j) const noexcept {
    return blocks_[i * nb_ + j] == nullptr;
  }

  /// Allocates (zero-initialized) when absent; returns the block.
  float* ensure(std::size_t i, std::size_t j) {
    auto& cell = blocks_[i * nb_ + j];
    if (cell == nullptr) cell = std::make_unique<float[]>(bs_ * bs_);
    return cell.get();
  }

  [[nodiscard]] std::size_t allocated_blocks() const noexcept {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += (b != nullptr);
    return n;
  }

 private:
  std::size_t nb_;
  std::size_t bs_;
  std::vector<std::unique_ptr<float[]>> blocks_;
};

/// BOTS-style structured sparse input: diagonal always present, off-diagonal
/// blocks present with a deterministic pattern (~55% dense overall).
[[nodiscard]] BlockMatrix make_input(const Params& p);

/// Rewrite `m`'s VALUES back to the pristine input in place, allocating
/// nothing: input blocks are re-filled, fill-in blocks (allocated by a
/// previous factorization) are zeroed. Block addresses are untouched, which
/// is exactly what taskgraph replay needs — the recorded graph's dependence
/// addresses and captured block pointers stay valid run after run.
void reset_values(const Params& p, BlockMatrix& m);

void run_serial(const Params& p, BlockMatrix& m);

struct VersionOpts {
  rt::Tiedness tied = rt::Tiedness::tied;
  core::Generator generator = core::Generator::single_gen;
  bool dataflow = false;  ///< depend()-based version (no taskwait barriers)
};

/// Dataflow factorization: one dependence-tracked region replaces the
/// 3-phase taskwait structure with true edges — fwd/bdiv wait only on their
/// kk diagonal, each bmod waits only on its own row/column panels, and
/// iteration kk+1 overlaps the tail of iteration kk's updates. With
/// `graph_tag` non-null the region runs under rt::graph_region: recorded on
/// first invocation, replayed afterwards (same tag ⇒ same matrix buffers;
/// pair with reset_values between runs).
void factor_dataflow(BlockMatrix& m, rt::Scheduler& sched, rt::Tiedness tied,
                     const char* graph_tag = nullptr);

void run_parallel(const Params& p, BlockMatrix& m, rt::Scheduler& sched,
                  const VersionOpts& opts);

/// Element-wise comparison against a serially factored copy of the same
/// input (the paper's serial-vs-parallel verification method).
[[nodiscard]] bool verify(const Params& p, const BlockMatrix& factored);

[[nodiscard]] prof::TableRow profile_row(core::InputClass c);

[[nodiscard]] core::AppInfo make_app_info();

}  // namespace bots::sparselu
