// Task dependences: depend(in/out/inout) clauses for spawn (PR 8).
//
// OpenMP 4.0-style address-keyed dependence tracking, scoped to one
// generator (a DepScope): the generator thread keeps a last-writer /
// reader-set hash table per storage address and turns each spawn's clauses
// into true dependence edges between sibling tasks — an `in` depends on the
// address's last writer, an `out`/`inout` depends on the last writer AND
// every reader since, then becomes the new last writer. Tasks whose
// predecessors are still running wait UN-ENQUEUED on a pending-predecessor
// counter; the finish path releases their successor lists, so phases that
// previously needed taskwait barriers (SparseLU's fwd/bdiv -> bmod) overlap
// wherever the data allows.
//
// Concurrency protocol (the only cross-thread state is per-task):
//
// * Each dep-spawned task carries a DepNode (Task::dep). Its successor list
//   is a Treiber stack of DepEdge records pushed by the generator; the
//   FINISHING worker closes the stack by exchanging the head with a
//   sentinel (dep_closed) and walks the edges it took. A generator that
//   finds the stack already closed knows that predecessor is done and
//   self-satisfies the edge. pending counts unreleased predecessors plus a
//   registration guard the generator holds while it pushes edges, so the
//   task cannot be released half-registered; whoever moves pending to zero
//   (the last finishing predecessor, or the generator dropping the guard)
//   enqueues the task.
// * The tracker holds one extra reference on every task it may later name
//   as a predecessor (taken on the generator thread BEFORE publication, so
//   the rule that references are only ever added pre-publication — which
//   makes Task::exclusive()/release_ref() sound — is preserved). A pinned
//   descriptor survives its own finish; DepScope::wait() drops the pins
//   after the join, which also completes the deferred half of each task's
//   release chain into the parent.
// * Dep tasks are ALWAYS deferred — inlining one would run it before its
//   predecessors — and fully accounted at spawn (worker ledger, region
//   live count, request ledger); the release at predecessor-finish only
//   ROUTES the task onto a queue. Barriers therefore can never open early
//   and `executed + discarded == deferred` holds on every path, including
//   cancellation (a discarded predecessor still releases its successors,
//   so a cancelled DAG drains by discards instead of deadlocking).
//
// Scoping rule (OpenMP's): dependences relate SIBLING tasks spawned by the
// same DepScope. Addresses touched by different scopes are unrelated.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"

namespace bots::rt {

class TaskGraph;

/// Access mode of one depend() clause.
enum class DepAccess : std::uint8_t { in, out, inout };

/// One depend clause: an address (the dependence key — identity, not
/// contents) and how the task accesses it.
struct Dep {
  const void* addr = nullptr;
  DepAccess mode = DepAccess::inout;
};

/// Clause builders. The POINTER overloads key on the pointee (`in(block)`
/// for a float* names the block, the common kernel case); the object
/// overloads key on the object's own address (`inout(counter)`).
[[nodiscard]] inline Dep in(const volatile void* p) noexcept {
  return {const_cast<const void*>(p), DepAccess::in};
}
[[nodiscard]] inline Dep out(volatile void* p) noexcept {
  return {const_cast<const void*>(p), DepAccess::out};
}
[[nodiscard]] inline Dep inout(volatile void* p) noexcept {
  return {const_cast<const void*>(p), DepAccess::inout};
}
template <class T, class = std::enable_if_t<!std::is_pointer_v<std::decay_t<T>> &&
                                            !std::is_void_v<std::decay_t<T>>>>
[[nodiscard]] Dep in(const T& x) noexcept {
  return {static_cast<const void*>(&x), DepAccess::in};
}
template <class T, class = std::enable_if_t<!std::is_pointer_v<std::decay_t<T>> &&
                                            !std::is_void_v<std::decay_t<T>>>>
[[nodiscard]] Dep out(T& x) noexcept {
  return {static_cast<const void*>(&x), DepAccess::out};
}
template <class T, class = std::enable_if_t<!std::is_pointer_v<std::decay_t<T>> &&
                                            !std::is_void_v<std::decay_t<T>>>>
[[nodiscard]] Dep inout(T& x) noexcept {
  return {static_cast<const void*>(&x), DepAccess::inout};
}

/// One successor edge, pushed onto the predecessor's Treiber stack by the
/// generator and consumed exactly once by the finishing worker.
struct DepEdge {
  Task* succ = nullptr;
  DepEdge* next = nullptr;
};

namespace detail {
/// Sentinel a finished predecessor's successor stack is closed with. A
/// distinct address, never dereferenced.
inline DepEdge dep_closed_edge{};
[[nodiscard]] inline DepEdge* dep_closed() noexcept { return &dep_closed_edge; }
}  // namespace detail

/// Dependence side-structure of one task (Task::dep). Dynamic tasks use the
/// Treiber successor stack; graph-owned replay nodes (taskgraph.hpp) use the
/// baked successor index span instead and carry the owning graph pointer so
/// the finish path can route the release without a hash lookup.
struct DepNode {
  Task* task = nullptr;
  std::atomic<DepEdge*> succ_head{nullptr};
  /// Unreleased predecessors (+1 registration guard while the generator is
  /// still pushing edges). The task is enqueued by whoever moves it to 0.
  std::atomic<std::uint32_t> pending{0};
  // -- replay-only fields (null/0 on dynamic nodes) -------------------------
  TaskGraph* graph = nullptr;
  const std::uint32_t* baked_succs = nullptr;
  std::uint32_t baked_count = 0;
};

/// Recording hook a DepScope drives while a TaskGraph captures the region's
/// structure (taskgraph.hpp implements it). Kept abstract here so the spawn
/// template does not need the graph's definition.
class GraphRecorder {
 public:
  /// Register one task; returns its node index. The body copy must be
  /// re-invocable (it runs once per replay).
  virtual std::uint32_t record_node(std::function<void()> body, Tiedness t) = 0;
  /// Register one structural dependence edge (recorded whether or not the
  /// predecessor had already finished at record time — replay re-resolves
  /// every edge).
  virtual void record_edge(std::uint32_t pred, std::uint32_t succ) = 0;
  /// The recording is unusable (a spawn degraded to inline execution, so
  /// the executed structure and the recorded structure diverged).
  virtual void record_abort() noexcept = 0;

 protected:
  ~GraphRecorder() = default;
};

/// One dependence-tracked generator scope. Spawn tasks with depend clauses;
/// wait() (or destruction) joins them all and releases the tracker state.
/// Single-threaded use by the owning generator task only.
class DepScope {
 public:
  DepScope() = default;
  /// Record mode: every spawn is also captured into `rec` (see
  /// run_graph_region in taskgraph.hpp).
  explicit DepScope(GraphRecorder* rec) noexcept : recorder_(rec) {}
  DepScope(const DepScope&) = delete;
  DepScope& operator=(const DepScope&) = delete;
  ~DepScope() { wait(); }

  /// Spawn a task ordered by `deps` against this scope's earlier spawns.
  /// Always deferred (an inlined dep task could run before its
  /// predecessors); outside a region it executes immediately — program
  /// order satisfies every dependence.
  template <class F>
  void spawn(Tiedness tied, std::initializer_list<Dep> deps, F&& f) {
    Worker* w = detail::tls_worker;
    if (w == nullptr) {
      std::forward<F>(f)();
      return;
    }
    Scheduler& s = *w->sched;
    ++w->stats.tasks_created;
    w->stats.deps_declared += deps.size();
    const std::uint32_t depth =
        (w->current != nullptr ? w->current->depth() + 1 : 1) + w->inline_depth;
    preds_.clear();
    for (const Dep& d : deps) collect_preds(d);
    std::uint32_t self_idx = 0;
    if (recorder_ != nullptr) {
      self_idx = recorder_->record_node(std::function<void()>(f), tied);
    }
    TaskStorage storage{};
    Task* t = s.alloc_task(*w, storage);
    if (t == nullptr) {
      // Degradation ladder bottom, dependence-safe: join every outstanding
      // scope task (they are all children of `current`), THEN run inline —
      // the body executes after its predecessors, trivially in order. The
      // structure now differs from a normal run, so a recording is void.
      ++w->stats.tasks_cutoff_inlined;
      ++w->stats.tasks_degraded_inline;
      if (recorder_ != nullptr) recorder_->record_abort();
      s.taskwait_from(*w);
      detail::run_inline_fast(*w, tied, std::forward<F>(f));
      apply_writes(deps, nullptr);  // completed: later deps wait on nobody
      return;
    }
    t->init_env(std::forward<F>(f));
    w->stats.env_bytes += t->env_bytes();
    Task* parent = w->current;
    parent->add_child_ref();
    t->set_links(parent, depth, tied, storage);
    DepNode* node = new_node(t);
    t->set_dep(node);
    // Tracker pin: +1 reference, taken pre-publication on this (the
    // generator) thread. Dropped by wait() after the join.
    t->add_ref();
    tracked_.push_back(t);
    if (recorder_ != nullptr) {
      index_of_[t] = self_idx;
      for (Task* p : preds_) recorder_->record_edge(index_of_[p], self_idx);
    }
    node->pending.store(1, std::memory_order_relaxed);  // registration guard
    for (Task* p : preds_) {
      DepEdge* e = new_edge(t);
      // Count the predecessor BEFORE publishing the edge: the finishing
      // worker's decrement must never observe a counter the edge is not in.
      node->pending.fetch_add(1, std::memory_order_relaxed);
      if (push_succ(p, e)) {
        ++w->stats.deps_edges;
      } else {
        // Stack already closed: the predecessor finished. Self-satisfy.
        node->pending.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    apply_writes(deps, t);
    // Full spawn-side accounting happens HERE — the release at predecessor
    // finish only routes the task onto a queue, so live counts can never
    // make a barrier open early and never double-count.
    ++w->stats.tasks_deferred;
    trace_record(w->ring, TraceEvent::spawn, t->depth(), 1);
    s.account_dep_spawn(*w, *t);
    if (node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      s.enqueue_released(*w, *t);
    }
  }

  template <class F>
  void spawn(std::initializer_list<Dep> deps, F&& f) {
    spawn(Tiedness::tied, deps, std::forward<F>(f));
  }

  /// Join every task spawned by this scope (a taskwait on the generator's
  /// current task — a conservative superset), then drop the tracker pins
  /// and release the scope's dependence bookkeeping. The scope is reusable
  /// afterwards.
  void wait() {
    Worker* w = detail::tls_worker;
    if (w == nullptr) return;
    if (!tracked_.empty() || !table_.empty()) {
      w->sched->taskwait_from(*w);
      for (Task* t : tracked_) w->sched->release_dep_ref(*w, *t);
    }
    tracked_.clear();
    table_.clear();
    index_of_.clear();
    nodes_.clear();
    edges_.clear();
  }

 private:
  struct AddrState {
    Task* last_writer = nullptr;
    std::vector<Task*> readers;
  };

  void collect_preds(const Dep& d) {
    auto it = table_.find(d.addr);
    if (it == table_.end()) return;
    AddrState& a = it->second;
    if (a.last_writer != nullptr) preds_.push_back(a.last_writer);
    if (d.mode != DepAccess::in) {
      // A writer also waits for every reader since the last write
      // (anti-dependence); the last writer never sits in readers (a write
      // clears the set), so no duplicate from one address.
      for (Task* r : a.readers) preds_.push_back(r);
    }
  }

  /// Update the last-writer/reader table after a spawn. `t` == nullptr for
  /// a degraded-inline body that already COMPLETED: later tasks naming the
  /// address wait on nobody.
  void apply_writes(std::initializer_list<Dep> deps, Task* t) {
    for (const Dep& d : deps) {
      AddrState& a = table_[d.addr];
      if (d.mode == DepAccess::in) {
        if (t != nullptr) a.readers.push_back(t);
      } else {
        a.last_writer = t;
        a.readers.clear();
      }
    }
  }

  DepNode* new_node(Task* t) {
    DepNode& n = nodes_.emplace_back();
    n.task = t;
    return &n;
  }

  DepEdge* new_edge(Task* succ) {
    DepEdge& e = edges_.emplace_back();
    e.succ = succ;
    return &e;
  }

  /// Push `e` onto `pred`'s successor stack; false when the stack is
  /// already closed (the predecessor finished — its successor walk is over
  /// and will never see this edge).
  static bool push_succ(Task* pred, DepEdge* e) noexcept {
    DepNode* pn = pred->dep();
    DepEdge* head = pn->succ_head.load(std::memory_order_relaxed);
    do {
      if (head == detail::dep_closed()) return false;
      e->next = head;
    } while (!pn->succ_head.compare_exchange_weak(
        head, e, std::memory_order_release, std::memory_order_relaxed));
    return true;
  }

  // Node/edge storage: deque for pointer stability, bulk-freed at wait()
  // (after quiescence, so no finishing worker can still be walking them).
  std::deque<DepNode> nodes_;
  std::deque<DepEdge> edges_;
  std::unordered_map<const void*, AddrState> table_;
  std::vector<Task*> tracked_;  ///< tasks pinned by a tracker reference
  std::vector<Task*> preds_;    ///< per-spawn scratch
  GraphRecorder* recorder_ = nullptr;
  std::unordered_map<Task*, std::uint32_t> index_of_;  ///< record mode only
};

}  // namespace bots::rt
