// Worksharing constructs layered over run_all regions.
//
// These reproduce the "tasks inside omp for / single" generator schemes of
// Table I: Alignment generates tasks from a dynamically scheduled `for`,
// SparseLU's `for` version generates each phase's tasks from a static `for`
// across the team (multiple generators), while the `single` versions funnel
// all generation through one worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "runtime/scheduler.hpp"

namespace bots::rt {

/// Shared iteration state for for_dynamic. Construct one per worksharing
/// construct, outside run_all, and capture it by reference in the region
/// body (every worker must use the same object).
class DynamicSchedule {
 public:
  explicit DynamicSchedule(std::int64_t begin = 0) : next_(begin) {}

  void reset(std::int64_t begin) noexcept {
    next_.store(begin, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t fetch_chunk(std::int64_t chunk) noexcept {
    return next_.fetch_add(chunk, std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> next_;
};

/// `#pragma omp for schedule(static)`: contiguous block partition of
/// [begin, end) across the team. No implicit barrier (nowait); call
/// rt::barrier() if the phase must synchronize.
template <class Body>
void for_static(std::int64_t begin, std::int64_t end, Body&& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t team = static_cast<std::int64_t>(team_size());
  const std::int64_t id = static_cast<std::int64_t>(worker_id());
  const std::int64_t base = n / team;
  const std::int64_t rem = n % team;
  const std::int64_t lo = begin + id * base + (id < rem ? id : rem);
  const std::int64_t hi = lo + base + (id < rem ? 1 : 0);
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

/// `#pragma omp for schedule(static, chunk)`: chunk-cyclic partition.
template <class Body>
void for_static_chunked(std::int64_t begin, std::int64_t end,
                        std::int64_t chunk, Body&& body) {
  const std::int64_t team = static_cast<std::int64_t>(team_size());
  const std::int64_t id = static_cast<std::int64_t>(worker_id());
  for (std::int64_t lo = begin + id * chunk; lo < end; lo += team * chunk) {
    const std::int64_t hi = lo + chunk < end ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

/// `#pragma omp for schedule(dynamic, chunk)`. The shared DynamicSchedule
/// must have been reset to `begin` before the region.
template <class Body>
void for_dynamic(DynamicSchedule& sched, std::int64_t end, std::int64_t chunk,
                 Body&& body) {
  for (;;) {
    const std::int64_t lo = sched.fetch_chunk(chunk);
    if (lo >= end) return;
    const std::int64_t hi = lo + chunk < end ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

/// `#pragma omp single nowait` (statically bound to worker 0). Follow with
/// rt::barrier() when the single's effects must be visible to the team.
template <class F>
void single_nowait(F&& f) {
  if (worker_id() == 0) std::forward<F>(f)();
}

}  // namespace bots::rt
