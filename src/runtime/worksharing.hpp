// Worksharing constructs layered over run_all regions.
//
// These reproduce the "tasks inside omp for / single" generator schemes of
// Table I: Alignment generates tasks from a dynamically scheduled `for`,
// SparseLU's `for` version generates each phase's tasks from a static `for`
// across the team (multiple generators), while the `single` versions funnel
// all generation through one worker.
//
// spawn_range is the loop-style alternative to per-iteration task
// generation: one descriptor stands for a whole iteration range and splits
// on demand (see RangeDesc in task.hpp and the design note at the top of
// scheduler.hpp). The Alignment, SparseLU `for` and Health `for` generators
// use it when SchedulerConfig::use_range_tasks is on.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/steal_policy.hpp"

namespace bots::rt {

/// Shared iteration state for for_dynamic. Construct one per worksharing
/// construct, outside run_all, and capture it by reference in the region
/// body (every worker must use the same object).
class DynamicSchedule {
 public:
  explicit DynamicSchedule(std::int64_t begin = 0) : next_(begin) {}

  void reset(std::int64_t begin) noexcept {
    next_.store(begin, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t fetch_chunk(std::int64_t chunk) noexcept {
    return next_.fetch_add(chunk, std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> next_;
};

/// `#pragma omp for schedule(static)`: contiguous block partition of
/// [begin, end) across the team. No implicit barrier (nowait); call
/// rt::barrier() if the phase must synchronize.
template <class Body>
void for_static(std::int64_t begin, std::int64_t end, Body&& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t team = static_cast<std::int64_t>(team_size());
  const std::int64_t id = static_cast<std::int64_t>(worker_id());
  const std::int64_t base = n / team;
  const std::int64_t rem = n % team;
  const std::int64_t lo = begin + id * base + (id < rem ? id : rem);
  const std::int64_t hi = lo + base + (id < rem ? 1 : 0);
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

/// `#pragma omp for schedule(static, chunk)`: chunk-cyclic partition.
template <class Body>
void for_static_chunked(std::int64_t begin, std::int64_t end,
                        std::int64_t chunk, Body&& body) {
  const std::int64_t team = static_cast<std::int64_t>(team_size());
  const std::int64_t id = static_cast<std::int64_t>(worker_id());
  for (std::int64_t lo = begin + id * chunk; lo < end; lo += team * chunk) {
    const std::int64_t hi = lo + chunk < end ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

/// `#pragma omp for schedule(dynamic, chunk)`. The shared DynamicSchedule
/// must have been reset to `begin` before the region.
template <class Body>
void for_dynamic(DynamicSchedule& sched, std::int64_t end, std::int64_t chunk,
                 Body&& body) {
  for (;;) {
    const std::int64_t lo = sched.fetch_chunk(chunk);
    if (lo >= end) return;
    const std::int64_t hi = lo + chunk < end ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

/// Shared claim state for single_nowait. Construct one per lexical `single`
/// construct, outside the region, and capture it by reference in the region
/// body — like DynamicSchedule. One gate serves any number of dynamic
/// encounters of its construct (e.g. a single inside a loop): per-worker
/// encounter counters line the workers up on the same instance sequence and
/// one shared claim counter elects the first arriver of each instance.
class SingleGate {
 public:
  /// `team` must cover every worker id that can reach the construct
  /// (Scheduler::num_workers()).
  explicit SingleGate(unsigned team) : seen_(team) {}

  SingleGate(const SingleGate&) = delete;
  SingleGate& operator=(const SingleGate&) = delete;

  /// First-arrival claim for this worker's next encounter of the construct.
  /// Exactly one worker per instance gets `true`. Every worker of the team
  /// must encounter the construct instances in the same order (the usual
  /// OpenMP worksharing requirement).
  [[nodiscard]] bool try_claim() noexcept {
    const std::uint64_t instance = ++seen_[worker_id()].encounters;
    std::uint64_t expected = instance - 1;
    // claimed_ counts fully claimed instances. A worker reaching instance n
    // has already passed (and observed claimed or claimed itself) every
    // earlier instance, so claimed_ >= n - 1 here: the CAS succeeds exactly
    // for the first arriver of instance n.
    return claimed_.compare_exchange_strong(expected, instance,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
  }

 private:
  struct alignas(cache_line_bytes) Slot {
    std::uint64_t encounters = 0;
  };
  std::vector<Slot> seen_;
  alignas(cache_line_bytes) std::atomic<std::uint64_t> claimed_{0};
};

/// `#pragma omp single nowait` with OpenMP's first-arrival semantics: the
/// FIRST worker to reach the construct executes it; nobody waits. (A static
/// worker-0 binding would stall task generation behind a late worker 0.)
/// Follow with rt::barrier() when the single's effects must be visible to
/// the team.
template <class F>
void single_nowait(SingleGate& gate, F&& f) {
  if (gate.try_claim()) std::forward<F>(f)();
}

// ---------------------------------------------------------------------------
// Splittable range tasks.
// ---------------------------------------------------------------------------

namespace detail {

/// The closure executed by a range-task descriptor: peels grain-sized chunks
/// off [lo, hi) and splits off the upper half as a sibling descriptor
/// whenever this worker's local queue is dry — which is the state a steal
/// leaves behind, so splitting tracks thief demand. A thief that steals a
/// range immediately splits on its first check (its deque is empty: it was
/// stealing), re-exposing half for other thieves; an uncontended owner keeps
/// the one descriptor and only re-splits along a logarithmic chain.
template <class Body>
struct RangeRunner {
  RangeDesc desc;
  Body body;
  /// The spawn site's grain controller (grain.hpp; the global one for
  /// untagged sites), null when use_adaptive_grain is off. Carried in the
  /// closure so every half split off this range reports to the SAME
  /// controller its site converges on — the per-site estimate would be
  /// meaningless if splits leaked their stats to the global one.
  GrainController* grain_ctrl = nullptr;

  void operator()() {
    Worker* w = tls_worker;  // range tasks only ever run deferred, in-region
    Scheduler& s = *w->sched;
    std::int64_t lo = desc.lo;
    std::int64_t hi = desc.hi;
    const std::int64_t grain = desc.grain;
    RegionCtx* ctx = w->current->ctx();  // this range task's request, if any
    const bool splittable = w->region->team_size > 1;
    std::int64_t splits = 0;
    std::int64_t executed = 0;
    try {
      while (lo < hi) {
        // Cancellation boundary at every grain chunk: a cancelled region —
        // or, in server mode, this range's cancelled request context —
        // truncates the remainder right here, so range latency is bounded
        // by one chunk, not the whole range. The descriptor still
        // completes normally below (on_range_complete fires), which is why
        // execute_deferred dispatches range tasks even after a cancel.
        if (w->region->cancelled() || (ctx != nullptr && ctx->cancelled())) {
          break;
        }
        // Whether to split is the steal policy's decision (the demand check
        // lives next to victim selection: the policy knows who the half will
        // feed — under the hierarchical policy, same-node thieves probe this
        // deque first, so halves stay on-node while the node is hungry).
        // Pinned fresh per chunk, not once per range: a long range must not
        // hold one policy generation across its whole body, or a live
        // reconfigure would stall on it — re-pinning here bounds swap
        // latency to one grain chunk, the same cadence as cancellation.
        if (splittable && hi - lo > grain &&
            s.pin_snapshot(*w)->policy->should_split_range(*w)) {
          const std::int64_t mid = lo + (hi - lo) / 2;
          if (split_off(*w, mid, hi)) {
            ++splits;
            hi = mid;
            continue;
          }
          // Split refused (descriptor drought): keep the whole remainder
          // and chew through it serially — degraded but correct.
        }
        const std::int64_t stop = lo + grain < hi ? lo + grain : hi;
        for (std::int64_t i = lo; i < stop; ++i) body(i);
        executed += stop - lo;
        lo = stop;
        w->note_progress();  // one watchdog tick per chunk peeled
        if (ctx != nullptr) ctx->note_progress();  // per-request stall signal
      }
    } catch (...) {
      // The descriptor still completes (the scheduler captures the
      // exception into the region): report it, or live_ranges_ leaks and
      // wedges the starvation signal open for the scheduler's lifetime.
      if (grain_ctrl != nullptr) {
        grain_ctrl->on_range_complete(executed, splits);
      }
      throw;
    }
    if (grain_ctrl != nullptr) {
      grain_ctrl->on_range_complete(executed, splits);
    }
  }

  /// Publish [lo2, hi2) as a sibling of the running range task (same parent,
  /// same depth, same tiedness), so a taskwait at the original spawner joins
  /// every split exactly like the range itself. WHERE the half appears is
  /// the scheduler's placement call (publish_range_half): normally this
  /// worker's own deque — where the victim order sends same-node thieves
  /// first — but under use_hint_placement a half split on a saturated node
  /// while a remote node's has-work word is clear is mailed to that idle
  /// node's RangeMailbox instead, sparing it the cross-node steal.
  /// False when no descriptor could be obtained (degradation ladder): the
  /// caller keeps the whole remainder. Counters — and the grain
  /// controller's live-range census — move only after the allocation
  /// succeeds, so a refused split leaves no phantom split/deferred counts
  /// behind and the accounting invariants hold on the degraded path.
  bool split_off(Worker& w, std::int64_t lo2, std::int64_t hi2) {
    Scheduler& s = *w.sched;
    Task* self = w.current;
    TaskStorage storage{};
    Task* t = s.alloc_task(w, storage);
    if (t == nullptr) return false;
    ++w.stats.range_splits;
    ++w.stats.tasks_deferred;
    // A split is both a split event AND a spawn (the half is a new deferred
    // descriptor — keeps the spawn/deferred conservation law exact).
    trace_record(w.ring, TraceEvent::split,
                 static_cast<std::uint64_t>(hi2 - lo2));
    trace_record(w.ring, TraceEvent::spawn, w.current->depth(), 1);
    if (grain_ctrl != nullptr) grain_ctrl->range_published();
    t->init_env(RangeRunner<Body>{{lo2, hi2, desc.grain}, body, grain_ctrl});
    w.stats.env_bytes += t->env_bytes();
    Task* parent = self->parent();
    if (parent != nullptr) parent->add_child_ref();
    t->set_links(parent, self->depth(), self->tiedness(), storage);
    // A sibling inherits through the PARENT in set_links, but the request
    // context belongs to the running range (the parent may be the ctx root's
    // parent, outside the request): copy it from self explicitly.
    t->set_ctx(self->ctx());
    t->set_range(&t->env_as<RangeRunner<Body>>()->desc);
    s.publish_range_half(w, *t);
    return true;
  }
};

}  // namespace detail

/// Create ONE splittable task for the whole iteration range [lo, hi):
/// `body(i)` runs exactly once per i. `grain` is the iteration budget
/// between split checks and the threshold below which a remainder is never
/// split (a split halves the remainder, so descriptors can cover as few as
/// (grain + 1) / 2 iterations). With SchedulerConfig::use_adaptive_grain
/// (the default) the caller's grain is only a FLOOR: the effective grain is
/// max(grain, controller estimate), so the hardcoded `grain = 1` the loop
/// kernels pass becomes a runtime decision retuned from observed split
/// density and starvation (grain.hpp). `site` selects WHICH estimate: a
/// tagged call site converges its own controller in the scheduler's
/// GrainTable — mixing cheap- and expensive-iteration range shapes no
/// longer fights over one estimate — while the default-constructed site
/// (and SchedulerConfig::use_site_grain off) uses the global controller.
/// Joins like any task: a taskwait in the spawner (or any barrier) covers
/// the range and every half split off it. Outside a region the range runs
/// serially in place.
template <class Body>
void spawn_range(RangeSite site, Tiedness tied, std::int64_t lo,
                 std::int64_t hi, std::int64_t grain, Body body) {
  if (hi - lo <= 0) return;
  if (grain < 1) grain = 1;
  Worker* w = detail::tls_worker;
  if (w == nullptr) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
    return;
  }
  Scheduler& s = *w->sched;
  GrainController* ctrl = nullptr;
  if (s.config().use_adaptive_grain) {
    ctrl = &s.grain_controller_for(site);
    const std::int64_t tuned = ctrl->grain();
    if (tuned > grain) grain = tuned;
  }
  ++w->stats.tasks_created;
  ++w->stats.range_tasks;
  TaskStorage storage{};
  Task* t = s.alloc_task(*w, storage);
  if (t == nullptr) {
    // Degradation ladder bottom: run the whole range serially on this
    // frame. Counted as cutoff_inlined (creation-side invariant) plus the
    // degradation marker; the controller never saw a published range, so
    // its live-range census stays balanced.
    ++w->stats.tasks_cutoff_inlined;
    ++w->stats.tasks_degraded_inline;
    detail::run_inline_fast(*w, tied, [lo, hi, &body] {
      for (std::int64_t i = lo; i < hi; ++i) body(i);
    });
    return;
  }
  // Publication census and the deferred count move only now, after the
  // descriptor exists (the degraded path above must leave no phantoms).
  if (ctrl != nullptr) ctrl->range_published();
  ++w->stats.tasks_deferred;
  trace_record(w->ring, TraceEvent::spawn,
               w->current->depth() + 1 + w->inline_depth, 1);
  t->init_env(
      detail::RangeRunner<Body>{{lo, hi, grain}, std::move(body), ctrl});
  w->stats.env_bytes += t->env_bytes();
  Task* parent = w->current;
  parent->add_child_ref();
  const std::uint32_t depth = parent->depth() + 1 + w->inline_depth;
  t->set_links(parent, depth, tied, storage);
  t->set_range(&t->env_as<detail::RangeRunner<Body>>()->desc);
  s.enqueue(*w, *t);
}

template <class Body>
void spawn_range(Tiedness tied, std::int64_t lo, std::int64_t hi,
                 std::int64_t grain, Body body) {
  spawn_range(RangeSite{}, tied, lo, hi, grain, std::move(body));
}

template <class Body>
void spawn_range(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                 Body body) {
  spawn_range(RangeSite{}, Tiedness::tied, lo, hi, grain, std::move(body));
}

}  // namespace bots::rt
