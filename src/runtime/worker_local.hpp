// Worker-local storage with reduction: the `threadprivate` idiom.
//
// BOTS' NQueens uses threadprivate accumulators so every thread counts the
// solutions it finds without contention and reduces into a global at the end
// of the parallel region (paper Section III-B). WorkerLocal reproduces that:
// one padded slot per worker, reduced on the caller after the region.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/scheduler.hpp"

namespace bots::rt {

template <class T>
class WorkerLocal {
 public:
  explicit WorkerLocal(const Scheduler& sched, T initial = T{})
      : init_(initial), slots_(sched.num_workers(), Slot{initial}) {}

  explicit WorkerLocal(unsigned team, T initial = T{})
      : init_(initial), slots_(team, Slot{initial}) {}

  /// The current worker's slot. Outside a region, slot 0.
  [[nodiscard]] T& local() noexcept { return slots_[worker_id()].value; }

  [[nodiscard]] T& slot(std::size_t i) noexcept { return slots_[i].value; }
  [[nodiscard]] const T& slot(std::size_t i) const noexcept {
    return slots_[i].value;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Combine all slots. Call after the region (quiescent).
  template <class BinaryOp>
  [[nodiscard]] T reduce(T seed, BinaryOp op) const {
    T acc = seed;
    for (const Slot& s : slots_) acc = op(acc, s.value);
    return acc;
  }

  void reset() {
    for (Slot& s : slots_) s.value = init_;
  }

 private:
  struct alignas(cache_line_bytes) Slot {
    T value;
  };
  T init_;
  std::vector<Slot> slots_;
};

}  // namespace bots::rt
