// Thread-affinity primitives for worker pinning (SchedulerConfig::pin_workers).
//
// The Topology layer maps workers onto locality nodes, but a map alone is
// aspirational: unpinned threads migrate wherever the OS likes, so the
// hierarchical steal policy's "same-node first" reasoning need not match
// reality. These helpers close that gap — each worker pins itself to its
// node's cpuset at region entry (Scheduler::apply_pinning) and the observed
// placement is recorded so benchmarks can prove the map matched the machine.
//
// Everything degrades gracefully: on non-Linux hosts, when the cpuset names
// no CPU this machine has (a synthetic "2x4" topology on a 4-core box), or
// when sched_setaffinity is refused (cpuset cgroups, seccomp), the functions
// return false and the worker simply stays unpinned — pinning is a
// performance knob, never a correctness requirement.
#pragma once

#include <cstdio>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bots::rt {

/// Kernel thread id of the calling thread, -1 where unavailable. Unlike a
/// std::thread::id this can address the thread in a later
/// sched_setaffinity from ANYWHERE — how ~Scheduler (or a caller-thread
/// hand-off) restores a mask it saved on a different thread.
[[nodiscard]] inline long current_tid() noexcept {
#if defined(__linux__)
  return static_cast<long>(::syscall(SYS_gettid));
#else
  return -1;
#endif
}

/// Pin thread `tid` (0 = the calling thread) to `cpus`. CPU ids outside
/// the kernel's fixed cpu_set_t range are dropped from the mask (they
/// cannot exist here); returns false — leaving the thread's affinity
/// untouched — when the surviving mask is empty, the syscall fails (the
/// thread may be gone), or the platform has no affinity API. Note Linux
/// itself intersects the mask with the online CPUs, so a partially-valid
/// cpuset pins to its valid subset.
[[nodiscard]] inline bool pin_thread(long tid,
                                     const std::vector<unsigned>& cpus) noexcept {
#if defined(__linux__)
  if (cpus.empty() || tid < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const unsigned cpu : cpus) {
    if (cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(static_cast<pid_t>(tid), sizeof(set), &set) == 0;
#else
  (void)tid;
  (void)cpus;
  return false;
#endif
}

/// Pin the calling thread to `cpus` (see pin_thread).
[[nodiscard]] inline bool pin_current_thread(
    const std::vector<unsigned>& cpus) noexcept {
  return pin_thread(0, cpus);
}

/// True while `tid` names a live thread of THIS process. Gate for
/// cross-thread mask restores: kernel tids are recycled after a thread
/// exits, and sched_setaffinity would happily retarget whoever inherited
/// the id — scoping to /proc/self/task rules out foreign processes and
/// exited threads (a same-process tid wraparound collision remains
/// theoretically possible, and harmlessly re-masks our own thread).
[[nodiscard]] inline bool same_process_thread(long tid) noexcept {
#if defined(__linux__)
  if (tid < 0) return false;
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/self/task/%ld", tid);
  return ::access(path, F_OK) == 0;
#else
  (void)tid;
  return false;
#endif
}

/// The CPU the calling thread is executing on right now, -1 when unknown.
/// Immediately after a successful pin this proves the placement: the value
/// must be a member of the requested cpuset.
[[nodiscard]] inline int current_cpu() noexcept {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

/// Read the calling thread's current affinity mask into `out` (ascending
/// CPU ids). Used to save the caller thread's mask before worker 0 pins
/// itself, so ~Scheduler can restore it. Returns false (out untouched)
/// when unavailable.
[[nodiscard]] inline bool save_current_affinity(
    std::vector<unsigned>& out) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return false;
  std::vector<unsigned> cpus;
  for (unsigned cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
  out = std::move(cpus);
  return true;
#else
  (void)out;
  return false;
#endif
}

}  // namespace bots::rt
