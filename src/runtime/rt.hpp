// Umbrella header for the bots::rt task-parallel runtime.
#pragma once

#include "runtime/affinity.hpp"    // IWYU pragma: export
#include "runtime/config.hpp"      // IWYU pragma: export
#include "runtime/dependency.hpp"  // IWYU pragma: export
#include "runtime/deque.hpp"       // IWYU pragma: export
#include "runtime/fault.hpp"       // IWYU pragma: export
#include "runtime/taskgraph.hpp"   // IWYU pragma: export
#include "runtime/grain.hpp"       // IWYU pragma: export
#include "runtime/pathology.hpp"   // IWYU pragma: export
#include "runtime/region_ctx.hpp"  // IWYU pragma: export
#include "runtime/scheduler.hpp"   // IWYU pragma: export
#include "runtime/server.hpp"      // IWYU pragma: export
#include "runtime/stats.hpp"       // IWYU pragma: export
#include "runtime/steal_policy.hpp"  // IWYU pragma: export
#include "runtime/task.hpp"        // IWYU pragma: export
#include "runtime/topology.hpp"    // IWYU pragma: export
#include "runtime/trace.hpp"       // IWYU pragma: export
#include "runtime/worker_local.hpp"  // IWYU pragma: export
#include "runtime/worksharing.hpp"   // IWYU pragma: export
