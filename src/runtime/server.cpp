#include "runtime/server.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "runtime/dependency.hpp"
#include "runtime/pathology.hpp"
#include "runtime/taskgraph.hpp"

namespace bots::rt {

namespace {

/// Stride-scheduling quantum: a request's pass advances the global virtual
/// time by stride_unit / weight, so a weight-2 stream is picked twice as
/// often as a weight-1 stream under sustained load.
constexpr std::uint64_t stride_unit = 1ULL << 20;

/// Map a request context's state to its terminal status. `hard_stop` is the
/// resident-region-cancelled path: a request whose subtree was truncated by
/// the region-wide cancel must not report completed.
[[nodiscard]] RequestStatus terminal_from(const RegionCtx& c,
                                          bool hard_stop) noexcept {
  if (c.cancelled()) {
    return c.cancel_cause() == RegionStatus::deadline_exceeded
               ? RequestStatus::deadline_exceeded
               : RequestStatus::cancelled;
  }
  return hard_stop ? RequestStatus::cancelled : RequestStatus::completed;
}

}  // namespace

TaskServer::TaskServer(Scheduler& sched, ServerConfig cfg)
    : sched_(sched), cfg_(cfg) {
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  max_live_ = cfg_.max_live == 0 ? sched_.num_workers() : cfg_.max_live;
  loop_fn_ = [this](unsigned id) { worker_loop(id); };
  accepting_ = true;
  region_up_ = true;
  // The server thread becomes worker 0 of the resident region; submits that
  // land before the region is published simply wait in the queue until the
  // workers start looping.
  server_thread_ = std::thread([this] { server_main(); });
  monitor_ = std::jthread([this](std::stop_token st) { monitor_main(st); });
  // Block until the resident region is actually published (first worker-loop
  // iteration): a caller must never observe a TaskServer whose region the
  // scheduler does not know about yet (reconfigure() would slip through).
  while (!region_live_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

TaskServer::~TaskServer() { stop(); }

bool TaskServer::retune(StealPolicyKind kind) {
  if (!sched_.config().live_reconfigure) return false;
  // NEVER with mu_ held: reconfigure_live waits for every worker to re-pin
  // its policy snapshot, and a server worker blocked on mu_ (pick_next)
  // still holds its old pin — mu_ + quiescence wait would deadlock.
  sched_.reconfigure_live(kind);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.retunes;
  return true;
}

bool TaskServer::running() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return region_up_;
}

ServerStats TaskServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TaskServer::tally_terminal_locked(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::completed: ++stats_.completed; break;
    case RequestStatus::cancelled: ++stats_.cancelled; break;
    case RequestStatus::deadline_exceeded: ++stats_.deadline_exceeded; break;
    // rejected_overload is tallied at the submit site (it never transits
    // the queue), pending is not terminal.
    case RequestStatus::rejected_overload:
    case RequestStatus::pending: break;
  }
}

std::chrono::milliseconds TaskServer::retry_hint_locked() const noexcept {
  // Backpressure hint: the backlog ahead of a retry, in EWMA service times,
  // spread over the team — i.e. roughly when the queue will have drained a
  // slot. Never less than 1ms: "immediately" would invite a retry storm.
  const std::uint64_t service_us =
      ewma_service_us_ == 0 ? 1000 : ewma_service_us_;
  const std::uint64_t team = sched_.num_workers();
  const std::uint64_t hint_us =
      (static_cast<std::uint64_t>(queue_.size()) + 1) * service_us /
      (team == 0 ? 1 : team);
  return std::chrono::milliseconds(std::max<std::uint64_t>(1, hint_us / 1000));
}

bool TaskServer::shed_one_locked() {
  // Shed the PENDING request closest to missing its deadline: it frees a
  // queue slot and it is the admission the server is least likely to serve
  // usefully. Undeadlined requests are "infinitely far": when nothing
  // carries a deadline, drop the oldest (front) — the plain FIFO overflow
  // policy.
  if (!queue_.empty()) {
    std::size_t victim = 0;
    bool victim_dl = queue_[0].ctx->has_deadline();
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      const bool dl = queue_[i].ctx->has_deadline();
      if (dl && (!victim_dl ||
                 queue_[i].ctx->deadline < queue_[victim].ctx->deadline)) {
        victim = i;
        victim_dl = true;
      }
    }
    PendingReq& p = queue_[victim];
    p.ctx->cancel(RegionStatus::cancelled);
    const RequestStatus st = terminal_from(*p.ctx, /*hard_stop=*/false);
    if (p.ctx->finalize(st)) tally_terminal_locked(st);
    ++stats_.shed;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
    return true;
  }
  // No pending to shed (everything admitted is executing): cancel the
  // nearest-deadline LIVE request so workers free up soon. This does NOT
  // free a queue slot — the triggering submit is still rejected — but the
  // next retry lands on a less saturated server.
  std::shared_ptr<RegionCtx> victim;
  for (const auto& c : live_) {
    if (c->cancelled()) continue;
    if (!victim || (c->has_deadline() &&
                    (!victim->has_deadline() || c->deadline < victim->deadline))) {
      victim = c;
    }
  }
  if (victim) {
    victim->cancel(RegionStatus::cancelled);
    ++stats_.shed;
  }
  return false;
}

SubmitResult TaskServer::submit(std::function<void()> body,
                                RequestOptions opts) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  auto ctx = std::make_shared<RegionCtx>(++next_id_, opts.weight);
  ctx->arrival = std::chrono::steady_clock::now();
  const std::uint32_t dl_ms =
      opts.deadline_ms != 0 ? opts.deadline_ms : cfg_.default_deadline_ms;
  if (dl_ms > 0) ctx->deadline = ctx->arrival + std::chrono::milliseconds(dl_ms);
  SubmitResult res;
  res.handle = RegionHandle(ctx);
  if (!accepting_) {
    // Draining or stopped: permanent rejection, no retry hint.
    ++stats_.rejected;
    (void)ctx->finalize(RequestStatus::rejected_overload);
    return res;
  }
  FaultPlan& plan = sched_.fault_plan();
  if (plan.site_active(FaultSite::server_admit) &&
      plan.should_fail(FaultSite::server_admit)) {
    // Injected transient admission failure: same client-visible contract as
    // a real overload — rejected with a retry hint, never an exception.
    ++stats_.rejected;
    (void)ctx->finalize(RequestStatus::rejected_overload);
    res.retry_after = retry_hint_locked();
    return res;
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    const bool slot_freed = cfg_.shed_on_overload && shed_one_locked();
    if (!slot_freed) {
      ++stats_.rejected;
      (void)ctx->finalize(RequestStatus::rejected_overload);
      res.retry_after = retry_hint_locked();
      return res;
    }
  }
  ++stats_.admitted;
  PendingReq req;
  req.ctx = ctx;
  req.body = std::move(body);
  // weight() is already clamped >= 1 by RegionCtx.
  req.pass = global_pass_ + stride_unit / ctx->weight();
  queue_.push_back(std::move(req));
  res.admitted = true;
  return res;
}

TaskServer::GraphEntry& TaskServer::graph_entry(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = graphs_[tag];
  if (!slot) {
    slot = std::make_unique<GraphEntry>();
    slot->graph = std::make_unique<TaskGraph>();
  }
  return *slot;
}

SubmitResult TaskServer::submit_graph(const std::string& tag,
                                      std::function<void(DepScope&)> build,
                                      const void* key, RequestOptions opts) {
  GraphEntry& entry = graph_entry(tag);
  // The winner of the busy flag records or replays the tag's cached graph;
  // a concurrent same-tag request runs the SAME build dynamically instead —
  // identical result, un-cached cost — so correctness never depends on
  // request spacing. The flag is released even if the body throws (the
  // request's exception handling proceeds as for any submit()).
  auto body = [this, &entry, key, build = std::move(build)] {
    if (!entry.busy.exchange(true, std::memory_order_acquire)) {
      struct Unbusy {
        std::atomic<bool>& flag;
        ~Unbusy() { flag.store(false, std::memory_order_release); }
      } unbusy{entry.busy};
      run_graph_region(sched_, *entry.graph, key, build);
    } else {
      DepScope sc;
      build(sc);
      sc.wait();
    }
  };
  return submit(std::move(body), opts);
}

bool TaskServer::pick_next_locked(PendingReq& out) {
  if (queue_.empty() || live_.size() >= max_live_) return false;
  std::size_t best = 0;
  if (cfg_.fairness == ServerFairness::weighted_share) {
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].pass < queue_[best].pass) best = i;
    }
    global_pass_ = queue_[best].pass;
  }
  out = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  live_.push_back(out.ctx);
  return true;
}

void TaskServer::run_request(PendingReq req) {
  const auto t0 = std::chrono::steady_clock::now();
  sched_.run_ctx_root(*req.ctx, req.body);
  const auto service = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  // cancellation_point() from the worker loop's implicit task sees the
  // RESIDENT region's cancel word: true = someone hard-stopped the server
  // while this request ran, so its subtree was truncated mid-flight.
  const bool hard_stop = cancellation_point();
  const RequestStatus st = terminal_from(*req.ctx, hard_stop);
  std::lock_guard<std::mutex> lock(mu_);
  if (req.ctx->finalize(st)) tally_terminal_locked(st);
  if (st == RequestStatus::completed) {
    const auto us = static_cast<std::uint64_t>(service.count());
    ewma_service_us_ =
        ewma_service_us_ == 0 ? us : (7 * ewma_service_us_ + us) / 8;
  }
  live_.erase(std::find(live_.begin(), live_.end(), req.ctx));
}

void TaskServer::worker_loop(unsigned id) {
  (void)id;
  region_live_.store(true, std::memory_order_release);
  unsigned idle_spins = 0;
  for (;;) {
    // Hard stop: an external cancel_current_region() cancelled the resident
    // region. Leave immediately; server_main sweeps up non-terminal
    // requests after the region is down.
    if (cancellation_point()) break;
    PendingReq req;
    bool got = false;
    bool leave = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      got = pick_next_locked(req);
      if (!got && draining_ && queue_.empty()) leave = true;
    }
    if (got) {
      run_request(std::move(req));
      idle_spins = 0;
      continue;
    }
    if (leave) {
      // Graceful drain with an empty queue: nothing left to pick. The
      // region-end barrier this worker now enters keeps it HELPING other
      // workers' still-live requests until true quiescence.
      break;
    }
    if (sched_.help_one()) {
      idle_spins = 0;
    } else if (++idle_spins < 16) {
      std::this_thread::yield();
    } else {
      // Resident steady state: park briefly instead of burning the core.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void TaskServer::server_main() {
  (void)sched_.run_persistent(loop_fn_);
  // The resident region is down — graceful drain or hard stop. Every
  // admitted-but-unpicked request is terminal-ized here so the
  // every-request-ends-in-exactly-one-state law holds on both paths (the
  // workers finalize everything they picked before leaving).
  std::lock_guard<std::mutex> lock(mu_);
  accepting_ = false;
  draining_ = true;
  region_up_ = false;
  for (auto& p : queue_) {
    p.ctx->cancel(RegionStatus::cancelled);
    const RequestStatus st = terminal_from(*p.ctx, /*hard_stop=*/true);
    if (p.ctx->finalize(st)) tally_terminal_locked(st);
  }
  queue_.clear();
  for (auto& c : live_) {  // defensive: workers drain live_ before leaving
    c->cancel(RegionStatus::cancelled);
    const RequestStatus st = terminal_from(*c, /*hard_stop=*/true);
    if (c->finalize(st)) tally_terminal_locked(st);
  }
  live_.clear();
}

void TaskServer::monitor_main(const std::stop_token& st) {
  // Per-request deadline enforcement + stall reporting, over the live and
  // pending RegionCtx sets. This replaces the scheduler's per-region
  // monitor, which run_persistent deliberately does not start.
  struct Watch {
    std::uint64_t progress = 0;
    std::chrono::steady_clock::time_point since;
  };
  std::unordered_map<std::uint64_t, Watch> watch;
  const bool watchdog = cfg_.watchdog_ms > 0;
  const auto stall_after = std::chrono::milliseconds(cfg_.watchdog_ms);
  const auto poll = std::chrono::milliseconds(2);
  // Phase detection (PR 9, richer signal PR 10): on the RT_SERVER_RETUNE_MS
  // cadence, feed the per-window deltas of the scheduler's steal telemetry —
  // plus, when tracing is live, the trace layer's spawn-concentration signal
  // — into a PhaseDetector (pathology.hpp) and hot-swap the steal policy
  // when the workload phase changed:
  //
  //   * sustained cross-node steal churn, OR a serialized-creation phase
  //     (one worker sourcing nearly every spawn while the team runs hungry),
  //     switches to hierarchical — node-tiered victim order + hint gating
  //     keeps the probe storm off the hot node;
  //   * a settled phase (remote churn AND hint-skip activity near zero,
  //     workers not hungry) switches back to last_victim.
  //
  // With tracing off the concentration signal is identically zero and the
  // detector degrades to exactly PR 9's two-signal EWMA. Detection and the
  // swap run OUTSIDE mu_ (see retune()); thresholds scale with team size.
  const bool detect = cfg_.retune_ms > 0 && sched_.config().live_reconfigure;
  const auto retune_window = std::chrono::milliseconds(
      cfg_.retune_ms == 0 ? 1 : cfg_.retune_ms);
  auto last_sample = std::chrono::steady_clock::now();
  Scheduler::Telemetry prev_tele = detect ? sched_.telemetry()
                                          : Scheduler::Telemetry{};
  PhaseDetector phase(static_cast<double>(sched_.num_workers()));
  std::vector<std::uint64_t> prev_spawn;
  if (const TraceCollector* tc = sched_.tracer(); detect && tc != nullptr) {
    prev_spawn.resize(tc->num_workers());
    for (unsigned i = 0; i < tc->num_workers(); ++i)
      prev_spawn[i] = tc->count(i, TraceEvent::spawn);
  }
  while (!st.stop_requested()) {
    if (detect) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_sample >= retune_window) {
        last_sample = now;
        const Scheduler::Telemetry t = sched_.telemetry();
        PhaseSample smp;
        smp.d_remote =
            static_cast<double>(t.steals_remote_node - prev_tele.steals_remote_node);
        smp.d_skip = static_cast<double>(t.remote_probes_skipped -
                                         prev_tele.remote_probes_skipped);
        smp.d_hungry =
            static_cast<double>(t.hungry_rounds - prev_tele.hungry_rounds);
        prev_tele = t;
        // Trace-fed enrichment: this window's spawn volume and how
        // concentrated it was on one worker (live ring counters, relaxed
        // single-writer — legal to sample under the running region).
        if (const TraceCollector* tc = sched_.tracer();
            tc != nullptr && prev_spawn.size() == tc->num_workers()) {
          std::uint64_t window_total = 0, window_top = 0;
          for (unsigned i = 0; i < tc->num_workers(); ++i) {
            const std::uint64_t cur = tc->count(i, TraceEvent::spawn);
            const std::uint64_t d = cur - prev_spawn[i];
            prev_spawn[i] = cur;
            window_total += d;
            window_top = std::max(window_top, d);
          }
          smp.d_spawn = static_cast<double>(window_total);
          smp.spawn_top_share =
              window_total == 0 ? 0.0
                                : static_cast<double>(window_top) /
                                      static_cast<double>(window_total);
        }
        if (auto want = phase.update(smp, sched_.active_steal_policy())) {
          (void)retune(*want);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (auto& p : queue_) {
        if (p.ctx->has_deadline() && now >= p.ctx->deadline) {
          // Still pending at its deadline: cancel; the worker that picks it
          // skips the body and finalizes it as deadline_exceeded.
          p.ctx->cancel(RegionStatus::deadline_exceeded);
        }
      }
      for (auto& c : live_) {
        if (c->has_deadline() && now >= c->deadline) {
          c->cancel(RegionStatus::deadline_exceeded);
        }
        if (!watchdog) continue;
        auto [it, fresh] = watch.try_emplace(c->id(), Watch{c->progress(), now});
        if (fresh) continue;
        const std::uint64_t p = c->progress();
        if (p != it->second.progress) {
          it->second.progress = p;
          it->second.since = now;
        } else if (now - it->second.since >= stall_after) {
          std::fprintf(
              stderr,
              "rt: SERVER STALL: request %llu no progress for %u ms "
              "(deferred=%llu executed=%llu discarded=%llu cancel=%s)\n",
              static_cast<unsigned long long>(c->id()), cfg_.watchdog_ms,
              static_cast<unsigned long long>(c->deferred()),
              static_cast<unsigned long long>(c->executed()),
              static_cast<unsigned long long>(c->discarded()),
              to_string(c->cancel_cause()));
          it->second.since = now;  // re-arm: one report per stalled window
        }
      }
      if (watchdog) {
        for (auto it = watch.begin(); it != watch.end();) {
          const std::uint64_t id = it->first;
          const bool still_live =
              std::any_of(live_.begin(), live_.end(),
                          [id](const auto& c) { return c->id() == id; });
          it = still_live ? std::next(it) : watch.erase(it);
        }
      }
    }
    std::this_thread::sleep_for(poll);
  }
}

void TaskServer::join_server() {
  std::lock_guard<std::mutex> jl(join_mu_);
  if (joined_) return;
  if (server_thread_.joinable()) server_thread_.join();
  monitor_.request_stop();
  if (monitor_.joinable()) monitor_.join();
  joined_ = true;
}

void TaskServer::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    draining_ = true;
  }
  join_server();
}

void TaskServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    // Pending requests are cancelled without ever being picked; live ones
    // are cancelled cooperatively and finalized by their worker.
    for (auto& p : queue_) {
      p.ctx->cancel(RegionStatus::cancelled);
      const RequestStatus st = terminal_from(*p.ctx, /*hard_stop=*/false);
      if (p.ctx->finalize(st)) tally_terminal_locked(st);
    }
    queue_.clear();
    for (auto& c : live_) c->cancel(RegionStatus::cancelled);
    draining_ = true;
  }
  join_server();
}

}  // namespace bots::rt
