#include "runtime/taskgraph.hpp"

#include <cstddef>
#include <memory>
#include <mutex>

namespace bots::rt {

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

void TaskGraph::begin_record(const void* key) {
  nodes_.clear();
  rec_edges_.clear();
  succ_storage_.clear();
  roots_.clear();
  key_ = key;
  epoch_ = 0;
  frozen_ = false;
  aborted_ = false;
}

std::uint32_t TaskGraph::record_node(std::function<void()> body, Tiedness t) {
  Node& n = nodes_.emplace_back();
  n.body = std::move(body);
  n.tied = t;
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void TaskGraph::record_edge(std::uint32_t pred, std::uint32_t succ) {
  rec_edges_.emplace_back(pred, succ);
}

void TaskGraph::record_abort() noexcept { aborted_ = true; }

void TaskGraph::freeze(Worker& w) {
  if (aborted_) {
    // The executed structure diverged from the recorded one (a spawn
    // degraded to inline under allocation failure): the recording is void.
    // Stay un-frozen; the next invocation simply records again.
    nodes_.clear();
    rec_edges_.clear();
    return;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size());
  // Bake the edge list into CSR successor spans + predecessor counts. The
  // edges came from the tracker's PREDECESSOR computation (structural), not
  // from which pushes raced a finishing task, so the baked graph is
  // independent of record-time scheduling.
  std::vector<std::uint32_t> offset(n + 1, 0);
  for (const auto& e : rec_edges_) ++offset[e.first + 1];
  for (std::uint32_t i = 0; i < n; ++i) offset[i + 1] += offset[i];
  succ_storage_.assign(rec_edges_.size(), 0);
  std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
  for (const auto& e : rec_edges_) {
    succ_storage_[cursor[e.first]++] = e.second;
    ++nodes_[e.second].npred;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    Node& nd = nodes_[i];
    nd.dep.task = &nd.task;
    nd.dep.graph = this;
    nd.dep.baked_succs = succ_storage_.data() + offset[i];
    nd.dep.baked_count = offset[i + 1] - offset[i];
    if (nd.npred == 0) roots_.push_back(i);
  }
  rec_edges_.clear();
  rec_edges_.shrink_to_fit();
  // Structure-relevance fold (PR 9): graph_epoch() moves only on changes
  // that invalidate a recorded shape — reconfigure() / shrink_team (team
  // size, topology, node mapping). reconfigure_live() deliberately does
  // NOT bump it: a steal-policy or tunable hot-swap changes WHERE tasks
  // run, never the recorded task set or its edges, so frozen graphs stay
  // replayable across any number of live swaps and re-record exactly when
  // structure-relevant configuration changed.
  epoch_ = w.sched->graph_epoch();
  frozen_ = true;
  ++w.stats.graphs_recorded;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

void TaskGraph::replay(Worker& w) {
  Scheduler& s = *w.sched;
  ++w.stats.graphs_replayed;
  ++replays_;
  const std::size_t n = nodes_.size();
  if (n == 0) return;
  Task* parent = w.current;
  const std::uint32_t depth =
      (parent != nullptr ? parent->depth() + 1 : 1) + w.inline_depth;
  // One RMW charges the parent every child + reference of the whole graph —
  // the per-spawn parent-cacheline traffic a replay exists to avoid.
  parent->add_children_bulk(n);
  for (Node& nd : nodes_) {
    Task& t = nd.task;
    t.reset_for_reuse();
    t.set_links(parent, depth, nd.tied, TaskStorage::graph);
    t.set_dep(&nd.dep);
    // No concurrent access until a root is published below, so plain-speed
    // stores re-arm the counters.
    nd.dep.pending.store(nd.npred, std::memory_order_relaxed);
    t.init_env(BodyRef{&nd.body});
    w.stats.env_bytes += t.env_bytes();
  }
  // Bulk spawn-side accounting, BEFORE any root is published: the creation
  // invariant (created == deferred on this path) and the region/request
  // live counts can only ever overcount in-flight work, never open a
  // barrier early.
  w.stats.tasks_created += n;
  w.stats.tasks_deferred += n;
  // One weighted record for the whole replayed graph (payload = node count)
  // keeps the spawn counter in lockstep with the bulk deferred accounting.
  trace_record(w.ring, TraceEvent::spawn, n, 1, n);
  w.region->live_tasks.fetch_add(static_cast<std::int64_t>(n),
                                 std::memory_order_release);
  if (RegionCtx* c = parent->ctx()) c->note_deferred_bulk(n);
  // Workers start from the recorded root frontier; interior nodes surface
  // through the finish-path successor walk exactly as their predecessors
  // retire (execute or discard — a cancelled replay drains by discards).
  for (std::uint32_t r : roots_) s.enqueue_released(w, nodes_[r].task);
  s.taskwait_from(w);
}

void TaskGraph::release_baked(Worker& w, DepNode& n) noexcept {
  w.stats.edges_resolved += n.baked_count;
  for (std::uint32_t i = 0; i < n.baked_count; ++i) {
    Node& succ = nodes_[n.baked_succs[i]];
    if (succ.dep.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      w.sched->enqueue_released(w, succ.task);
    }
  }
}

// ---------------------------------------------------------------------------
// Region drivers
// ---------------------------------------------------------------------------

void run_graph_region(Scheduler& s, TaskGraph& g, const void* key,
                      const std::function<void(DepScope&)>& build) {
  Worker* w = detail::tls_worker;
  if (w == nullptr || !s.config().use_taskgraph_replay) {
    DepScope sc;
    build(sc);
    sc.wait();
    return;
  }
  if (g.valid_for(s, key)) {
    g.replay(*w);
    return;
  }
  g.begin_record(key);
  {
    DepScope sc(&g);
    build(sc);
    sc.wait();
  }
  g.freeze(*w);
}

void graph_region(const char* tag, const void* key,
                  const std::function<void(DepScope&)>& build) {
  Worker* w = detail::tls_worker;
  if (w == nullptr) {
    DepScope sc;
    build(sc);
    sc.wait();
    return;
  }
  Scheduler& s = *w->sched;
  run_graph_region(s, s.find_or_create_graph(tag), key, build);
}

// ---------------------------------------------------------------------------
// Scheduler-side registry (here so scheduler.cpp stays graph-agnostic apart
// from the finish hook and epoch bumps)
// ---------------------------------------------------------------------------

TaskGraph& Scheduler::find_or_create_graph(const std::string& tag) {
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  auto& slot = graphs_[tag];
  if (!slot) slot = std::make_unique<TaskGraph>();
  return *slot;
}

}  // namespace bots::rt
