// Per-worker binary event tracing: fixed-size single-writer ring buffers of
// TSC-stamped 24-byte records, drained at region/drain boundaries into a
// Chrome-trace/perfetto JSON exporter.
//
// Design constraints (mirrors the WorkerStats / tele_* split):
//   - record() is owner-only: plain stores into the ring, so the hot path is
//     one predictable null check + a handful of stores. No RMW, no fence.
//   - Per-event running counters are relaxed atomics (single writer, many
//     readers) so the server phase detector and conservation tests can sample
//     them live; they are wrap-proof even when the ring overwrites records.
//   - Rings are drained by their OWNING worker at region exit (participate),
//     never concurrently with writes — TSAN-clean by construction.
//   - Compile-out: -DBOTS_RT_NO_TRACE turns trace_record() into a no-op so
//     the branch itself can be removed for minimal builds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

namespace bots::rt {

enum class TraceEvent : std::uint8_t {
  spawn = 0,       // arg = depth (or task count for bulk replay), arg2 = 1 if deferred / 0 if inlined
  steal_attempt,   // arg = victim worker id
  steal_hit,       // arg = tasks taken, arg2 = (victim_node << 16) | thief_node
  park,            // arg = generation/epoch observed
  unpark,          // arg = claimed worker id
  split,           // arg = remaining iterations at split point
  mailbox,         // arg = descriptor birth (home) node, arg2 = (target_node << 16) | sender_node
  request_start,   // arg = region ctx id
  request_end,     // arg = region ctx id
  hungry,          // fruitless full find_work round
};

inline constexpr std::size_t trace_event_count = 10;

inline const char* trace_event_name(TraceEvent ev) noexcept {
  switch (ev) {
    case TraceEvent::spawn: return "spawn";
    case TraceEvent::steal_attempt: return "steal_attempt";
    case TraceEvent::steal_hit: return "steal_hit";
    case TraceEvent::park: return "park";
    case TraceEvent::unpark: return "unpark";
    case TraceEvent::split: return "split";
    case TraceEvent::mailbox: return "mailbox";
    case TraceEvent::request_start: return "request_start";
    case TraceEvent::request_end: return "request_end";
    case TraceEvent::hungry: return "hungry";
  }
  return "?";
}

// Packed node pair for steal_hit / mailbox payloads.
inline std::uint32_t trace_pack_nodes(unsigned a, unsigned b) noexcept {
  return (static_cast<std::uint32_t>(a) << 16) | (b & 0xffffu);
}
inline unsigned trace_node_hi(std::uint32_t packed) noexcept { return packed >> 16; }
inline unsigned trace_node_lo(std::uint32_t packed) noexcept { return packed & 0xffffu; }

struct TraceRecord {
  std::uint64_t tsc;
  std::uint64_t arg;
  std::uint32_t arg2;
  std::uint8_t type;
  std::uint8_t pad_[3];
};
static_assert(sizeof(TraceRecord) == 24, "trace records must stay packed");

inline std::uint64_t trace_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// One ring per worker. All record-array and cursor accesses are owner-only;
// only the counts_ mirrors cross threads (relaxed, single writer).
class TraceRing {
 public:
  explicit TraceRing(std::uint32_t capacity) {
    std::uint32_t cap = 16;
    while (cap < capacity && cap < (1u << 26)) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void record(TraceEvent ev, std::uint64_t arg = 0, std::uint32_t arg2 = 0,
              std::uint64_t weight = 1) noexcept {
    counts_[static_cast<std::size_t>(ev)].fetch_add(weight,
                                                    std::memory_order_relaxed);
    TraceRecord& r = buf_[head_ & mask_];
    r.tsc = trace_now();
    r.arg = arg;
    r.arg2 = arg2;
    r.type = static_cast<std::uint8_t>(ev);
    ++head_;
  }

  // Owner-only (or quiescent): appends every not-yet-consumed record to out,
  // exactly once. Records overwritten before the drain are counted as dropped.
  void drain(std::vector<TraceRecord>& out) {
    const std::uint64_t h = head_;
    std::uint64_t t = tail_;
    const std::uint64_t cap = static_cast<std::uint64_t>(mask_) + 1;
    if (h - t > cap) {
      dropped_ += (h - t) - cap;
      t = h - cap;
    }
    for (; t != h; ++t) out.push_back(buf_[t & mask_]);
    tail_ = h;
  }

  std::uint64_t count(TraceEvent ev) const noexcept {
    return counts_[static_cast<std::size_t>(ev)].load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint32_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<TraceRecord> buf_;
  std::uint32_t mask_ = 0;
  std::uint64_t head_ = 0;    // owner-only
  std::uint64_t tail_ = 0;    // owner-only (drain cursor)
  std::uint64_t dropped_ = 0;
  alignas(64) std::atomic<std::uint64_t> counts_[trace_event_count] = {};
};

// trace_record(): the per-site helper. When tracing is knob-off the worker's
// ring pointer is nullptr, so the entire cost is one predictable branch.
#if defined(BOTS_RT_NO_TRACE)
inline void trace_record(TraceRing*, TraceEvent, std::uint64_t = 0,
                         std::uint32_t = 0, std::uint64_t = 1) noexcept {}
#else
inline void trace_record(TraceRing* ring, TraceEvent ev, std::uint64_t arg = 0,
                         std::uint32_t arg2 = 0,
                         std::uint64_t weight = 1) noexcept {
  if (ring != nullptr) ring->record(ev, arg, arg2, weight);
}
#endif

// Owns the per-worker rings plus the drained event archive; converts TSC to
// wall-clock microseconds for export using a start/export calibration pair.
class TraceCollector {
 public:
  TraceCollector(unsigned workers, std::uint32_t ring_capacity);

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(rings_.size());
  }
  TraceRing* ring(unsigned i) noexcept { return rings_[i].get(); }
  const TraceRing* ring(unsigned i) const noexcept { return rings_[i].get(); }

  // Called by worker i itself at a region/drain boundary.
  void drain_worker(unsigned i) { rings_[i]->drain(drained_[i]); }
  // Called between regions (all workers quiescent).
  void drain_all() {
    for (unsigned i = 0; i < num_workers(); ++i) drain_worker(i);
  }

  const std::vector<TraceRecord>& events(unsigned i) const {
    return drained_[i];
  }
  std::uint64_t count(unsigned i, TraceEvent ev) const noexcept {
    return rings_[i]->count(ev);
  }
  std::uint64_t total(TraceEvent ev) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& r : rings_) sum += r->count(ev);
    return sum;
  }
  std::uint64_t total_events_drained() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& d : drained_) sum += d.size();
    return sum;
  }
  std::uint64_t dropped() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& r : rings_) sum += r->dropped();
    return sum;
  }

  // Chrome-trace ("traceEvents") JSON, loadable by ui.perfetto.dev and
  // chrome://tracing. Call between regions. Returns false on I/O failure.
  bool export_chrome_trace(const char* path) const;

  // Microseconds since collector construction for a raw timestamp.
  double tsc_to_us(std::uint64_t tsc) const noexcept;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<std::vector<TraceRecord>> drained_;
  std::uint64_t t0_tsc_;
  std::chrono::steady_clock::time_point t0_wall_;
};

}  // namespace bots::rt
