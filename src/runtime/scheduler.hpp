// Work-stealing task scheduler reproducing the OpenMP 3.0 tasking execution
// model that BOTS (ICPP'09) evaluates.
//
// Execution model
// ---------------
// * A Scheduler owns a persistent team of workers (the calling thread is
//   worker 0; the rest are std::jthreads parked on a condition variable
//   between parallel regions — Core Guidelines CP.41/CP.42).
// * run_single(fn) opens a parallel region where worker 0 executes fn (the
//   "single generator" pattern of the paper); everybody else goes straight
//   to the region barrier and helps by stealing.
// * run_all(fn) executes fn(worker_id) on every worker (the "multiple
//   generators" pattern); rt::barrier() is available inside for phased
//   algorithms such as SparseLU's `for` version.
// * Tasks run to completion; the only task scheduling points are spawn
//   (through the cut-off), taskwait and barriers, where the waiting worker
//   executes other ready tasks ("help first"). Suspended tasks never migrate,
//   matching the icc 11.0 behaviour reported in Section IV-C of the paper.
// * Tied tasks obey the Task Scheduling Constraint: at a taskwait inside a
//   tied task, only descendants of every suspended tied task of this worker
//   may begin execution. Untied tasks are unconstrained. Claims that fail
//   the constraint are parked worker-locally and re-offered later.
// * Regions end with a quiescence barrier: every explicit task created in
//   the region has completed when run_* returns (the OpenMP guarantee that
//   barriers complete all outstanding explicit tasks).
//
// Exceptions thrown by tasks are captured; the first one is rethrown to the
// caller of run_single/run_all after the region completes (there is no
// cancellation: remaining tasks still execute).
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/deque.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"

namespace bots::rt {

class Scheduler;

/// Per-region shared state. One Region is live per Scheduler at a time.
struct Region {
  explicit Region(unsigned team) : team_size(team) {}

  std::atomic<std::int64_t> live_tasks{0};   ///< deferred tasks not yet finished
  std::atomic<std::uint32_t> arrived{0};     ///< barrier arrival count
  std::atomic<std::uint32_t> barrier_gen{0}; ///< barrier generation (reusable)
  std::atomic<bool> has_exception{false};
  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  /// Claimed tasks refused by the Task Scheduling Constraint. They must stay
  /// globally visible: the ancestor whose taskwait depends on such a task is
  /// always allowed to run it (it is a descendant of that ancestor), so
  /// progress is guaranteed; worker-private parking can deadlock instead.
  std::atomic<std::size_t> overflow_count{0};
  std::mutex overflow_mutex;
  std::vector<Task*> overflow;
  const std::function<void()>* single_fn = nullptr;
  const std::function<void(unsigned)>* all_fn = nullptr;
  unsigned team_size;

  void store_exception() noexcept;
};

/// Internal per-worker state. Public members: this type is an implementation
/// detail shared between the scheduler core and the inline spawn fast path.
class Worker {
 public:
  Worker(Scheduler* s, unsigned worker_id, std::uint64_t seed)
      : id(worker_id), sched(s), rng_state(seed | 1u) {}

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  std::uint64_t rng_next() noexcept {  // xorshift64*
    std::uint64_t x = rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  unsigned id;
  Scheduler* sched;
  Region* region = nullptr;
  Task* current = nullptr;
  WorkStealingDeque deque;
  TaskPool pool;
  WorkerStats stats;
  std::vector<Task*> tied_stack;  ///< tied tasks suspended at taskwait
  bool throttled = false;         ///< adaptive cut-off hysteresis state
  std::uint64_t rng_state;
};

namespace detail {
inline thread_local Worker* tls_worker = nullptr;
}

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Parallel region, single generator: fn runs once on worker 0, the other
  /// workers help through work stealing until every task has completed.
  void run_single(const std::function<void()>& fn);

  /// Parallel region, one implicit task per worker: fn(worker_id) runs on
  /// every worker. rt::barrier() may be used inside.
  void run_all(const std::function<void(unsigned)>& fn);

  [[nodiscard]] unsigned num_workers() const noexcept {
    return cfg_.num_threads;
  }
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return cfg_; }

  /// Aggregate per-worker statistics. Call between regions.
  [[nodiscard]] StatsSnapshot stats() const;
  void reset_stats() noexcept;

  // ---- internal API used by the spawn fast path (do not call directly) ----
  [[nodiscard]] bool should_defer(Worker& w, std::uint32_t depth) noexcept;
  Task* alloc_task(Worker& w, TaskStorage& storage_out);
  void enqueue(Worker& w, Task& t);
  void run_undeferred(Worker& w, Task& t);
  void taskwait_from(Worker& w);
  void barrier_from(Worker& w);
  void run_inline_scope(Worker& w, const std::function<void()>& body);

 private:
  friend struct Region;

  void run_region(Region& r);
  void participate(Worker& w, Region& r);
  void worker_main(unsigned id);
  Task* find_work(Worker& w);
  [[nodiscard]] bool tsc_allows(const Worker& w, const Task& t) const noexcept;
  void execute_deferred(Worker& w, Task& t);
  void finish_task(Worker& w, Task& t, bool deferred);
  void release_chain(Worker& w, Task* t) noexcept;

  SchedulerConfig cfg_;
  std::uint32_t cutoff_bound_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::jthread> threads_;

  std::mutex region_mutex_;
  std::condition_variable region_cv_;
  std::uint64_t region_seq_ = 0;       // guarded by region_mutex_
  Region* region_ = nullptr;           // guarded by region_mutex_
  bool stopping_ = false;              // guarded by region_mutex_
  std::atomic<unsigned> region_done_{0};
};

// ---------------------------------------------------------------------------
// Free functions: the task API usable from inside kernels. All of them are
// safe to call outside a parallel region, where they degrade to immediate
// serial execution (a team of one), mirroring OpenMP constructs outside a
// parallel construct.
// ---------------------------------------------------------------------------

[[nodiscard]] inline bool in_region() noexcept {
  return detail::tls_worker != nullptr;
}

[[nodiscard]] inline unsigned worker_id() noexcept {
  Worker* w = detail::tls_worker;
  return w != nullptr ? w->id : 0u;
}

[[nodiscard]] inline unsigned team_size() noexcept {
  Worker* w = detail::tls_worker;
  return w != nullptr ? w->region->team_size : 1u;
}

/// Create a task. Equivalent to `#pragma omp task [untied]`.
template <class F>
void spawn(Tiedness tied, F&& f) {
  Worker* w = detail::tls_worker;
  if (w == nullptr) {  // outside a region: execute immediately
    std::forward<F>(f)();
    return;
  }
  Scheduler& s = *w->sched;
  ++w->stats.tasks_created;
  const std::uint32_t depth = w->current != nullptr ? w->current->depth() + 1 : 1;
  const bool defer = s.should_defer(*w, depth);
  TaskStorage storage{};
  Task* t = s.alloc_task(*w, storage);
  t->init_env(std::forward<F>(f));
  w->stats.env_bytes += t->env_bytes();
  Task* parent = w->current;
  parent->add_child_ref();
  t->set_links(parent, depth, tied, storage);
  if (defer) {
    ++w->stats.tasks_deferred;
    s.enqueue(*w, *t);
  } else {
    ++w->stats.tasks_cutoff_inlined;
    s.run_undeferred(*w, *t);
  }
}

template <class F>
void spawn(F&& f) {
  spawn(Tiedness::tied, std::forward<F>(f));
}

/// Create a task guarded by an `if` clause: when `condition` is false the
/// task is undeferred — it still allocates a descriptor and joins the task
/// hierarchy (the bookkeeping the paper says the runtime "still has to do
/// ... to keep consistency"), but executes immediately on this worker.
template <class F>
void spawn_if(bool condition, Tiedness tied, F&& f) {
  Worker* w = detail::tls_worker;
  if (w == nullptr) {
    std::forward<F>(f)();
    return;
  }
  if (condition) {
    spawn(tied, std::forward<F>(f));
    return;
  }
  Scheduler& s = *w->sched;
  ++w->stats.tasks_created;
  ++w->stats.tasks_if_inlined;
  const std::uint32_t depth = w->current != nullptr ? w->current->depth() + 1 : 1;
  TaskStorage storage{};
  Task* t = s.alloc_task(*w, storage);
  t->init_env(std::forward<F>(f));
  w->stats.env_bytes += t->env_bytes();
  Task* parent = w->current;
  parent->add_child_ref();
  t->set_links(parent, depth, tied, storage);
  s.run_undeferred(*w, *t);
}

template <class F>
void spawn_if(bool condition, F&& f) {
  spawn_if(condition, Tiedness::tied, std::forward<F>(f));
}

/// Wait for all child tasks of the current task. `#pragma omp taskwait`.
inline void taskwait() {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return;
  w->sched->taskwait_from(*w);
}

/// Team barrier; also completes all outstanding explicit tasks (the OpenMP
/// guarantee). Only valid inside run_all regions. `#pragma omp barrier`.
inline void barrier() {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return;
  w->sched->barrier_from(*w);
}

}  // namespace bots::rt
