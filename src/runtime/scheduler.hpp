// Work-stealing task scheduler reproducing the OpenMP 3.0 tasking execution
// model that BOTS (ICPP'09) evaluates.
//
// Execution model
// ---------------
// * A Scheduler owns a persistent team of workers (the calling thread is
//   worker 0; the rest are std::jthreads parked on a condition variable
//   between parallel regions — Core Guidelines CP.41/CP.42).
// * run_single(fn) opens a parallel region where worker 0 executes fn (the
//   "single generator" pattern of the paper); everybody else goes straight
//   to the region barrier and helps by stealing.
// * run_all(fn) executes fn(worker_id) on every worker (the "multiple
//   generators" pattern); rt::barrier() is available inside for phased
//   algorithms such as SparseLU's `for` version.
// * Tasks run to completion; the only task scheduling points are spawn
//   (through the cut-off), taskwait and barriers, where the waiting worker
//   executes other ready tasks ("help first"). Suspended tasks never migrate,
//   matching the icc 11.0 behaviour reported in Section IV-C of the paper.
// * Tied tasks obey the Task Scheduling Constraint: at a taskwait inside a
//   tied task, only descendants of every suspended tied task of this worker
//   may begin execution. Untied tasks are unconstrained. Claims that fail
//   the constraint are parked worker-locally and re-offered later.
// * Regions end with a quiescence barrier: every explicit task created in
//   the region has completed when run_* returns (the OpenMP guarantee that
//   barriers complete all outstanding explicit tasks).
//
// Fast-path design (the BOTS overhead knobs this repo exists to measure)
// ----------------------------------------------------------------------
// * Batched live-task accounting: Region::live_tasks is the only per-spawn
//   shared-cacheline counter, so spawn/finish adjust a per-worker delta
//   instead and flush it every SchedulerConfig::accounting_batch operations
//   and at every task scheduling point where the worker finds no local work
//   (taskwait/barrier entry and their idle iterations). Quiescence stays
//   sound: the global counter always equals true-live minus the sum of
//   unflushed deltas, and once a worker arrives at a barrier its spawn-side
//   increments flush eagerly (enqueue checks Worker::barrier_draining) —
//   so when all workers have arrived, no unflushed delta is ever positive,
//   the global counter never undercounts, and zero really means quiescent.
//   (Batching an increment across an execute would otherwise let it cancel
//   against the already-flushed finish of the same subtree executed
//   elsewhere, zeroing the counter with work still running.) taskwait needs
//   no such care: it waits on the exact per-parent unfinished-children
//   counter, not on live_tasks. Deltas are region-scoped, reset on entry.
// * LIFO slot: the newest spawned task waits in a private one-entry slot
//   (Worker::slot) instead of the deque, so the hottest pop of depth-first
//   recursion costs two plain stores instead of a seq_cst-fenced deque pop.
//   find_work drains the slot before the worker steals or reports no work,
//   so a task can hide there only while its owner is between scheduling
//   points — liveness and quiescence arguments see it like any queued task.
// * Batched stealing: an unconstrained thief raids up to half the victim's
//   deque in one coherence transfer (deque.hpp explains why it is one CAS
//   *per task* but one cacheline transfer per raid), returns one eligible
//   task and keeps the surplus in a private stash consumed before the deque
//   (constrained thieves — a non-empty tied stack — raid single tasks: a
//   batch of non-descendants would land straight in the parked pool). A
//   worker also remembers the last victim a steal succeeded from and tries
//   it first (steals come in bursts from loaded workers).
// * Policy layer: victim selection ORDER, steal-batch sizing and the
//   range-split demand check are not decided here — steal_work probes the
//   victims its StealPolicy (steal_policy.hpp) lists, with the batch cap the
//   policy returns per victim, and RangeRunner asks the policy whether to
//   split. The hierarchical policy consults the Topology (topology.hpp) to
//   prefer same-node victims and to shrink cross-node batches, and skips
//   remote nodes whose NodeHints has-work word is clear (published by
//   enqueue/steal-surplus, cleared on observed node-wide dryness, with a
//   backoff round bounding staleness). With cfg.pin_workers each worker
//   pins itself to its node's cpuset at region entry (affinity.hpp), so
//   the topology map matches what the OS schedules; spawn_range grain is
//   retuned at runtime per spawn site by the GrainTable (grain.hpp) when
//   use_adaptive_grain is on, resetting to the seeded base at region start.
//   The scheduler core only executes decisions.
// * Zero-alloc undeferred execution: when spawn_if's condition is false or
//   the cut-off refuses deferral, the closure runs directly on the parent's
//   frame with no descriptor at all (detail::run_inline_fast): depth is
//   tracked in Worker::inline_depth and an inlined tied task pushes its
//   parent on the tied stack so the TSC stays enforced across it. Children
//   spawned inside the body are adopted by the nearest descriptor-carrying
//   ancestor, which makes every join conservative (a superset wait), never
//   weaker. Knob: use_inline_fast_path.
// * Range tasks: spawn_range (worksharing.hpp) publishes one descriptor per
//   iteration range; the executor peels grain-sized chunks and splits the
//   upper half into a sibling descriptor whenever its local queue is empty —
//   the state a steal leaves behind, so splits chase demand (a thief's first
//   check always splits). enqueue routes range tasks past the private LIFO
//   slot so a freshly published half is immediately stealable. Knob:
//   use_range_tasks (consumed by the loop-style kernels).
// * NUMA-honest descriptor memory (use_node_pools, multi-node topologies):
//   descriptors come from per-node arenas (task.hpp NodeArena) fronted by a
//   private per-worker cache — carved and first-touched only by the owning
//   node's (pinned) workers — and a descriptor finishing on a FOREIGN node
//   retires to its birth node's arena through a per-worker outbound stash
//   flushed home in batches (RemoteStash), never into the thief's pool.
//   Descriptor memory therefore stops migrating across the interconnect as
//   tasks are stolen (pool_home_frees / pool_remote_frees / pool_migrations
//   count it; remote frees are zero by construction with the knob on). On a
//   single-node topology allocation degenerates to the per-worker TaskPool
//   path bit-for-bit.
// * Hint-aware range placement (use_hint_placement): when a range splitter
//   sits on a node whose has-work word is set (local surplus) while a
//   remote node's word is clear (provably hungry), the split-off upper half
//   is mailed to that node's RangeMailbox — consulted by find_work right
//   after the local phase — instead of enqueued on the splitter's deque, so
//   the idle node stops paying cross-node steal latency for work the busy
//   node already knows it cannot drain. An idle-path sweep of all
//   mailboxes keeps a mailed half from ever stranding.
// * TSC parking: a claimed task the constraint refuses is pushed onto the
//   claiming worker's lock-free parked inbox (a Treiber stack). Idle workers
//   drain whole inboxes with one exchange(nullptr) — MPSC-style handoff —
//   keep the first eligible task and republish the rest onto their own
//   inbox. Progress: a parked task always sits in exactly one inbox except
//   while a drainer transiently holds it, and the drainer either executes it
//   or immediately republishes it; every find_work round scans all inboxes,
//   so any worker the constraint permits finds a parked task on its next
//   idle round. A worker waiting at a taskwait inside tied task P can claim
//   any pending descendant of P whenever every entry of its suspended stack
//   is an ancestor of that descendant — true by construction for all-tied
//   nested task graphs (each entry was TSC-checked against the ones below
//   when claimed), where the waited-on subtree is therefore always claimable
//   by the waiter itself, exactly as with the seed's global parking list.
//
// Exceptions: a DEFERRED task's exception is captured into the region and
// the first one is rethrown to the caller of run_single/run_all after the
// region completes. By default there is no cancellation — remaining tasks
// still execute (OpenMP has no cross-thread propagation to mimic); with
// cfg.cancel_on_exception the first captured exception also cancels the
// region cooperatively (below). An UNDEFERRED task — spawn_if(false), a
// cut-off-refused spawn, with or without the zero-alloc inline path — runs
// synchronously on the encountering thread, so its exception propagates
// from the spawn call itself like any function call (the OpenMP-faithful
// semantics: the construct is sequenced in the parent), after the worker's
// bookkeeping is unwound and any descriptor retired. Uncaught, it unwinds
// into the enclosing task body and from there follows the deferred rules.
//
// Cancellation (PR 6, OpenMP `cancel taskgroup` style): Region::cancel sets
// a sticky cancel word that every dispatch boundary consults — a deferred
// task dequeued after the cancel is DISCARDED (its environment destroyed
// and its descriptor retired through the normal finish path, never
// executing the body; counted in WorkerStats::tasks_discarded), undeferred
// and zero-alloc inline dispatches are skipped (tasks_discarded_inline),
// and RangeRunner stops peeling chunks at its next grain boundary. Already
// RUNNING bodies are never interrupted — they observe the cancel only at
// rt::cancellation_point() or their next spawn — so cancellation latency is
// bounded by the longest grain/body, and the quiescence barrier still sees
// every descriptor retired: all pool/accounting invariants hold on the
// cancelled path (with tasks_executed + tasks_discarded == tasks_deferred
// replacing executed == deferred). Triggers: rt::cancel_region() from any
// task body, Scheduler::cancel_current_region() from outside, a region
// deadline expiring (run_single/run_all overloads taking a
// std::chrono::milliseconds budget report RegionStatus::deadline_exceeded),
// the stall watchdog with cfg.watchdog_cancel, or the first captured task
// exception with cfg.cancel_on_exception. The monitor thread (deadline +
// watchdog) samples per-worker progress atomics and live_tasks only.
//
// Degradation ladder (PR 6): descriptor allocation falls from the pool /
// node-arena rung to a plain per-descriptor heap rung
// (pool_alloc_fallbacks) to serial inline execution on the spawner's frame
// (tasks_degraded_inline) instead of aborting; a worker thread that cannot
// be spawned at construction shrinks the team and re-maps the topology
// (Scheduler::team_degraded). Fault sites for all three rungs can be
// exercised deterministically via cfg.fault_plan / RT_FAULT_PLAN
// (fault.hpp).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/deque.hpp"
#include "runtime/fault.hpp"
#include "runtime/grain.hpp"
#include "runtime/region_ctx.hpp"
#include "runtime/stats.hpp"
#include "runtime/steal_policy.hpp"
#include "runtime/task.hpp"
#include "runtime/topology.hpp"
#include "runtime/trace.hpp"

namespace bots::rt {

class Scheduler;
class TaskGraph;  // taskgraph.hpp: recorded graphs, registered per tag below

// RegionStatus and the per-request RegionCtx live in region_ctx.hpp: the
// cancel word / deadline / ledger / watchdog state of PR 6 is now attachable
// per REQUEST (server mode) as well as per region. Dispatch boundaries below
// consult BOTH: the region's word (whole-region cancel, the PR 6 semantics)
// and the dispatched task's ctx word (per-request cancel, null and free in
// ordinary regions).

/// Outcome of a deadline-taking run_single/run_all overload: how the region
/// ended plus the team's cumulative statistics at region end.
struct RegionResult {
  RegionStatus status = RegionStatus::completed;
  StatsSnapshot stats;
};

/// Per-region shared state. One Region is live per Scheduler at a time.
struct Region {
  explicit Region(unsigned team) : team_size(team) {}

  std::atomic<std::int64_t> live_tasks{0};   ///< deferred tasks not yet finished
  std::atomic<std::uint32_t> arrived{0};     ///< barrier arrival count
  std::atomic<std::uint32_t> barrier_gen{0}; ///< barrier generation (reusable)
  std::atomic<bool> has_exception{false};
  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  /// Approximate number of TSC-refused tasks currently parked (either in
  /// per-worker inboxes or the fallback overflow vector). Lets find_work
  /// skip the inbox scan with a single load in the common no-parking case.
  std::atomic<std::size_t> parked_count{0};
  /// Claimed tasks refused by the Task Scheduling Constraint, fallback path
  /// (SchedulerConfig::distributed_parking == false). They must stay
  /// globally visible: the ancestor whose taskwait depends on such a task is
  /// always allowed to run it (it is a descendant of that ancestor), so
  /// progress is guaranteed; invisible worker-private parking could deadlock
  /// instead. The default path parks on per-worker lock-free inboxes
  /// (Worker::parked_inbox) that every worker's find_work scans.
  std::mutex overflow_mutex;
  std::vector<Task*> overflow;
  const std::function<void()>* single_fn = nullptr;
  const std::function<void(unsigned)>* all_fn = nullptr;
  unsigned team_size;

  /// Sticky cancel word: 0 while the region is healthy, otherwise the
  /// RegionStatus of the FIRST cancel cause (first CAS wins). A fresh
  /// Region object is built for every run_single/run_all, so a cancel can
  /// never leak into the next region by construction.
  std::atomic<std::uint8_t> cancel_state{0};
  /// Mirror of SchedulerConfig::cancel_on_exception for this region, set by
  /// run_region before publication (store_exception consults it).
  bool cancel_on_exception = false;

  /// Request cooperative cancellation with `why` as the recorded cause.
  /// Idempotent and thread-safe; callable from any thread, including
  /// non-team threads (the monitor, an external controller).
  void cancel(RegionStatus why) noexcept {
    std::uint8_t expected = 0;
    cancel_state.compare_exchange_strong(expected,
                                         static_cast<std::uint8_t>(why),
                                         std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_state.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] RegionStatus status() const noexcept {
    return static_cast<RegionStatus>(
        cancel_state.load(std::memory_order_relaxed));
  }

  void store_exception() noexcept;
};

/// One immutable generation of every live-swappable scheduling-decision
/// input: the steal/placement policy, the NodeHints it consults (lifetime
/// owned HERE, not by the scheduler, so a hot swap retires hints and policy
/// together), the grain-table view, and the watchdog tunables. Published by
/// the Scheduler via an RCU-style pointer swap (Scheduler::snap_) and
/// protected by per-worker epoch slots: a worker pins the current snapshot
/// at the top of every find_work round and at every range-chunk boundary
/// (Scheduler::pin_snapshot — one seq_cst load + a pointer compare in the
/// steady state, no lock anywhere), and reconfigure_live() retires the old
/// generation only after every worker's slot has advanced past it or gone
/// quiescent. Everything in here is immutable after publication except the
/// interior atomics (hint words, grain estimates) — workers on the previous
/// generation may act on stale ADVICE for at most one pin interval, which
/// is safe: no conservation law depends on which policy routed a task.
///
/// NOT in the snapshot, deliberately: Topology, NodeArenas, the mailbox
/// array and the team itself. Descriptor birth nodes cannot migrate while
/// descriptors are in flight, so topology/arena swaps stay between-regions
/// only — reconfigure_live() takes no topology parameter (the boundary is
/// in the type system, not a runtime throw; use reconfigure() between
/// regions for those).
struct PolicySnapshot {
  /// Generation number, 1-based, strictly increasing; mirrors
  /// Scheduler::snap_version_ at publication time.
  std::uint64_t version = 0;
  /// The resolved policy kind this generation was built for (never legacy).
  StealPolicyKind kind = StealPolicyKind::last_victim;
  /// Hints consulted by `policy`; null when nothing would ever read them
  /// (non-hierarchical kind, single-node topology, or knob off). Owned by
  /// the snapshot so a swap away from hierarchical cannot leave the old
  /// policy reading freed words.
  std::unique_ptr<NodeHints> hints;
  /// The policy itself. References the Scheduler's Topology (stable for the
  /// snapshot's whole lifetime: topology swaps destroy every snapshot
  /// between regions first) and `hints` above.
  std::unique_ptr<StealPolicy> policy;
  /// Adaptive-grain view for this generation. Points at the scheduler's
  /// GrainTable — grain state is all interior atomics, so a live retune
  /// writes into the live generation (CAS/exchange in grain.hpp) rather
  /// than copying the table per snapshot.
  GrainTable* grain = nullptr;
  /// Watchdog tunables: the per-region monitor re-reads these every poll,
  /// so reconfigure_live can tighten or relax stall detection without
  /// restarting the region.
  std::uint32_t watchdog_ms = 0;
  bool watchdog_cancel = false;
};

/// Internal per-worker state. Public members: this type is an implementation
/// detail shared between the scheduler core and the inline spawn fast path.
class Worker {
 public:
  Worker(Scheduler* s, unsigned worker_id, std::uint64_t seed)
      : id(worker_id), sched(s), rng_state(seed | 1u) {}

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  std::uint64_t rng_next() noexcept {  // xorshift64*
    std::uint64_t x = rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  static constexpr unsigned no_victim = ~0u;

  unsigned id;
  Scheduler* sched;
  Region* region = nullptr;
  Task* current = nullptr;
  WorkStealingDeque deque;
  TaskPool pool;
  WorkerStats stats;
  /// Event-trace ring for this worker (trace.hpp), or nullptr when tracing
  /// is knob-off — every event site checks this one pointer, so the off
  /// cost is a single predictable branch. Owned by the Scheduler's
  /// TraceCollector; wired at construction and after team shrink.
  TraceRing* ring = nullptr;
  // -- node-local descriptor pool state (cfg.use_node_pools; see the
  // -- NodeArena/RemoteStash notes in task.hpp). Only used while the
  // -- scheduler's node pools are active (multi-node topology).
  /// Private cache of recycled home-node descriptors: the lock-free front
  /// end of this worker's node arena, refilled/returned in batches.
  Task* home_free = nullptr;
  std::size_t home_free_count = 0;
  /// Descriptors currently parked across ALL outbound stashes (drives the
  /// pool_migrations high-water stat).
  std::size_t stash_in_transit = 0;
  /// One outbound retirement stash per node, indexed by a dead
  /// descriptor's birth node (own-node slot stays unused). Sized by the
  /// Scheduler constructor and reconfigure().
  std::vector<RemoteStash> outbound;
  std::vector<Task*> tied_stack;  ///< tied tasks suspended at taskwait
  /// Length of the leading tied_stack prefix verified to be an ancestor
  /// chain (each entry a descendant of the one below). While the whole
  /// stack is chained — the case for all-tied nested task graphs — the TSC
  /// check reduces to one ancestry walk against the deepest entry; untied
  /// or inlined tasks can push entries that break the chain, after which
  /// tsc_allows falls back to scanning every entry. Maintained by
  /// taskwait_from and the zero-alloc inline path: one descent check per
  /// push, capped on pop.
  std::size_t tied_chain = 0;
  /// Number of zero-alloc inlined task bodies currently live on this
  /// worker's stack (SchedulerConfig::use_inline_fast_path). Such tasks
  /// have no descriptor, so Worker::current skips them; adding this to the
  /// depth computed from `current` keeps task depths — and with them the
  /// max_depth cut-off and the is_descendant_of depth walk — exact.
  std::uint32_t inline_depth = 0;
  bool throttled = false;         ///< adaptive cut-off hysteresis state
  std::uint64_t rng_state;
  /// Locality domain this worker lives on (Topology::node_of(id), cached
  /// by the Scheduler constructor and refreshed by reconfigure()).
  /// Classifies steals as local/remote and addresses the NodeHints word
  /// published on enqueue.
  unsigned node = 0;
  /// Consecutive hint-gated steal-planning rounds (hierarchical policy
  /// only): reaching HierarchicalPolicy::hint_backoff_rounds forces the
  /// next round to probe every remote node unconditionally, bounding how
  /// long a stale clear hint can hide remote work from this worker.
  std::uint32_t gated_rounds = 0;
  /// Pin generation this worker last applied (see Scheduler::apply_pinning;
  /// 0 = never pinned). Lets reconfigure() trigger a re-pin lazily at the
  /// next region entry, on the worker's own thread.
  std::uint32_t pin_seen = 0;
  /// Whether the last pin attempt stuck AND the observed placement landed
  /// inside the requested cpuset. Mirrored into stats.pinned every region.
  bool pin_applied = false;
  /// This worker thread's mask before its FIRST pin (worker threads never
  /// change OS thread). A later FAILED re-pin — e.g. reconfigure() onto a
  /// topology whose cpuset this machine lacks — falls back to it, so an
  /// "unpinned" report never hides a stale hard pin to an old cpuset.
  bool prepin_saved = false;
  std::vector<unsigned> prepin_affinity;
  /// Scratch for StealPolicy::victim_order (sized to the team by the
  /// Scheduler constructor) — one allocation per worker, none per steal.
  std::vector<unsigned> victim_buf;

  static constexpr std::size_t stash_capacity = 64;

  // -- spawn/steal fast-path state (region-scoped, reset on region entry) --
  std::int64_t live_delta = 0;     ///< unflushed Region::live_tasks change
  std::uint32_t acct_ops = 0;      ///< spawns/finishes since the last flush
  bool barrier_draining = false;   ///< arrived at a barrier: increments flush eagerly
  /// Re-examine the own parked inbox on the next claim_parked. Eligibility
  /// of a parked task against THIS worker only changes when the worker's
  /// tied_stack changes, so between changes the own-inbox scan is skipped
  /// (other workers always scan it; fresh refusals were just checked).
  bool parked_recheck = true;
  unsigned last_victim = no_victim;  ///< steal affinity hint
  /// Newest spawned task (SchedulerConfig::lifo_slot): the next pop takes it
  /// with two plain stores instead of a fenced deque pop. Invisible to
  /// thieves only until this worker's next scheduling point — find_work
  /// drains it before it steals or reports no work.
  Task* slot = nullptr;
  /// Surplus from the last batched steal, consumed before the deque. A plain
  /// private array: surplus handling costs two stores per task instead of a
  /// deque push + fenced pop. Invisible to other thieves only while waiting
  /// here — every find_work drains the stash first and parks (publishes) any
  /// entry the TSC refuses, so the progress argument is unaffected; entries
  /// are still counted in Region::live_tasks, so quiescence is unaffected.
  std::size_t stash_count = 0;
  Task* stash[stash_capacity];

  // -- policy snapshot pin (live reconfiguration, PR 9) ---------------------
  /// The PolicySnapshot generation this worker is currently acting on.
  /// Plain pointer: only this worker reads or writes it, and the object it
  /// names cannot be retired while snap_epoch (below) holds its version.
  /// Null between regions (region exit clears it so a retired pointer can
  /// never be revalidated by address reuse).
  PolicySnapshot* snap = nullptr;

  /// TSC-refused tasks parked by THIS worker (its own refusals plus tasks it
  /// drained from other inboxes but could not run). Pushed with a CAS loop,
  /// drained wholesale by any worker with one exchange(nullptr); chained
  /// through Task::pool_next. Padded so thieves' drains do not bounce the
  /// owner's hot state.
  alignas(cache_line_bytes) std::atomic<Task*> parked_inbox{nullptr};

  /// Epoch slot for the RCU snapshot protocol: 0 = quiescent (between
  /// regions), otherwise the snapshot version this worker has pinned.
  /// reconfigure_live() retires a generation only once every slot is 0 or
  /// past it. Own cache line: the swapper's quiescence scan must not bounce
  /// the worker's hot state, exactly like the watchdog's progress polling.
  alignas(cache_line_bytes) std::atomic<std::uint64_t> snap_epoch{0};

  /// Relaxed-atomic mirrors of the WorkerStats counters the server's phase
  /// detector samples WHILE the region runs (per-worker stats are plain
  /// single-writer fields — legal only between regions). Bumped on cold
  /// paths only (a remote steal, a gated probe round, a fruitless
  /// find_work round), summed by Scheduler::telemetry().
  std::atomic<std::uint64_t> tele_remote_steals{0};
  std::atomic<std::uint64_t> tele_probes_skipped{0};
  std::atomic<std::uint64_t> tele_hungry{0};

  /// Monotone progress counter sampled by the stall watchdog: bumped on
  /// every deferred-task dispatch (execute or discard) and every range
  /// chunk peeled. Single-writer (this worker); relaxed load+store keeps
  /// the hot-path cost at one unfenced increment while staying a legal
  /// cross-thread read for the monitor (TSAN-clean). Own cache line so the
  /// monitor's polling never bounces the worker's hot state.
  alignas(cache_line_bytes) std::atomic<std::uint64_t> progress{0};
  void note_progress() noexcept {
    progress.store(progress.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }
};

namespace detail {
inline thread_local Worker* tls_worker = nullptr;
/// One-shot stderr warning for last_region_status() called under a live
/// region (defined in scheduler.cpp; out of line so the header accessor
/// stays tiny).
void warn_last_region_status_race() noexcept;
}

// Declared in steal_policy.hpp (Worker was incomplete there); defined here
// so the range hot loop's once-per-grain-chunk call inlines to three loads.
inline bool StealPolicy::should_split_range(const Worker& w) const noexcept {
  // Local queue dry == a steal (or this worker's own drain) just emptied
  // it: somebody is hungry. A thief's first check after stealing a range
  // always passes — its queue was empty, that is why it stole.
  return w.slot == nullptr && w.stash_count == 0 && w.deque.empty_estimate();
}

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Parallel region, single generator: fn runs once on worker 0, the other
  /// workers help through work stealing until every task has completed.
  /// Applies cfg.region_deadline_ms as the deadline (0 = none); how the
  /// region ended is retrievable via last_region_status().
  void run_single(const std::function<void()>& fn);

  /// Parallel region, one implicit task per worker: fn(worker_id) runs on
  /// every worker. rt::barrier() may be used inside. Deadline semantics as
  /// run_single.
  void run_all(const std::function<void(unsigned)>& fn);

  /// Deadline-bounded region: like run_single, but the region is
  /// cooperatively cancelled once `deadline` elapses — running bodies
  /// finish, every not-yet-started task is discarded — and the outcome is
  /// reported instead of needing a separate stats() call. A zero deadline
  /// means no deadline (cfg.region_deadline_ms still applies). Exceptions
  /// from task bodies rethrow exactly as the void overload.
  RegionResult run_single(const std::function<void()>& fn,
                          std::chrono::milliseconds deadline);

  /// Deadline-bounded run_all; semantics as the run_single overload.
  RegionResult run_all(const std::function<void(unsigned)>& fn,
                       std::chrono::milliseconds deadline);

  /// Resident region for server mode (TaskServer, server.hpp): run_all
  /// semantics — fn(worker_id) on every worker — but with NO deadline and NO
  /// monitor thread, whatever cfg says: the region is meant to stay up for
  /// the server's lifetime (cfg.region_deadline_ms would kill it;
  /// cfg.watchdog_ms would report idle workers, which are the resident
  /// steady state, as stalls). Per-REQUEST deadlines and stall detection are
  /// the server's own monitor's job, over the live RegionCtx set. Returns
  /// how the region ended (cancelled = someone hard-stopped the server via
  /// cancel_current_region).
  RegionStatus run_persistent(const std::function<void(unsigned)>& fn);

  /// Run `body` as the ROOT of request context `ctx` on the CALLING worker
  /// (must be a team worker inside a region — the server worker loop). The
  /// root frame is UNTIED, so while this worker waits in the request's
  /// join it may execute any other request's tasks (no cross-request
  /// convoying); every task spawned inside inherits `ctx` and with it
  /// per-request cancellation, ledgers and fault isolation. Exceptions from
  /// the body or any descendant are captured into `ctx` (cancelling it),
  /// never rethrown and never stored into the resident region. Returns when
  /// the body and every descendant task have finished or been discarded.
  void run_ctx_root(RegionCtx& ctx, const std::function<void()>& body);

  /// Execute at most one ready task on the calling team worker (server
  /// worker loop idle path: help drain other requests while this worker has
  /// no root of its own to run). False when no work was found anywhere —
  /// the caller should back off briefly.
  bool help_one();

  /// How the most recent COMPLETED region ended (RegionStatus::completed
  /// before any region has run).
  ///
  /// DEPRECATED for concurrent-region use: with a TaskServer multiplexing
  /// many requests over one resident region, a scheduler-global "last
  /// status" is meaningless — query the per-request RegionHandle::status()
  /// instead. Kept for single-region callers (the BOTS kernels) and the
  /// PR 6 tests. Called while a region is LIVE (server mode), it used to
  /// silently return the stale previous status; now it returns
  /// RegionStatus::unknown and warns once per scheduler.
  [[nodiscard]] RegionStatus last_region_status() const noexcept {
    if (region_active_.load(std::memory_order_acquire)) {
      if (!status_race_warned_.exchange(true, std::memory_order_relaxed)) {
        detail::warn_last_region_status_race();
      }
      return RegionStatus::unknown;
    }
    return last_region_status_;
  }

  /// Cooperatively cancel the region currently running, if any (thread-safe,
  /// callable from outside the team — a signal handler thread, a REPL).
  /// No-op between regions: a cancel can never leak into a future region.
  void cancel_current_region() noexcept;

  /// Stalls the watchdog has declared over this scheduler's lifetime.
  [[nodiscard]] std::uint64_t stalls_detected() const noexcept {
    return stalls_detected_.load(std::memory_order_relaxed);
  }

  /// True when worker-thread spawn failed at construction and the team was
  /// shrunk (num_workers() reports the post-shrink size).
  [[nodiscard]] bool team_degraded() const noexcept { return team_degraded_; }

  /// The active fault-injection plan (inactive unless cfg.fault_plan /
  /// RT_FAULT_PLAN named a site). Tests read per-site injection counts.
  [[nodiscard]] FaultPlan& fault_plan() noexcept { return fault_; }

  [[nodiscard]] unsigned num_workers() const noexcept {
    return cfg_.num_threads;
  }
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return cfg_; }

  /// The locality map this scheduler was built with (synthetic override,
  /// sysfs discovery, or the flat fallback).
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// The active steal/placement policy (one instance for the whole team,
  /// owned by the CURRENT PolicySnapshot). Between-regions introspection:
  /// a live swap may retire the referenced object — in-region code must go
  /// through the worker's pinned snapshot (Worker::snap) instead.
  [[nodiscard]] StealPolicy& policy() noexcept { return *snap_owner_->policy; }

  /// Per-node has-work hints of the CURRENT snapshot; null when the knob is
  /// off OR nothing would ever consult them (non-hierarchical policy,
  /// single-node topology) — publishing costs nothing when nobody reads.
  /// Between regions only, same lifetime caveat as policy().
  [[nodiscard]] NodeHints* node_hints() noexcept {
    return snap_owner_->hints.get();
  }

  /// The resolved policy kind the CURRENT snapshot was built for. Safe from
  /// any thread at any time: a plain atomic mirror, no snapshot pointer is
  /// dereferenced (a non-team reader holds no epoch slot, so it must never
  /// touch the object itself).
  [[nodiscard]] StealPolicyKind active_steal_policy() const noexcept {
    return static_cast<StealPolicyKind>(
        active_kind_.load(std::memory_order_relaxed));
  }

  /// Snapshot generation currently published (1-based; bumped by every
  /// install: construction, reconfigure, shrink, reconfigure_live).
  [[nodiscard]] std::uint64_t snapshot_version() const noexcept {
    return snap_version_.load(std::memory_order_acquire);
  }

  /// Whether descriptor memory is node-honest in THIS configuration:
  /// cfg.use_node_pools with a pooled, multi-node setup. On one node (or
  /// with use_task_pool off) the knob is inert and allocation is exactly
  /// the per-worker pool path.
  [[nodiscard]] bool node_pools_active() const noexcept {
    return !arenas_.empty();
  }

  /// Between-regions view of one node's descriptor pool, for tests and the
  /// locality tripwire: where every descriptor carved from the node's
  /// arena currently rests. After a region (workers flush their outbound
  /// stashes before leaving) in_transit is 0 and cached + arena_free ==
  /// arena_carved — every remote-born free has landed home.
  struct NodePoolSnapshot {
    std::size_t arena_free = 0;    ///< on the node arena's freelist
    std::size_t arena_carved = 0;  ///< ever constructed from this arena
    std::size_t cached = 0;        ///< in the node's workers' home caches
    std::size_t in_transit = 0;    ///< stashed toward this node, unflushed
  };
  [[nodiscard]] std::vector<NodePoolSnapshot> node_pool_snapshot() const;

  /// The mailbox node the policy would pick for a range half split by
  /// `worker` right now (introspection mirroring plan_steal_order;
  /// StealPolicy::no_node = keep it local). Between regions only — tests
  /// drive it by setting the NodeHints words directly.
  [[nodiscard]] unsigned plan_range_placement(unsigned worker);

  /// Adaptive grain state for spawn_range (see grain.hpp). Meaningful with
  /// cfg.use_adaptive_grain; always constructed so tests can seed it.
  [[nodiscard]] GrainTable& grain_table() noexcept { return grain_table_; }
  /// The global (untagged-site) controller — the PR-3 accessor.
  [[nodiscard]] GrainController& grain_controller() noexcept {
    return grain_table_.global();
  }
  /// The controller serving a tagged spawn site (the one spawn_range uses
  /// for ranges tagged with `site`).
  [[nodiscard]] GrainController& grain_controller_for(RangeSite site) noexcept {
    return grain_table_.for_site(site);
  }

  /// Swap the steal policy and/or locality topology between regions. Never
  /// valid while a region runs — including the resident server region — and
  /// that is a CHECKED error: a live region raises std::logic_error
  /// (previously a debug-only assert; a release-build reconfigure under a
  /// live region silently rebuilt arenas whose descriptors were still in
  /// flight). Rebuilds the
  /// Topology, the policy and the node hints, refreshes every worker's
  /// cached node id and clears the per-worker victim/backoff hints — a
  /// last_victim or node id learned under the old configuration is
  /// meaningless (or out of range) under the new one. With pin_workers the
  /// workers re-pin themselves to the new cpusets at the next region
  /// entry. For POLICY-KIND swaps while regions run, use reconfigure_live()
  /// instead — topology stays between-regions by design (descriptor birth
  /// nodes cannot migrate live), which is why reconfigure_live takes no
  /// topology parameter.
  void reconfigure(StealPolicyKind kind, const std::string& synthetic_topology);

  /// Live-swappable tunables carried by reconfigure_live alongside the
  /// policy kind. Unset fields keep their current values.
  struct LiveTunables {
    /// Reseed the global adaptive-grain controller's base AND current
    /// estimate (GrainController::seed — writes land in the live
    /// generation's atomics; <= 0 = keep).
    std::int64_t grain_base = 0;
    /// Stall-watchdog poll threshold for regions whose monitor is armed;
    /// re-read from the snapshot every poll. ~0u = keep.
    std::uint32_t watchdog_ms = ~0u;
    /// 0 = keep, 1 = report-only, 2 = cancel-on-stall.
    std::uint32_t watchdog_cancel = 0;
  };

  /// Hot-swap the steal policy (and optionally grain/watchdog tunables)
  /// WHILE regions run — including under TaskServer load. Publishes a new
  /// PolicySnapshot generation (policy + fresh NodeHints + tunables) via an
  /// RCU-style pointer swap, then blocks until every worker has either
  /// pinned the new generation or gone quiescent, and only then retires the
  /// old one. Safe at any time from any non-team thread, and from a team
  /// worker inside a task body (the caller's own pin is advanced first).
  /// Workers re-seed their transient steal state (last_victim,
  /// gated_rounds) on first pin of the new generation — no global stop, no
  /// barrier, and no lock anywhere on the worker pin path. Swap latency is
  /// bounded by the longest running task body / grain chunk, exactly like
  /// cancellation. Conservation laws are unaffected by construction: the
  /// policy only ever decides WHERE work goes, never whether it exists.
  /// Throws std::logic_error when cfg.live_reconfigure (RT_LIVE_RECONF) is
  /// off. Fresh hint words start SET when a region is live (a probe a
  /// stale-set word costs is bounded; a stale-clear could delay finding
  /// work published just before the swap).
  void reconfigure_live(StealPolicyKind kind);
  void reconfigure_live(StealPolicyKind kind, const LiveTunables& tune);

  /// Pin the current PolicySnapshot for worker `w` and return it. Steady
  /// state (snapshot unchanged): one seq_cst load + a pointer compare.
  /// Changed: an announce-validate loop on the worker's epoch slot (store
  /// slot, re-check version — the Dekker-style handshake that makes the
  /// swapper's quiescence scan sound), then transient steal state is
  /// re-seeded. Called at the top of every find_work round, at region
  /// entry, and at every range-chunk boundary; callable only on the
  /// worker's own thread.
  PolicySnapshot* pin_snapshot(Worker& w) noexcept;

  /// Live telemetry for phase detection: sums of the per-worker relaxed
  /// mirrors (Worker::tele_*). Safe from any thread at any time, including
  /// under a running region — the per-worker WorkerStats (stats()) are
  /// plain fields and remain between-regions only.
  struct Telemetry {
    std::uint64_t steals_remote_node = 0;
    std::uint64_t remote_probes_skipped = 0;
    std::uint64_t hungry_rounds = 0;
  };
  [[nodiscard]] Telemetry telemetry() const noexcept;

  /// The event-trace collector (trace.hpp), or nullptr when cfg.trace is
  /// off. Rings are drained into it by each worker at region exit; the
  /// per-event counters are live-sampleable from any thread (the server
  /// phase detector reads them under a running region).
  [[nodiscard]] TraceCollector* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const TraceCollector* tracer() const noexcept {
    return tracer_.get();
  }

  /// The victim order the policy would plan for `worker` right now
  /// (introspection for tests and bench_ablation_steal_policy; advances
  /// the worker's rng exactly like a real steal round). Only valid BETWEEN
  /// regions: it touches the worker's plain rng/affinity state, which the
  /// worker itself mutates while a region runs (asserted in debug builds).
  [[nodiscard]] std::vector<unsigned> plan_steal_order(unsigned worker);

  /// Introspection seam paired with plan_steal_order: plant a last-victim
  /// affinity hint as if `worker` had just stolen from `victim`, so tests
  /// can pin hint-dependent planning deterministically (a hint earned by a
  /// real steal rarely survives the region-end barrier — the failing raids
  /// of the idle drain clear it). Between regions only.
  void set_victim_hint(unsigned worker, unsigned victim) noexcept;

  /// Aggregate per-worker statistics. Call between regions.
  [[nodiscard]] StatsSnapshot stats() const;
  void reset_stats() noexcept;

  // ---- internal API used by the spawn fast path (do not call directly) ----
  [[nodiscard]] bool should_defer(Worker& w, std::uint32_t depth) noexcept;
  Task* alloc_task(Worker& w, TaskStorage& storage_out);
  void enqueue(Worker& w, Task& t);
  /// Publication point for a split-off range half (worksharing.hpp): with
  /// hint placement active and the policy naming an idle remote node whose
  /// mailbox is empty, the half is mailed there instead of enqueued on the
  /// splitter's deque. Accounting is identical to enqueue either way.
  void publish_range_half(Worker& w, Task& t);
  void run_undeferred(Worker& w, Task& t);
  void taskwait_from(Worker& w);
  void barrier_from(Worker& w);
  void run_inline_scope(Worker& w, const std::function<void()>& body);

  // ---- internal API used by the dependence layer (dependency.hpp) ---------
  /// Routing half of enqueue for a dependence-released task: node-hint
  /// publish plus the slot-or-deque push ONLY. All spawn-side accounting
  /// (worker ledger, region live count, request ledger) happened when the
  /// task was dep-spawned or bulk-charged by a replay, so a release can
  /// never double-count and a barrier can never open early.
  void enqueue_released(Worker& w, Task& t);
  /// The accounting half, called at dep-spawn time — dep tasks reach a
  /// queue only when their predecessors release them, possibly much later.
  void account_dep_spawn(Worker& w, Task& t) noexcept;
  /// Drop the dependence tracker's descriptor pin (DepScope::wait, after
  /// the join): completes the deferred half of the pinned task's release
  /// chain into its parent.
  void release_dep_ref(Worker& w, Task& t) noexcept;
  /// Scheduler-shape epoch consulted by TaskGraph::valid_for: bumped by
  /// reconfigure() and by team-shrink degradation, so every graph recorded
  /// under the old shape re-records instead of replaying stale placement
  /// decisions. Plain integer: both writers run strictly between regions,
  /// and in-region readers see it through the region publication.
  [[nodiscard]] std::uint64_t graph_epoch() const noexcept {
    return graph_epoch_;
  }
  /// Per-tag recorded-graph registry backing rt::graph_region (defined in
  /// taskgraph.cpp). Graphs live for the scheduler's lifetime; validity is
  /// governed by graph_epoch(), not by eviction.
  [[nodiscard]] TaskGraph& find_or_create_graph(const std::string& tag);

 private:
  friend struct Region;

  RegionStatus run_region(Region& r, std::chrono::milliseconds deadline,
                          bool monitored = true);
  void participate(Worker& w, Region& r);
  void worker_main(unsigned id);
  void monitor_region(std::stop_token st, Region& r,
                      std::chrono::steady_clock::time_point deadline_tp,
                      bool has_deadline);
  void dump_stall_report(Region& r);
  /// Current watchdog tunables (snapshot-backed, reconf_mutex_-guarded —
  /// the monitor holds no epoch slot). Re-read every poll so
  /// reconfigure_live retunes a live watchdog.
  [[nodiscard]] std::pair<std::uint32_t, bool> watchdog_tunables() const;
  /// One fault-plan draw at `site`; counts into `w` when given. Returns
  /// true when the site should fail now.
  [[nodiscard]] bool inject(Worker* w, FaultSite site) noexcept;
  /// Drop never-started workers [built, N) after a thread-spawn failure and
  /// re-map topology/policy/pools onto the shrunken team.
  void shrink_team(unsigned built);
  /// Build and publish the next PolicySnapshot generation from cfg_/topo_
  /// (caller holds reconf_mutex_), wait for epoch quiescence, retire the
  /// previous generation. `live` seeds fresh hint words SET (swap under a
  /// running region) instead of CLEAR (construction / between regions).
  void install_snapshot_locked(bool live);
  /// Spin until every worker's epoch slot is quiescent (0) or has advanced
  /// to `version` — after which no worker can still dereference any older
  /// generation.
  void wait_quiescent(std::uint64_t version) noexcept;
  void rebuild_node_pools();
  void rebuild_mailboxes();
  void dispose(Worker& w, Task& t) noexcept;
  void flush_stash(Worker& w, unsigned node) noexcept;
  void flush_outbound_stashes(Worker& w) noexcept;
  void account_spawn(Worker& w) noexcept;
  Task* take_mailed(Worker& w, bool scavenge);
  void apply_pinning(Worker& w) noexcept;
  void restore_caller_mask() noexcept;
  void assert_between_regions() noexcept;
  Task* find_work(Worker& w);
  Task* steal_work(Worker& w, bool& progress);
  void flush_accounting(Worker& w) noexcept;
  void park_refused(Worker& w, Task* t);
  Task* claim_parked(Worker& w);
  [[nodiscard]] bool tsc_allows(const Worker& w, const Task& t) const noexcept;
  void execute_deferred(Worker& w, Task& t);
  void finish_task(Worker& w, Task& t, bool deferred);
  void release_chain(Worker& w, Task* t) noexcept;
  /// Finish-path dependence hook (top of finish_task, execute AND discard
  /// retirements): walk the task's successor list — dynamic Treiber stack
  /// or baked graph span — decrement each successor's pending count and
  /// enqueue the ones that hit zero. Discards release too, so a cancelled
  /// DAG or replay drains instead of deadlocking.
  void release_successors(Worker& w, Task& t) noexcept;

  SchedulerConfig cfg_;
  Topology topo_;
  /// One descriptor arena per node (task.hpp); empty when node pools are
  /// inert (knob off, single node, or use_task_pool off) — allocation then
  /// degenerates to the per-worker TaskPool path bit-for-bit.
  std::vector<std::unique_ptr<NodeArena>> arenas_;
  /// One range mailbox per node; null when hint placement could never fire
  /// (knob off, hints knob off, or single node). Existence is decoupled
  /// from the CURRENT policy kind on purpose: a live swap to hierarchical
  /// must be able to mail immediately, and a swap away must still let
  /// find_work drain halves mailed before the swap.
  std::unique_ptr<RangeMailbox[]> mailboxes_;

  // -- live reconfiguration state (PR 9) ------------------------------------
  /// Serializes snapshot installs (construction, reconfigure, shrink,
  /// reconfigure_live) and guards snap_owner_. Never taken on any worker
  /// path — workers go through snap_/snap_epoch only. Non-team readers
  /// (the monitor, dump_stall_report, between-regions accessors) take it
  /// to touch the current snapshot, since they hold no epoch slot.
  mutable std::mutex reconf_mutex_;
  /// Owner of the published snapshot (guarded by reconf_mutex_).
  std::unique_ptr<PolicySnapshot> snap_owner_;
  /// RCU-published current snapshot. Install order: snap_ first, then
  /// snap_version_ — pin_snapshot's validate relies on "version observed ⇒
  /// pointer at least that new".
  std::atomic<PolicySnapshot*> snap_{nullptr};
  std::atomic<std::uint64_t> snap_version_{0};
  /// Lock-free mirror of the current snapshot's kind for
  /// active_steal_policy().
  std::atomic<std::uint8_t> active_kind_{0};

  GrainTable grain_table_;
  std::uint32_t cutoff_bound_;
  /// Pinning epoch: 0 = pinning disabled, otherwise bumped by reconfigure
  /// so workers re-pin at their next region entry (Worker::pin_seen).
  /// Written only between regions; workers read it inside participate,
  /// after the region-publication synchronization.
  std::uint32_t pin_generation_ = 0;
  /// Worker 0 is whichever thread enters the region: the pre-pin mask and
  /// the thread it belongs to are captured at pin time (not construction),
  /// so a different caller thread next region is re-pinned with its OWN
  /// mask saved — after the PREVIOUS caller thread got its mask back (by
  /// kernel tid, which unlike a std::thread::id can be addressed from any
  /// thread; see affinity.hpp). ~Scheduler restores the last pinned
  /// caller the same way, whatever thread destruction runs on.
  std::vector<unsigned> caller_affinity_;
  std::thread::id caller_thread_{};  ///< fast same-thread check in participate
  long caller_tid_ = -1;             ///< restore address for the saved mask
  bool caller_pinned_ = false;
  bool use_slot_ = false;  ///< cfg_.lifo_slot effective under LocalOrder::lifo
  std::uint32_t acct_batch_ = 1;  ///< cached cfg_.accounting_batch (>= 1)
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::jthread> threads_;

  std::mutex region_mutex_;
  std::condition_variable region_cv_;
  std::uint64_t region_seq_ = 0;       // guarded by region_mutex_
  Region* region_ = nullptr;           // guarded by region_mutex_
  bool stopping_ = false;              // guarded by region_mutex_
  std::atomic<unsigned> region_done_{0};

  // -- fault-tolerance state (PR 6) ----------------------------------------
  FaultPlan fault_;  ///< parsed from cfg_.fault_plan; inactive when empty
  /// Sleep/wake channel for the per-region monitor thread (deadline +
  /// watchdog). The condition_variable_any + stop_token pairing makes the
  /// monitor's join at region end immediate rather than one poll period.
  std::mutex monitor_mutex_;
  std::condition_variable_any monitor_cv_;
  std::atomic<std::uint64_t> stalls_detected_{0};
  RegionStatus last_region_status_ = RegionStatus::completed;
  /// True while a region is published (set before region_, cleared after
  /// last_region_status_ is written): the race gate behind the
  /// last_region_status() sentinel. Release/acquire pairs with that
  /// accessor so a false read also sees the final status.
  std::atomic<bool> region_active_{false};
  mutable std::atomic<bool> status_race_warned_{false};
  bool team_degraded_ = false;

  // -- dependence/taskgraph state (PR 8) ------------------------------------
  /// Bumped whenever the scheduler's shape changes (reconfigure, team
  /// shrink). Recorded graphs stamp the epoch at freeze and refuse to
  /// replay under any other — the invalidation the regression test in
  /// dependency_test.cpp pins down.
  std::uint64_t graph_epoch_ = 1;
  std::mutex graphs_mutex_;
  std::unordered_map<std::string, std::unique_ptr<TaskGraph>> graphs_;

  // -- event tracing (PR 10) ------------------------------------------------
  /// Per-worker trace rings + drained archive; null when cfg.trace is off
  /// (Worker::ring stays null and every event site is one dead branch).
  std::unique_ptr<TraceCollector> tracer_;
};

// ---------------------------------------------------------------------------
// Free functions: the task API usable from inside kernels. All of them are
// safe to call outside a parallel region, where they degrade to immediate
// serial execution (a team of one), mirroring OpenMP constructs outside a
// parallel construct.
// ---------------------------------------------------------------------------

[[nodiscard]] inline bool in_region() noexcept {
  return detail::tls_worker != nullptr;
}

[[nodiscard]] inline unsigned worker_id() noexcept {
  Worker* w = detail::tls_worker;
  return w != nullptr ? w->id : 0u;
}

[[nodiscard]] inline unsigned team_size() noexcept {
  Worker* w = detail::tls_worker;
  return w != nullptr ? w->region->team_size : 1u;
}

namespace detail {

/// Zero-allocation undeferred execution (SchedulerConfig::use_inline_fast_path):
/// run the closure directly on the parent's frame — no Task descriptor, no
/// pool traffic, no refcount/children RMWs. Only two pieces of bookkeeping
/// remain, because correctness requires them:
///
/// * Depth: Worker::inline_depth counts live inline frames so spawns inside
///   the body still compute exact task depths (max_depth cut-off, ancestry
///   walks) even though Worker::current skips the descriptor-less task.
/// * The Task Scheduling Constraint: an inlined TIED task is tied to this
///   worker from the moment it starts, so while its body is suspended at a
///   scheduling point, claims must be restricted to its descendants. The
///   task has no descriptor to push, but its children are adopted by
///   `current` (the nearest descriptor-carrying ancestor), so pushing
///   `current` represents the constraint exactly as precisely as the graph
///   can: descendants-of-current is the tightest representable superset of
///   descendants-of-the-inlined-task. The push maintains the PR-1 verified
///   tied_chain prefix the same way taskwait_from does; a duplicate of the
///   current back() entry adds no constraint and is skipped, which makes
///   deep inline recursion — the cut-off hot case — cost one compare.
///
/// The body's children reattach to `current`, so a taskwait inside the body
/// waits on a superset of the inlined task's children (never fewer): join
/// semantics are conservative, data dependences are preserved. Exceptions
/// behave exactly like run_undeferred: an undeferred task is sequenced in
/// its parent, so a throw unwinds the worker's bookkeeping (inline depth,
/// tied-stack entry) and propagates synchronously from the spawn call —
/// there is no descriptor to leak on this path.
template <class F>
void run_inline_fast(Worker& w, Tiedness tied, F&& f) {
  if ((w.region != nullptr && w.region->cancelled()) ||
      (w.current != nullptr && w.current->ctx() != nullptr &&
       w.current->ctx()->cancelled())) {
    // Cancelled region OR cancelled request context: an undeferred construct
    // is "not yet started" until its body runs, so it is discarded like any
    // queued sibling. Nothing to retire — this path never had a descriptor.
    ++w.stats.tasks_discarded_inline;
    if (w.current != nullptr && w.current->ctx() != nullptr) {
      w.current->ctx()->note_progress();
    }
    return;
  }
  ++w.stats.tasks_inlined_fast;
  trace_record(w.ring, TraceEvent::spawn, w.inline_depth, 0);
  // No descriptor is materialized, but the construct still *captured* this
  // many bytes on the parent's frame — count them so Table-II-style env
  // statistics do not undercount under heavy inlining (sizeof the closure
  // is exactly what init_env would have recorded for a deferred twin).
  w.stats.env_bytes += static_cast<std::uint64_t>(sizeof(std::decay_t<F>));
  const bool push_tied =
      tied == Tiedness::tied &&
      (w.tied_stack.empty() || w.tied_stack.back() != w.current);
  if (push_tied) {
    if (w.tied_chain == w.tied_stack.size() &&
        (w.tied_stack.empty() ||
         w.current->is_descendant_of(*w.tied_stack.back()))) {
      ++w.tied_chain;
    }
    w.tied_stack.push_back(w.current);
    w.parked_recheck = true;
  }
  ++w.inline_depth;
  const auto unwind = [&w, push_tied]() noexcept {
    --w.inline_depth;
    if (push_tied) {
      w.tied_stack.pop_back();
      if (w.tied_chain > w.tied_stack.size()) {
        w.tied_chain = w.tied_stack.size();
      }
      w.parked_recheck = true;  // the constraint relaxed: parked may be eligible
    }
  };
  try {
    std::forward<F>(f)();
  } catch (...) {
    unwind();
    throw;  // synchronous propagation: the task is sequenced in its parent
  }
  unwind();
}

}  // namespace detail

/// Create a task. Equivalent to `#pragma omp task [untied]`.
template <class F>
void spawn(Tiedness tied, F&& f) {
  Worker* w = detail::tls_worker;
  if (w == nullptr) {  // outside a region: execute immediately
    std::forward<F>(f)();
    return;
  }
  Scheduler& s = *w->sched;
  ++w->stats.tasks_created;
  const std::uint32_t depth =
      (w->current != nullptr ? w->current->depth() + 1 : 1) + w->inline_depth;
  const bool defer = s.should_defer(*w, depth);
  if (!defer && s.config().use_inline_fast_path) {
    ++w->stats.tasks_cutoff_inlined;
    detail::run_inline_fast(*w, tied, std::forward<F>(f));
    return;
  }
  TaskStorage storage{};
  Task* t = s.alloc_task(*w, storage);
  if (t == nullptr) {
    // Bottom of the degradation ladder: no descriptor from the pool rung OR
    // the heap rung. Run serially on this frame instead of aborting —
    // counted as cutoff_inlined so the creation-side invariant is
    // undisturbed, plus tasks_degraded_inline to make the degradation
    // observable.
    ++w->stats.tasks_cutoff_inlined;
    ++w->stats.tasks_degraded_inline;
    detail::run_inline_fast(*w, tied, std::forward<F>(f));
    return;
  }
  t->init_env(std::forward<F>(f));
  w->stats.env_bytes += t->env_bytes();
  Task* parent = w->current;
  parent->add_child_ref();
  t->set_links(parent, depth, tied, storage);
  if (defer) {
    ++w->stats.tasks_deferred;
    trace_record(w->ring, TraceEvent::spawn, depth, 1);
    s.enqueue(*w, *t);
  } else {
    ++w->stats.tasks_cutoff_inlined;
    s.run_undeferred(*w, *t);
  }
}

template <class F>
void spawn(F&& f) {
  spawn(Tiedness::tied, std::forward<F>(f));
}

/// Create a task guarded by an `if` clause: when `condition` is false the
/// task is undeferred and executes immediately on this worker. With
/// use_inline_fast_path (the default) that costs no descriptor at all; with
/// the knob off it still allocates one and joins the task hierarchy (the
/// bookkeeping the paper says the runtime "still has to do ... to keep
/// consistency" — kept as the A/B baseline).
template <class F>
void spawn_if(bool condition, Tiedness tied, F&& f) {
  Worker* w = detail::tls_worker;
  if (w == nullptr) {
    std::forward<F>(f)();
    return;
  }
  if (condition) {
    spawn(tied, std::forward<F>(f));
    return;
  }
  Scheduler& s = *w->sched;
  ++w->stats.tasks_created;
  ++w->stats.tasks_if_inlined;
  if (s.config().use_inline_fast_path) {
    detail::run_inline_fast(*w, tied, std::forward<F>(f));
    return;
  }
  const std::uint32_t depth =
      (w->current != nullptr ? w->current->depth() + 1 : 1) + w->inline_depth;
  TaskStorage storage{};
  Task* t = s.alloc_task(*w, storage);
  if (t == nullptr) {  // degradation ladder bottom: run serially, no descriptor
    ++w->stats.tasks_degraded_inline;
    detail::run_inline_fast(*w, tied, std::forward<F>(f));
    return;
  }
  t->init_env(std::forward<F>(f));
  w->stats.env_bytes += t->env_bytes();
  Task* parent = w->current;
  parent->add_child_ref();
  t->set_links(parent, depth, tied, storage);
  s.run_undeferred(*w, *t);
}

template <class F>
void spawn_if(bool condition, F&& f) {
  spawn_if(condition, Tiedness::tied, std::forward<F>(f));
}

/// Wait for all child tasks of the current task. `#pragma omp taskwait`.
inline void taskwait() {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return;
  w->sched->taskwait_from(*w);
}

/// Team barrier; also completes all outstanding explicit tasks (the OpenMP
/// guarantee). Only valid inside run_all regions. `#pragma omp barrier`.
inline void barrier() {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return;
  w->sched->barrier_from(*w);
}

/// Cooperative cancellation probe for long task bodies (`#pragma omp
/// cancellation point taskgroup`): true when the enclosing region OR the
/// enclosing request context (server mode) has been cancelled and the body
/// should return early. Long-running loops should poll it; everything else
/// observes cancellation at its next spawn or dispatch boundary for free.
/// Outside a region: always false.
[[nodiscard]] inline bool cancellation_point() noexcept {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return false;
  if (w->region != nullptr && w->region->cancelled()) return true;
  return w->current != nullptr && w->current->ctx() != nullptr &&
         w->current->ctx()->cancelled();
}

/// Cancel the enclosing cancellation scope from inside a task body (`#pragma
/// omp cancel taskgroup`): every not-yet-started task in the scope is
/// discarded; running bodies finish (or poll cancellation_point()). Inside a
/// server request the scope is THAT REQUEST's context — one client cancelling
/// itself never touches its neighbours or the resident region. In an
/// ordinary region (no ctx) the scope is the whole region, as in PR 6; the
/// deadline-taking run_* overloads report it as RegionStatus::cancelled.
/// Outside a region: no-op.
inline void cancel_region() noexcept {
  Worker* w = detail::tls_worker;
  if (w == nullptr) return;
  if (w->current != nullptr && w->current->ctx() != nullptr) {
    w->current->ctx()->cancel(RegionStatus::cancelled);
    return;
  }
  if (w->region == nullptr) return;
  w->region->cancel(RegionStatus::cancelled);
}

}  // namespace bots::rt
