// Configuration types for the bots::rt task runtime.
//
// The runtime reproduces the OpenMP 3.0 tasking execution model the BOTS
// paper (ICPP'09) evaluates: tied/untied tasks, taskwait, parallel regions
// with single/multiple task generators, and the runtime-side cut-off
// policies discussed in Section IV-B of the paper.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>

namespace bots::rt {

/// OpenMP 3.0 task tiedness. A tied task, once started, is bound to the
/// thread that started it; scheduling new tied tasks at a task scheduling
/// point is restricted by the Task Scheduling Constraint. Untied tasks have
/// no such restrictions (paper Section IV-C).
enum class Tiedness : std::uint8_t { tied, untied };

/// Runtime-side cut-off policy (paper Section IV-B, second group:
/// "mechanisms based on the total number of tasks already created, the
/// number of tasks ready to be executed, etc. Such pruning mechanisms can be
/// easily implemented in the OpenMP runtime itself").
enum class CutoffPolicy : std::uint8_t {
  none,       ///< never inline; every spawn is deferred
  max_tasks,  ///< inline when live task count exceeds a bound (models icc 11.0)
  max_depth,  ///< inline when task depth exceeds a bound
  adaptive    ///< hysteresis on live task count (models Duran et al. [27])
};

/// Order in which a worker consumes its own deque.
/// `lifo` is depth-first (newest task first, Cilk-style work-first);
/// `fifo` is breadth-first (oldest task first).
enum class LocalOrder : std::uint8_t { lifo, fifo };

/// Victim selection policy when stealing. Retained from PR 1 as the base
/// rotation order consumed by the pluggable StealPolicy layer (see
/// StealPolicyKind below and steal_policy.hpp).
enum class VictimPolicy : std::uint8_t { random, sequential };

/// Pluggable steal/placement policy (steal_policy.hpp). `legacy` (the
/// default) derives the policy from the PR-1 knobs `victim` +
/// `victim_affinity`, so every pre-existing ablation configuration keeps
/// its meaning; the other values select a policy explicitly.
enum class StealPolicyKind : std::uint8_t {
  legacy,       ///< derive from victim + victim_affinity
  random,       ///< random rotation, no affinity memory
  sequential,   ///< (id + 1) rotation, no affinity memory
  last_victim,  ///< last successful victim first, then the base rotation
  hierarchical  ///< same-node victims before cross-node, scaled batches
};

// -- hardened environment parsing ------------------------------------------
//
// Every RT_* knob funnels through a pure `parse_*` function (unit-testable
// over malformed inputs with no environment involved) plus an env_* wrapper
// that falls back to the default and prints ONE stderr warning per variable
// when the value is unrecognisable — never UB, never silent garbage.

/// Pure parser behind RT_STEAL_POLICY. Returns false (leaving `out`
/// untouched) when `s` names no policy; "legacy" is accepted explicitly.
[[nodiscard]] inline bool steal_policy_from_string(std::string_view s,
                                                   StealPolicyKind& out) noexcept {
  if (s == "legacy") { out = StealPolicyKind::legacy; return true; }
  if (s == "random") { out = StealPolicyKind::random; return true; }
  if (s == "sequential") { out = StealPolicyKind::sequential; return true; }
  if (s == "last_victim") { out = StealPolicyKind::last_victim; return true; }
  if (s == "hierarchical") { out = StealPolicyKind::hierarchical; return true; }
  return false;
}

/// Pure boolean parser: "1"/"true"/"on" and "0"/"false"/"off".
[[nodiscard]] inline bool parse_flag(std::string_view s, bool& out) noexcept {
  if (s == "1" || s == "true" || s == "on") { out = true; return true; }
  if (s == "0" || s == "false" || s == "off") { out = false; return true; }
  return false;
}

/// Pure decimal u32 parser: digits only, rejects empty/overflow/trailing
/// junk (no locale, no exceptions — unlike std::stoul).
[[nodiscard]] inline bool parse_u32(std::string_view s,
                                    std::uint32_t& out) noexcept {
  if (s.empty() || s.size() > 10) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v > 0xffffffffULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// One stderr warning per (variable, process): repeated constructions of
/// SchedulerConfig under the same bad environment don't spam.
inline void warn_malformed_env(const char* name, const char* value) noexcept {
  static thread_local const char* last = nullptr;
  // Cheap best-effort dedup: the common spam source is one thread
  // constructing many configs in a loop; cross-thread duplicates are rare
  // and harmless.
  if (last == name) return;
  last = name;
  std::fprintf(stderr,
               "rt: warning: ignoring malformed %s='%s' (using default)\n",
               name, value);
}

/// RT_CUTOFF environment override ("none", "max_tasks", "max_depth",
/// "adaptive"); unset keeps the max_tasks default and a malformed value
/// warns once and keeps it too. Paired with RT_CUTOFF_VALUE for the bound
/// (0 = policy-specific default), it lets CI re-run whole binaries under a
/// pruning strategy — the nightly depth-first-starvation provocation leg
/// (RT_CUTOFF=max_depth RT_CUTOFF_VALUE=1) exists because of this knob.
[[nodiscard]] inline CutoffPolicy cutoff_from_env() noexcept {
  const char* v = std::getenv("RT_CUTOFF");
  if (v == nullptr) return CutoffPolicy::max_tasks;
  const std::string_view s{v};
  if (s == "none") return CutoffPolicy::none;
  if (s == "max_tasks") return CutoffPolicy::max_tasks;
  if (s == "max_depth") return CutoffPolicy::max_depth;
  if (s == "adaptive") return CutoffPolicy::adaptive;
  warn_malformed_env("RT_CUTOFF", v);
  return CutoffPolicy::max_tasks;
}

/// RT_STEAL_POLICY environment override ("random", "sequential",
/// "last_victim", "hierarchical"); unset keeps the legacy derivation and a
/// malformed value warns once and keeps it too. Lets CI and scripts re-run
/// whole test binaries under a policy without touching code.
[[nodiscard]] inline StealPolicyKind steal_policy_from_env() noexcept {
  const char* v = std::getenv("RT_STEAL_POLICY");
  if (v == nullptr) return StealPolicyKind::legacy;
  StealPolicyKind k = StealPolicyKind::legacy;
  if (!steal_policy_from_string(v, k)) warn_malformed_env("RT_STEAL_POLICY", v);
  return k;
}

/// Boolean environment knob: "1"/"true"/"on" and "0"/"false"/"off" are
/// recognized; unset keeps the fallback silently, anything else keeps the
/// fallback with one stderr warning. Used by RT_PIN_WORKERS, RT_NODE_HINTS,
/// RT_NODE_POOLS, RT_HINT_PLACEMENT and the fault-tolerance flags so CI
/// legs can flip whole test binaries without touching code.
[[nodiscard]] inline bool env_flag(const char* name, bool fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  bool out = fallback;
  if (!parse_flag(v, out)) warn_malformed_env(name, v);
  return out;
}

/// Numeric (u32) environment knob with the same malformed-value contract as
/// env_flag. Used by RT_REGION_DEADLINE_MS and RT_WATCHDOG_MS.
[[nodiscard]] inline std::uint32_t env_u32(const char* name,
                                           std::uint32_t fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  std::uint32_t out = fallback;
  if (!parse_u32(v, out)) warn_malformed_env(name, v);
  return out;
}

/// String environment knob (empty fallback when unset). Validation is the
/// consumer's job — e.g. FaultPlan::parse warns per malformed entry.
[[nodiscard]] inline std::string env_string(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string{} : std::string{v};
}

/// Cache line size used for padding shared structures (WorkerStats,
/// WorkerLocal slots, deque tops/bottoms, parked-task inboxes).
inline constexpr std::size_t cache_line_bytes = 64;

struct SchedulerConfig {
  /// Number of workers in the team (including the caller thread).
  unsigned num_threads = std::thread::hardware_concurrency();
  LocalOrder local_order = LocalOrder::lifo;
  VictimPolicy victim = VictimPolicy::random;
  /// Cut-off policy (Figure 4). Also settable process-wide via RT_CUTOFF.
  CutoffPolicy cutoff = cutoff_from_env();
  /// Bound for the cut-off policy. 0 selects a policy-specific default:
  /// max_tasks -> 64 * num_threads, max_depth -> 16,
  /// adaptive -> hi = 64 * num_threads (lo = hi / 2).
  /// Also settable process-wide via RT_CUTOFF_VALUE.
  std::uint32_t cutoff_value = env_u32("RT_CUTOFF_VALUE", 0);
  /// Pool task descriptors in per-worker freelists instead of the global
  /// heap (paper Section III-B: "implementations that pre-allocate small
  /// memory areas associated with tasks descriptors might ... reduce the
  /// creation overheads"). Togglable so bench_ablation_taskpool can
  /// measure exactly that claim.
  bool use_task_pool = true;

  // -- spawn/steal fast-path knobs (each togglable so the ablation benches
  // -- and bench_spawn_overhead can A/B the overhaul piecewise) --------------

  /// Batch live-task accounting: spawn/finish adjust a per-worker delta that
  /// is flushed to the shared Region::live_tasks atomic every
  /// `accounting_batch` operations and whenever the worker reaches a task
  /// scheduling point with no local work. Off: every spawn/finish does its
  /// own fetch_add on the shared cacheline (the seed behaviour).
  bool batch_accounting = true;
  /// Flush threshold for batched accounting. The max_tasks/adaptive cut-offs
  /// may observe live_tasks stale by at most `accounting_batch * team_size`.
  std::uint32_t accounting_batch = 32;

  /// Steal up to half of the victim's deque in one grab and keep the surplus
  /// in the thief's own deque. Off: one task per steal (the seed behaviour).
  bool steal_half = true;
  /// Upper bound on tasks taken by one batched steal.
  std::uint32_t steal_batch_max = 16;

  /// Remember the last victim a steal succeeded from and try it first next
  /// time (steals come in bursts from the same loaded worker).
  bool victim_affinity = true;

  /// Park TSC-refused claims on per-worker lock-free inboxes instead of the
  /// region-global mutex-protected overflow vector (the seed behaviour).
  bool distributed_parking = true;

  /// Keep the newest spawned task in a private one-entry slot instead of the
  /// deque (only meaningful with LocalOrder::lifo). The hottest pop of a
  /// depth-first recursion then skips the Chase-Lev seq_cst fence and the
  /// deque round trip entirely; the slot is drained at every scheduling
  /// point before the worker steals or idles, so liveness and quiescence
  /// arguments are unchanged.
  bool lifo_slot = true;

  /// Fuse the parent's unfinished-children decrement with the dying child's
  /// reference drop into one RMW at task completion — taken only when the
  /// finishing task is observably exclusive (state word exactly ref_one, a
  /// stable observation once its body is done), since announcing completion
  /// after the self-reference is already dropped would unpin the parent
  /// against a concurrent release chain. Non-exclusive finishes, and the
  /// knob turned off, use the seed ordering: announce first, then walk the
  /// release chain (two parent-cacheline RMWs).
  bool fused_finish = true;

  /// Zero-allocation undeferred execution: when spawn_if's condition is
  /// false or the runtime cut-off refuses deferral, run the closure directly
  /// on the parent's frame with NO Task descriptor, no pool traffic and no
  /// refcount/children RMWs — only depth tracking (Worker::inline_depth) and
  /// a tied-stack entry that keeps the Task Scheduling Constraint sound
  /// across inlined tied tasks. The inlined task's children are adopted by
  /// the nearest enclosing task with a descriptor, so a taskwait inside the
  /// inlined body waits on a superset of its own children (never fewer). Off:
  /// undeferred tasks still allocate a descriptor and join the task graph
  /// (the seed behaviour the paper describes as bookkeeping the runtime
  /// "still has to do ... to keep consistency").
  bool use_inline_fast_path = true;

  /// Splittable range tasks: spawn_range publishes ONE descriptor for a
  /// whole iteration range; whoever executes it splits off the upper half as
  /// a sibling task whenever its local queue runs dry (which is exactly what
  /// a steal causes — the thief's first check always splits, re-exposing
  /// half for other thieves). Loop-style kernels (Alignment, SparseLU `for`,
  /// Health `for`) use this to replace one-descriptor-per-iteration
  /// generation. Off: those kernels fall back to per-iteration spawning, so
  /// bench_ablation_generators-style A/B comparisons stay possible.
  bool use_range_tasks = true;

  // -- topology-aware scheduling layer (topology.hpp / steal_policy.hpp) ----

  /// Steal/placement policy. The default (`legacy`) derives the policy
  /// from `victim` + `victim_affinity` exactly as PR 1 behaved; explicit
  /// values select one of the pluggable policies, `hierarchical` being the
  /// topology-aware one (same-node victims before crossing the
  /// interconnect, cross-node steal batches scaled down, range-split
  /// halves reached by same-node thieves first). Also settable process-wide
  /// via RT_STEAL_POLICY.
  StealPolicyKind steal_policy = steal_policy_from_env();

  /// Synthetic locality topology "NxM" (N nodes of M cores): a
  /// deterministic override of sysfs discovery for tests/CI, where policy
  /// behaviour must not depend on the host. Empty consults
  /// RT_SYNTHETIC_TOPOLOGY, then sysfs, then falls back to one flat node.
  std::string synthetic_topology{};

  /// Pin every worker thread to its topology node's cpuset at region entry
  /// (sched_setaffinity; see affinity.hpp and Scheduler::apply_pinning), so
  /// the hierarchical policy's locality reasoning matches what the OS
  /// actually schedules. Graceful no-op per worker when the node's cpuset
  /// names no CPU this machine has (synthetic topologies) or the syscall is
  /// refused; the post-pin placement is verified and recorded in
  /// WorkerStats::pinned so benchmarks can prove the map matched reality.
  /// Worker 0 is the caller thread — its pre-pin mask is restored when the
  /// Scheduler is destroyed. Also settable via RT_PIN_WORKERS=1.
  bool pin_workers = env_flag("RT_PIN_WORKERS", false);

  /// Per-node "has work" hints consulted by the hierarchical steal policy:
  /// one cache-line-padded word per node, published on enqueue and steal
  /// surplus, cleared when a fruitless steal round observes the whole home
  /// node dry. A planning round skips remote nodes whose word is clear
  /// (cutting interconnect probe traffic when a remote node is idle,
  /// counted in WorkerStats::remote_probes_skipped); a backoff forces an
  /// unconditional full probe round every few gated rounds so a stale hint
  /// delays a steal by a bounded number of rounds and can never starve the
  /// team. The words are only instantiated when something would read them
  /// — the hierarchical policy on a multi-node topology — so every other
  /// configuration pays nothing for the default-on knob. Off: every round
  /// probes every remote deque (the PR-3 behaviour). Also settable via
  /// RT_NODE_HINTS=0/1.
  bool use_node_work_hints = env_flag("RT_NODE_HINTS", true);

  /// Adaptive grain for rt::spawn_range (grain.hpp): the runtime retunes a
  /// grain estimate from observed split density vs iterations executed
  /// (dense splits grow it, starvation under a coarse schedule shrinks it)
  /// and spawn_range uses max(caller grain, estimate) — so kernels'
  /// hardcoded grain=1 becomes a runtime decision. Off: the caller's grain
  /// is used verbatim (the PR-2 behaviour).
  bool use_adaptive_grain = true;

  /// Node-local descriptor pools (task.hpp NodeArena): descriptor memory is
  /// carved and first-touched by the OWNING node's workers, and a stolen
  /// descriptor retires to its *birth node's* arena — not the thief's pool —
  /// via per-worker outbound stashes flushed home in batches. Without this,
  /// cross-node steals recycle descriptors into the thief's freelist and
  /// descriptor memory drifts across the interconnect over time (counted in
  /// WorkerStats::pool_remote_frees, which this knob drives to zero). On a
  /// single-node topology — or with use_task_pool off — the knob is inert
  /// and allocation degenerates to the plain per-worker pools bit-for-bit.
  /// Also settable via RT_NODE_POOLS=0/1.
  bool use_node_pools = env_flag("RT_NODE_POOLS", true);

  /// Hint-aware range placement: when a spawn_range splitter sits on a node
  /// whose NodeHints word advertises local surplus while a remote node's
  /// word is clear (idle), the split-off upper half is published to a
  /// mailbox deque on the idle node (RangeMailbox in steal_policy.hpp)
  /// instead of the splitter's own deque — the idle node finds it on its
  /// next find_work round without paying cross-node steal latency, counted
  /// in WorkerStats::range_halves_redirected. Piggybacks on NodeHints:
  /// only active where the hints are (hierarchical policy, multi-node
  /// topology, use_node_work_hints on). Also settable via
  /// RT_HINT_PLACEMENT=0/1.
  bool use_hint_placement = env_flag("RT_HINT_PLACEMENT", true);

  /// Record-and-replay of dependence-tracked task graphs (taskgraph.hpp,
  /// after the Taskgraph framework, arXiv 2212.04771): the first execution
  /// of a region wrapped in rt::graph_region(tag, ...) records every
  /// dep-spawned task and every dependence edge into a frozen arena-backed
  /// TaskGraph; subsequent invocations replay it — pre-resolved dependence
  /// counters, no hash-table lookups, no descriptor allocation
  /// (reset-in-place graph-owned descriptors), workers started from the
  /// recorded root frontier. Off: every invocation runs the dynamic
  /// dependence-discovery path (identical results — the A/B identity tests
  /// assert bit-equal outputs). Also settable via RT_TASKGRAPH_REPLAY=0/1.
  bool use_taskgraph_replay = env_flag("RT_TASKGRAPH_REPLAY", true);

  /// Key grain estimates by spawn site (rt::RangeSite tags threaded through
  /// spawn_range): each tagged call site converges its own GrainController
  /// in a small fixed-size table, so a workload mixing cheap-iteration and
  /// expensive-iteration ranges (SparseLU phases vs Alignment rows) does
  /// not force one compromise estimate. Untagged sites — and every site
  /// when this is off — share the scheduler-global controller (the PR-3
  /// behaviour). Only meaningful with use_adaptive_grain.
  bool use_site_grain = true;

  // -- fault-tolerance layer (fault.hpp / scheduler cancellation) -----------

  /// First captured task exception cancels the region: every
  /// not-yet-started descendant is discarded (retired without executing its
  /// body, counted in WorkerStats::tasks_discarded) instead of running to
  /// completion before the rethrow. Mirrors OpenMP `cancel taskgroup`
  /// semantics for the exceptional path. Off: the seed behaviour — the
  /// exception is held until the region barrier and every remaining task
  /// still executes. Also settable via RT_CANCEL_ON_EXCEPTION=0/1.
  bool cancel_on_exception = env_flag("RT_CANCEL_ON_EXCEPTION", false);

  /// Default region deadline in milliseconds, applied to every
  /// run_single/run_all that doesn't pass an explicit deadline. On expiry
  /// the region is cooperatively cancelled (running bodies finish; nothing
  /// new starts) and the deadline-taking overloads report
  /// RegionStatus::deadline_exceeded. 0 = no deadline. Also settable via
  /// RT_REGION_DEADLINE_MS.
  std::uint32_t region_deadline_ms = env_u32("RT_REGION_DEADLINE_MS", 0);

  /// Stall watchdog: a monitor thread samples the team's progress counters
  /// (tasks executed, range chunks peeled) and, after `watchdog_ms`
  /// milliseconds without any movement while tasks are still live, dumps
  /// per-worker state, node hint words, mailbox depths and node-pool
  /// snapshots to stderr. 0 = no watchdog. Also settable via RT_WATCHDOG_MS.
  std::uint32_t watchdog_ms = env_u32("RT_WATCHDOG_MS", 0);

  /// When the watchdog declares a stall, also cancel the region (the
  /// deadline-style cooperative cancel) instead of only reporting it. Also
  /// settable via RT_WATCHDOG_CANCEL=0/1.
  bool watchdog_cancel = env_flag("RT_WATCHDOG_CANCEL", false);

  /// Deterministic fault-injection plan (fault.hpp grammar, e.g.
  /// "seed=7,all=0.02"). Empty = no injection. Defaults to RT_FAULT_PLAN
  /// like every other knob; assigning the field overrides the environment.
  std::string fault_plan = env_string("RT_FAULT_PLAN");

  // -- live reconfiguration (PR 9) ------------------------------------------

  /// Allow Scheduler::reconfigure_live(): epoch/RCU hot-swap of the steal
  /// policy, node hints and watchdog tunables WHILE regions run (including
  /// the server's resident region). Workers pin a versioned PolicySnapshot
  /// at the top of every find_work round (one seq_cst load + a pointer
  /// compare in steady state — no lock, no barrier); the swapper installs a
  /// new snapshot, waits for per-worker epoch quiescence and retires the old
  /// one. Topology/NUMA-arena swaps stay between-regions only (descriptor
  /// birth nodes cannot migrate live) — that boundary is in the type system:
  /// reconfigure_live takes no topology. Off: reconfigure_live throws like
  /// the between-regions reconfigure() always has. Also settable via
  /// RT_LIVE_RECONF=0/1.
  bool live_reconfigure = env_flag("RT_LIVE_RECONF", true);

  /// Per-worker binary event tracing (trace.hpp): TSC-stamped ring buffers
  /// recording spawn/steal/park/split/mailbox/request events, drained at
  /// region boundaries and exportable as Chrome-trace/perfetto JSON
  /// (`bots_run --trace-out=f.json`). Off (the default) costs one predictable
  /// branch per event site (the worker's ring pointer stays null); compile
  /// with -DBOTS_RT_NO_TRACE to remove even that. Also settable via
  /// RT_TRACE=0/1.
  bool trace = env_flag("RT_TRACE", false);

  /// Per-worker trace ring capacity in records (rounded up to a power of
  /// two; 24 bytes/record, so the default is ~384 KiB per worker). The ring
  /// overwrites its oldest records between drains; overwritten records are
  /// counted as dropped, and the per-event counters used by the pathology
  /// analyzers and conservation tests are wrap-proof regardless. Also
  /// settable via RT_TRACE_BUF=<records>.
  std::uint32_t trace_buf = env_u32("RT_TRACE_BUF", 1u << 14);

  /// Run the scheduling-pathology analyzers (pathology.hpp) over the trace
  /// at teardown and print a report (the driver's --tripwire-pathology flag
  /// additionally fails the run when a detector fires). Implies nothing on
  /// its own when tracing is off. Also settable via RT_PATHOLOGY=0/1.
  bool pathology = env_flag("RT_PATHOLOGY", false);

  /// Resolved cut-off bound (applies the documented defaults).
  [[nodiscard]] std::uint32_t resolved_cutoff_bound() const noexcept {
    if (cutoff_value != 0) return cutoff_value;
    switch (cutoff) {
      case CutoffPolicy::max_tasks:
      case CutoffPolicy::adaptive:
        return 64u * (num_threads == 0 ? 1u : num_threads);
      case CutoffPolicy::max_depth:
        return 16u;
      case CutoffPolicy::none:
        return 0u;
    }
    return 0u;
  }

  /// The steal policy actually instantiated: maps `legacy` onto the PR-1
  /// knobs (victim_affinity selects last_victim over the `victim` base
  /// rotation), passes explicit selections through.
  [[nodiscard]] StealPolicyKind resolved_steal_policy() const noexcept {
    if (steal_policy != StealPolicyKind::legacy) return steal_policy;
    if (victim_affinity) return StealPolicyKind::last_victim;
    return victim == VictimPolicy::random ? StealPolicyKind::random
                                          : StealPolicyKind::sequential;
  }
};

/// Pause hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

[[nodiscard]] constexpr const char* to_string(Tiedness t) noexcept {
  return t == Tiedness::tied ? "tied" : "untied";
}

[[nodiscard]] constexpr const char* to_string(CutoffPolicy c) noexcept {
  switch (c) {
    case CutoffPolicy::none: return "none";
    case CutoffPolicy::max_tasks: return "max_tasks";
    case CutoffPolicy::max_depth: return "max_depth";
    case CutoffPolicy::adaptive: return "adaptive";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(LocalOrder o) noexcept {
  return o == LocalOrder::lifo ? "lifo" : "fifo";
}

[[nodiscard]] constexpr const char* to_string(VictimPolicy v) noexcept {
  return v == VictimPolicy::random ? "random" : "sequential";
}

[[nodiscard]] constexpr const char* to_string(StealPolicyKind k) noexcept {
  switch (k) {
    case StealPolicyKind::legacy: return "legacy";
    case StealPolicyKind::random: return "random";
    case StealPolicyKind::sequential: return "sequential";
    case StealPolicyKind::last_victim: return "last_victim";
    case StealPolicyKind::hierarchical: return "hierarchical";
  }
  return "?";
}

}  // namespace bots::rt
