#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace bots::rt {

TraceCollector::TraceCollector(unsigned workers, std::uint32_t ring_capacity) {
  rings_.reserve(workers);
  drained_.resize(workers);
  for (unsigned i = 0; i < workers; ++i)
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity));
  t0_tsc_ = trace_now();
  t0_wall_ = std::chrono::steady_clock::now();
}

namespace {

// ticks-per-microsecond measured over the collector's whole lifetime; the
// span is the traced run itself, so no calibration sleep is needed.
double ticks_per_us(std::uint64_t t0_tsc,
                    std::chrono::steady_clock::time_point t0_wall) {
  const std::uint64_t t1_tsc = trace_now();
  const auto t1_wall = std::chrono::steady_clock::now();
  const double us = std::chrono::duration<double, std::micro>(t1_wall - t0_wall)
                        .count();
  const double ticks = static_cast<double>(t1_tsc - t0_tsc);
  if (us <= 0.0 || ticks <= 0.0) return 1000.0;  // arbitrary sane fallback
  return ticks / us;
}

}  // namespace

double TraceCollector::tsc_to_us(std::uint64_t tsc) const noexcept {
  const double tpu = ticks_per_us(t0_tsc_, t0_wall_);
  if (tsc <= t0_tsc_) return 0.0;
  return static_cast<double>(tsc - t0_tsc_) / tpu;
}

bool TraceCollector::export_chrome_trace(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const double tpu = ticks_per_us(t0_tsc_, t0_wall_);
  auto to_us = [&](std::uint64_t tsc) {
    return tsc <= t0_tsc_ ? 0.0 : static_cast<double>(tsc - t0_tsc_) / tpu;
  };

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  for (unsigned wid = 0; wid < num_workers(); ++wid) {
    // request_start/request_end pairs become duration ("X") slices; requests
    // never nest on one worker (one untied root body at a time), so a single
    // open slot per worker suffices.
    bool open = false;
    TraceRecord open_rec = {};
    for (const TraceRecord& r : drained_[wid]) {
      const auto ev = static_cast<TraceEvent>(r.type);
      if (ev == TraceEvent::request_start) {
        open = true;
        open_rec = r;
        continue;
      }
      if (ev == TraceEvent::request_end) {
        const double ts = open ? to_us(open_rec.tsc) : to_us(r.tsc);
        const double dur = std::max(0.0, to_us(r.tsc) - ts);
        sep();
        std::fprintf(f,
                     "{\"name\":\"request\",\"cat\":\"server\",\"ph\":\"X\","
                     "\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"ctx\":%" PRIu64 "}}",
                     wid, ts, dur, r.arg);
        open = false;
        continue;
      }
      sep();
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"rt\",\"ph\":\"i\",\"s\":\"t\","
                   "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                   "\"args\":{\"arg\":%" PRIu64 ",\"arg2\":%u}}",
                   trace_event_name(ev), wid, to_us(r.tsc), r.arg, r.arg2);
    }
    // Slice still open at export time (request in flight): emit a begin event
    // so the viewer shows it as unterminated rather than dropping it.
    if (open) {
      sep();
      std::fprintf(f,
                   "{\"name\":\"request\",\"cat\":\"server\",\"ph\":\"B\","
                   "\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                   "\"args\":{\"ctx\":%" PRIu64 "}}",
                   wid, to_us(open_rec.tsc), open_rec.arg);
    }
    sep();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"name\":\"worker %u\"}}",
                 wid, wid);
  }
  std::fprintf(f,
               "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
               "\"dropped_records\":%" PRIu64 "}}\n",
               dropped());
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace bots::rt
