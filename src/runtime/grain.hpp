// Adaptive grain control for splittable range tasks (rt::spawn_range).
//
// Kernels historically hardcoded grain = 1 ("let the runtime figure it
// out"), which makes every split check eligible and — under heavy thief
// demand — fragments a range into descriptors that carry almost no work.
// The GrainController turns grain into a runtime decision: it watches the
// same stats the split machinery already produces (iterations executed vs
// descriptors materialized, i.e. range_splits) plus a cheap starvation
// signal from the idle path, and retunes a grain estimate:
//
//   * dense splits  — descriptors average fewer than `grow_floor`
//     iterations each: splitting is costing a descriptor + steal transfer
//     for very little work, so the grain doubles (amortizing the split
//     checks and fattening every half).
//   * starvation    — workers keep reporting empty find_work rounds while
//     the live ranges produced NO split at all (a remainder that never
//     exceeds the grain cannot split, whatever the per-iteration cost):
//     the grain halves to re-expose the only parallelism ranges offer.
//     Keying the shrink on splits-impossible rather than on an absolute
//     iteration count matters for chunk-granular ranges (Sort's merges:
//     ~200 heavy iterations per range) — an iteration-count gate would
//     leave a grown grain unrecoverable there and ratchet the merge
//     phases serial. The two rules are mutually exclusive per window
//     (S > 0 grows, S == 0 shrinks), so the estimate at worst oscillates
//     by one factor of two around the boundary where ranges just barely
//     split — the right scale.
//
// Scope of an estimate — two axes, both closing PR-3 gaps:
//
//   * Per spawn site. One scheduler-global estimate mis-serves workloads
//     that mix cheap and expensive iterations (SparseLU's phases vs
//     Alignment's rows): whichever shape closes more windows drags the
//     shared estimate its way. Call sites therefore tag their ranges with
//     a RangeSite and the GrainTable gives every tagged site its own
//     controller (a small fixed-size hash table; colliding sites share a
//     slot, which only costs precision, never correctness). Untagged
//     sites — and everything when SchedulerConfig::use_site_grain is off
//     — fall back to the global controller, the PR-3 behaviour.
//   * Per region, with a region-start reset. Retuned state does NOT
//     persist across run_region calls: at region start every controller's
//     estimate drops back to its seeded base (1 unless seed() raised it),
//     so a region that converged coarse on huge cheap iterations cannot
//     poison the next region's first splits (cross-region bleed). The
//     window accumulators DO persist, so short repeated regions still
//     learn — just within each region's own estimate. spawn_range treats
//     the caller's grain as a floor either way: a kernel that *knows* its
//     per-iteration cost (FFT's data-motion chunks) keeps its floor.
//
// Gated by SchedulerConfig::use_adaptive_grain (+ use_site_grain).
//
// All counter state is relaxed atomics: signals are statistical, a lost
// update only delays a retune by one window. TSAN-clean by construction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace bots::rt {

/// Compile-time tag for a spawn_range call site. Construct one constexpr
/// instance per lexical call site from a string literal (kept for
/// observability — GrainTable::describe names converged sites with it):
///
///   constexpr rt::RangeSite kMergeSite{"sort/merge"};
///   rt::spawn_range(kMergeSite, tied, 0, n, 1, body);
///
/// A default-constructed RangeSite (id 0) is "untagged" and maps to the
/// scheduler-global controller.
struct RangeSite {
  const char* name = nullptr;
  std::uint32_t id = 0;

  constexpr RangeSite() = default;
  explicit constexpr RangeSite(const char* n)
      : name(n), id(fnv1a(n) == 0 ? 1u : fnv1a(n)) {}

  /// FNV-1a over the site name (0 is reserved for "untagged", so a hash of
  /// exactly 0 is nudged to 1 above — full 32-bit spread is kept otherwise;
  /// forcing bits here would bias the GrainTable's slot index).
  [[nodiscard]] static constexpr std::uint32_t fnv1a(const char* s) noexcept {
    std::uint32_t h = 2166136261u;
    for (; *s != '\0'; ++s) {
      h ^= static_cast<std::uint32_t>(static_cast<unsigned char>(*s));
      h *= 16777619u;
    }
    return h;
  }
};

class GrainController {
 public:
  /// One retune per this many executed iterations (accumulated across
  /// ranges and regions, so short regions still learn — just more slowly).
  static constexpr std::int64_t retune_window = 1024;
  /// Grow when descriptors average fewer iterations than this (and at
  /// least one split happened — without splits there is nothing to
  /// amortize and growing cannot help).
  static constexpr std::int64_t grow_floor = 64;
  /// Hungry find_work rounds per team member per window that count as
  /// starvation. Deliberately low: the idle path's sleep backoff caps the
  /// note rate at a few hundred per second on a contended box, and the
  /// real guard is the S == 0 condition — while ranges are splitting at
  /// all, hunger never shrinks the grain (the splits themselves are the
  /// feed); only a window whose live ranges could not split once is
  /// treated as grain-blocked.
  static constexpr std::uint64_t hungry_floor = 4;
  static constexpr std::int64_t max_grain = 1 << 16;

  GrainController() noexcept = default;
  explicit GrainController(unsigned team) noexcept
      : team_(team == 0 ? 1 : team) {}

  /// Table construction seam: GrainTable default-constructs its slots and
  /// then sets the team size (std::array cannot forward ctor arguments).
  void set_team(unsigned team) noexcept { team_ = team == 0 ? 1 : team; }

  /// Current grain estimate (>= 1). spawn_range uses
  /// max(caller grain, grain()) when use_adaptive_grain is on.
  [[nodiscard]] std::int64_t grain() const noexcept {
    return grain_.load(std::memory_order_relaxed);
  }

  /// Set the estimate AND the base the estimate resets to at every region
  /// start — a warm start survives regions, a retune does not (retuned
  /// state is what cross-region bleed is made of). Tests use this to put
  /// the controller into a known state, and reconfigure_live uses it to
  /// reseed the live generation (base_ is an atomic so a live seed CASes
  /// cleanly against a concurrent region-start reset).
  void seed(std::int64_t g) noexcept {
    const std::int64_t c = clamp(g);
    base_.store(c, std::memory_order_relaxed);
    grain_.store(c, std::memory_order_relaxed);
  }

  /// Region-start reset: drop the estimate back to the seeded base so a
  /// coarse estimate learned on one region's workload cannot poison the
  /// next region's first splits. Window accumulators are kept — partial
  /// windows keep accumulating across short regions. Called by run_region
  /// (between regions; no worker is concurrently retuning — but a live
  /// reseed may race it, hence the atomic base).
  void on_region_start() noexcept {
    grain_.store(base_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  /// Retunes applied so far (observability; bench_ablation_steal_policy
  /// prints it next to the converged grain).
  [[nodiscard]] std::uint64_t retunes() const noexcept {
    return retunes_.load(std::memory_order_relaxed);
  }

  /// Published-but-unfinished range descriptors. Zero whenever the
  /// scheduler is quiescent — a nonzero value between regions means a
  /// completion report leaked (asserted by tests around throwing bodies).
  [[nodiscard]] std::int64_t live_ranges() const noexcept {
    return live_ranges_.load(std::memory_order_relaxed);
  }

  /// A range descriptor (an original range or a split-off half) was
  /// published. Keeps `live_ranges_` matched with on_range_complete so the
  /// starvation signal below is scoped to windows where range work
  /// actually exists.
  void range_published() noexcept {
    live_ranges_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Idle path signal: a find_work round found nothing anywhere. Counted
  /// only while a range descriptor is live — hunger during range-free
  /// phases (a fib burst, a region-end barrier tail after the last range
  /// finished) says nothing about grain, and letting it accumulate
  /// between retune windows would force a spurious shrink of a healthy
  /// converged grain the next time a window closes.
  void note_hungry() noexcept {
    if (live_ranges_.load(std::memory_order_relaxed) > 0) {
      hungry_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// A range descriptor (an original range or a split-off half) finished:
  /// it executed `iters` iterations and split `splits` halves off itself.
  void on_range_complete(std::int64_t iters, std::int64_t splits) noexcept {
    live_ranges_.fetch_sub(1, std::memory_order_relaxed);
    iters_.fetch_add(iters, std::memory_order_relaxed);
    splits_.fetch_add(splits, std::memory_order_relaxed);
    descs_.fetch_add(1, std::memory_order_relaxed);
    if (iters_.load(std::memory_order_relaxed) < retune_window) return;
    // Claim the whole window; a racing claimant that grabs a short remnant
    // returns it, so exactly one retune sees the full window.
    const std::int64_t iters_seen = iters_.exchange(0, std::memory_order_relaxed);
    if (iters_seen < retune_window) {
      iters_.fetch_add(iters_seen, std::memory_order_relaxed);
      return;
    }
    const std::int64_t splits_seen =
        splits_.exchange(0, std::memory_order_relaxed);
    const std::int64_t descs_seen = descs_.exchange(0, std::memory_order_relaxed);
    const std::uint64_t hungry_seen =
        hungry_.exchange(0, std::memory_order_relaxed);
    const std::int64_t d = descs_seen > 0 ? descs_seen : 1;
    const std::int64_t g = grain_.load(std::memory_order_relaxed);
    std::int64_t next = g;
    if (splits_seen > 0 && iters_seen < grow_floor * d) {
      next = g * 2;  // dense splits: descriptors too lean, amortize harder
    } else if (splits_seen == 0 && descs_seen > 0 &&
               hungry_seen > hungry_floor * team_) {
      next = g / 2;  // hungry workers + ranges that could not split once:
                     // the grain is blocking the parallelism, walk it back
    }
    next = clamp(next);
    if (next != g) {
      grain_.store(next, std::memory_order_relaxed);
      retunes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] static std::int64_t clamp(std::int64_t g) noexcept {
    if (g < 1) return 1;
    if (g > max_grain) return max_grain;
    return g;
  }

  std::atomic<std::int64_t> grain_{1};
  std::atomic<std::int64_t> iters_{0};
  std::atomic<std::int64_t> splits_{0};
  std::atomic<std::int64_t> descs_{0};
  std::atomic<std::int64_t> live_ranges_{0};
  std::atomic<std::uint64_t> hungry_{0};
  std::atomic<std::uint64_t> retunes_{0};
  /// Region-start reset target. Usually written between regions (seed /
  /// construction), but reconfigure_live may reseed it while the server's
  /// resident region runs — relaxed atomic so that write never races
  /// on_region_start's read.
  std::atomic<std::int64_t> base_{1};
  unsigned team_ = 1;
};

/// The scheduler's grain estimates: one global controller (untagged sites,
/// and everything when per-site keying is disabled) plus a small fixed-size
/// table of per-site controllers keyed by RangeSite id. Sites hashing to
/// the same slot share a controller — precision degrades, nothing breaks —
/// and the first name to claim a slot labels it in describe().
class GrainTable {
 public:
  /// Prime, and comfortably larger than the number of tagged sites the
  /// kernels ship (8), so the folded hash spreads collision-free in
  /// practice — verified for every in-tree site name. ~5 KB of slots.
  static constexpr std::size_t site_slots = 61;

  explicit GrainTable(unsigned team, bool per_site = true) noexcept
      : per_site_(per_site), global_(team) {
    for (Slot& s : sites_) s.ctrl.set_team(team);
  }

  [[nodiscard]] GrainController& global() noexcept { return global_; }

  /// The controller serving `site`: the global one for untagged sites (and
  /// for every site when per-site keying is off), the site's hash slot
  /// otherwise.
  [[nodiscard]] GrainController& for_site(RangeSite site) noexcept {
    if (site.id == 0 || !per_site_) return global_;
    // Fold the high half in before the modulo: FNV-1a's low bits alone
    // cluster for short strings, and a biased index quietly merges sites
    // (colliding sites share one estimate AND one describe() label).
    const std::uint32_t mixed = site.id ^ (site.id >> 16);
    Slot& s = sites_[mixed % site_slots];
    if (s.name.load(std::memory_order_relaxed) == nullptr) {
      s.name.store(site.name, std::memory_order_relaxed);
    }
    return s.ctrl;
  }

  /// Idle-path fan-out: each controller's live-range gate decides whether
  /// the hunger concerns it, so forwarding to all of them is both correct
  /// and cheap (one relaxed load per idle round per slot).
  void note_hungry() noexcept {
    global_.note_hungry();
    for (Slot& s : sites_) s.ctrl.note_hungry();
  }

  void on_region_start() noexcept {
    global_.on_region_start();
    for (Slot& s : sites_) s.ctrl.on_region_start();
  }

  /// "global=G site=G ..." for every site that has bound a slot — recorded
  /// by bench_ablation_steal_policy and run_baseline.sh so per-site
  /// convergence stays visible in the perf trajectory.
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "global=" << global_.grain();
    for (const Slot& s : sites_) {
      if (const char* n = s.name.load(std::memory_order_relaxed)) {
        os << ' ' << n << '=' << s.ctrl.grain();
      }
    }
    return os.str();
  }

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};  ///< first site literal bound here
    GrainController ctrl;
  };

  bool per_site_;
  GrainController global_;
  std::array<Slot, site_slots> sites_;
};

}  // namespace bots::rt
