// Adaptive grain control for splittable range tasks (rt::spawn_range).
//
// Kernels historically hardcoded grain = 1 ("let the runtime figure it
// out"), which makes every split check eligible and — under heavy thief
// demand — fragments a range into descriptors that carry almost no work.
// The GrainController turns grain into a runtime decision: it watches the
// same stats the split machinery already produces (iterations executed vs
// descriptors materialized, i.e. range_splits) plus a cheap starvation
// signal from the idle path, and retunes a scheduler-global grain estimate:
//
//   * dense splits  — descriptors average fewer than `grow_floor`
//     iterations each: splitting is costing a descriptor + steal transfer
//     for very little work, so the grain doubles (amortizing the split
//     checks and fattening every half).
//   * starvation    — workers keep reporting empty find_work rounds while
//     the live ranges produced NO split at all (a remainder that never
//     exceeds the grain cannot split, whatever the per-iteration cost):
//     the grain halves to re-expose the only parallelism ranges offer.
//     Keying the shrink on splits-impossible rather than on an absolute
//     iteration count matters for chunk-granular ranges (Sort's merges:
//     ~200 heavy iterations per range) — an iteration-count gate would
//     leave a grown grain unrecoverable there and ratchet the merge
//     phases serial. The two rules are mutually exclusive per window
//     (S > 0 grows, S == 0 shrinks), so the estimate at worst oscillates
//     by one factor of two around the boundary where ranges just barely
//     split — the right scale.
//
// The controller is deliberately scheduler-global (one estimate shared by
// every spawn_range site) and persistent across regions: loop kernels call
// the same range shapes region after region, so the estimate converges
// over the first few regions and stays put. spawn_range treats the
// caller's grain as a floor — a kernel that *knows* its per-iteration cost
// (FFT's data-motion chunks) keeps its floor; the hardcoded grain=1 sites
// are fully runtime-tuned. Gated by SchedulerConfig::use_adaptive_grain.
//
// All state is relaxed atomics: signals are statistical, a lost update
// only delays a retune by one window. TSAN-clean by construction.
#pragma once

#include <atomic>
#include <cstdint>

namespace bots::rt {

class GrainController {
 public:
  /// One retune per this many executed iterations (accumulated across
  /// ranges and regions, so short regions still learn — just more slowly).
  static constexpr std::int64_t retune_window = 1024;
  /// Grow when descriptors average fewer iterations than this (and at
  /// least one split happened — without splits there is nothing to
  /// amortize and growing cannot help).
  static constexpr std::int64_t grow_floor = 64;
  /// Hungry find_work rounds per team member per window that count as
  /// starvation. Deliberately low: the idle path's sleep backoff caps the
  /// note rate at a few hundred per second on a contended box, and the
  /// real guard is the S == 0 condition — while ranges are splitting at
  /// all, hunger never shrinks the grain (the splits themselves are the
  /// feed); only a window whose live ranges could not split once is
  /// treated as grain-blocked.
  static constexpr std::uint64_t hungry_floor = 4;
  static constexpr std::int64_t max_grain = 1 << 16;

  explicit GrainController(unsigned team) noexcept
      : team_(team == 0 ? 1 : team) {}

  /// Current grain estimate (>= 1). spawn_range uses
  /// max(caller grain, grain()) when use_adaptive_grain is on.
  [[nodiscard]] std::int64_t grain() const noexcept {
    return grain_.load(std::memory_order_relaxed);
  }

  /// Force the estimate (tests; also usable to warm-start from a previous
  /// run's converged value).
  void seed(std::int64_t g) noexcept {
    grain_.store(clamp(g), std::memory_order_relaxed);
  }

  /// Retunes applied so far (observability; bench_ablation_steal_policy
  /// prints it next to the converged grain).
  [[nodiscard]] std::uint64_t retunes() const noexcept {
    return retunes_.load(std::memory_order_relaxed);
  }

  /// Published-but-unfinished range descriptors. Zero whenever the
  /// scheduler is quiescent — a nonzero value between regions means a
  /// completion report leaked (asserted by tests around throwing bodies).
  [[nodiscard]] std::int64_t live_ranges() const noexcept {
    return live_ranges_.load(std::memory_order_relaxed);
  }

  /// A range descriptor (an original range or a split-off half) was
  /// published. Keeps `live_ranges_` matched with on_range_complete so the
  /// starvation signal below is scoped to windows where range work
  /// actually exists.
  void range_published() noexcept {
    live_ranges_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Idle path signal: a find_work round found nothing anywhere. Counted
  /// only while a range descriptor is live — hunger during range-free
  /// phases (a fib burst, a region-end barrier tail after the last range
  /// finished) says nothing about grain, and letting it accumulate
  /// between retune windows would force a spurious shrink of a healthy
  /// converged grain the next time a window closes.
  void note_hungry() noexcept {
    if (live_ranges_.load(std::memory_order_relaxed) > 0) {
      hungry_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// A range descriptor (an original range or a split-off half) finished:
  /// it executed `iters` iterations and split `splits` halves off itself.
  void on_range_complete(std::int64_t iters, std::int64_t splits) noexcept {
    live_ranges_.fetch_sub(1, std::memory_order_relaxed);
    iters_.fetch_add(iters, std::memory_order_relaxed);
    splits_.fetch_add(splits, std::memory_order_relaxed);
    descs_.fetch_add(1, std::memory_order_relaxed);
    if (iters_.load(std::memory_order_relaxed) < retune_window) return;
    // Claim the whole window; a racing claimant that grabs a short remnant
    // returns it, so exactly one retune sees the full window.
    const std::int64_t iters_seen = iters_.exchange(0, std::memory_order_relaxed);
    if (iters_seen < retune_window) {
      iters_.fetch_add(iters_seen, std::memory_order_relaxed);
      return;
    }
    const std::int64_t splits_seen =
        splits_.exchange(0, std::memory_order_relaxed);
    const std::int64_t descs_seen = descs_.exchange(0, std::memory_order_relaxed);
    const std::uint64_t hungry_seen =
        hungry_.exchange(0, std::memory_order_relaxed);
    const std::int64_t d = descs_seen > 0 ? descs_seen : 1;
    const std::int64_t g = grain_.load(std::memory_order_relaxed);
    std::int64_t next = g;
    if (splits_seen > 0 && iters_seen < grow_floor * d) {
      next = g * 2;  // dense splits: descriptors too lean, amortize harder
    } else if (splits_seen == 0 && descs_seen > 0 &&
               hungry_seen > hungry_floor * team_) {
      next = g / 2;  // hungry workers + ranges that could not split once:
                     // the grain is blocking the parallelism, walk it back
    }
    next = clamp(next);
    if (next != g) {
      grain_.store(next, std::memory_order_relaxed);
      retunes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] static std::int64_t clamp(std::int64_t g) noexcept {
    if (g < 1) return 1;
    if (g > max_grain) return max_grain;
    return g;
  }

  std::atomic<std::int64_t> grain_{1};
  std::atomic<std::int64_t> iters_{0};
  std::atomic<std::int64_t> splits_{0};
  std::atomic<std::int64_t> descs_{0};
  std::atomic<std::int64_t> live_ranges_{0};
  std::atomic<std::uint64_t> hungry_{0};
  std::atomic<std::uint64_t> retunes_{0};
  unsigned team_;
};

}  // namespace bots::rt
