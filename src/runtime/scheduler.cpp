#include "runtime/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace bots::rt {

namespace {

/// Spin backoff: a few pause hints, then yields. Workers inside a region are
/// expected to find work quickly; between regions they sleep on a condvar.
struct Backoff {
  void pause() noexcept {
    if (spins < 64) {
      cpu_relax();
      ++spins;
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { spins = 0; }
  int spins = 0;
};

}  // namespace

void Region::store_exception() noexcept {
  std::lock_guard<std::mutex> lock(exception_mutex);
  if (!first_exception) {
    first_exception = std::current_exception();
    has_exception.store(true, std::memory_order_release);
  }
}

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(cfg), cutoff_bound_(cfg.resolved_cutoff_bound()) {
  if (cfg_.num_threads == 0) cfg_.num_threads = 1;
  workers_.reserve(cfg_.num_threads);
  for (unsigned i = 0; i < cfg_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        this, i, 0x9E3779B97F4A7C15ULL * (i + 1)));
  }
  threads_.reserve(cfg_.num_threads - 1);
  for (unsigned i = 1; i < cfg_.num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    stopping_ = true;
  }
  region_cv_.notify_all();
  // std::jthread joins on destruction.
}

void Scheduler::worker_main(unsigned id) {
  Worker& w = *workers_[id];
  detail::tls_worker = &w;
  std::uint64_t seen = 0;
  for (;;) {
    Region* r = nullptr;
    {
      std::unique_lock<std::mutex> lock(region_mutex_);
      region_cv_.wait(lock, [&] { return stopping_ || region_seq_ != seen; });
      if (region_seq_ != seen) {
        seen = region_seq_;
        r = region_;
      } else {
        break;  // stopping and no new region
      }
    }
    if (r != nullptr) {
      participate(w, *r);
      region_done_.fetch_add(1, std::memory_order_release);
    }
  }
  detail::tls_worker = nullptr;
}

void Scheduler::run_single(const std::function<void()>& fn) {
  Region r(cfg_.num_threads);
  r.single_fn = &fn;
  run_region(r);
}

void Scheduler::run_all(const std::function<void(unsigned)>& fn) {
  Region r(cfg_.num_threads);
  r.all_fn = &fn;
  run_region(r);
}

void Scheduler::run_region(Region& r) {
  Worker* inside = detail::tls_worker;
  if (inside != nullptr) {
    // Nested region: serialize with a team of one (the OpenMP default of
    // disabled nested parallelism). The body runs as an undeferred task and
    // its direct children are joined before returning.
    if (inside->sched != this) {
      throw std::logic_error(
          "bots::rt: a worker of one Scheduler entered a region of another");
    }
    if (r.all_fn != nullptr) {
      run_inline_scope(*inside, [&r] { (*r.all_fn)(0); });
    } else if (r.single_fn != nullptr) {
      run_inline_scope(*inside, *r.single_fn);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    region_ = &r;
    ++region_seq_;
  }
  region_cv_.notify_all();

  Worker& w0 = *workers_[0];
  detail::tls_worker = &w0;
  participate(w0, r);
  detail::tls_worker = nullptr;

  // Wait until every worker has left the region before tearing it down.
  Backoff backoff;
  while (region_done_.load(std::memory_order_acquire) != cfg_.num_threads - 1) {
    backoff.pause();
  }
  region_done_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    region_ = nullptr;
  }
  if (r.has_exception.load(std::memory_order_acquire)) {
    std::rethrow_exception(r.first_exception);
  }
}

void Scheduler::participate(Worker& w, Region& r) {
  w.region = &r;
  w.throttled = false;

  // The implicit task for this worker. It lives on this stack frame; the
  // region-end quiescence barrier guarantees every descendant has finished
  // (and dropped its reference) before the frame dies.
  Task root;
  root.set_links(nullptr, 0, Tiedness::tied, TaskStorage::stack_frame);
  w.current = &root;

  try {
    if (r.all_fn != nullptr) {
      (*r.all_fn)(w.id);
    } else if (w.id == 0 && r.single_fn != nullptr) {
      (*r.single_fn)();
    }
  } catch (...) {
    r.store_exception();
  }

  barrier_from(w);  // implicit region-end barrier: full task quiescence

  assert(root.unfinished_children() == 0);
  w.current = nullptr;
  w.region = nullptr;
}

bool Scheduler::should_defer(Worker& w, std::uint32_t depth) noexcept {
  switch (cfg_.cutoff) {
    case CutoffPolicy::none:
      return true;
    case CutoffPolicy::max_depth:
      return depth <= cutoff_bound_;
    case CutoffPolicy::max_tasks:
      return w.region->live_tasks.load(std::memory_order_relaxed) <
             static_cast<std::int64_t>(cutoff_bound_);
    case CutoffPolicy::adaptive: {
      const auto live = w.region->live_tasks.load(std::memory_order_relaxed);
      if (w.throttled) {
        if (live < static_cast<std::int64_t>(cutoff_bound_ / 2)) {
          w.throttled = false;
        }
      } else if (live > static_cast<std::int64_t>(cutoff_bound_)) {
        w.throttled = true;
      }
      return !w.throttled;
    }
  }
  return true;
}

Task* Scheduler::alloc_task(Worker& w, TaskStorage& storage_out) {
  if (cfg_.use_task_pool) {
    bool reused = false;
    Task* t = w.pool.allocate(reused);
    if (reused) {
      ++w.stats.pool_reuse;
    } else {
      ++w.stats.pool_fresh;
    }
    storage_out = TaskStorage::pooled;
    return t;
  }
  ++w.stats.pool_fresh;
  storage_out = TaskStorage::heap;
  return new Task();
}

void Scheduler::enqueue(Worker& w, Task& t) {
  w.region->live_tasks.fetch_add(1, std::memory_order_relaxed);
  w.deque.push(&t);
}

void Scheduler::execute_deferred(Worker& w, Task& t) {
  Task* prev = w.current;
  w.current = &t;
  ++w.stats.tasks_executed;
  try {
    t.invoke();
  } catch (...) {
    w.region->store_exception();
  }
  t.destroy_env();
  w.current = prev;
  finish_task(w, t, /*deferred=*/true);
}

void Scheduler::run_undeferred(Worker& w, Task& t) {
  Task* prev = w.current;
  w.current = &t;
  try {
    t.invoke();
  } catch (...) {
    if (w.region != nullptr) {
      w.region->store_exception();
    } else {
      t.destroy_env();
      w.current = prev;
      throw;
    }
  }
  t.destroy_env();
  w.current = prev;
  finish_task(w, t, /*deferred=*/false);
}

void Scheduler::finish_task(Worker& w, Task& t, bool deferred) {
  Task* parent = t.parent();
  Region* region = w.region;
  // Order matters. (1) Announce completion while the child's reference still
  // pins the parent (a pooled parent may be freed by the release chain).
  // (2) Release references; this may recycle ancestors whose refcount hits
  // zero — never a stack-frame root, those are pinned until (3) has run for
  // every task. (3) Decrement live_tasks last, so the region barrier's
  // quiescence (live_tasks == 0) implies every release chain has finished
  // and the implicit root frames can safely leave the stack.
  if (parent != nullptr) parent->child_completed();
  release_chain(w, &t);
  if (deferred && region != nullptr) {
    region->live_tasks.fetch_sub(1, std::memory_order_release);
  }
}

void Scheduler::release_chain(Worker& w, Task* t) noexcept {
  while (t != nullptr && t->release_ref()) {
    Task* parent = t->parent();
    switch (t->storage()) {
      case TaskStorage::pooled:
        w.pool.recycle(t);
        break;
      case TaskStorage::heap:
        delete t;
        break;
      case TaskStorage::stack_frame:
        break;  // lifetime owned by a worker stack frame
    }
    t = parent;
  }
}

void Scheduler::taskwait_from(Worker& w) {
  ++w.stats.taskwaits;
  Task* cur = w.current;
  if (cur == nullptr || cur->unfinished_children() == 0) return;
  const bool constrains = cur->tiedness() == Tiedness::tied;
  if (constrains) w.tied_stack.push_back(cur);
  Backoff backoff;
  while (cur->unfinished_children() != 0) {
    if (Task* t = find_work(w)) {
      execute_deferred(w, *t);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  if (constrains) w.tied_stack.pop_back();
}

void Scheduler::barrier_from(Worker& w) {
  Region& r = *w.region;
  assert(w.current != nullptr && w.current->depth() == 0 &&
         "barrier() is only valid from the implicit task of a region");
  const std::uint32_t gen = r.barrier_gen.load(std::memory_order_acquire);
  const std::uint32_t n = r.arrived.fetch_add(1, std::memory_order_acq_rel) + 1;
  Backoff backoff;
  if (n == r.team_size) {
    // Last arriver: drain every outstanding task, then release the team.
    while (r.live_tasks.load(std::memory_order_acquire) != 0) {
      if (Task* t = find_work(w)) {
        execute_deferred(w, *t);
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    r.arrived.store(0, std::memory_order_relaxed);
    r.barrier_gen.fetch_add(1, std::memory_order_release);
  } else {
    while (r.barrier_gen.load(std::memory_order_acquire) == gen) {
      if (Task* t = find_work(w)) {
        execute_deferred(w, *t);
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
  }
}

void Scheduler::run_inline_scope(Worker& w, const std::function<void()>& body) {
  TaskStorage storage{};
  Task* frame = alloc_task(w, storage);
  frame->init_env([] {});  // scope frames carry no environment of their own
  Task* parent = w.current;
  const std::uint32_t depth = parent != nullptr ? parent->depth() + 1 : 1;
  if (parent != nullptr) parent->add_child_ref();
  frame->set_links(parent, depth, Tiedness::tied, storage);

  Task* prev = w.current;
  w.current = frame;
  std::exception_ptr eptr;
  try {
    body();
  } catch (...) {
    eptr = std::current_exception();
  }
  taskwait_from(w);  // join the nested region's direct children
  frame->destroy_env();
  w.current = prev;
  Task* frame_parent = frame->parent();
  if (frame_parent != nullptr) frame_parent->child_completed();
  release_chain(w, frame);
  if (eptr) std::rethrow_exception(eptr);
}

Task* Scheduler::find_work(Worker& w) {
  Region& r = *w.region;
  // 1. The shared overflow of constraint-refused claims. Checked first so
  // an ancestor waiting on one of these tasks picks it up promptly.
  if (r.overflow_count.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lock(r.overflow_mutex);
    for (std::size_t i = 0; i < r.overflow.size(); ++i) {
      if (tsc_allows(w, *r.overflow[i])) {
        Task* t = r.overflow[i];
        r.overflow.erase(r.overflow.begin() + static_cast<std::ptrdiff_t>(i));
        r.overflow_count.fetch_sub(1, std::memory_order_release);
        return t;
      }
    }
  }
  auto refuse = [&](Task* t) {
    std::lock_guard<std::mutex> lock(r.overflow_mutex);
    r.overflow.push_back(t);
    r.overflow_count.fetch_add(1, std::memory_order_release);
    ++w.stats.tsc_parked;
  };
  // 2. Own deque (order selects depth-first vs breadth-first execution).
  for (;;) {
    Task* t = cfg_.local_order == LocalOrder::lifo ? w.deque.pop()
                                                   : w.deque.steal();
    if (t == nullptr) break;
    if (tsc_allows(w, *t)) return t;
    refuse(t);
  }
  // 3. Steal from victims.
  const unsigned n = cfg_.num_threads;
  if (n > 1) {
    const unsigned start = cfg_.victim == VictimPolicy::random
                               ? static_cast<unsigned>(w.rng_next() % n)
                               : (w.id + 1) % n;
    for (unsigned k = 0; k < n; ++k) {
      const unsigned v = (start + k) % n;
      if (v == w.id) continue;
      ++w.stats.steal_attempts;
      if (Task* t = workers_[v]->deque.steal()) {
        if (tsc_allows(w, *t)) {
          ++w.stats.tasks_stolen;
          return t;
        }
        refuse(t);
      }
    }
  }
  return nullptr;
}

bool Scheduler::tsc_allows(const Worker& w, const Task& t) const noexcept {
  if (t.tiedness() == Tiedness::untied) return true;
  for (const Task* suspended : w.tied_stack) {
    if (!t.is_descendant_of(*suspended)) return false;
  }
  return true;
}

StatsSnapshot Scheduler::stats() const {
  StatsSnapshot snap;
  snap.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    snap.per_worker.push_back(w->stats);
    snap.total += w->stats;
  }
  return snap;
}

void Scheduler::reset_stats() noexcept {
  for (auto& w : workers_) w->stats = WorkerStats{};
}

}  // namespace bots::rt
