#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "runtime/affinity.hpp"
#include "runtime/dependency.hpp"
#include "runtime/steal_policy.hpp"
#include "runtime/taskgraph.hpp"  // complete type for graphs_ in ~Scheduler

namespace bots::rt {

namespace {

/// Spin backoff: a few pause hints, then yields, then short sleeps. Workers
/// inside a region are expected to find work quickly; between regions they
/// sleep on a condvar. The sleep phase matters when workers are descheduled
/// (oversubscription, noisy machines): a pure pause/yield spin — e.g. the
/// run_region teardown waiting for region_done_ — can otherwise monopolize
/// the core the straggler needs to finish.
struct Backoff {
  void pause() noexcept {
    if (spins < 64) {
      cpu_relax();
      ++spins;
    } else if (spins < 128) {
      std::this_thread::yield();
      ++spins;
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      if (sleep_us < 500) sleep_us *= 2;
    }
  }
  void reset() noexcept {
    spins = 0;
    sleep_us = 50;
  }
  int spins = 0;
  int sleep_us = 50;
};

}  // namespace

namespace detail {
void warn_last_region_status_race() noexcept {
  std::fprintf(stderr,
               "rt: warning: last_region_status() called while a region is "
               "live; returning RegionStatus::unknown — use the per-request "
               "RegionHandle::status() in server mode (warned once)\n");
}
}  // namespace detail

void Region::store_exception() noexcept {
  std::lock_guard<std::mutex> lock(exception_mutex);
  if (!first_exception) {
    first_exception = std::current_exception();
    has_exception.store(true, std::memory_order_release);
  }
  // cfg.cancel_on_exception: the first captured exception starts discarding
  // every not-yet-started descendant (OpenMP `cancel taskgroup` on error).
  // Safe for later exceptions too — cancel() is sticky/idempotent.
  if (cancel_on_exception) cancel(RegionStatus::cancelled);
}

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(cfg),
      topo_(Topology::detect(cfg.num_threads == 0 ? 1u : cfg.num_threads,
                             cfg.synthetic_topology)),
      grain_table_(cfg.num_threads == 0 ? 1u : cfg.num_threads,
                   cfg.use_site_grain),
      cutoff_bound_(cfg.resolved_cutoff_bound()) {
  if (cfg_.num_threads == 0) cfg_.num_threads = 1;
  fault_.parse(cfg_.fault_plan);
  use_slot_ = cfg_.lifo_slot && cfg_.local_order == LocalOrder::lifo;
  acct_batch_ = cfg_.accounting_batch > 0 ? cfg_.accounting_batch : 1;
  rebuild_node_pools();
  rebuild_mailboxes();
  {
    std::lock_guard<std::mutex> lock(reconf_mutex_);
    install_snapshot_locked(/*live=*/false);
  }
  if (cfg_.pin_workers) pin_generation_ = 1;
  workers_.reserve(cfg_.num_threads);
  for (unsigned i = 0; i < cfg_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        this, i, 0x9E3779B97F4A7C15ULL * (i + 1)));
    workers_.back()->node = topo_.node_of(i);
    workers_.back()->victim_buf.resize(cfg_.num_threads);
    workers_.back()->outbound.resize(topo_.num_nodes());
  }
  if (cfg_.trace) {
    tracer_ = std::make_unique<TraceCollector>(cfg_.num_threads,
                                               cfg_.trace_buf);
    for (unsigned i = 0; i < cfg_.num_threads; ++i)
      workers_[i]->ring = tracer_->ring(i);
  }
  // Worker-thread spawn is a degradation point, not a construction failure:
  // the first thread the OS (or the fault plan) refuses stops the roll-out
  // and the team shrinks to the workers that do exist — worker 0 is the
  // caller's thread and always exists, so a Scheduler is always usable.
  threads_.reserve(cfg_.num_threads - 1);
  unsigned built = 1;
  for (unsigned i = 1; i < cfg_.num_threads; ++i) {
    try {
      if (inject(workers_[i].get(), FaultSite::thread_spawn)) {
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "rt: injected thread-spawn failure");
      }
      threads_.emplace_back([this, i] { worker_main(i); });
    } catch (const std::system_error&) {
      break;
    }
    ++built;
  }
  if (built != cfg_.num_threads) shrink_team(built);
}

void Scheduler::shrink_team(unsigned built) {
  std::fprintf(stderr,
               "rt: warning: worker thread spawn failed; shrinking team "
               "%u -> %u and re-mapping topology\n",
               cfg_.num_threads, built);
  team_degraded_ = true;
  cfg_.num_threads = built;
  // Only never-started workers die here: threads_[k] serves worker k+1 and
  // exactly `built - 1` threads were emplaced, so workers_[built..) have no
  // thread attached and nothing observes their destruction.
  workers_.resize(built);
  // Re-map locality onto the team that actually exists — node ids, hints,
  // arenas, mailboxes and the policy were all sized for the planned team.
  topo_ = Topology::detect(built, cfg_.synthetic_topology);
  {
    // Between regions by construction (shrink happens while the team is
    // being built), so quiescence is immediate: every epoch slot is 0.
    std::lock_guard<std::mutex> lock(reconf_mutex_);
    install_snapshot_locked(/*live=*/false);
  }
  for (auto& w : workers_) {
    w->node = topo_.node_of(w->id);
    w->last_victim = Worker::no_victim;
    w->gated_rounds = 0;
    w->home_free = nullptr;
    w->home_free_count = 0;
    w->stash_in_transit = 0;
    w->outbound.assign(topo_.num_nodes(), RemoteStash{});
  }
  rebuild_node_pools();
  rebuild_mailboxes();
  if (tracer_ != nullptr) {
    // Events recorded during the aborted roll-out describe workers that no
    // longer exist; start the trace over for the team that does.
    tracer_ = std::make_unique<TraceCollector>(built, cfg_.trace_buf);
    for (auto& w : workers_) w->ring = tracer_->ring(w->id);
  }
  if (cfg_.cutoff_value == 0) cutoff_bound_ = cfg_.resolved_cutoff_bound();
  // A graph recorded for the planned team bakes that team's shape (root
  // frontier width, placement, depth decisions): invalidate every recording.
  ++graph_epoch_;
}

bool Scheduler::inject(Worker* w, FaultSite site) noexcept {
  if (!fault_.site_active(site)) return false;
  if (!fault_.should_fail(site)) return false;
  if (w != nullptr) ++w->stats.faults_injected;
  return true;
}

void Scheduler::cancel_current_region() noexcept {
  std::lock_guard<std::mutex> lock(region_mutex_);
  if (region_ != nullptr) region_->cancel(RegionStatus::cancelled);
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    stopping_ = true;
  }
  region_cv_.notify_all();
  // Hand the pinned caller thread back its pre-pin mask (directly when
  // destruction runs on that thread, by liveness-checked tid otherwise —
  // see restore_caller_mask for why the guard matters).
  restore_caller_mask();
  // std::jthread joins on destruction.
}

void Scheduler::worker_main(unsigned id) {
  Worker& w = *workers_[id];
  detail::tls_worker = &w;
  std::uint64_t seen = 0;
  for (;;) {
    Region* r = nullptr;
    {
      std::unique_lock<std::mutex> lock(region_mutex_);
      region_cv_.wait(lock, [&] { return stopping_ || region_seq_ != seen; });
      if (region_seq_ != seen) {
        seen = region_seq_;
        r = region_;
      } else {
        break;  // stopping and no new region
      }
    }
    if (r != nullptr) {
      participate(w, *r);
      region_done_.fetch_add(1, std::memory_order_release);
    }
  }
  detail::tls_worker = nullptr;
}

void Scheduler::run_single(const std::function<void()>& fn) {
  Region r(cfg_.num_threads);
  r.single_fn = &fn;
  run_region(r, std::chrono::milliseconds(cfg_.region_deadline_ms));
}

void Scheduler::run_all(const std::function<void(unsigned)>& fn) {
  Region r(cfg_.num_threads);
  r.all_fn = &fn;
  run_region(r, std::chrono::milliseconds(cfg_.region_deadline_ms));
}

RegionResult Scheduler::run_single(const std::function<void()>& fn,
                                   std::chrono::milliseconds deadline) {
  Region r(cfg_.num_threads);
  r.single_fn = &fn;
  if (deadline.count() <= 0) {
    deadline = std::chrono::milliseconds(cfg_.region_deadline_ms);
  }
  RegionResult res;
  res.status = run_region(r, deadline);
  res.stats = stats();
  return res;
}

RegionResult Scheduler::run_all(const std::function<void(unsigned)>& fn,
                                std::chrono::milliseconds deadline) {
  Region r(cfg_.num_threads);
  r.all_fn = &fn;
  if (deadline.count() <= 0) {
    deadline = std::chrono::milliseconds(cfg_.region_deadline_ms);
  }
  RegionResult res;
  res.status = run_region(r, deadline);
  res.stats = stats();
  return res;
}

RegionStatus Scheduler::run_region(Region& r, std::chrono::milliseconds deadline,
                                   bool monitored) {
  Worker* inside = detail::tls_worker;
  if (inside != nullptr) {
    // Nested region: serialize with a team of one (the OpenMP default of
    // disabled nested parallelism). The body runs as an undeferred task and
    // its direct children are joined before returning.
    if (inside->sched != this) {
      throw std::logic_error(
          "bots::rt: a worker of one Scheduler entered a region of another");
    }
    if (r.all_fn != nullptr) {
      run_inline_scope(*inside, [&r] { (*r.all_fn)(0); });
    } else if (r.single_fn != nullptr) {
      run_inline_scope(*inside, *r.single_fn);
    }
    return RegionStatus::completed;
  }

  // Region-start grain reset (grain.hpp): retuned estimates drop back to
  // their seeded base so a coarse grain learned on the previous region's
  // workload cannot block this region's first splits.
  if (cfg_.use_adaptive_grain) grain_table_.on_region_start();

  r.cancel_on_exception = cfg_.cancel_on_exception;

  // Deadline + stall watchdog share one monitor thread, spawned only when
  // either is armed so unmonitored regions pay nothing. It reads atomics
  // only (per-worker progress, live_tasks) and is joined before the Region
  // (a caller stack object) can die or the first exception rethrows. A
  // refused monitor thread degrades to an unmonitored region — strictly
  // better than failing the region for the tool meant to watch it.
  const bool has_deadline = deadline.count() > 0;
  std::optional<std::jthread> monitor;
  if (monitored && (has_deadline || cfg_.watchdog_ms > 0)) {
    const auto deadline_tp = std::chrono::steady_clock::now() + deadline;
    try {
      monitor.emplace([this, &r, deadline_tp, has_deadline](std::stop_token st) {
        monitor_region(st, r, deadline_tp, has_deadline);
      });
    } catch (const std::system_error&) {
      std::fprintf(stderr,
                   "rt: warning: monitor thread unavailable; region runs "
                   "unmonitored\n");
    }
  }

  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    region_ = &r;
    ++region_seq_;
  }
  region_active_.store(true, std::memory_order_release);
  region_cv_.notify_all();

  Worker& w0 = *workers_[0];
  detail::tls_worker = &w0;
  participate(w0, r);
  detail::tls_worker = nullptr;

  // Wait until every worker has left the region before tearing it down.
  Backoff backoff;
  while (region_done_.load(std::memory_order_acquire) != cfg_.num_threads - 1) {
    backoff.pause();
  }
  region_done_.store(0, std::memory_order_relaxed);
  if (monitor.has_value()) {
    monitor->request_stop();
    monitor_cv_.notify_all();  // wake a mid-wait monitor immediately
    monitor->join();
    monitor.reset();
  }
  {
    std::lock_guard<std::mutex> lock(region_mutex_);
    region_ = nullptr;
  }
  last_region_status_ = r.status();
  // Status written, region down: readers that see `false` (acquire in the
  // accessor) also see the final status — no silent stale answer.
  region_active_.store(false, std::memory_order_release);
  if (r.has_exception.load(std::memory_order_acquire)) {
    std::rethrow_exception(r.first_exception);
  }
  return last_region_status_;
}

RegionStatus Scheduler::run_persistent(const std::function<void(unsigned)>& fn) {
  Region r(cfg_.num_threads);
  r.all_fn = &fn;
  // Deadline 0 + monitored=false: neither cfg_.region_deadline_ms nor the
  // watchdog applies to the resident region (see the header comment) — the
  // TaskServer's own monitor watches per-request deadlines/stalls instead.
  return run_region(r, std::chrono::milliseconds(0), /*monitored=*/false);
}

void Scheduler::run_ctx_root(RegionCtx& ctx, const std::function<void()>& body) {
  Worker* wp = detail::tls_worker;
  assert(wp != nullptr && wp->region != nullptr &&
         "run_ctx_root is only valid on a team worker inside a region");
  Worker& w = *wp;
  ++w.stats.server_requests;
  // Shed or expired before it ever started: nothing was spawned under this
  // ctx yet, so skipping the body IS the discard (ledger stays 0 == 0).
  if (ctx.cancelled()) return;
  trace_record(w.ring, TraceEvent::request_start, ctx.id());
  TaskStorage storage{};
  Task* frame = alloc_task(w, storage);
  if (frame == nullptr) {
    // Degradation ladder bottom: run the request body inline on this frame.
    // Children adopt `current` (the worker's implicit root, null ctx) — the
    // request loses per-request cancel granularity for them but execution
    // stays correct, and the taskwait below conservatively joins every
    // child adopted by the root so far.
    ++w.stats.tasks_degraded_inline;
    ++w.inline_depth;
    try {
      body();
    } catch (...) {
      ctx.store_exception();
    }
    --w.inline_depth;
    taskwait_from(w);
    trace_record(w.ring, TraceEvent::request_end, ctx.id());
    return;
  }
  frame->init_env([] {});  // root frames carry no environment of their own
  Task* parent = w.current;
  const std::uint32_t depth =
      (parent != nullptr ? parent->depth() + 1 : 1) + w.inline_depth;
  if (parent != nullptr) parent->add_child_ref();
  // UNTIED: while this worker waits in the request's join it may claim any
  // other request's tasks — no cross-request convoying through the TSC.
  frame->set_links(parent, depth, Tiedness::untied, storage);
  // The root of the request: set_links copied the parent's (null) ctx, so
  // plant it here; every descendant inherits it through its own set_links.
  frame->set_ctx(&ctx);

  Task* prev = w.current;
  const std::uint32_t prev_inline = w.inline_depth;
  w.inline_depth = 0;  // the frame's depth already accounts for inline frames
  w.current = frame;
  try {
    body();
  } catch (...) {
    // Fault isolation: the request's exception cancels the request, never
    // the resident region, and is retrievable via its handle. Not rethrown —
    // the caller is the server worker loop, which must keep serving.
    ctx.store_exception();
  }
  // Join the WHOLE request subtree, not just direct children: a child's
  // completion announces to the frame before the child's own deferred
  // descendants finish, so the frame's child count alone is not quiescence.
  // ctx.live() is: every deferred descendant holds a live count from
  // enqueue to retirement, and undeferred ones execute synchronously inside
  // one that does. The worker helps (any request's work) while it waits.
  Backoff backoff;
  while (frame->unfinished_children() != 0 || ctx.live() != 0) {
    if (Task* t = find_work(w)) {
      execute_deferred(w, *t);
      backoff.reset();
    } else {
      if (cfg_.batch_accounting) flush_accounting(w);
      backoff.pause();
    }
  }
  frame->destroy_env();
  w.current = prev;
  w.inline_depth = prev_inline;
  Task* frame_parent = frame->parent();
  if (frame_parent != nullptr) frame_parent->child_completed();
  release_chain(w, frame);
  trace_record(w.ring, TraceEvent::request_end, ctx.id());
}

bool Scheduler::help_one() {
  Worker* wp = detail::tls_worker;
  if (wp == nullptr || wp->region == nullptr) return false;
  if (Task* t = find_work(*wp)) {
    execute_deferred(*wp, *t);
    return true;
  }
  if (cfg_.batch_accounting) flush_accounting(*wp);
  return false;
}

void Scheduler::monitor_region(std::stop_token st, Region& r,
                               std::chrono::steady_clock::time_point deadline_tp,
                               bool has_deadline) {
  using clock = std::chrono::steady_clock;
  std::uint64_t last_sum = ~0ULL;  // first sample always counts as movement
  auto last_move = clock::now();
  std::unique_lock<std::mutex> lk(monitor_mutex_);
  while (!st.stop_requested()) {
    // Watchdog tunables come from the CURRENT PolicySnapshot, re-read every
    // poll, so reconfigure_live can tighten/relax/cancel-arm a live
    // watchdog. (The monitor only exists when something was armed at region
    // start — an entirely unmonitored region stays unmonitored.)
    const auto [wd_ms, wd_cancel] = watchdog_tunables();
    const bool has_watchdog = wd_ms > 0;
    const auto stall_after = std::chrono::milliseconds(wd_ms);
    // Poll fast enough to catch a stall within ~12% of the configured
    // window; a deadline wait always wakes exactly at the deadline.
    const auto poll = has_watchdog
                          ? std::chrono::milliseconds(std::clamp<std::uint32_t>(
                                wd_ms / 8, 1u, 50u))
                          : std::chrono::milliseconds(100);
    const auto now = clock::now();
    if (has_deadline && now >= deadline_tp) {
      r.cancel(RegionStatus::deadline_exceeded);
      has_deadline = false;  // fired; nothing further to watch on this edge
    }
    if (has_watchdog) {
      std::uint64_t sum = 0;
      for (const auto& w : workers_) {
        sum += w->progress.load(std::memory_order_relaxed);
      }
      if (sum != last_sum) {
        last_sum = sum;
        last_move = now;
      } else if (now - last_move >= stall_after) {
        stalls_detected_.fetch_add(1, std::memory_order_relaxed);
        dump_stall_report(r);
        if (wd_cancel) r.cancel(RegionStatus::cancelled);
        last_move = now;  // re-arm: one report per stalled window
      }
    }
    auto next = now + poll;
    if (has_deadline && deadline_tp < next) next = deadline_tp;
    monitor_cv_.wait_until(lk, st, next, [] { return false; });
  }
}

std::pair<std::uint32_t, bool> Scheduler::watchdog_tunables() const {
  std::lock_guard<std::mutex> lock(reconf_mutex_);
  return {snap_owner_->watchdog_ms, snap_owner_->watchdog_cancel};
}

void Scheduler::dump_stall_report(Region& r) {
  // Stderr, single writer (only the monitor calls this). Reads shared
  // atomics and mutex-guarded arena counts only — per-worker plain fields
  // are the workers' property and are deliberately not touched.
  std::fprintf(stderr,
               "rt: STALL: no task progress for %u ms "
               "(live_tasks=%lld parked=%zu arrived=%u cancel=%s)\n",
               watchdog_tunables().first,
               static_cast<long long>(
                   r.live_tasks.load(std::memory_order_relaxed)),
               r.parked_count.load(std::memory_order_relaxed),
               r.arrived.load(std::memory_order_relaxed),
               to_string(r.status()));
  for (const auto& w : workers_) {
    std::fprintf(
        stderr,
        "rt:   worker %u: node=%u progress=%llu deque=%s parked_inbox=%s\n",
        w->id, w->node,
        static_cast<unsigned long long>(
            w->progress.load(std::memory_order_relaxed)),
        w->deque.empty_estimate() ? "empty" : "nonempty",
        w->parked_inbox.load(std::memory_order_relaxed) == nullptr ? "empty"
                                                                   : "nonempty");
  }
  {
    // The monitor holds no epoch slot, so the current snapshot's hints are
    // read under reconf_mutex_ (cold path: one stall report per window).
    std::lock_guard<std::mutex> lock(reconf_mutex_);
    if (snap_owner_->hints != nullptr) {
      for (unsigned n = 0; n < topo_.num_nodes(); ++n) {
        std::fprintf(stderr, "rt:   hint[node %u]=%s\n", n,
                     snap_owner_->hints->has_work(n) ? "work" : "dry");
      }
    }
  }
  if (mailboxes_ != nullptr) {
    for (unsigned n = 0; n < topo_.num_nodes(); ++n) {
      std::fprintf(stderr, "rt:   mailbox[node %u]=%zu\n", n,
                   mailboxes_[n].size());
    }
  }
  for (std::size_t n = 0; n < arenas_.size(); ++n) {
    const NodeArena::Counts c = arenas_[n]->counts();
    std::fprintf(stderr, "rt:   node_pool[%zu]: carved=%zu arena_free=%zu\n",
                 n, c.carved, c.free_count);
  }
}

void Scheduler::participate(Worker& w, Region& r) {
  // Pinning happens here — on the worker's own thread, before any work —
  // the first time, whenever reconfigure() bumped the generation, and for
  // worker 0 whenever a DIFFERENT caller thread enters the region (worker
  // 0 is whichever thread called run_*; a pin applied to a previous caller
  // says nothing about this one).
  if (pin_generation_ != 0 &&
      (w.pin_seen != pin_generation_ ||
       (w.id == 0 && caller_thread_ != std::this_thread::get_id()))) {
    apply_pinning(w);
  }
  w.stats.pinned = w.pin_applied ? 1u : 0u;
  w.region = &r;
  w.throttled = false;
  w.live_delta = 0;
  w.acct_ops = 0;
  w.barrier_draining = false;
  w.tied_chain = 0;
  w.inline_depth = 0;
  assert(w.tied_stack.empty() && "a suspended tied task outlived its region");
  w.last_victim = Worker::no_victim;
  w.gated_rounds = 0;
  w.slot = nullptr;
  w.stash_count = 0;
  w.parked_recheck = true;
  assert(w.deque.empty_estimate() && "work leaked across regions");
  assert(w.parked_inbox.load(std::memory_order_relaxed) == nullptr &&
         "a parked task outlived its region");
  // Pin the current PolicySnapshot before the body runs: spawns from the
  // region body (before this worker's first find_work round) already route
  // hints/placement through w.snap.
  assert(w.snap == nullptr && "a pinned snapshot outlived its region");
  pin_snapshot(w);

  // The implicit task for this worker. It lives on this stack frame; the
  // region-end quiescence barrier guarantees every descendant has finished
  // (and dropped its reference) before the frame dies.
  Task root;
  root.set_links(nullptr, 0, Tiedness::tied, TaskStorage::stack_frame);
  w.current = &root;

  try {
    if (r.all_fn != nullptr) {
      (*r.all_fn)(w.id);
    } else if (w.id == 0 && r.single_fn != nullptr) {
      (*r.single_fn)();
    }
  } catch (...) {
    r.store_exception();
  }

  barrier_from(w);  // implicit region-end barrier: full task quiescence

  // Every remotely-retired descriptor flies home before the worker leaves:
  // quiescence means no further disposals, so after this the in-transit
  // count is exactly zero and the between-regions pool balance (cached +
  // arena_free == carved, per node) is exact. Each worker flushes its own
  // stashes — the splices parallelize across the team.
  flush_outbound_stashes(w);

  // Drain this worker's trace ring into the collector's archive: the worker
  // drains its OWN ring, at a point where it records nothing further this
  // region — single-threaded by construction, no synchronization needed.
  if (tracer_ != nullptr) tracer_->drain_worker(w.id);

  assert(root.unfinished_children() == 0);
  w.current = nullptr;
  w.region = nullptr;
  // Quiesce the snapshot pin: slot 0 tells reconfigure_live this worker
  // holds nothing, and the null pointer guarantees the next region's first
  // pin takes the announce path even if a retired snapshot's address gets
  // reused by a later install. Release-ordered so every use of the old
  // snapshot happens-before the swapper observes quiescence and retires it.
  w.snap = nullptr;
  w.snap_epoch.store(0, std::memory_order_release);
}

bool Scheduler::should_defer(Worker& w, std::uint32_t depth) noexcept {
  switch (cfg_.cutoff) {
    case CutoffPolicy::none:
      return true;
    case CutoffPolicy::max_depth:
      return depth <= cutoff_bound_;
    case CutoffPolicy::max_tasks:
      // Adding the local unflushed delta keeps the bound exact for this
      // worker's own contribution even with batched accounting.
      return w.region->live_tasks.load(std::memory_order_relaxed) +
                 w.live_delta <
             static_cast<std::int64_t>(cutoff_bound_);
    case CutoffPolicy::adaptive: {
      const auto live =
          w.region->live_tasks.load(std::memory_order_relaxed) + w.live_delta;
      if (w.throttled) {
        if (live < static_cast<std::int64_t>(cutoff_bound_ / 2)) {
          w.throttled = false;
        }
      } else if (live > static_cast<std::int64_t>(cutoff_bound_)) {
        w.throttled = true;
      }
      return !w.throttled;
    }
  }
  return true;
}

Task* Scheduler::alloc_task(Worker& w, TaskStorage& storage_out) {
  // Degradation ladder: pooled rung (node arena or per-worker pool) ->
  // plain per-descriptor heap rung -> nullptr, which spawn/spawn_if degrade
  // to serial inline execution. A real bad_alloc and an injected
  // descriptor_alloc/arena_carve fault take the identical path, so the
  // fault plan exercises exactly the code OOM would. Counters move only
  // AFTER an allocation succeeds — a failed rung must not leave phantom
  // pool_fresh behind, or the frees==allocs invariant breaks.
  const bool pooled_cfg = !arenas_.empty() || cfg_.use_task_pool;
  if (pooled_cfg && !inject(&w, FaultSite::descriptor_alloc)) {
    if (!arenas_.empty()) {
      // Node-local pools: serve from this worker's private cache of
      // home-node descriptors; refill in one batched arena pop when it runs
      // dry. Only the node's own workers ever allocate here, so every
      // descriptor handed out was carved — and its pages first-touched —
      // on this node.
      Task* t = w.home_free;
      if (t == nullptr) {
        std::size_t got = 0;
        t = arenas_[w.node]->take_chain(NodeArena::refill_batch, got);
        if (t == nullptr) {
          if (!inject(&w, FaultSite::arena_carve)) {
            try {
              Task* fresh = arenas_[w.node]->carve();  // placement-new HERE
              ++w.stats.pool_fresh;
              storage_out = TaskStorage::pooled;
              return fresh;
            } catch (const std::bad_alloc&) {
              // fall through to the heap rung
            }
          }
          t = nullptr;
        } else {
          w.home_free_count = got;
        }
      }
      if (t != nullptr) {
        w.home_free = t->pool_next;
        --w.home_free_count;
        t->pool_next = nullptr;
        t->reset_for_reuse();
        ++w.stats.pool_reuse;
        storage_out = TaskStorage::pooled;
        return t;
      }
    } else {
      bool reused = false;
      Task* t = nullptr;
      try {
        t = w.pool.allocate(reused);
      } catch (const std::bad_alloc&) {
        // fall through to the heap rung
      }
      if (t != nullptr) {
        if (reused) {
          ++w.stats.pool_reuse;
        } else {
          ++w.stats.pool_fresh;
          t->set_home_node(w.node);  // birth node of the fresh chunk slot
        }
        storage_out = TaskStorage::pooled;
        return t;
      }
    }
  }
  if (pooled_cfg) ++w.stats.pool_alloc_fallbacks;
  // Heap rung: the configured allocator when pooling is off, the graceful
  // fallback otherwise. Fallback descriptors deliberately skip pool_fresh —
  // dispose() deletes them without a matching free count, and the pool
  // balance invariant must keep holding on the degraded path.
  if (!inject(&w, FaultSite::descriptor_alloc)) {
    try {
      Task* t = new Task();
      t->set_home_node(w.node);
      if (!pooled_cfg) ++w.stats.pool_fresh;
      storage_out = TaskStorage::heap;
      return t;
    } catch (const std::bad_alloc&) {
      // fall through to the inline rung
    }
  }
  return nullptr;  // bottom rung: the caller runs the task serially inline
}

void Scheduler::dispose(Worker& w, Task& t) noexcept {
  switch (t.storage()) {
    case TaskStorage::pooled: {
      if (!arenas_.empty()) {
        const unsigned home = t.home_node();
        if (home == w.node) {
          ++w.stats.pool_home_frees;
          t.pool_next = w.home_free;
          w.home_free = &t;
          if (++w.home_free_count >= NodeArena::cache_spill) {
            // Spill a refill batch back to the shared arena so a same-node
            // sibling that mostly ALLOCATES (a generator this worker
            // consumes for) reuses this memory instead of carving fresh
            // chunks without bound (see NodeArena::cache_spill). The cache
            // is newest-first, so KEEP its head half (lines still hot in
            // this worker's cache) and hand the stale tail half over.
            Task* keep_tail = w.home_free;
            for (std::size_t i = 1; i < NodeArena::refill_batch; ++i) {
              keep_tail = keep_tail->pool_next;
            }
            Task* spill_head = keep_tail->pool_next;
            keep_tail->pool_next = nullptr;
            const std::size_t spilled =
                w.home_free_count - NodeArena::refill_batch;
            Task* spill_tail = spill_head;
            for (std::size_t i = 1; i < spilled; ++i) {
              spill_tail = spill_tail->pool_next;
            }
            w.home_free_count = NodeArena::refill_batch;
            arenas_[home]->put_chain(spill_head, spill_tail, spilled);
          }
        } else {
          // Remote-born (a stolen task finishing here): stage the batched
          // flight back to the birth arena. The retirement target is still
          // the home node — this never counts as a remote free.
          ++w.stats.pool_home_frees;
          RemoteStash& s = w.outbound[home];
          s.push(&t);
          if (++w.stash_in_transit > w.stats.pool_migrations) {
            w.stats.pool_migrations = w.stash_in_transit;  // high-water
          }
          if (s.count >= RemoteStash::flush_batch) flush_stash(w, home);
        }
      } else {
        // Per-worker pools (the seed behaviour): recycle into THIS
        // worker's freelist wherever the descriptor was born — and count
        // the cross-node drift that causes, so the A/B against node pools
        // is measurable.
        if (t.home_node() == w.node) {
          ++w.stats.pool_home_frees;
        } else {
          ++w.stats.pool_remote_frees;
        }
        w.pool.recycle(&t);
      }
      break;
    }
    case TaskStorage::heap:
      delete &t;
      break;
    case TaskStorage::stack_frame:
      break;  // lifetime owned by a worker stack frame
    case TaskStorage::graph:
      break;  // owned by a frozen TaskGraph; reset in place per replay
  }
}

void Scheduler::flush_stash(Worker& w, unsigned node) noexcept {
  RemoteStash& s = w.outbound[node];
  if (s.count == 0) return;
  arenas_[node]->put_chain(s.head, s.tail, s.count);
  w.stash_in_transit -= s.count;
  s.head = nullptr;
  s.tail = nullptr;
  s.count = 0;
}

void Scheduler::flush_outbound_stashes(Worker& w) noexcept {
  if (arenas_.empty()) return;
  for (unsigned n = 0; n < static_cast<unsigned>(w.outbound.size()); ++n) {
    flush_stash(w, n);
  }
}

void Scheduler::flush_accounting(Worker& w) noexcept {
  if (w.live_delta != 0) {
    w.region->live_tasks.fetch_add(w.live_delta, std::memory_order_acq_rel);
    w.live_delta = 0;
    ++w.stats.acct_flushes;
  }
  w.acct_ops = 0;
}

void Scheduler::account_spawn(Worker& w) noexcept {
  if (cfg_.batch_accounting) {
    ++w.live_delta;
    // Once this worker has arrived at a barrier, increments flush eagerly:
    // a batched +1 held across an execute could otherwise cancel against
    // the (already flushed) finish of the same subtree on another worker
    // and let the barrier observe zero with work still in flight.
    if (w.barrier_draining || ++w.acct_ops >= acct_batch_) {
      flush_accounting(w);
    }
  } else {
    w.region->live_tasks.fetch_add(1, std::memory_order_relaxed);
  }
}

void Scheduler::enqueue(Worker& w, Task& t) {
  // Advertise this node as fed (NodeHints): remote hierarchical planners
  // consult the word before spending interconnect probes here. The steady
  // state (word already set) costs one relaxed load. Hints live in the
  // worker's PINNED snapshot (w.snap, never null in-region): a live swap
  // retires the whole generation — policy and words together — only after
  // this worker's pin moves on.
  if (NodeHints* h = w.snap->hints.get()) h->publish(w.node);
  account_spawn(w);
  // Per-request ledger (server mode): the task was counted into the queued
  // population of its request; execute_deferred will balance it with exactly
  // one executed or discarded. Null — and free — in ordinary regions.
  if (RegionCtx* c = t.ctx()) c->note_deferred();
  // Range tasks never hide in the private slot: their whole point is to be
  // splittable on steal, and a slot entry is invisible to thieves until the
  // owner's next scheduling point.
  if (use_slot_ && t.range() == nullptr) {
    Task* evicted = w.slot;
    w.slot = &t;
    if (evicted != nullptr) w.deque.push(evicted);
  } else {
    w.deque.push(&t);
  }
}

void Scheduler::enqueue_released(Worker& w, Task& t) {
  // Routing half of enqueue only: a dependence-released task was fully
  // accounted (worker ledger, live count, request ledger) when it was
  // dep-spawned or bulk-charged by a graph replay. Counting it again here
  // would double-book the region's live population.
  if (NodeHints* h = w.snap->hints.get()) h->publish(w.node);
  if (use_slot_ && t.range() == nullptr) {
    Task* evicted = w.slot;
    w.slot = &t;
    if (evicted != nullptr) w.deque.push(evicted);
  } else {
    w.deque.push(&t);
  }
}

void Scheduler::account_dep_spawn(Worker& w, Task& t) noexcept {
  account_spawn(w);
  if (RegionCtx* c = t.ctx()) c->note_deferred();
}

void Scheduler::release_dep_ref(Worker& w, Task& t) noexcept {
  // The tracker's pin was the reference that stopped the task's finish-time
  // release chain at the task itself; dropping it now disposes the
  // descriptor and continues the chain into the parent.
  release_chain(w, &t);
}

void Scheduler::release_successors(Worker& w, Task& t) noexcept {
  DepNode* n = t.dep();
  if (n->graph != nullptr) {
    // Graph-owned node: successor indices were baked at freeze.
    n->graph->release_baked(w, *n);
    return;
  }
  // Dynamic node: close the Treiber stack so a racing generator learns this
  // predecessor is done (its push fails and it self-satisfies the edge),
  // then walk the edges we captured. Each edge resolves exactly once.
  DepEdge* e = n->succ_head.exchange(detail::dep_closed(),
                                     std::memory_order_acq_rel);
  while (e != nullptr) {
    DepEdge* next = e->next;
    ++w.stats.edges_resolved;
    Task* succ = e->succ;
    if (succ->dep()->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      enqueue_released(w, *succ);
    }
    e = next;
  }
}

void Scheduler::publish_range_half(Worker& w, Task& t) {
  if (mailboxes_ != nullptr) {
    // Placement is the pinned snapshot's call: after a live swap away from
    // hierarchical the new policy answers no_node and halves stay local,
    // while halves mailed BEFORE the swap still drain — the mailbox array
    // is scheduler-owned and exists independently of the current policy.
    const unsigned target = w.snap->policy->place_range_half(w);
    if (target != StealPolicy::no_node && target != w.node &&
        mailboxes_[target].empty() &&
        // An injected mailbox_push failure degrades to the local deque —
        // exactly-once delivery is preserved, only the placement quality
        // drops (the half stays stealable the ordinary way).
        !inject(&w, FaultSite::mailbox_push)) {
      // Same live-task accounting as enqueue, same ordering (the half is
      // counted before it becomes claimable); only the landing spot moves.
      ++w.stats.range_halves_redirected;
      account_spawn(w);
      if (RegionCtx* c = t.ctx()) c->note_deferred();
      trace_record(w.ring, TraceEvent::mailbox, t.home_node(),
                   trace_pack_nodes(target, w.node));
      mailboxes_[target].push(&t);
      // The gift IS work on that node now: set its word, both so remote
      // planners probe there and so the next split is not dumped on the
      // same node before anybody drained this one (the redirect condition
      // requires a CLEAR target word plus an empty mailbox).
      if (NodeHints* h = w.snap->hints.get()) h->publish(target);
      return;
    }
  }
  enqueue(w, t);
}

Task* Scheduler::take_mailed(Worker& w, bool scavenge) {
  if (!scavenge) return mailboxes_[w.node].pop();
  // Idle-path sweep over every node's mailbox, own node first: a half
  // mailed to a node whose workers are wedged inside long task bodies must
  // never strand — any idle worker may carry it off cross-node (ordinary
  // stealing would have paid the same interconnect trip).
  const unsigned nodes = topo_.num_nodes();
  for (unsigned dn = 0; dn < nodes; ++dn) {
    if (Task* t = mailboxes_[(w.node + dn) % nodes].pop()) return t;
  }
  return nullptr;
}

void Scheduler::execute_deferred(Worker& w, Task& t) {
  // Every deferred dispatch — execute or discard — funnels through here,
  // which makes this the single cancellation boundary for queued work and
  // the watchdog's primary progress signal.
  w.note_progress();
  RegionCtx* ctx = t.ctx();
  if (ctx != nullptr) ctx->note_progress();
  if (((w.region != nullptr && w.region->cancelled()) ||
       (ctx != nullptr && ctx->cancelled())) &&
      t.range() == nullptr) {
    // Cancelled region — or, server mode, cancelled request context: retire
    // the descriptor through the normal finish path WITHOUT running the
    // body. destroy_env still runs — the captured closure was constructed
    // and its members must destruct. Range tasks are exempt: they execute
    // (RangeRunner stops at its first cancelled check) so their
    // GrainController live-range gate always closes. The discard counts in
    // BOTH ledgers: the worker's (keeps the global executed + discarded ==
    // deferred invariant) and the request's.
    ++w.stats.tasks_discarded;
    if (ctx != nullptr) ctx->note_discarded();
    t.destroy_env();
    finish_task(w, t, /*deferred=*/true);
    return;
  }
  Task* prev = w.current;
  // inline_depth counts descriptor-less frames stacked above `current`; a
  // claimed task is a fresh frame whose depth is fully recorded in its
  // descriptor, so the count must not leak into depths computed under it
  // (a scheduling point inside an inline body claims unrelated tasks).
  const std::uint32_t prev_inline = w.inline_depth;
  w.inline_depth = 0;
  w.current = &t;
  ++w.stats.tasks_executed;
  if (ctx != nullptr) ctx->note_executed();
  const bool fail_body = inject(&w, FaultSite::task_body);
  try {
    if (fail_body) throw FaultInjected{};
    t.invoke();
  } catch (const FaultInjected&) {
    // OMPC-style task re-execution: the injected fault fired BEFORE the
    // body, so the retry runs it exactly once — suite results stay correct
    // under an all-sites fault plan while the throw/unwind path is
    // exercised for real. Never stored into the region: an injected
    // transient must not trip cancel_on_exception.
    ++w.stats.tasks_retried;
    try {
      t.invoke();
    } catch (...) {
      // Fault isolation: a request task's exception lands in ITS context
      // (cancelling that request only), never in the resident region.
      if (ctx != nullptr) {
        ctx->store_exception();
      } else {
        w.region->store_exception();
      }
    }
  } catch (...) {
    if (ctx != nullptr) {
      ctx->store_exception();
    } else {
      w.region->store_exception();
    }
  }
  t.destroy_env();
  w.current = prev;
  w.inline_depth = prev_inline;
  finish_task(w, t, /*deferred=*/true);
}

void Scheduler::run_undeferred(Worker& w, Task& t) {
  if ((w.region != nullptr && w.region->cancelled()) ||
      (t.ctx() != nullptr && t.ctx()->cancelled())) {
    // Cancelled before it ever started: retire the descriptor, skip the
    // body. Undeferred tasks are not in tasks_deferred, so this counts in
    // the inline-discard bucket, keeping executed + discarded == deferred
    // exact for the queued population.
    ++w.stats.tasks_discarded_inline;
    t.destroy_env();
    finish_task(w, t, /*deferred=*/false);
    return;
  }
  Task* prev = w.current;
  // As in execute_deferred: t's descriptor depth already includes any inline
  // frames below it, so depths computed under t start from zero again.
  const std::uint32_t prev_inline = w.inline_depth;
  w.inline_depth = 0;
  w.current = &t;
  try {
    t.invoke();
  } catch (...) {
    // An undeferred task is sequenced in its parent, so the exception
    // propagates synchronously from the spawn call (OpenMP semantics) —
    // after the descriptor is retired like any completed task: the
    // parent's child count must drop and the storage must recycle, or the
    // descriptor (and through it the parent chain) leaks.
    t.destroy_env();
    w.current = prev;
    w.inline_depth = prev_inline;
    finish_task(w, t, /*deferred=*/false);
    throw;
  }
  t.destroy_env();
  w.current = prev;
  w.inline_depth = prev_inline;
  finish_task(w, t, /*deferred=*/false);
}

void Scheduler::finish_task(Worker& w, Task& t, bool deferred) {
  // Dependence hook first, before any path can recycle the descriptor:
  // successors release on execute AND discard retirements alike, which is
  // what lets a cancelled DAG or replay drain by discards (one null check
  // for every task that carries no dependences).
  if (t.dep() != nullptr) release_successors(w, t);
  Task* parent = t.parent();
  Region* region = w.region;
  RegionCtx* ctx = t.ctx();  // captured before dispose can recycle t
  // Order matters. (1) The completion announcement (the parent's
  // unfinished-children decrement) must never be preceded by dropping this
  // task's self-reference: t's reference on the parent is released only when
  // t itself is disposed, so an undisposed t transitively pins the parent.
  // Dropping the self-reference first would open a window where a still
  // running child of t finishes on another worker, takes t's references to
  // zero, and walks the release chain into the parent — and release_ref
  // ignores the children bits, so the parent (whose own body may long be
  // done) can be recycled before our announcement lands: a use-after-free.
  // Two safe shapes exist: announce-then-release (the pin order, also the
  // seed behaviour), or — when t is observably exclusive, state word exactly
  // ref_one — fuse the announcement and the release into ONE parent RMW, so
  // no window exists at all. Exclusivity is stable here because refs and
  // children are only ever added by t's own executor, and t's body has
  // finished. (2) Record the live_tasks decrement last, so the region
  // barrier's quiescence (live_tasks == 0) implies every release chain has
  // finished and the implicit root frames can safely leave the stack.
  if (cfg_.fused_finish && t.exclusive()) {
    // Exclusive: no child or release chain can reach t anymore, so t dies
    // without an RMW and both halves of the parent update — the
    // unfinished-children decrement and the reference drop — fuse into a
    // single RMW on the parent's state word.
    dispose(w, t);
    if (parent != nullptr && parent->child_completed_and_release()) {
      Task* grand = parent->parent();
      dispose(w, *parent);
      release_chain(w, grand);  // pure reference drops from here upward
    }
  } else {
    // Children (or their not-yet-drained release chains) may still hold
    // references on t: announce first — while t's own reference still pins
    // the parent — then release. Whoever drops t's last reference (possibly
    // this very release_chain call) continues the pure-reference walk
    // upward; the announcement is already done by then.
    if (parent != nullptr) parent->child_completed();
    release_chain(w, &t);
  }
  if (deferred && region != nullptr) {
    if (cfg_.batch_accounting) {
      --w.live_delta;
      if (++w.acct_ops >= acct_batch_) flush_accounting(w);
    } else {
      region->live_tasks.fetch_sub(1, std::memory_order_release);
    }
    // The request-scoped live count is deliberately UNBATCHED: run_ctx_root's
    // join spins on it, and its contention domain is one request's subtree,
    // not the whole team.
    if (ctx != nullptr) ctx->note_finished();
  }
}

void Scheduler::release_chain(Worker& w, Task* t) noexcept {
  while (t != nullptr && t->release_ref()) {
    Task* parent = t->parent();
    dispose(w, *t);
    t = parent;
  }
}

void Scheduler::taskwait_from(Worker& w) {
  ++w.stats.taskwaits;
  Task* cur = w.current;
  if (cur == nullptr || cur->unfinished_children() == 0) return;
  // No accounting flush here: the wait relies on the exact per-parent
  // unfinished_children counter, not live_tasks, and a worker inside a
  // taskwait has not arrived at the barrier, so the barrier cannot open on
  // its unflushed increments. The idle path below still flushes (the
  // barrier's last arriver may be spinning on this worker's decrements).
  const bool constrains = cur->tiedness() == Tiedness::tied;
  if (constrains) {
    // Extend the verified ancestor-chain prefix when possible. The claim's
    // tsc_allows does not cover this: cur may have been inlined
    // (run_undeferred) under an untied task and never TSC-checked, so the
    // descent from the previous top must be established here — one ancestry
    // walk per suspension, amortized over every claim it later speeds up.
    if (w.tied_chain == w.tied_stack.size() &&
        (w.tied_stack.empty() || cur->is_descendant_of(*w.tied_stack.back()))) {
      ++w.tied_chain;
    }
    w.tied_stack.push_back(cur);
    w.parked_recheck = true;
  }
  Backoff backoff;
  while (cur->unfinished_children() != 0) {
    if (Task* t = find_work(w)) {
      execute_deferred(w, *t);
      backoff.reset();
    } else {
      if (cfg_.batch_accounting) flush_accounting(w);
      backoff.pause();
    }
  }
  if (constrains) {
    w.tied_stack.pop_back();
    if (w.tied_chain > w.tied_stack.size()) {
      w.tied_chain = w.tied_stack.size();
    }
    w.parked_recheck = true;  // the constraint relaxed: parked may be eligible
  }
}

void Scheduler::barrier_from(Worker& w) {
  Region& r = *w.region;
  assert(w.current != nullptr && w.current->depth() == 0 &&
         "barrier() is only valid from the implicit task of a region");
  // The barrier opens on live_tasks == 0, so unflushed POSITIVE deltas are
  // the dangerous direction here (they make the global counter undercount
  // and could open the barrier with tasks still pending). Two rules keep it
  // sound: every worker flushes before arriving, and from arrival on its
  // spawn-side increments flush eagerly (Worker::barrier_draining, checked
  // by enqueue) — a batched +1 held across an execute could otherwise
  // cancel against the already-flushed finish of the same subtree on
  // another worker and zero the counter with work still running. With all
  // arrivers' increments flushed, unflushed deltas are never positive, so
  // the global counter never undercounts: zero really means quiescent.
  // Negative deltas only overcount and merely keep the barrier spinning one
  // more round until the idle-path flush.
  if (cfg_.batch_accounting) flush_accounting(w);
  w.barrier_draining = true;
  w.parked_recheck = true;  // the barrier suspends no tied task: drain all
  const std::uint32_t gen = r.barrier_gen.load(std::memory_order_acquire);
  const std::uint32_t n = r.arrived.fetch_add(1, std::memory_order_acq_rel) + 1;
  Backoff backoff;
  if (n == r.team_size) {
    // Last arriver: drain every outstanding task, then release the team.
    // Decrements may lag in the local delta (the counter then overcounts
    // and we spin one more round); the idle path flushes them.
    while (r.live_tasks.load(std::memory_order_acquire) != 0) {
      if (Task* t = find_work(w)) {
        execute_deferred(w, *t);
        backoff.reset();
      } else {
        if (cfg_.batch_accounting) flush_accounting(w);
        backoff.pause();
      }
    }
    r.arrived.store(0, std::memory_order_relaxed);
    r.barrier_gen.fetch_add(1, std::memory_order_release);
  } else {
    while (r.barrier_gen.load(std::memory_order_acquire) == gen) {
      if (Task* t = find_work(w)) {
        execute_deferred(w, *t);
        backoff.reset();
      } else {
        if (cfg_.batch_accounting) flush_accounting(w);
        backoff.pause();
      }
    }
  }
  w.barrier_draining = false;
}

void Scheduler::run_inline_scope(Worker& w, const std::function<void()>& body) {
  TaskStorage storage{};
  Task* frame = alloc_task(w, storage);
  if (frame == nullptr) {
    // Descriptor-less nested region (degradation ladder bottom): run the
    // body on this frame; the children it spawns attach to the adopting
    // ancestor, so the taskwait below joins a superset of them.
    ++w.stats.tasks_degraded_inline;
    ++w.inline_depth;
    std::exception_ptr eptr;
    try {
      body();
    } catch (...) {
      eptr = std::current_exception();
    }
    --w.inline_depth;
    taskwait_from(w);
    if (eptr) std::rethrow_exception(eptr);
    return;
  }
  frame->init_env([] {});  // scope frames carry no environment of their own
  Task* parent = w.current;
  const std::uint32_t depth =
      (parent != nullptr ? parent->depth() + 1 : 1) + w.inline_depth;
  if (parent != nullptr) parent->add_child_ref();
  frame->set_links(parent, depth, Tiedness::tied, storage);

  Task* prev = w.current;
  const std::uint32_t prev_inline = w.inline_depth;
  w.inline_depth = 0;  // the frame's depth already accounts for inline frames
  w.current = frame;
  std::exception_ptr eptr;
  try {
    body();
  } catch (...) {
    eptr = std::current_exception();
  }
  taskwait_from(w);  // join the nested region's direct children
  frame->destroy_env();
  w.current = prev;
  w.inline_depth = prev_inline;
  Task* frame_parent = frame->parent();
  if (frame_parent != nullptr) frame_parent->child_completed();
  release_chain(w, frame);
  if (eptr) std::rethrow_exception(eptr);
}

void Scheduler::park_refused(Worker& w, Task* t) {
  ++w.stats.tsc_parked;
  trace_record(w.ring, TraceEvent::park, t->depth());
  Region& r = *w.region;
  if (cfg_.distributed_parking) {
    // Push onto this worker's own inbox. Only the owner pushes, but drains
    // by other workers race with the push, so a CAS loop is still required.
    Task* head = w.parked_inbox.load(std::memory_order_relaxed);
    do {
      t->pool_next = head;
    } while (!w.parked_inbox.compare_exchange_weak(
        head, t, std::memory_order_release, std::memory_order_relaxed));
    r.parked_count.fetch_add(1, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> lock(r.overflow_mutex);
    r.overflow.push_back(t);
    r.parked_count.fetch_add(1, std::memory_order_release);
  }
}

Task* Scheduler::claim_parked(Worker& w) {
  Region& r = *w.region;
  // Parking is the exception, not the rule: one load gates the whole scan.
  if (r.parked_count.load(std::memory_order_acquire) == 0) return nullptr;
  if (!cfg_.distributed_parking) {
    std::lock_guard<std::mutex> lock(r.overflow_mutex);
    for (std::size_t i = 0; i < r.overflow.size(); ++i) {
      if (tsc_allows(w, *r.overflow[i])) {
        Task* t = r.overflow[i];
        r.overflow.erase(r.overflow.begin() + static_cast<std::ptrdiff_t>(i));
        r.parked_count.fetch_sub(1, std::memory_order_release);
        ++w.stats.parked_claimed;
        trace_record(w.ring, TraceEvent::unpark, t->depth());
        return t;
      }
    }
    return nullptr;
  }
  // Scan every worker's inbox, own first. A drain takes the whole chain in
  // one exchange; ineligible survivors are republished onto OUR inbox (the
  // MPSC handoff), where the next scan — ours or anyone else's — sees them.
  const unsigned n = cfg_.num_threads;
  for (unsigned k = 0; k < n; ++k) {
    Worker& v = *workers_[(w.id + k) % n];
    if (&v == &w) {
      if (!w.parked_recheck) continue;
      w.parked_recheck = false;
    }
    if (v.parked_inbox.load(std::memory_order_relaxed) == nullptr) continue;
    Task* chain = v.parked_inbox.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) continue;
    Task* take = nullptr;
    Task* keep_head = nullptr;
    Task* keep_tail = nullptr;
    bool kept_unchecked = false;
    while (chain != nullptr) {
      Task* next = chain->pool_next;
      if (take == nullptr && tsc_allows(w, *chain)) {
        take = chain;
      } else {
        // Survivors kept after `take` was found were NOT re-checked against
        // this worker's constraint: force a rescan of the own inbox next
        // round, or a second eligible task republished here would be
        // stranded (nobody else may exist to drain it).
        kept_unchecked |= take != nullptr;
        if (keep_head == nullptr) keep_tail = chain;
        chain->pool_next = keep_head;
        keep_head = chain;
      }
      chain = next;
    }
    if (kept_unchecked) w.parked_recheck = true;
    if (keep_head != nullptr) {
      // Republish the survivors with a single CAS-splice.
      Task* head = w.parked_inbox.load(std::memory_order_relaxed);
      do {
        keep_tail->pool_next = head;
      } while (!w.parked_inbox.compare_exchange_weak(
          head, keep_head, std::memory_order_release,
          std::memory_order_relaxed));
    }
    if (take != nullptr) {
      r.parked_count.fetch_sub(1, std::memory_order_release);
      ++w.stats.parked_claimed;
      trace_record(w.ring, TraceEvent::unpark, v.id);
      return take;
    }
  }
  return nullptr;
}

Task* Scheduler::steal_work(Worker& w, bool& progress) {
  const unsigned n = cfg_.num_threads;
  if (n <= 1) return nullptr;
  // One snapshot generation per steal round: victim order, batch caps and
  // raid notifications all come from the same pinned generation (find_work
  // pinned it at the top of this round).
  PolicySnapshot& sp = *w.snap;
  Task* batch[Worker::stash_capacity];
  const std::size_t base_cap = std::clamp<std::size_t>(
      cfg_.steal_batch_max, std::size_t{1}, Worker::stash_capacity);
  // A raid returns the oldest stolen task (or parks it when the TSC refuses
  // it) and keeps any surplus in the private stash, which find_work drains
  // before touching the deque (see Worker::stash). The caller guarantees
  // the stash is empty here. Surplus was already counted in live_tasks when
  // first enqueued, so no accounting happens on this path.
  auto raid = [&](unsigned v) -> std::size_t {
    ++w.stats.steal_attempts;
    trace_record(w.ring, TraceEvent::steal_attempt, v);
    WorkStealingDeque& victim = workers_[v]->deque;
    std::size_t got = 0;
    // Batch only when unconstrained: a worker suspended inside a tied task
    // may execute nothing but descendants of it, and a raided batch from an
    // arbitrary victim is mostly non-descendants — it would go straight to
    // the parked pool, turning one refusal into a batch of them. The cap
    // per victim is the policy's call (hierarchical shrinks it across the
    // interconnect).
    if (cfg_.steal_half && w.tied_stack.empty()) {
      got = victim.steal_batch(batch, sp.policy->batch_cap(w, v, base_cap));
      if (got > 0) ++w.stats.steal_batches;
    } else if (Task* t = victim.steal()) {
      batch[0] = t;
      got = 1;
    }
    sp.policy->raided(w, v, got > 0);
    if (got == 0) return 0;
    w.stats.tasks_stolen += got;
    // Counter weight `got` keeps steal_hit == tasks_stolen exactly; the
    // record's payload carries the (victim_node, thief_node) pair the
    // ping-pong analyzer consumes.
    trace_record(w.ring, TraceEvent::steal_hit, got,
                 trace_pack_nodes(workers_[v]->node, w.node), got);
    if (workers_[v]->node == w.node) {
      ++w.stats.steals_local_node;
    } else {
      ++w.stats.steals_remote_node;
      w.tele_remote_steals.fetch_add(1, std::memory_order_relaxed);
    }
    for (std::size_t i = 1; i < got; ++i) w.stash[w.stash_count++] = batch[i];
    // Surplus transition: this node now holds stealable-soon work (the
    // stash drains through the thief, whose splits/spawns re-enqueue
    // here). Publishing is the conservative direction — a set word only
    // costs probes.
    if (got > 1 && sp.hints != nullptr) sp.hints->publish(w.node);
    return got;
  };
  auto settle = [&](Task* first) -> Task* {
    progress = true;
    if (tsc_allows(w, *first)) return first;
    park_refused(w, first);
    return nullptr;  // the caller re-runs the local phase for the surplus
  };
  // The probe ORDER is entirely the policy's decision (affinity hints,
  // same-node-first tiers, rotation); this loop only executes it.
  const unsigned cnt = sp.policy->victim_order(w, w.victim_buf.data());
  for (unsigned k = 0; k < cnt; ++k) {
    if (raid(w.victim_buf[k])) return settle(batch[0]);
  }
  // Node-wide dryness check, only on a fully fruitless round: this
  // worker's local state is already empty (find_work precondition), so if
  // every home deque also looks empty — and nothing is waiting in the
  // node's mailbox — the node's has-work word goes down and remote
  // planners stop paying probes for us. A publish racing this clear is
  // benign: home workers never consult the word for their own node, and
  // the hierarchical backoff bounds the remote delay.
  if (sp.hints != nullptr) {
    bool dry = mailboxes_ == nullptr || mailboxes_[w.node].empty();
    if (dry) {
      for (const unsigned m : topo_.workers_on(w.node)) {
        if (!workers_[m]->deque.empty_estimate()) {
          dry = false;
          break;
        }
      }
    }
    if (dry) sp.hints->clear(w.node);
  }
  return nullptr;
}

Task* Scheduler::find_work(Worker& w) {
  for (;;) {
    // 0. Pin the policy snapshot for this round. Steady state is one
    // seq_cst load (a plain MOV on x86) + a pointer compare — no lock, no
    // store, no barrier instruction; only an actual generation change pays
    // the announce-validate handshake.
    pin_snapshot(w);
    // 1. The private LIFO slot (the newest spawn — no fence, no deque),
    // then surplus from the last batched steal (private, two plain stores
    // per task), then the own deque (order selects depth- vs breadth-first).
    if (Task* t = w.slot; t != nullptr) {
      w.slot = nullptr;
      if (tsc_allows(w, *t)) return t;
      park_refused(w, t);
    }
    while (w.stash_count > 0) {
      Task* t = w.stash[--w.stash_count];
      if (tsc_allows(w, *t)) return t;
      park_refused(w, t);
    }
    for (;;) {
      Task* t = cfg_.local_order == LocalOrder::lifo ? w.deque.pop()
                                                     : w.deque.steal();
      if (t == nullptr) break;
      if (tsc_allows(w, *t)) return t;
      park_refused(w, t);
    }
    // 1.5 Range halves mailed to this node (use_hint_placement): fresher
    // than anything stealable and placed here precisely because this node
    // was hungry, so they outrank parked claims and raids. Steady state
    // (no placement, empty mailbox) is one null check + one relaxed load.
    if (mailboxes_ != nullptr) {
      if (Task* t = take_mailed(w, /*scavenge=*/false)) {
        if (tsc_allows(w, *t)) return t;
        park_refused(w, t);
      }
    }
    // 2. Parked constraint-refused claims. Checked once local work is out —
    // off the per-pop hot path — but before stealing, so a waiting ancestor
    // reaches its parked descendant on every idle round.
    if (Task* t = claim_parked(w)) return t;
    // 3. Steal. A raid that only yielded TSC-refused or stashed tasks made
    // progress without returning one: loop back to the local phase.
    bool progress = false;
    if (Task* t = steal_work(w, progress)) return t;
    // 3.5 Liveness fallback for hint placement: before reporting idle,
    // sweep the OTHER nodes' mailboxes too — a mailed half must never
    // strand behind a target node that stays busy in long task bodies.
    if (!progress && mailboxes_ != nullptr) {
      if (Task* t = take_mailed(w, /*scavenge=*/true)) {
        if (tsc_allows(w, *t)) return t;
        park_refused(w, t);
        progress = true;
      }
    }
    if (!progress) {
      // Nothing local, parked or stealable anywhere: a starvation signal
      // for the adaptive grain controllers (a coarse range schedule that
      // cannot split is the classic way a team ends up here). Each
      // controller's live-range gate scopes the note to the sites it
      // concerns.
      if (cfg_.use_adaptive_grain) grain_table_.note_hungry();
      w.tele_hungry.fetch_add(1, std::memory_order_relaxed);
      trace_record(w.ring, TraceEvent::hungry);
      return nullptr;
    }
  }
}

void Scheduler::assert_between_regions() noexcept {
#ifndef NDEBUG
  // Between-regions contract shared by plan_steal_order and reconfigure:
  // both mutate plain per-worker state (rng, affinity hints, node ids)
  // that the workers themselves mutate while a region is live.
  std::lock_guard<std::mutex> lock(region_mutex_);
  assert(region_ == nullptr && "only valid between regions");
#endif
}

void Scheduler::install_snapshot_locked(bool live) {
  auto next = std::make_unique<PolicySnapshot>();
  next->version = snap_version_.load(std::memory_order_relaxed) + 1;
  next->kind = cfg_.resolved_steal_policy();
  // Hints cost a publish load on every enqueue and a dryness scan on every
  // fruitless steal round, and ONLY the hierarchical policy on a
  // multi-node topology ever reads them — every other configuration gets
  // a null pointer and pays nothing.
  if (cfg_.use_node_work_hints &&
      next->kind == StealPolicyKind::hierarchical && topo_.num_nodes() > 1) {
    next->hints = std::make_unique<NodeHints>(topo_.num_nodes());
    if (live) {
      // Live swap: fresh words start SET, not clear. Work enqueued before
      // the swap was published into the OLD generation's words; a clear
      // word here would gate remote probes away from nodes that do hold
      // work. A stale SET only costs the probes it was meant to save and
      // self-corrects at the first observed-dry round.
      for (unsigned n = 0; n < topo_.num_nodes(); ++n) next->hints->publish(n);
    }
  }
  next->policy = make_steal_policy(cfg_, topo_, next->hints.get());
  next->grain = &grain_table_;
  next->watchdog_ms = cfg_.watchdog_ms;
  next->watchdog_cancel = cfg_.watchdog_cancel;

  PolicySnapshot* raw = next.get();
  std::unique_ptr<PolicySnapshot> old = std::move(snap_owner_);
  snap_owner_ = std::move(next);
  active_kind_.store(static_cast<std::uint8_t>(raw->kind),
                     std::memory_order_relaxed);
  // Publication order — pointer FIRST, version second: pin_snapshot's
  // validate relies on "version v observed ⇒ snap_ holds generation >= v".
  snap_.store(raw, std::memory_order_seq_cst);
  snap_version_.store(raw->version, std::memory_order_seq_cst);

  if (old != nullptr) {
    // A team worker swapping from inside a task body cannot wait on its own
    // epoch slot: advance its pin by hand first (safe — it is this thread).
    if (Worker* self = detail::tls_worker;
        self != nullptr && self->sched == this && self->snap != nullptr) {
      self->snap = raw;
      self->snap_epoch.store(raw->version, std::memory_order_seq_cst);
      self->last_victim = Worker::no_victim;
      self->gated_rounds = 0;
    }
    wait_quiescent(raw->version);
  }
  // `old` — the previous generation's policy AND its hints — dies here,
  // after quiescence proved no worker can still dereference it.
}

void Scheduler::wait_quiescent(std::uint64_t version) noexcept {
  // A slot of 0 is quiescent (between regions / at region exit); anything
  // >= `version` has re-pinned onto the new generation. Anything else is a
  // worker still acting on an older generation: wait it out. Bounded by
  // the longest running task body or grain chunk — pin points sit at the
  // top of every find_work round, at region entry, and at every
  // range-chunk boundary, exactly the cadence that bounds cancellation
  // latency.
  for (const auto& w : workers_) {
    Backoff backoff;
    for (;;) {
      const std::uint64_t e = w->snap_epoch.load(std::memory_order_seq_cst);
      if (e == 0 || e >= version) break;
      backoff.pause();
    }
  }
}

PolicySnapshot* Scheduler::pin_snapshot(Worker& w) noexcept {
  PolicySnapshot* cur = snap_.load(std::memory_order_seq_cst);
  if (cur == w.snap) return cur;  // steady state: one load + compare
  // Generation changed (or first pin this region). Announce-validate: store
  // the version we intend to pin into the epoch slot, then re-read the
  // version; repeat until it held still. SC order closes the classic
  // epoch race — once the validating read returned v, any swapper
  // publishing v+1 does so LATER in the total order, and its quiescence
  // scan (later still) must observe our slot at v and wait. The pointer
  // loaded after that is therefore protected: generation >= v cannot be
  // retired while the slot holds v.
  std::uint64_t v = snap_version_.load(std::memory_order_seq_cst);
  for (;;) {
    w.snap_epoch.store(v, std::memory_order_seq_cst);
    const std::uint64_t check = snap_version_.load(std::memory_order_seq_cst);
    if (check == v) break;
    v = check;
  }
  PolicySnapshot* s = snap_.load(std::memory_order_seq_cst);
  if (s->version != v) {
    // An even newer generation landed between the validate and the pointer
    // load (s->version > v by publication order — never older). Raise the
    // slot to what we actually hold so a swapper retiring s's predecessors
    // never waits on this worker.
    w.snap_epoch.store(s->version, std::memory_order_seq_cst);
  }
  w.snap = s;
  // First pin of a new generation re-seeds the per-worker transient steal
  // state — the RCU replacement for the global-stop reset reconfigure()
  // does in its worker loop: a last_victim or hint-backoff count earned
  // under the old policy is meaningless (not dangerous, just wrong) under
  // the new one.
  w.last_victim = Worker::no_victim;
  w.gated_rounds = 0;
  return s;
}

void Scheduler::reconfigure_live(StealPolicyKind kind) {
  reconfigure_live(kind, LiveTunables{});
}

void Scheduler::reconfigure_live(StealPolicyKind kind,
                                 const LiveTunables& tune) {
  if (!cfg_.live_reconfigure) {
    throw std::logic_error(
        "bots::rt: reconfigure_live() disabled (RT_LIVE_RECONF=0); use "
        "reconfigure() between regions");
  }
  std::lock_guard<std::mutex> lock(reconf_mutex_);
  cfg_.steal_policy = kind;
  if (tune.grain_base > 0) grain_table_.global().seed(tune.grain_base);
  if (tune.watchdog_ms != ~0u) cfg_.watchdog_ms = tune.watchdog_ms;
  if (tune.watchdog_cancel != 0) cfg_.watchdog_cancel = tune.watchdog_cancel == 2;
  install_snapshot_locked(/*live=*/true);
}

Scheduler::Telemetry Scheduler::telemetry() const noexcept {
  Telemetry t;
  for (const auto& w : workers_) {
    t.steals_remote_node +=
        w->tele_remote_steals.load(std::memory_order_relaxed);
    t.remote_probes_skipped +=
        w->tele_probes_skipped.load(std::memory_order_relaxed);
    t.hungry_rounds += w->tele_hungry.load(std::memory_order_relaxed);
  }
  return t;
}

void Scheduler::rebuild_node_pools() {
  // One arena per node, but only when node pools can matter: pooling on
  // and more than one locality domain. Otherwise the vector stays empty
  // and alloc/dispose take exactly the per-worker TaskPool path — the
  // flat-topology degeneration is structural, not a runtime branch per
  // field.
  arenas_.clear();
  if (cfg_.use_node_pools && cfg_.use_task_pool && topo_.num_nodes() > 1) {
    arenas_.reserve(topo_.num_nodes());
    for (unsigned n = 0; n < topo_.num_nodes(); ++n) {
      arenas_.push_back(std::make_unique<NodeArena>(n));
    }
  }
}

void Scheduler::rebuild_mailboxes() {
  // Mailboxes exist only where the placement decision could ever fire:
  // knob on, multi-node, hints enabled. Deliberately NOT gated on the
  // CURRENT policy kind — a live swap to hierarchical must find them
  // ready, and a swap away must still drain halves mailed before it.
  // Everybody else keeps a null pointer and find_work's mailbox probes
  // vanish behind it.
  mailboxes_.reset();
  if (cfg_.use_hint_placement && cfg_.use_node_work_hints &&
      topo_.num_nodes() > 1) {
    mailboxes_ = std::make_unique<RangeMailbox[]>(topo_.num_nodes());
  }
}

std::vector<Scheduler::NodePoolSnapshot> Scheduler::node_pool_snapshot()
    const {
  std::vector<NodePoolSnapshot> snap(arenas_.size());
  for (std::size_t n = 0; n < arenas_.size(); ++n) {
    const NodeArena::Counts c = arenas_[n]->counts();
    snap[n].arena_free = c.free_count;
    snap[n].arena_carved = c.carved;
  }
  for (const auto& w : workers_) {
    if (w->node < snap.size()) snap[w->node].cached += w->home_free_count;
    for (std::size_t n = 0; n < w->outbound.size() && n < snap.size(); ++n) {
      snap[n].in_transit += w->outbound[n].count;
    }
  }
  return snap;
}

void Scheduler::restore_caller_mask() noexcept {
  if (!caller_pinned_ || caller_affinity_.empty()) return;
  if (current_tid() == caller_tid_) {
    (void)pin_current_thread(caller_affinity_);
    return;
  }
  // Cross-thread restore, addressed by kernel tid — but only while the tid
  // still names a live thread of this process: tids are recycled after a
  // thread exits, and an unguarded sched_setaffinity would clobber
  // whatever unrelated thread inherited the id.
  if (same_process_thread(caller_tid_)) {
    (void)pin_thread(caller_tid_, caller_affinity_);
  }
}

void Scheduler::apply_pinning(Worker& w) noexcept {
  w.pin_seen = pin_generation_;
  const std::vector<unsigned>* prepin = nullptr;
  if (w.id == 0) {
    // Worker 0 is whatever thread entered this region: save THAT thread's
    // mask (not the constructing thread's) so the destructor can hand it
    // back, and remember the thread so a different caller re-pins. A
    // caller displaced by a new one gets its mask back right here — it is
    // not the thread executing this, so the restore goes by tid.
    restore_caller_mask();
    caller_thread_ = std::this_thread::get_id();
    caller_tid_ = current_tid();
    caller_affinity_.clear();
    (void)save_current_affinity(caller_affinity_);
    caller_pinned_ = true;
    prepin = &caller_affinity_;
  } else {
    if (!w.prepin_saved) {
      w.prepin_saved = save_current_affinity(w.prepin_affinity);
    }
    if (w.prepin_saved) prepin = &w.prepin_affinity;
  }
  const std::vector<unsigned>& cpus = topo_.cpus_on(w.node);
  // An injected pin failure takes the same graceful path as a refused
  // sched_setaffinity: the worker runs unpinned (stats.pinned = 0) on its
  // pre-pin mask.
  bool ok = !cpus.empty() && !inject(&w, FaultSite::pin) &&
            pin_current_thread(cpus);
  if (ok) {
    // Record reality, not intent: the pin only counts when the thread is
    // observed running inside the requested cpuset afterwards.
    const int cpu = current_cpu();
    ok = cpu >= 0 && std::find(cpus.begin(), cpus.end(),
                               static_cast<unsigned>(cpu)) != cpus.end();
  }
  if (!ok && prepin != nullptr && !prepin->empty()) {
    // A failed (re-)pin must leave the thread genuinely unpinned, not
    // hard-bound to some PREVIOUS topology's cpuset while stats call it
    // unpinned — fall back to the thread's pre-pin mask.
    (void)pin_current_thread(*prepin);
  }
  w.pin_applied = ok;
}

void Scheduler::reconfigure(StealPolicyKind kind,
                            const std::string& synthetic_topology) {
  {
    // Checked in every build mode, not just the debug assert: reconfigure
    // under a live region (including the resident server region) would
    // rebuild arenas whose descriptors are still in flight and re-map node
    // ids under workers that are using them — silent memory corruption in
    // release builds before this guard.
    std::lock_guard<std::mutex> lock(region_mutex_);
    if (region_ != nullptr) {
      throw std::logic_error(
          "bots::rt: reconfigure() called while a region is live; "
          "drain or stop the region (server) first");
    }
  }
  cfg_.steal_policy = kind;
  cfg_.synthetic_topology = synthetic_topology;
  topo_ = Topology::detect(cfg_.num_threads, synthetic_topology);
  {
    // Between regions every worker's epoch slot is 0 (quiescent), so this
    // is a plain swap: install, no waiting.
    std::lock_guard<std::mutex> lock(reconf_mutex_);
    install_snapshot_locked(/*live=*/false);
  }
  for (auto& w : workers_) {
    // Refresh the cached node id (steal-locality counters and the hint
    // word addressed on enqueue would otherwise use — possibly
    // out-of-range — stale nodes) and drop every per-worker victim hint:
    // a last_victim learned under the old topology can point off-node
    // under the new one, and the backoff counter belongs to the old hint
    // array.
    w->node = topo_.node_of(w->id);
    w->last_victim = Worker::no_victim;
    w->gated_rounds = 0;
    // Node-pool caches and stashes hold pointers into the OLD arenas'
    // chunks, which die with rebuild_node_pools below: drop them first.
    // Between regions every descriptor is dead, so dropping loses nothing
    // but recycled memory the new arenas will re-carve.
    w->home_free = nullptr;
    w->home_free_count = 0;
    w->stash_in_transit = 0;
    w->outbound.assign(topo_.num_nodes(), RemoteStash{});
  }
  rebuild_node_pools();
  rebuild_mailboxes();
  if (pin_generation_ != 0) ++pin_generation_;  // re-pin at next region entry
  // Frozen task graphs recorded under the old shape (team, topology,
  // placement) must re-record, not replay: invalidate them all.
  ++graph_epoch_;
}

void Scheduler::set_victim_hint(unsigned worker, unsigned victim) noexcept {
  assert_between_regions();
  if (worker < workers_.size()) workers_[worker]->last_victim = victim;
}

unsigned Scheduler::plan_range_placement(unsigned worker) {
  assert_between_regions();
  // Report what publish_range_half would DO, not just what the policy
  // would prefer: without mailboxes (placement knob off, or no hints) no
  // half is ever mailed, whatever the policy says.
  if (mailboxes_ == nullptr || worker >= workers_.size()) {
    return StealPolicy::no_node;
  }
  std::lock_guard<std::mutex> lock(reconf_mutex_);
  return snap_owner_->policy->place_range_half(*workers_[worker]);
}

std::vector<unsigned> Scheduler::plan_steal_order(unsigned worker) {
  assert_between_regions();
  std::vector<unsigned> order;
  if (worker >= workers_.size() || cfg_.num_threads <= 1) return order;
  Worker& w = *workers_[worker];
  order.resize(cfg_.num_threads);
  unsigned cnt = 0;
  {
    std::lock_guard<std::mutex> lock(reconf_mutex_);
    cnt = snap_owner_->policy->victim_order(w, order.data());
  }
  order.resize(cnt);
  return order;
}

bool Scheduler::tsc_allows(const Worker& w, const Task& t) const noexcept {
  if (t.tiedness() == Tiedness::untied) return true;
  if (w.tied_stack.empty()) return true;
  // Every suspended entry must be an ancestor. The stack is NOT inherently
  // an ancestry chain — untied tasks are claimed without a TSC check, and a
  // tied task inlined under one (cutoff / spawn_if) pushes a taskwait entry
  // that need not descend from the entries below it — so a back()-only
  // check alone would let that entry's descendants run despite violating
  // the constraint for the earlier suspended tied tasks. taskwait_from
  // therefore verifies descent at push time and tracks the chained prefix
  // (Worker::tied_chain): while the whole stack is chained (all-tied nested
  // graphs, the hot case — this check runs on every claim, a suspension
  // only once), descent from the deepest entry implies descent from all by
  // transitivity. Otherwise fall back to scanning every entry,
  // deepest-first so mismatches fail on the most restrictive probe.
  if (w.tied_chain == w.tied_stack.size()) {
    return t.is_descendant_of(*w.tied_stack.back());
  }
  for (auto it = w.tied_stack.rbegin(); it != w.tied_stack.rend(); ++it) {
    if (!t.is_descendant_of(**it)) return false;
  }
  return true;
}

StatsSnapshot Scheduler::stats() const {
  StatsSnapshot snap;
  snap.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    snap.per_worker.push_back(w->stats);
    snap.total += w->stats;
  }
  return snap;
}

void Scheduler::reset_stats() noexcept {
  for (auto& w : workers_) w->stats = WorkerStats{};
}

}  // namespace bots::rt
