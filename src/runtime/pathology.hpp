// Scheduling-pathology analyzers over the trace layer (arXiv 2406.03077:
// "Detrimental task execution patterns in mainstream OpenMP runtimes").
//
// Three detectors score a drained TraceCollector:
//   - creation-serialization: one worker sources nearly all task descriptors
//     while the rest of the team runs hungry waiting on the generator.
//   - depth-first starvation: a cutoff (or tiny grain) inlines nearly every
//     spawn, so no work is ever published for teammates to steal — sustained
//     hungry rounds with almost no steal hits.
//   - cross-node ping-pong: descriptors bounce between a node pair in both
//     directions (steal_hit node pairs + mailbox birth-node tags) at a rate
//     comparable to the spawn rate.
//
// All thresholds live in PathologyConfig so tests and the nightly provocation
// legs can tighten/loosen them; defaults are tuned to stay silent on healthy
// default-config BOTS runs (distributed spawns, high deferred share, steals
// rare relative to spawns).
//
// PhaseDetector (bottom) is the online sibling: the EWMA phase signal the
// TaskServer monitor feeds each retune window. It keeps PR 9's two rules
// (remote-steal churn -> hierarchical, settled local phase -> last_victim)
// and adds the trace-fed spawn-concentration signal when tracing is live.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "runtime/config.hpp"
#include "runtime/trace.hpp"

namespace bots::rt {

struct PathologyConfig {
  // creation-serialization
  double creation_top_share = 0.90;       // top worker's share of spawn events
  std::uint64_t creation_min_spawns = 512;
  double creation_min_hungry_per_other = 8.0;  // avg hungry rounds, non-top workers
  // depth-first starvation
  std::uint64_t starve_min_spawns = 256;
  double starve_max_deferred_share = 0.25;  // deferred / (deferred + inlined)
  double starve_min_hungry_per_other = 16.0;
  double starve_max_hits_per_worker = 2.0;
  // cross-node ping-pong
  std::uint64_t pingpong_min_transfers = 64;  // cross-node descriptor moves
  double pingpong_min_bounce_ratio = 0.25;    // transfers / spawns
  double pingpong_min_symmetry = 0.25;        // 2*min(fwd,rev)/(fwd+rev), worst pair
};

struct PathologyFinding {
  bool fired = false;
  double score = 0.0;  // how far past the gate; 0 when quiet
  std::string detail;
};

struct PathologyReport {
  PathologyFinding creation_serialization;
  PathologyFinding depth_first_starvation;
  PathologyFinding cross_node_ping_pong;
  bool any() const noexcept {
    return creation_serialization.fired || depth_first_starvation.fired ||
           cross_node_ping_pong.fired;
  }
};

// Analyze a (drained) collector. Counter-based signals are wrap-proof; the
// ping-pong detector additionally walks drained records for node pairs.
inline PathologyReport analyze_pathologies(const TraceCollector& tc,
                                           const PathologyConfig& cfg = {}) {
  PathologyReport rep;
  const unsigned n = tc.num_workers();
  if (n == 0) return rep;

  std::uint64_t spawn_total = 0, hungry_total = 0, hits_total = 0;
  std::uint64_t spawn_top = 0;
  unsigned top_worker = 0;
  std::uint64_t deferred_events = 0, inlined_events = 0;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t s = tc.count(i, TraceEvent::spawn);
    spawn_total += s;
    if (s > spawn_top) {
      spawn_top = s;
      top_worker = i;
    }
    hungry_total += tc.count(i, TraceEvent::hungry);
    hits_total += tc.count(i, TraceEvent::steal_hit);
  }
  // Deferred-vs-inlined split needs the per-record flag (arg2), so it comes
  // from the drained stream; on very long runs wraparound undercounts both
  // sides equally, which keeps the share estimate usable.
  for (unsigned i = 0; i < n; ++i)
    for (const TraceRecord& r : tc.events(i))
      if (static_cast<TraceEvent>(r.type) == TraceEvent::spawn)
        (r.arg2 != 0 ? deferred_events : inlined_events) += 1;

  // --- creation-serialization -------------------------------------------
  if (n >= 2 && spawn_total >= cfg.creation_min_spawns) {
    const double share =
        static_cast<double>(spawn_top) / static_cast<double>(spawn_total);
    const std::uint64_t hungry_others =
        hungry_total - tc.count(top_worker, TraceEvent::hungry);
    const double hungry_per_other =
        static_cast<double>(hungry_others) / static_cast<double>(n - 1);
    if (share >= cfg.creation_top_share &&
        hungry_per_other >= cfg.creation_min_hungry_per_other) {
      rep.creation_serialization.fired = true;
      rep.creation_serialization.score = share;
    }
    rep.creation_serialization.detail =
        "top worker " + std::to_string(top_worker) + " sourced " +
        std::to_string(static_cast<int>(share * 100.0)) + "% of " +
        std::to_string(spawn_total) + " spawns; avg hungry rounds/other=" +
        std::to_string(static_cast<std::uint64_t>(hungry_per_other));
  }

  // --- depth-first starvation -------------------------------------------
  if (n >= 2 && spawn_total >= cfg.starve_min_spawns) {
    const std::uint64_t seen = deferred_events + inlined_events;
    const double deferred_share =
        seen == 0 ? 1.0
                  : static_cast<double>(deferred_events) /
                        static_cast<double>(seen);
    const double hungry_per_other =
        static_cast<double>(hungry_total) / static_cast<double>(n - 1);
    const double hits_per_worker =
        static_cast<double>(hits_total) / static_cast<double>(n);
    if (deferred_share <= cfg.starve_max_deferred_share &&
        hungry_per_other >= cfg.starve_min_hungry_per_other &&
        hits_per_worker <= cfg.starve_max_hits_per_worker) {
      rep.depth_first_starvation.fired = true;
      rep.depth_first_starvation.score = 1.0 - deferred_share;
    }
    rep.depth_first_starvation.detail =
        "deferred share " +
        std::to_string(static_cast<int>(deferred_share * 100.0)) + "% of " +
        std::to_string(seen) + " spawns; hungry/other=" +
        std::to_string(static_cast<std::uint64_t>(hungry_per_other)) +
        ", steal hits/worker=" +
        std::to_string(static_cast<std::uint64_t>(hits_per_worker));
  }

  // --- cross-node ping-pong ---------------------------------------------
  // Directed transfer counts per node pair: steal hits carry
  // (victim_node, thief_node); mailbox records carry (sender, target) with
  // the descriptor's birth node in arg. A move AWAY from the birth node and
  // a later move BACK show up as the two directions of one pair.
  {
    std::map<std::pair<unsigned, unsigned>, std::uint64_t> dir;
    std::uint64_t transfers = 0;
    for (unsigned i = 0; i < n; ++i) {
      for (const TraceRecord& r : tc.events(i)) {
        const auto ev = static_cast<TraceEvent>(r.type);
        unsigned from = 0, to = 0;
        std::uint64_t weight = 1;
        if (ev == TraceEvent::steal_hit) {
          from = trace_node_hi(r.arg2);
          to = trace_node_lo(r.arg2);
          weight = std::max<std::uint64_t>(r.arg, 1);
        } else if (ev == TraceEvent::mailbox) {
          from = trace_node_lo(r.arg2);
          to = trace_node_hi(r.arg2);
        } else {
          continue;
        }
        if (from == to) continue;
        dir[{from, to}] += weight;
        transfers += weight;
      }
    }
    double worst_symmetry = 0.0;
    std::pair<unsigned, unsigned> worst_pair{0, 0};
    std::uint64_t worst_volume = 0;
    for (const auto& [key, fwd] : dir) {
      if (key.first > key.second) continue;  // visit each pair once
      auto it = dir.find({key.second, key.first});
      const std::uint64_t rev = it == dir.end() ? 0 : it->second;
      if (fwd + rev == 0) continue;
      const double sym = 2.0 * static_cast<double>(std::min(fwd, rev)) /
                         static_cast<double>(fwd + rev);
      if (fwd + rev > worst_volume ||
          (fwd + rev == worst_volume && sym > worst_symmetry)) {
        worst_volume = fwd + rev;
        worst_symmetry = sym;
        worst_pair = key;
      }
    }
    const double bounce_ratio =
        spawn_total == 0 ? 0.0
                         : static_cast<double>(transfers) /
                               static_cast<double>(spawn_total);
    if (transfers >= cfg.pingpong_min_transfers &&
        bounce_ratio >= cfg.pingpong_min_bounce_ratio &&
        worst_symmetry >= cfg.pingpong_min_symmetry) {
      rep.cross_node_ping_pong.fired = true;
      rep.cross_node_ping_pong.score = bounce_ratio * worst_symmetry;
    }
    if (transfers > 0) {
      rep.cross_node_ping_pong.detail =
          std::to_string(transfers) + " cross-node transfers (bounce ratio " +
          std::to_string(static_cast<int>(bounce_ratio * 100.0)) +
          "% of spawns); worst pair " + std::to_string(worst_pair.first) +
          "<->" + std::to_string(worst_pair.second) + " symmetry " +
          std::to_string(static_cast<int>(worst_symmetry * 100.0)) + "%";
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Online phase detection for TaskServer retuning.
//
// Fed one PhaseSample per retune window. Signals d_* are per-window deltas
// of the scheduler's relaxed steal telemetry; spawn_top_share/d_spawn come
// from live trace counters when tracing is on (0 when off, which simply
// disables the concentration rule — behavior then matches PR 9's two-signal
// EWMA exactly).
struct PhaseSample {
  double d_remote = 0.0;  // remote steal hits this window
  double d_skip = 0.0;    // hint-gated probes skipped this window
  double d_hungry = 0.0;  // fruitless find_work rounds this window
  double d_spawn = 0.0;   // spawn events this window (trace-fed)
  double spawn_top_share = 0.0;  // top worker's share of this window's spawns
};

class PhaseDetector {
 public:
  explicit PhaseDetector(double team) : team_(team < 1.0 ? 1.0 : team) {}

  // Returns the policy to retune to, or nullopt to hold.
  std::optional<StealPolicyKind> update(const PhaseSample& s,
                                        StealPolicyKind current) noexcept {
    auto ewma = [](double ew, double d) { return (7.0 * ew + d) / 8.0; };
    ew_remote_ = ewma(ew_remote_, s.d_remote);
    ew_skip_ = ewma(ew_skip_, s.d_skip);
    ew_hungry_ = ewma(ew_hungry_, s.d_hungry);
    ew_spawn_ = ewma(ew_spawn_, s.d_spawn);
    ew_share_ = ewma(ew_share_, s.spawn_top_share);

    // Remote churn: cross-node steals dominating -> node-tiered probing.
    const bool remote_churn = ew_remote_ > 4.0 * team_;
    // Serialized-creation phase (trace-fed): one worker sources nearly all
    // spawns while the team runs hungry -> hierarchical keeps the probe
    // storm off the generator's node until its own tier is dry.
    const bool creation_phase = ew_share_ > 0.85 && ew_spawn_ > 4.0 * team_ &&
                                ew_hungry_ > team_;
    if (current != StealPolicyKind::hierarchical &&
        (remote_churn || creation_phase)) {
      return StealPolicyKind::hierarchical;
    }
    // Settled local phase: little cross-node traffic, hints mostly warm,
    // team rarely hungry -> cheap sticky victims win.
    if (current == StealPolicyKind::hierarchical && !creation_phase &&
        ew_remote_ + ew_skip_ < team_ && ew_hungry_ < team_) {
      return StealPolicyKind::last_victim;
    }
    return std::nullopt;
  }

  double ew_remote() const noexcept { return ew_remote_; }
  double ew_hungry() const noexcept { return ew_hungry_; }
  double ew_share() const noexcept { return ew_share_; }

 private:
  double team_;
  double ew_remote_ = 0.0;
  double ew_skip_ = 0.0;
  double ew_hungry_ = 0.0;
  double ew_spawn_ = 0.0;
  double ew_share_ = 0.0;
};

}  // namespace bots::rt
