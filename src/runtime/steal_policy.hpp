// Pluggable steal/placement policies: every scheduling *decision* the
// work-stealing core used to hardcode now flows through one of these
// objects — victim selection order, steal-batch sizing, and the
// range-split demand check (which decides where split halves appear:
// published on the splitter's own deque, they reach whichever thief the
// victim order sends there first).
//
// One policy instance serves the whole team. Methods take the acting
// Worker and mutate only that worker's state (last_victim, rng), so the
// object itself needs no synchronization.
//
// Policies (SchedulerConfig::steal_policy, RT_STEAL_POLICY):
//   random       pure random rotation — the seed behaviour with
//                victim_affinity off.
//   sequential   rotation from (id + 1) — the seed's VictimPolicy::
//                sequential with affinity off.
//   last_victim  the remembered last successful victim first, then the
//                base rotation (steals come in bursts from the same
//                loaded worker) — the PR-1 default behaviour.
//   hierarchical topology-aware: local LIFO first (find_work's local
//                phase), then same-node victims (last-victim hint kept
//                only while it stays on-node), then cross-node victims —
//                with the steal-half batch scaled down across the
//                interconnect, so a cross-node raid moves less remote
//                memory per trip. With NodeHints (cfg.use_node_work_hints)
//                a planning round skips remote nodes whose has-work word
//                is clear, and a backoff plans an unconditional full round
//                every hint_backoff_rounds gated rounds so a stale hint
//                can only delay a steal, never starve the team. On a
//                single-node topology it degenerates to last_victim
//                exactly.
//   legacy       (default) derive the policy from the PR-1 knobs
//                `victim` + `victim_affinity`, keeping every existing
//                ablation configuration meaningful.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "runtime/config.hpp"
#include "runtime/topology.hpp"

namespace bots::rt {

class Worker;

/// Per-node "has work" hints: one cache-line-padded word per locality node.
/// The scheduler publishes a node's word on every enqueue into that node
/// (and when a steal stashes surplus there) and clears it when a fruitless
/// steal round observes the whole node dry; the hierarchical policy reads
/// the words to skip planning probes into idle remote nodes — the
/// interconnect traffic an all-idle node otherwise costs every round.
///
/// The protocol is advisory by design. A stale SET word only costs the
/// probes the hint was meant to save; a stale CLEAR word (a publish racing
/// a clear) can hide work from REMOTE planners only — the node's own
/// workers always probe their home node, and parked-task inboxes are
/// scanned globally, so nothing is ever stranded. Remote delay is bounded
/// by the hierarchical policy's backoff (an unconditional full probe round
/// every hint_backoff_rounds gated rounds). Words are written with a
/// load-then-store so the steady state (already published / already clear)
/// costs one shared read and zero writes.
class NodeHints {
 public:
  explicit NodeHints(unsigned nodes)
      : n_(nodes == 0 ? 1 : nodes), words_(new Word[n_]) {}

  NodeHints(const NodeHints&) = delete;
  NodeHints& operator=(const NodeHints&) = delete;

  void publish(unsigned node) noexcept {
    Word& w = words_[node % n_];
    if (w.v.load(std::memory_order_relaxed) == 0) {
      w.v.store(1, std::memory_order_release);
    }
  }

  void clear(unsigned node) noexcept {
    Word& w = words_[node % n_];
    if (w.v.load(std::memory_order_relaxed) != 0) {
      w.v.store(0, std::memory_order_release);
    }
  }

  [[nodiscard]] bool has_work(unsigned node) const noexcept {
    return words_[node % n_].v.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] unsigned num_nodes() const noexcept { return n_; }

 private:
  struct alignas(cache_line_bytes) Word {
    std::atomic<std::uint32_t> v{0};
  };

  unsigned n_;
  std::unique_ptr<Word[]> words_;
};

class StealPolicy {
 public:
  explicit StealPolicy(const Topology& topo) noexcept : topo_(topo) {}
  virtual ~StealPolicy() = default;

  StealPolicy(const StealPolicy&) = delete;
  StealPolicy& operator=(const StealPolicy&) = delete;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Fill `order` with the victim ids to probe this round, most preferred
  /// first, self excluded; returns how many were written. `order` must
  /// hold at least team-size entries. Every other worker appears exactly
  /// once (a full round probes everyone — liveness of the steal loop).
  virtual unsigned victim_order(Worker& w, unsigned* order) = 0;

  /// Steal-half batch cap for a raid by `w` on victim `v`; `base` is the
  /// configured steal_batch_max (already clamped to the stash capacity).
  [[nodiscard]] virtual std::size_t batch_cap(const Worker& w, unsigned v,
                                              std::size_t base) const noexcept {
    (void)w;
    (void)v;
    return base;
  }

  /// Outcome notification for a raid on `v` (true = at least one task).
  virtual void raided(Worker& w, unsigned v, bool success) noexcept {
    (void)w;
    (void)v;
    (void)success;
  }

  /// Range-split demand check: should the worker executing a range task
  /// split its upper half off now? The rule — "my local queue is dry", the
  /// state a steal leaves behind, so splits chase thief demand — is shared
  /// by every policy (what differs per policy is WHO reaches the half
  /// first, which the victim order already decides), so this is a
  /// non-virtual policy-layer check: it runs once per grain chunk in the
  /// range hot loop and must inline. Defined in scheduler.hpp, after
  /// Worker. A future policy needing a different demand rule should
  /// promote it to a virtual hook and eat the per-chunk dispatch then.
  [[nodiscard]] bool should_split_range(const Worker& w) const noexcept;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 protected:
  const Topology& topo_;
};

/// Build the policy selected by cfg.resolved_steal_policy(). `topo` (and
/// `hints`, when non-null) must outlive the returned policy — the
/// Scheduler owns all three. `hints` may be null (knob off); only the
/// hierarchical policy consults it.
[[nodiscard]] std::unique_ptr<StealPolicy> make_steal_policy(
    const SchedulerConfig& cfg, const Topology& topo, NodeHints* hints);

}  // namespace bots::rt
