// Pluggable steal/placement policies: every scheduling *decision* the
// work-stealing core used to hardcode now flows through one of these
// objects — victim selection order, steal-batch sizing, the range-split
// demand check (which decides where split halves appear: published on the
// splitter's own deque, they reach whichever thief the victim order sends
// there first), and the hint-aware placement consultation
// (place_range_half: whether a split half should instead be MAILED to an
// idle remote node's RangeMailbox, sparing that node the cross-node steal).
//
// One policy instance serves the whole team. Methods take the acting
// Worker and mutate only that worker's state (last_victim, rng), so the
// object itself needs no synchronization.
//
// Policies (SchedulerConfig::steal_policy, RT_STEAL_POLICY):
//   random       pure random rotation — the seed behaviour with
//                victim_affinity off.
//   sequential   rotation from (id + 1) — the seed's VictimPolicy::
//                sequential with affinity off.
//   last_victim  the remembered last successful victim first, then the
//                base rotation (steals come in bursts from the same
//                loaded worker) — the PR-1 default behaviour.
//   hierarchical topology-aware: local LIFO first (find_work's local
//                phase), then same-node victims (last-victim hint kept
//                only while it stays on-node), then cross-node victims —
//                with the steal-half batch scaled down across the
//                interconnect, so a cross-node raid moves less remote
//                memory per trip. With NodeHints (cfg.use_node_work_hints)
//                a planning round skips remote nodes whose has-work word
//                is clear, and a backoff plans an unconditional full round
//                every hint_backoff_rounds gated rounds so a stale hint
//                can only delay a steal, never starve the team. On a
//                single-node topology it degenerates to last_victim
//                exactly.
//   legacy       (default) derive the policy from the PR-1 knobs
//                `victim` + `victim_affinity`, keeping every existing
//                ablation configuration meaningful.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "runtime/config.hpp"
#include "runtime/task.hpp"
#include "runtime/topology.hpp"

namespace bots::rt {

class Worker;

/// Per-node "has work" hints: one cache-line-padded word per locality node.
/// The scheduler publishes a node's word on every enqueue into that node
/// (and when a steal stashes surplus there) and clears it when a fruitless
/// steal round observes the whole node dry; the hierarchical policy reads
/// the words to skip planning probes into idle remote nodes — the
/// interconnect traffic an all-idle node otherwise costs every round.
///
/// The protocol is advisory by design. A stale SET word only costs the
/// probes the hint was meant to save; a stale CLEAR word (a publish racing
/// a clear) can hide work from REMOTE planners only — the node's own
/// workers always probe their home node, and parked-task inboxes are
/// scanned globally, so nothing is ever stranded. Remote delay is bounded
/// by the hierarchical policy's backoff (an unconditional full probe round
/// every hint_backoff_rounds gated rounds). Words are written with a
/// load-then-store so the steady state (already published / already clear)
/// costs one shared read and zero writes.
class NodeHints {
 public:
  explicit NodeHints(unsigned nodes)
      : n_(nodes == 0 ? 1 : nodes), words_(new Word[n_]) {}

  NodeHints(const NodeHints&) = delete;
  NodeHints& operator=(const NodeHints&) = delete;

  void publish(unsigned node) noexcept {
    Word& w = words_[node % n_];
    if (w.v.load(std::memory_order_relaxed) == 0) {
      w.v.store(1, std::memory_order_release);
    }
  }

  void clear(unsigned node) noexcept {
    Word& w = words_[node % n_];
    if (w.v.load(std::memory_order_relaxed) != 0) {
      w.v.store(0, std::memory_order_release);
    }
  }

  [[nodiscard]] bool has_work(unsigned node) const noexcept {
    return words_[node % n_].v.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] unsigned num_nodes() const noexcept { return n_; }

 private:
  struct alignas(cache_line_bytes) Word {
    std::atomic<std::uint32_t> v{0};
  };

  unsigned n_;
  std::unique_ptr<Word[]> words_;
};

/// Per-node mailbox for hint-aware range placement
/// (SchedulerConfig::use_hint_placement): a splitter on a saturated node
/// publishes a split-off range half HERE — on the idle node the hints say
/// is starving — instead of on its own deque, so the idle node's workers
/// find the half on their next find_work round without paying a
/// cross-node steal probe for it.
///
/// Lock-free Treiber stack, same shape as the parking-inbox design in
/// scheduler.cpp: push is a CAS-splice of a single node, pop takes
/// exclusive ownership of the whole chain with exchange(nullptr), keeps
/// the first task and CAS-splices the remainder back. Exactly-once
/// delivery holds for any producer/consumer mix (any remote splitter may
/// push; any worker may pop): the exchange hands the chain to exactly one
/// popper, and a task is only ever in one chain. Order is LIFO, not the
/// old mutex-FIFO — irrelevant in practice because the redirect condition
/// (target mailbox observed empty) keeps the depth at ~1. The steady
/// state costs one acquire head probe (empty()) per idle round and zero
/// locks anywhere; `size_` is a relaxed side counter kept only for the
/// stall watchdog's dump and tests. Tasks chain through Task::pool_next
/// (a mailed task is live and queued, so the freelist/parked uses of that
/// link are disjoint from this one).
class alignas(cache_line_bytes) RangeMailbox {
 public:
  RangeMailbox() = default;
  RangeMailbox(const RangeMailbox&) = delete;
  RangeMailbox& operator=(const RangeMailbox&) = delete;

  void push(Task* t) noexcept {
    Task* head = head_.load(std::memory_order_relaxed);
    do {
      t->pool_next = head;
    } while (!head_.compare_exchange_weak(head, t, std::memory_order_release,
                                          std::memory_order_relaxed));
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One mailed task, or nullptr. Exactly-once: exchange(nullptr) gives
  /// this popper the whole chain exclusively; concurrent poppers get
  /// disjoint chains (or nullptr), so every pushed task is returned by
  /// exactly one pop, whichever workers race for it.
  [[nodiscard]] Task* pop() noexcept {
    if (head_.load(std::memory_order_acquire) == nullptr) return nullptr;
    Task* chain = head_.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) return nullptr;
    Task* rest = chain->pool_next;
    chain->pool_next = nullptr;
    size_.fetch_sub(1, std::memory_order_relaxed);
    if (rest != nullptr) {
      Task* tail = rest;
      while (tail->pool_next != nullptr) tail = tail->pool_next;
      Task* head = head_.load(std::memory_order_relaxed);
      do {
        tail->pool_next = head;
      } while (!head_.compare_exchange_weak(
          head, rest, std::memory_order_release, std::memory_order_relaxed));
    }
    return chain;
  }

  /// Advisory: a popper transiently holding the chain makes the mailbox
  /// look empty for one probe — the same miss-a-round semantics the old
  /// size gate had.
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  /// Approximate depth (one relaxed load, no lock): introspection for the
  /// stall watchdog's dump and tests — safe to call from a non-team thread.
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Task*> head_{nullptr};
  std::atomic<std::size_t> size_{0};
};

class StealPolicy {
 public:
  explicit StealPolicy(const Topology& topo) noexcept : topo_(topo) {}
  virtual ~StealPolicy() = default;

  StealPolicy(const StealPolicy&) = delete;
  StealPolicy& operator=(const StealPolicy&) = delete;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Fill `order` with the victim ids to probe this round, most preferred
  /// first, self excluded; returns how many were written. `order` must
  /// hold at least team-size entries. Every other worker appears exactly
  /// once (a full round probes everyone — liveness of the steal loop).
  virtual unsigned victim_order(Worker& w, unsigned* order) = 0;

  /// Steal-half batch cap for a raid by `w` on victim `v`; `base` is the
  /// configured steal_batch_max (already clamped to the stash capacity).
  [[nodiscard]] virtual std::size_t batch_cap(const Worker& w, unsigned v,
                                              std::size_t base) const noexcept {
    (void)w;
    (void)v;
    return base;
  }

  /// Outcome notification for a raid on `v` (true = at least one task).
  virtual void raided(Worker& w, unsigned v, bool success) noexcept {
    (void)w;
    (void)v;
    (void)success;
  }

  /// "No placement preference" sentinel for place_range_half.
  static constexpr unsigned no_node = ~0u;

  /// Placement consultation for a split-off range half: the node whose
  /// mailbox should receive it, or no_node to publish on the splitter's own
  /// deque (the default — every non-topology-aware policy). The
  /// hierarchical policy redirects when the splitter's home node already
  /// advertises surplus (its has-work word is set: local thieves have
  /// nearer work) while a remote node's word is clear (its workers are
  /// provably hungry — they would otherwise pay a cross-node steal for
  /// exactly this half). Purely advisory: the scheduler still keeps the
  /// half local when the target's mailbox is backed up.
  [[nodiscard]] virtual unsigned place_range_half(Worker& w) noexcept {
    (void)w;
    return no_node;
  }

  /// Range-split demand check: should the worker executing a range task
  /// split its upper half off now? The rule — "my local queue is dry", the
  /// state a steal leaves behind, so splits chase thief demand — is shared
  /// by every policy (what differs per policy is WHO reaches the half
  /// first, which the victim order already decides), so this is a
  /// non-virtual policy-layer check: it runs once per grain chunk in the
  /// range hot loop and must inline. Defined in scheduler.hpp, after
  /// Worker. A future policy needing a different demand rule should
  /// promote it to a virtual hook and eat the per-chunk dispatch then.
  [[nodiscard]] bool should_split_range(const Worker& w) const noexcept;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 protected:
  const Topology& topo_;
};

/// Build the policy selected by cfg.resolved_steal_policy(). `topo` (and
/// `hints`, when non-null) must outlive the returned policy — the
/// Scheduler owns all three. `hints` may be null (knob off); only the
/// hierarchical policy consults it.
[[nodiscard]] std::unique_ptr<StealPolicy> make_steal_policy(
    const SchedulerConfig& cfg, const Topology& topo, NodeHints* hints);

}  // namespace bots::rt
