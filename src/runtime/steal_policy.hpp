// Pluggable steal/placement policies: every scheduling *decision* the
// work-stealing core used to hardcode now flows through one of these
// objects — victim selection order, steal-batch sizing, and the
// range-split demand check (which decides where split halves appear:
// published on the splitter's own deque, they reach whichever thief the
// victim order sends there first).
//
// One policy instance serves the whole team. Methods take the acting
// Worker and mutate only that worker's state (last_victim, rng), so the
// object itself needs no synchronization.
//
// Policies (SchedulerConfig::steal_policy, RT_STEAL_POLICY):
//   random       pure random rotation — the seed behaviour with
//                victim_affinity off.
//   sequential   rotation from (id + 1) — the seed's VictimPolicy::
//                sequential with affinity off.
//   last_victim  the remembered last successful victim first, then the
//                base rotation (steals come in bursts from the same
//                loaded worker) — the PR-1 default behaviour.
//   hierarchical topology-aware: local LIFO first (find_work's local
//                phase), then same-node victims (last-victim hint kept
//                only while it stays on-node), then cross-node victims —
//                with the steal-half batch scaled down across the
//                interconnect, so a cross-node raid moves less remote
//                memory per trip. On a single-node topology it degenerates
//                to last_victim exactly.
//   legacy       (default) derive the policy from the PR-1 knobs
//                `victim` + `victim_affinity`, keeping every existing
//                ablation configuration meaningful.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/config.hpp"
#include "runtime/topology.hpp"

namespace bots::rt {

class Worker;

class StealPolicy {
 public:
  explicit StealPolicy(const Topology& topo) noexcept : topo_(topo) {}
  virtual ~StealPolicy() = default;

  StealPolicy(const StealPolicy&) = delete;
  StealPolicy& operator=(const StealPolicy&) = delete;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Fill `order` with the victim ids to probe this round, most preferred
  /// first, self excluded; returns how many were written. `order` must
  /// hold at least team-size entries. Every other worker appears exactly
  /// once (a full round probes everyone — liveness of the steal loop).
  virtual unsigned victim_order(Worker& w, unsigned* order) = 0;

  /// Steal-half batch cap for a raid by `w` on victim `v`; `base` is the
  /// configured steal_batch_max (already clamped to the stash capacity).
  [[nodiscard]] virtual std::size_t batch_cap(const Worker& w, unsigned v,
                                              std::size_t base) const noexcept {
    (void)w;
    (void)v;
    return base;
  }

  /// Outcome notification for a raid on `v` (true = at least one task).
  virtual void raided(Worker& w, unsigned v, bool success) noexcept {
    (void)w;
    (void)v;
    (void)success;
  }

  /// Range-split demand check: should the worker executing a range task
  /// split its upper half off now? The rule — "my local queue is dry", the
  /// state a steal leaves behind, so splits chase thief demand — is shared
  /// by every policy (what differs per policy is WHO reaches the half
  /// first, which the victim order already decides), so this is a
  /// non-virtual policy-layer check: it runs once per grain chunk in the
  /// range hot loop and must inline. Defined in scheduler.hpp, after
  /// Worker. A future policy needing a different demand rule should
  /// promote it to a virtual hook and eat the per-chunk dispatch then.
  [[nodiscard]] bool should_split_range(const Worker& w) const noexcept;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 protected:
  const Topology& topo_;
};

/// Build the policy selected by cfg.resolved_steal_policy(). `topo` must
/// outlive the returned policy (the Scheduler owns both).
[[nodiscard]] std::unique_ptr<StealPolicy> make_steal_policy(
    const SchedulerConfig& cfg, const Topology& topo);

}  // namespace bots::rt
