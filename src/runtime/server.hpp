// Persistent multi-region server mode (PR 7).
//
// A TaskServer keeps ONE resident region up for its whole lifetime
// (Scheduler::run_persistent) and multiplexes many concurrent client
// requests — each a RegionCtx-rooted task subtree — over the single pinned
// worker pool. The scheduler core stays untouched at steady state: workers
// run the server's worker loop as the resident region's implicit tasks,
// picking request roots from a bounded admission queue under a pluggable
// fairness policy and helping drain ANY request's tasks while they wait
// (request roots are untied, so no cross-request convoying through the TSC).
//
// Robustness surface, in order of the overload ladder:
//
// * Bounded admission queue with explicit backpressure: submit() NEVER
//   blocks. A full queue (or a draining/stopped server, or an injected
//   FaultSite::server_admit transient) returns rejected_overload plus a
//   retry-after hint derived from the queue depth and an EWMA of observed
//   service time — the client-visible contract of arXiv-style overload
//   control: reject early, tell the client when to come back.
// * Load shedding (ServerConfig::shed_on_overload): when the queue
//   saturates, the PENDING request closest to missing its deadline is
//   cancelled to make room — the request that would most likely burn a
//   worker for nothing — and if none is pending, the nearest-deadline LIVE
//   request is cancelled to free workers soon (the new submit is still
//   rejected; its slot does not exist yet).
// * Per-request concurrency cap (ServerConfig::max_live): at most max_live
//   requests execute concurrently; the rest wait admitted in the queue.
// * Per-request fault isolation: a body exception or injected fault cancels
//   only its own RegionCtx; sibling requests and the resident region never
//   observe it. The PR 6 ledger invariant holds per request
//   (executed + discarded == deferred, RegionHandle::ledger_balanced) on
//   top of the global per-worker one.
// * Per-request deadline + watchdog: the server's monitor thread cancels a
//   request whose deadline passes (pending or live) and reports a live
//   request whose progress counter stops moving.
// * Graceful drain (drain()): admitted requests complete, new ones are
//   rejected; stop() additionally cancels pending and live requests first.
//   An external Scheduler::cancel_current_region() is the hard stop: the
//   resident region unwinds, in-flight requests are truncated (their
//   not-yet-started tasks discarded) and finalized as cancelled, and
//   further submits are rejected.
//
// Every submitted request ends in EXACTLY ONE terminal state — completed,
// cancelled, deadline_exceeded or rejected_overload (RegionCtx::finalize is
// a CAS) — which is the conservation law bench_server_mix and the CI soak
// job assert.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/region_ctx.hpp"
#include "runtime/scheduler.hpp"

namespace bots::rt {

class DepScope;    // dependency.hpp: dependence-tracked generator scope
class TaskGraph;   // taskgraph.hpp: recorded graph replayed per request tag

/// How the server picks the next request root when a worker frees up.
enum class ServerFairness : std::uint8_t {
  fifo = 0,        ///< strict admission order
  weighted_share,  ///< stride scheduling over RequestOptions::weight
};

[[nodiscard]] inline const char* to_string(ServerFairness f) noexcept {
  switch (f) {
    case ServerFairness::fifo: return "fifo";
    case ServerFairness::weighted_share: return "weighted_share";
  }
  return "?";
}

[[nodiscard]] inline bool server_fairness_from_string(
    std::string_view s, ServerFairness& out) noexcept {
  if (s == "fifo") { out = ServerFairness::fifo; return true; }
  if (s == "weighted_share" || s == "weighted") {
    out = ServerFairness::weighted_share;
    return true;
  }
  return false;
}

/// Server knobs. Defaults mirror from_env()'s fallbacks so a
/// default-constructed config and an empty environment agree.
struct ServerConfig {
  /// Admission queue capacity (RT_SERVER_QUEUE). submit() beyond it sheds
  /// or rejects — it never blocks and never grows the queue unboundedly.
  std::uint32_t queue_capacity = 64;
  /// Max concurrently EXECUTING requests (RT_SERVER_MAX_LIVE); 0 = team
  /// size. Admitted requests over the cap wait in the queue.
  std::uint32_t max_live = 0;
  /// Root pick policy (RT_SERVER_FAIRNESS: "fifo" | "weighted_share").
  ServerFairness fairness = ServerFairness::fifo;
  /// Cancel the nearest-deadline request when the queue saturates
  /// (RT_SERVER_SHED). Off = plain rejection only.
  bool shed_on_overload = true;
  /// Deadline applied to requests that do not carry their own
  /// (RT_SERVER_DEADLINE_MS); 0 = none.
  std::uint32_t default_deadline_ms = 0;
  /// Per-request stall report window (RT_SERVER_WATCHDOG_MS); 0 = off.
  /// Reporting only — cancel policy stays with deadlines and clients.
  std::uint32_t watchdog_ms = 0;
  /// Phase-detector cadence (RT_SERVER_RETUNE_MS); 0 = off. Every window
  /// the monitor samples the scheduler's steal telemetry and hot-swaps the
  /// steal policy (Scheduler::reconfigure_live) when the workload phase
  /// changed: sustained cross-node steal churn flips to hierarchical,
  /// a settled local phase flips back to last_victim. Requires
  /// RT_LIVE_RECONF=1 (the default) to have any effect.
  std::uint32_t retune_ms = 0;

  [[nodiscard]] static ServerConfig from_env() {
    ServerConfig c;
    c.queue_capacity = env_u32("RT_SERVER_QUEUE", c.queue_capacity);
    if (c.queue_capacity == 0) c.queue_capacity = 1;
    c.max_live = env_u32("RT_SERVER_MAX_LIVE", c.max_live);
    const std::string f = env_string("RT_SERVER_FAIRNESS");
    if (!f.empty() && !server_fairness_from_string(f, c.fairness)) {
      warn_malformed_env("RT_SERVER_FAIRNESS", f.c_str());
    }
    c.shed_on_overload = env_flag("RT_SERVER_SHED", c.shed_on_overload);
    c.default_deadline_ms =
        env_u32("RT_SERVER_DEADLINE_MS", c.default_deadline_ms);
    c.watchdog_ms = env_u32("RT_SERVER_WATCHDOG_MS", c.watchdog_ms);
    c.retune_ms = env_u32("RT_SERVER_RETUNE_MS", c.retune_ms);
    return c;
  }
};

/// Client-side view of one submitted request: shared ownership of its
/// RegionCtx (safe to hold past server shutdown). This is the per-region
/// status accessor that replaces Scheduler::last_region_status() under
/// concurrent regions.
class RegionHandle {
 public:
  RegionHandle() = default;
  explicit RegionHandle(std::shared_ptr<RegionCtx> ctx)
      : ctx_(std::move(ctx)) {}

  [[nodiscard]] bool valid() const noexcept { return ctx_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept {
    return ctx_ ? ctx_->id() : 0;
  }
  /// Terminal state, or RequestStatus::pending while queued/executing.
  [[nodiscard]] RequestStatus status() const noexcept {
    return ctx_ ? ctx_->status() : RequestStatus::rejected_overload;
  }
  [[nodiscard]] bool done() const noexcept { return status() != RequestStatus::pending; }
  /// Block until terminal. Rejected handles return immediately.
  RequestStatus wait() const {
    return ctx_ ? ctx_->wait() : RequestStatus::rejected_overload;
  }
  /// Admission-to-terminal latency (0 until terminal, and for rejects).
  [[nodiscard]] std::chrono::microseconds latency() const noexcept {
    return ctx_ ? ctx_->latency() : std::chrono::microseconds{0};
  }
  /// Cooperatively cancel this request (pending: skipped at pickup; live:
  /// its not-yet-started tasks are discarded). Idempotent.
  void cancel() const noexcept {
    if (ctx_) ctx_->cancel(RegionStatus::cancelled);
  }
  /// First exception thrown by the request's body or any descendant task
  /// (null when none). Never rethrown by the server itself.
  [[nodiscard]] std::exception_ptr exception() const {
    return ctx_ ? ctx_->exception() : nullptr;
  }
  // Per-request execution ledger (valid once done()).
  [[nodiscard]] std::uint64_t tasks_deferred() const noexcept {
    return ctx_ ? ctx_->deferred() : 0;
  }
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return ctx_ ? ctx_->executed() : 0;
  }
  [[nodiscard]] std::uint64_t tasks_discarded() const noexcept {
    return ctx_ ? ctx_->discarded() : 0;
  }
  [[nodiscard]] bool ledger_balanced() const noexcept {
    return ctx_ == nullptr || ctx_->ledger_balanced();
  }

 private:
  std::shared_ptr<RegionCtx> ctx_;
};

/// Per-submit options.
struct RequestOptions {
  /// weighted_share fairness weight (>= 1; 0 is treated as 1).
  std::uint32_t weight = 1;
  /// Deadline for THIS request in ms from submission; 0 = the server's
  /// default_deadline_ms (which may itself be "none").
  std::uint32_t deadline_ms = 0;
};

/// What submit() tells the client. The handle is always valid — a rejected
/// request's handle is already terminal (rejected_overload).
struct SubmitResult {
  RegionHandle handle;
  bool admitted = false;
  /// Backpressure hint on rejection: when to retry. Zero means "do not
  /// retry" (the server is draining or stopped).
  std::chrono::milliseconds retry_after{0};
};

/// Aggregate server counters (monotone over the server's lifetime).
struct ServerStats {
  std::uint64_t submitted = 0;          ///< submit() calls
  std::uint64_t admitted = 0;           ///< entered the queue
  std::uint64_t rejected = 0;           ///< rejected_overload at submit
  std::uint64_t shed = 0;               ///< cancelled by the load shedder
  std::uint64_t completed = 0;          ///< terminal: completed
  std::uint64_t cancelled = 0;          ///< terminal: cancelled (incl. shed)
  std::uint64_t deadline_exceeded = 0;  ///< terminal: deadline_exceeded
  std::uint64_t retunes = 0;            ///< live policy swaps (manual + detector)
};

class TaskServer {
 public:
  /// Brings the resident region up immediately (a dedicated server thread
  /// becomes worker 0 of Scheduler::run_persistent). One TaskServer per
  /// Scheduler at a time, and no run_single/run_all while it is running —
  /// the scheduler hosts one region at a time by construction.
  explicit TaskServer(Scheduler& sched,
                      ServerConfig cfg = ServerConfig::from_env());
  ~TaskServer();  ///< stop() if still running

  TaskServer(const TaskServer&) = delete;
  TaskServer& operator=(const TaskServer&) = delete;

  /// Non-blocking admission. See SubmitResult; every returned handle —
  /// admitted or rejected — reaches exactly one terminal state.
  SubmitResult submit(std::function<void()> body, RequestOptions opts = {});

  /// Dependence-tracked admission with per-tag taskgraph caching (PR 8):
  /// `build` constructs the request's DAG under a DepScope. The FIRST
  /// request of a tag records the graph; repeated requests of the same
  /// shape (same tag + same `key` buffer binding) replay it — the request's
  /// discovery cost is paid once across the server's lifetime. One
  /// record/replay per tag runs at a time: a same-tag request arriving
  /// while the graph is busy falls back to plain dynamic dependence
  /// tracking (same result, un-cached cost), so correctness never depends
  /// on request spacing. Admission, fairness, deadlines, cancellation and
  /// the ledger behave exactly as for submit().
  SubmitResult submit_graph(const std::string& tag,
                            std::function<void(DepScope&)> build,
                            const void* key, RequestOptions opts = {});

  /// Graceful shutdown: stop admitting, complete every admitted request,
  /// then take the resident region down. Idempotent; blocks until done.
  void drain();

  /// Hard-ish shutdown: reject new submits, finalize still-pending requests
  /// as cancelled, cooperatively cancel live ones, then drain. Running
  /// bodies finish their current grain/body (cooperative cancellation, as
  /// everywhere in this runtime). Idempotent; blocks until done.
  void stop();

  /// Hot-swap the scheduler's steal policy UNDER the resident region
  /// (Scheduler::reconfigure_live — epoch/RCU swap, no drain, no stop).
  /// In-flight requests keep running; workers adopt the new policy at
  /// their next find_work round or range-chunk boundary. Returns false
  /// when live reconfiguration is disabled (RT_LIVE_RECONF=0). This is
  /// the manual hook behind the RT_SERVER_RETUNE_MS phase detector.
  bool retune(StealPolicyKind kind);

  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }

 private:
  struct PendingReq {
    std::shared_ptr<RegionCtx> ctx;
    std::function<void()> body;
    std::uint64_t pass = 0;  ///< stride-scheduling virtual time (weighted_share)
  };

  void server_main();
  void worker_loop(unsigned id);
  void run_request(PendingReq req);
  void monitor_main(const std::stop_token& st);
  /// Pop the next runnable request per the fairness policy. Caller holds mu_.
  [[nodiscard]] bool pick_next_locked(PendingReq& out);
  /// Cancel the nearest-deadline pending request (freeing its queue slot) or,
  /// failing that, the nearest-deadline live one. Caller holds mu_. Returns
  /// whether a queue slot was freed.
  bool shed_one_locked();
  void tally_terminal_locked(RequestStatus s) noexcept;
  [[nodiscard]] std::chrono::milliseconds retry_hint_locked() const noexcept;
  void join_server();

  /// One cached graph per submit_graph tag. `busy` single-flights record
  /// and replay (a TaskGraph supports one dispatch at a time); entries are
  /// pointer-stable for the server's lifetime, so request bodies may hold
  /// plain references across the queue.
  struct GraphEntry {
    std::unique_ptr<TaskGraph> graph;
    std::atomic<bool> busy{false};
  };
  [[nodiscard]] GraphEntry& graph_entry(const std::string& tag);

  Scheduler& sched_;
  ServerConfig cfg_;
  unsigned max_live_ = 1;
  std::function<void(unsigned)> loop_fn_;

  mutable std::mutex mu_;
  std::deque<PendingReq> queue_;                    // guarded by mu_
  std::vector<std::shared_ptr<RegionCtx>> live_;    // guarded by mu_
  bool accepting_ = false;                          // guarded by mu_
  bool draining_ = false;                           // guarded by mu_
  bool region_up_ = false;                          // guarded by mu_
  std::uint64_t next_id_ = 0;                       // guarded by mu_
  std::uint64_t global_pass_ = 0;                   // guarded by mu_
  std::uint64_t ewma_service_us_ = 0;               // guarded by mu_
  ServerStats stats_;                               // guarded by mu_
  std::unordered_map<std::string, std::unique_ptr<GraphEntry>>
      graphs_;                                      // guarded by mu_

  /// Set by the first worker-loop iteration: the resident region is
  /// genuinely up (published to the scheduler, reconfigure() guarded). The
  /// constructor blocks on it so callers never observe a half-started server.
  std::atomic<bool> region_live_{false};

  bool joined_ = false;  ///< server thread reaped (guarded by join_mu_)
  std::mutex join_mu_;
  std::thread server_thread_;
  std::jthread monitor_;
};

}  // namespace bots::rt
