#include "runtime/steal_policy.hpp"

#include <algorithm>

#include "runtime/scheduler.hpp"

namespace bots::rt {

namespace {

/// Rotation start for the base victim order of `w` over `n` workers.
[[nodiscard]] unsigned rotation_start(Worker& w, VictimPolicy base,
                                      unsigned n) noexcept {
  return base == VictimPolicy::random
             ? static_cast<unsigned>(w.rng_next() % n)
             : (w.id + 1) % n;
}

/// random / sequential: a plain rotation, no memory between rounds.
class RotationPolicy final : public StealPolicy {
 public:
  RotationPolicy(const Topology& topo, VictimPolicy base) noexcept
      : StealPolicy(topo), base_(base) {}

  [[nodiscard]] const char* name() const noexcept override {
    return base_ == VictimPolicy::random ? "random" : "sequential";
  }

  unsigned victim_order(Worker& w, unsigned* order) override {
    const unsigned n = topo_.num_workers();
    const unsigned start = rotation_start(w, base_, n);
    unsigned cnt = 0;
    for (unsigned k = 0; k < n; ++k) {
      const unsigned v = (start + k) % n;
      if (v != w.id) order[cnt++] = v;
    }
    return cnt;
  }

 private:
  VictimPolicy base_;
};

/// last_victim: the remembered last successful victim first (steals come
/// in bursts from the same loaded worker), then the base rotation.
class LastVictimPolicy : public StealPolicy {
 public:
  LastVictimPolicy(const Topology& topo, VictimPolicy base) noexcept
      : StealPolicy(topo), base_(base) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "last_victim";
  }

  unsigned victim_order(Worker& w, unsigned* order) override {
    const unsigned n = topo_.num_workers();
    const unsigned hint = w.last_victim;
    unsigned cnt = 0;
    if (hint < n && hint != w.id) order[cnt++] = hint;
    const unsigned start = rotation_start(w, base_, n);
    for (unsigned k = 0; k < n; ++k) {
      const unsigned v = (start + k) % n;
      if (v != w.id && v != hint) order[cnt++] = v;
    }
    return cnt;
  }

  void raided(Worker& w, unsigned v, bool success) noexcept override {
    if (success) {
      w.last_victim = v;
    } else if (w.last_victim == v) {
      w.last_victim = Worker::no_victim;  // the burst is over
    }
  }

 private:
  VictimPolicy base_;
};

/// hierarchical: same-node victims (affinity hint kept while on-node)
/// before any cross-node probe; cross-node raids carry smaller batches and
/// remote nodes whose has-work hint is clear are skipped entirely (with a
/// periodic unconditional round so a stale hint cannot starve anyone).
class HierarchicalPolicy final : public LastVictimPolicy {
 public:
  /// Cross-node steal-half raids take base / this (>= 1) tasks: a raid
  /// over the interconnect drags every stolen task's working set across
  /// it, so a miss there should cost less speculation than a local one.
  static constexpr std::size_t cross_node_batch_scale = 4;

  /// After this many consecutive hint-gated planning rounds the next round
  /// is unconditional (every remote node probed, hints ignored). This is
  /// the liveness bound for a stale clear hint: work sitting on a node the
  /// hints call idle is reached by remote thieves within at most this many
  /// rounds — and the node's own workers never consult hints for their
  /// home node at all.
  static constexpr std::uint32_t hint_backoff_rounds = 16;

  HierarchicalPolicy(const Topology& topo, VictimPolicy base,
                     NodeHints* hints) noexcept
      : LastVictimPolicy(topo, base), hints_(hints) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "hierarchical";
  }

  unsigned victim_order(Worker& w, unsigned* order) override {
    const unsigned nodes = topo_.num_nodes();
    if (nodes <= 1) {
      // Single locality domain: exactly last_victim (the documented
      // degeneration — no interconnect to respect).
      return LastVictimPolicy::victim_order(w, order);
    }
    const unsigned n = topo_.num_workers();
    const unsigned home = topo_.node_of(w.id);
    unsigned cnt = 0;
    // Tier 1: the affinity hint, but only while it stays on-node — a
    // cross-node burst is re-earned every round against local victims.
    const unsigned hint = w.last_victim;
    const bool hint_local =
        hint < n && hint != w.id && topo_.node_of(hint) == home;
    if (hint_local) order[cnt++] = hint;
    // Tier 2: the rest of the home node, rotated so contention spreads.
    append_node(w, home, hint_local ? hint : Worker::no_victim, order, cnt);
    // Tier 3: remote nodes, nearest-numbered first, workers rotated
    // within each. Only reached when the whole home node came up empty —
    // and, with hints, only for nodes that advertise work, except on the
    // periodic unconditional round that bounds the cost of a stale hint.
    const bool gate =
        hints_ != nullptr && w.gated_rounds < hint_backoff_rounds;
    if (!gate) w.gated_rounds = 0;
    bool skipped = false;
    for (unsigned dn = 1; dn < nodes; ++dn) {
      const unsigned node = (home + dn) % nodes;
      if (gate && !hints_->has_work(node)) {
        const std::uint64_t saved = topo_.workers_on(node).size();
        w.stats.remote_probes_skipped += saved;
        w.tele_probes_skipped.fetch_add(saved, std::memory_order_relaxed);
        skipped = true;
        continue;
      }
      append_node(w, node, Worker::no_victim, order, cnt);
    }
    if (skipped) ++w.gated_rounds;
    return cnt;
  }

  void raided(Worker& w, unsigned v, bool success) noexcept override {
    if (success) w.gated_rounds = 0;  // fed again: restart the hint gate
    LastVictimPolicy::raided(w, v, success);
  }

  unsigned place_range_half(Worker& w) noexcept override {
    // Redirect only on the exact signal pair the hints already maintain:
    // home advertises surplus (a local thief has nearer work than this
    // half) AND some remote node is provably hungry (word clear: every
    // enqueue there would have set it). Without hints — or with every
    // remote node fed — the half stays local, the PR-3 behaviour.
    const unsigned nodes = topo_.num_nodes();
    if (hints_ == nullptr || nodes <= 1) return no_node;
    const unsigned home = topo_.node_of(w.id);
    if (!hints_->has_work(home)) return no_node;  // no local surplus
    for (unsigned dn = 1; dn < nodes; ++dn) {
      const unsigned node = (home + dn) % nodes;
      if (!topo_.has_workers(node)) continue;  // nobody to drain a mailbox
      if (!hints_->has_work(node)) return node;
    }
    return no_node;
  }

  [[nodiscard]] std::size_t batch_cap(
      const Worker& w, unsigned v, std::size_t base) const noexcept override {
    if (topo_.same_node(w.id, v)) return base;
    return std::max<std::size_t>(1, base / cross_node_batch_scale);
  }

 private:
  void append_node(Worker& w, unsigned node, unsigned skip, unsigned* order,
                   unsigned& cnt) const {
    const std::vector<unsigned>& members = topo_.workers_on(node);
    if (members.empty()) return;
    const std::size_t size = members.size();
    const std::size_t start = static_cast<std::size_t>(w.rng_next() % size);
    for (std::size_t k = 0; k < size; ++k) {
      const unsigned v = members[(start + k) % size];
      if (v != w.id && v != skip) order[cnt++] = v;
    }
  }

  NodeHints* hints_;  ///< null when cfg.use_node_work_hints is off
};

}  // namespace

std::unique_ptr<StealPolicy> make_steal_policy(const SchedulerConfig& cfg,
                                               const Topology& topo,
                                               NodeHints* hints) {
  switch (cfg.resolved_steal_policy()) {
    case StealPolicyKind::random:
      return std::make_unique<RotationPolicy>(topo, VictimPolicy::random);
    case StealPolicyKind::sequential:
      return std::make_unique<RotationPolicy>(topo, VictimPolicy::sequential);
    case StealPolicyKind::last_victim:
    case StealPolicyKind::legacy:  // resolved_steal_policy never returns this
      return std::make_unique<LastVictimPolicy>(topo, cfg.victim);
    case StealPolicyKind::hierarchical:
      return std::make_unique<HierarchicalPolicy>(topo, cfg.victim, hints);
  }
  return std::make_unique<LastVictimPolicy>(topo, cfg.victim);
}

}  // namespace bots::rt
