// Chase-Lev work-stealing deque (growable), after:
//   D. Chase and Y. Lev, "Dynamic circular work-stealing deque", SPAA 2005,
// with the C11 memory orderings of:
//   N. M. Le, A. Pop, A. Cohen, F. Zappa Nardelli, "Correct and efficient
//   work-stealing for weak memory models", PPoPP 2013.
//
// The owner pushes and pops at the bottom; thieves steal from the top.
// steal() may fail spuriously when it loses the top CAS race; callers treat
// that as "no work right now" and retry through their outer loop.
//
// steal_batch() grabs up to half of the victim's tasks in one synchronized
// raid. Each task is still claimed by its own CAS on `top` — a single CAS
// covering the whole range is unsound on a Chase-Lev deque, because the
// owner's pop fast path takes bottom-end items *without* synchronizing on
// `top` and can walk into a range a thief reserved wholesale (duplicating
// tasks). The batch still costs roughly one cross-core coherence transfer:
// after the first successful CAS the `top` cacheline stays exclusive in the
// thief's cache, so the follow-up CASes are core-local until the owner or
// another thief intervenes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/config.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-published relaxed buffer slots of the PPoPP'13 orderings read as
// data races under it (a known false positive of fence-based Chase-Lev).
// Under TSAN each slot is published with per-slot release/acquire instead —
// stronger than the hardware needs, but it restores the happens-before
// edges the sanitizer can see, so every OTHER ordering in the runtime
// (descriptor contents, finish/release chains, parking) is verified for
// real instead of being buried in this noise.
#if defined(__SANITIZE_THREAD__)
#define BOTS_DEQUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BOTS_DEQUE_TSAN 1
#endif
#endif
#ifndef BOTS_DEQUE_TSAN
#define BOTS_DEQUE_TSAN 0
#endif

namespace bots::rt {

class Task;

class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 1024)
      : array_(new RingArray(round_up_pow2(initial_capacity))) {
    retired_.emplace_back(array_.load(std::memory_order_relaxed));
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() = default;  // retired_ owns every array ever published

  /// Owner-only: push one task at the bottom. Grows when full.
  void push(Task* t) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t top = top_.load(std::memory_order_acquire);
    RingArray* a = array_.load(std::memory_order_relaxed);
    if (b - top > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, b, top);
    }
    a->put(b, t);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop the newest task (LIFO end). Returns nullptr when empty.
  Task* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    RingArray* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t top = top_.load(std::memory_order_relaxed);
    Task* item = nullptr;
    if (top <= b) {
      item = a->get(b);
      if (top == b) {
        // Single element left: race against thieves for it.
        if (!top_.compare_exchange_strong(top, top + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest task (FIFO end). Returns nullptr when the
  /// deque looks empty or the CAS race is lost.
  Task* steal() {
    std::int64_t top = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (top >= b) return nullptr;
    RingArray* a = array_.load(std::memory_order_acquire);
    Task* item = a->get(top);
    if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Any thread: steal up to `max_n` tasks from the top, bounded by half of
  /// the victim's observed queue (rounded up, so a 1-element deque is still
  /// stealable). Returns the number of tasks written to `out`, oldest first.
  /// Returns 0 when the deque looks empty or the first CAS race is lost;
  /// stops early (keeping what it already claimed) on any later race loss.
  std::size_t steal_batch(Task** out, std::size_t max_n) {
    std::size_t got = 0;
    std::size_t limit = max_n;
    while (got < limit) {
      std::int64_t top = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      const std::int64_t avail = b - top;
      if (avail <= 0) break;
      if (got == 0) {
        // Take at most half of what is there right now; leave the rest to
        // the owner and other thieves.
        const auto half = static_cast<std::size_t>((avail + 1) / 2);
        limit = half < max_n ? half : max_n;
      }
      RingArray* a = array_.load(std::memory_order_acquire);
      Task* item = a->get(top);
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        break;  // contended: settle for what we have
      }
      out[got++] = item;
    }
    return got;
  }

  /// Approximate size; exact only when quiescent.
  [[nodiscard]] std::int64_t size_estimate() const noexcept {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  [[nodiscard]] bool empty_estimate() const noexcept {
    return size_estimate() == 0;
  }

 private:
  struct RingArray {
    explicit RingArray(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}

    static constexpr std::memory_order slot_load =
        BOTS_DEQUE_TSAN ? std::memory_order_acquire : std::memory_order_relaxed;
    static constexpr std::memory_order slot_store =
        BOTS_DEQUE_TSAN ? std::memory_order_release : std::memory_order_relaxed;

    [[nodiscard]] Task* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(slot_load);
    }
    void put(std::int64_t i, Task* t) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(t, slot_store);
    }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 16;
    while (p < v) p <<= 1;
    return p;
  }

  RingArray* grow(RingArray* old, std::int64_t b, std::int64_t top) {
    auto bigger = std::make_unique<RingArray>(old->capacity * 2);
    for (std::int64_t i = top; i < b; ++i) bigger->put(i, old->get(i));
    RingArray* raw = bigger.get();
    retired_.push_back(std::move(bigger));
    // Thieves may still be reading `old`; it stays alive in retired_ until
    // the deque itself is destroyed (memory is bounded: capacities double).
    array_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(cache_line_bytes) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_bytes) std::atomic<std::int64_t> bottom_{0};
  alignas(cache_line_bytes) std::atomic<RingArray*> array_;
  std::vector<std::unique_ptr<RingArray>> retired_;
};

}  // namespace bots::rt
