// Deterministic fault injection for the runtime.
//
// A FaultPlan is a seeded, per-site probabilistic failure schedule parsed
// from a compact string (env var RT_FAULT_PLAN or SchedulerConfig::
// fault_plan).  Grammar, comma-separated, order-insensitive:
//
//   seed=N          64-bit decimal seed (default 1)
//   all=P           probability in [0,1] applied to every site
//   <site>=P        per-site override; sites: descriptor_alloc, arena_carve,
//                   thread_spawn, pin, mailbox_push, task_body, server_admit
//
// e.g. RT_FAULT_PLAN="seed=7,all=0.02,thread_spawn=0"
//
// Decisions are a pure function of (seed, site, per-site draw index), so a
// given plan replays identically across runs regardless of thread
// interleaving *per site*: the i-th draw at a site always returns the same
// verdict.  Malformed entries are skipped with one stderr warning; a plan
// string that yields no valid entry leaves the plan inactive.
//
// Injected task-body faults throw FaultInjected, which the scheduler
// catches and retries (OMPC-style task re-execution) — it is never surfaced
// to user code and never triggers cancel_on_exception.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <string_view>

namespace bots::rt {

enum class FaultSite : int {
  descriptor_alloc = 0,  // TaskPool / NodeArena descriptor hand-out
  arena_carve,           // NodeArena chunk carve (simulated bad_alloc)
  thread_spawn,          // worker std::jthread construction
  pin,                   // worker CPU pinning
  mailbox_push,          // hint-directed RangeMailbox push
  task_body,             // transient throw before a deferred body runs
  server_admit,          // TaskServer::submit admission (transient reject)
  count_,
};

inline constexpr int fault_site_count = static_cast<int>(FaultSite::count_);

[[nodiscard]] inline const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::descriptor_alloc: return "descriptor_alloc";
    case FaultSite::arena_carve: return "arena_carve";
    case FaultSite::thread_spawn: return "thread_spawn";
    case FaultSite::pin: return "pin";
    case FaultSite::mailbox_push: return "mailbox_push";
    case FaultSite::task_body: return "task_body";
    case FaultSite::server_admit: return "server_admit";
    case FaultSite::count_: break;
  }
  return "?";
}

// Thrown (and always caught inside the runtime) for task_body injections.
struct FaultInjected : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "rt: injected transient task fault";
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Re-initialises this plan from `spec` (counters and verdict history
  // reset); an empty string leaves the plan inactive.  Malformed entries
  // warn on stderr and are otherwise ignored.
  void parse(std::string_view spec) {
    seed_ = 1;
    for (int i = 0; i < fault_site_count; ++i) {
      threshold_[i] = 0;
      counter_[i].store(0, std::memory_order_relaxed);
      injected_[i].store(0, std::memory_order_relaxed);
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string_view::npos) comma = spec.size();
      std::string_view entry = spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (entry.empty()) continue;
      if (!apply_entry(entry)) {
        std::fprintf(stderr,
                     "rt: warning: ignoring malformed fault-plan entry '%.*s'\n",
                     static_cast<int>(entry.size()), entry.data());
      }
    }
  }

  // True if any site has a non-zero probability.
  [[nodiscard]] bool active() const {
    for (const auto& t : threshold_)
      if (t != 0) return true;
    return false;
  }

  [[nodiscard]] bool site_active(FaultSite s) const {
    return threshold_[index(s)] != 0;
  }

  // Deterministic verdict for the next draw at `site`.  Thread-safe; the
  // i-th draw at a site is a pure function of (seed, site, i).
  [[nodiscard]] bool should_fail(FaultSite s) {
    const int i = index(s);
    if (threshold_[i] == 0) return false;
    const std::uint64_t draw =
        counter_[i].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h =
        mix(seed_ ^ (static_cast<std::uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL)
                  ^ draw);
    if (h >= threshold_[i]) return false;
    injected_[i].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::uint64_t injected(FaultSite s) const {
    return injected_[index(s)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_injected() const {
    std::uint64_t n = 0;
    for (const auto& c : injected_) n += c.load(std::memory_order_relaxed);
    return n;
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Human-readable one-liner, e.g. "seed=7 task_body=0.02".
  [[nodiscard]] std::string describe() const {
    std::string out = "seed=" + std::to_string(seed_);
    for (int i = 0; i < fault_site_count; ++i) {
      if (threshold_[i] == 0) continue;
      char buf[64];
      std::snprintf(buf, sizeof buf, " %s=%g",
                    to_string(static_cast<FaultSite>(i)),
                    static_cast<double>(threshold_[i]) / two64());
      out += buf;
    }
    return out;
  }

 private:
  static constexpr int index(FaultSite s) { return static_cast<int>(s); }

  static constexpr double two64() { return 18446744073709551616.0; }

  // splitmix64 finalizer: decorrelates (seed, site, draw) into a uniform
  // 64-bit hash without any shared RNG state.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] static bool parse_u64(std::string_view s, std::uint64_t& out) {
    if (s.empty() || s.size() > 20) return false;
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
  }

  [[nodiscard]] static bool parse_prob(std::string_view s, std::uint64_t& out) {
    // Accepts a decimal in [0,1] like "0.02", "1", ".5".  No exponents.
    if (s.empty() || s.size() > 32) return false;
    double v = 0.0, scale = 1.0;
    std::size_t i = 0;
    for (; i < s.size() && s[i] != '.'; ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      v = v * 10.0 + (s[i] - '0');
    }
    if (i < s.size()) {  // fractional part
      for (++i; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9') return false;
        scale *= 0.1;
        v += (s[i] - '0') * scale;
      }
    }
    if (v < 0.0 || v > 1.0) return false;
    out = v >= 1.0 ? ~0ULL
                   : static_cast<std::uint64_t>(v * two64());
    return true;
  }

  [[nodiscard]] bool apply_entry(std::string_view entry) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    const std::string_view key = entry.substr(0, eq);
    const std::string_view val = entry.substr(eq + 1);
    if (key == "seed") return parse_u64(val, seed_);
    std::uint64_t thr = 0;
    if (!parse_prob(val, thr)) return false;
    if (key == "all") {
      for (auto& t : threshold_) t = thr;
      return true;
    }
    for (int i = 0; i < fault_site_count; ++i) {
      if (key == to_string(static_cast<FaultSite>(i))) {
        threshold_[i] = thr;
        return true;
      }
    }
    return false;
  }

  std::uint64_t seed_ = 1;
  std::array<std::uint64_t, fault_site_count> threshold_{};
  std::array<std::atomic<std::uint64_t>, fault_site_count> counter_{};
  std::array<std::atomic<std::uint64_t>, fault_site_count> injected_{};
};

}  // namespace bots::rt
