// Per-worker scheduler statistics.
//
// Counters are single-writer (only the owning worker increments them), so
// they are plain integers padded to a cache line to avoid false sharing.
// Snapshots should be taken between parallel regions.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/config.hpp"

namespace bots::rt {

struct alignas(cache_line_bytes) WorkerStats {
  std::uint64_t tasks_created = 0;        ///< spawn / spawn_if calls seen
  std::uint64_t tasks_deferred = 0;       ///< enqueued onto a deque
  std::uint64_t tasks_if_inlined = 0;     ///< spawn_if with a false condition
  std::uint64_t tasks_cutoff_inlined = 0; ///< inlined by the runtime cut-off
  std::uint64_t tasks_inlined_fast = 0;   ///< undeferred on the zero-alloc path (no descriptor)
  std::uint64_t range_tasks = 0;          ///< spawn_range calls (one descriptor per range)
  std::uint64_t range_splits = 0;         ///< range halves split off for hungry thieves
  std::uint64_t range_halves_redirected = 0; ///< split halves mailed to an idle remote node (use_hint_placement)
  std::uint64_t tasks_executed = 0;       ///< deferred tasks run by this worker
  std::uint64_t tasks_stolen = 0;         ///< deferred tasks taken from another worker
  std::uint64_t steal_attempts = 0;       ///< deque.steal()/steal_batch() calls on victims
  std::uint64_t steal_batches = 0;        ///< successful steal_batch() raids
  std::uint64_t steals_local_node = 0;    ///< successful raids on a same-node victim
  std::uint64_t steals_remote_node = 0;   ///< successful raids across the interconnect
  std::uint64_t remote_probes_skipped = 0; ///< remote victims not probed: node's has-work hint was clear
  std::uint64_t pinned = 0;               ///< 1 when this worker is pinned to its node's cpuset (verified placement)
  std::uint64_t taskwaits = 0;
  std::uint64_t tsc_parked = 0;           ///< claims parked by the Task Scheduling Constraint
  std::uint64_t parked_claimed = 0;       ///< parked tasks this worker claimed back
  std::uint64_t acct_flushes = 0;         ///< batched live-task delta flushes
  std::uint64_t env_bytes = 0;            ///< captured-environment bytes (Table II)
  std::uint64_t pool_reuse = 0;           ///< descriptor allocations served by the freelist
  std::uint64_t pool_fresh = 0;           ///< descriptor allocations that hit the chunk allocator
  /// Descriptor frees that retired to the BIRTH node (the node whose arena
  /// chunk the memory was carved and first-touched on) — directly into this
  /// worker's home cache, or batched home through an outbound stash.
  std::uint64_t pool_home_frees = 0;
  /// Descriptor frees that landed in a pool on a node OTHER than the birth
  /// node — the cross-socket memory drift node pools exist to remove. With
  /// use_node_pools on this is zero by construction (the CI locality
  /// tripwire enforces it); with the knob off it counts every descriptor a
  /// cross-node thief recycled into its own freelist.
  std::uint64_t pool_remote_frees = 0;
  /// High-water mark of descriptors simultaneously parked in this worker's
  /// outbound stashes (retired remotely, awaiting the batched flight back
  /// to their birth node's arena). Aggregated by MAX, not sum: the snapshot
  /// total reports the worst single-worker in-transit backlog.
  std::uint64_t pool_migrations = 0;

  // -- fault-tolerance counters (PR 6) --------------------------------------

  /// Deferred tasks retired WITHOUT executing their body because the region
  /// was cancelled before they were dispatched. Under cancellation the
  /// executed-side invariant becomes
  /// `tasks_executed + tasks_discarded == tasks_deferred`.
  std::uint64_t tasks_discarded = 0;
  /// Undeferred/inline dispatches skipped because the region was already
  /// cancelled (no descriptor was retired; the closure simply never ran).
  std::uint64_t tasks_discarded_inline = 0;
  /// Descriptor allocations that fell back to a plain per-descriptor heap
  /// allocation because the pool/arena rung failed (real or injected
  /// bad_alloc).
  std::uint64_t pool_alloc_fallbacks = 0;
  /// Spawns degraded to serial inline execution because no descriptor could
  /// be obtained at all (both pool and heap rungs failed). Also counted in
  /// tasks_cutoff_inlined so the creation-side invariant
  /// `created + range_splits == deferred + if_inlined + cutoff_inlined`
  /// is undisturbed.
  std::uint64_t tasks_degraded_inline = 0;
  /// Faults this worker observed from the active FaultPlan (all sites).
  std::uint64_t faults_injected = 0;
  /// Deferred bodies re-executed after an injected transient task_body
  /// fault (OMPC-style task re-execution: the body still runs exactly once).
  std::uint64_t tasks_retried = 0;

  // -- server-mode counters (PR 7) ------------------------------------------

  /// Request root frames this worker ran (Scheduler::run_ctx_root calls by
  /// the TaskServer worker loop) — includes requests whose body was skipped
  /// because their context was already cancelled at pickup.
  std::uint64_t server_requests = 0;

  // -- dependency/taskgraph counters (PR 8) ---------------------------------

  /// depend() clauses declared at spawn_dep sites (one per in/out/inout
  /// entry, whether or not it produced an edge).
  std::uint64_t deps_declared = 0;
  /// Dependence edges created by the dynamic tracker at spawn (one pending
  /// increment each). Conservation: every created edge is resolved exactly
  /// once, so after quiescence
  /// `edges_resolved == deps_edges + Σ(replays × graph edge count)`.
  std::uint64_t deps_edges = 0;
  /// Dependence edges resolved at predecessor finish (counted by the worker
  /// that retired the predecessor — dynamic and replayed edges both).
  std::uint64_t edges_resolved = 0;
  /// Graph regions recorded + frozen by this worker (first invocation, or a
  /// re-record after invalidation by reconfigure()/team shrink).
  std::uint64_t graphs_recorded = 0;
  /// Frozen graphs replayed by this worker (each replay dispatches every
  /// node of the graph exactly once).
  std::uint64_t graphs_replayed = 0;

  WorkerStats& operator+=(const WorkerStats& o) noexcept {
    tasks_created += o.tasks_created;
    tasks_deferred += o.tasks_deferred;
    tasks_if_inlined += o.tasks_if_inlined;
    tasks_cutoff_inlined += o.tasks_cutoff_inlined;
    tasks_inlined_fast += o.tasks_inlined_fast;
    range_tasks += o.range_tasks;
    range_splits += o.range_splits;
    range_halves_redirected += o.range_halves_redirected;
    tasks_executed += o.tasks_executed;
    tasks_stolen += o.tasks_stolen;
    steal_attempts += o.steal_attempts;
    steal_batches += o.steal_batches;
    steals_local_node += o.steals_local_node;
    steals_remote_node += o.steals_remote_node;
    remote_probes_skipped += o.remote_probes_skipped;
    pinned += o.pinned;
    taskwaits += o.taskwaits;
    tsc_parked += o.tsc_parked;
    parked_claimed += o.parked_claimed;
    acct_flushes += o.acct_flushes;
    env_bytes += o.env_bytes;
    pool_reuse += o.pool_reuse;
    pool_fresh += o.pool_fresh;
    pool_home_frees += o.pool_home_frees;
    pool_remote_frees += o.pool_remote_frees;
    tasks_discarded += o.tasks_discarded;
    tasks_discarded_inline += o.tasks_discarded_inline;
    pool_alloc_fallbacks += o.pool_alloc_fallbacks;
    tasks_degraded_inline += o.tasks_degraded_inline;
    faults_injected += o.faults_injected;
    tasks_retried += o.tasks_retried;
    server_requests += o.server_requests;
    deps_declared += o.deps_declared;
    deps_edges += o.deps_edges;
    edges_resolved += o.edges_resolved;
    graphs_recorded += o.graphs_recorded;
    graphs_replayed += o.graphs_replayed;
    // High-water mark, not a flow: the aggregate is the worst per-worker
    // in-transit backlog, which is what bounds stash memory.
    pool_migrations = pool_migrations > o.pool_migrations ? pool_migrations
                                                          : o.pool_migrations;
    return *this;
  }
};

struct StatsSnapshot {
  WorkerStats total;
  std::vector<WorkerStats> per_worker;
};

}  // namespace bots::rt
