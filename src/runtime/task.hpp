// Task descriptor and per-worker descriptor pool.
//
// A Task owns a type-erased closure (the "captured environment" in BOTS
// terminology; `firstprivate` data in OpenMP terms). Environments up to
// Task::inline_env_capacity bytes live inside the descriptor itself —
// Table II of the paper shows almost every BOTS benchmark captures under
// 45 bytes per task, which is exactly why the paper suggests pre-allocated
// descriptor areas; larger environments (Floorplan captures ~5 KB) fall
// back to the heap.
//
// Lifetime: refs_ = 1 (the task itself, released when its body finishes)
// + 1 per live child. A task descriptor must outlive its children because
// children decrement the parent's unfinished-children counter at completion
// and the Task Scheduling Constraint walks parent chains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "runtime/config.hpp"

namespace bots::rt {

class Worker;

/// Where a task descriptor's storage came from, which decides how it is
/// released when the last reference drops.
enum class TaskStorage : std::uint8_t {
  stack_frame,  ///< implicit/root task living on a worker's stack; never freed
  pooled,       ///< from a per-worker TaskPool; recycled to the releasing worker
  heap          ///< plain new/delete (use_task_pool = false)
};

class Task {
 public:
  static constexpr std::size_t inline_env_capacity = 128;

  using InvokeFn = void (*)(Task&);
  using EnvDtorFn = void (*)(Task&) noexcept;

  Task() = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Move-construct the closure into the descriptor.
  template <class F>
  void init_env(F&& f) {
    using Fn = std::decay_t<F>;
    env_bytes_ = static_cast<std::uint32_t>(sizeof(Fn));
    if constexpr (sizeof(Fn) <= inline_env_capacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      env_ = ::new (static_cast<void*>(inline_env_)) Fn(std::forward<F>(f));
      heap_env_ = false;
    } else {
      env_ = new Fn(std::forward<F>(f));
      heap_env_ = true;
    }
    invoke_ = [](Task& t) { (*static_cast<Fn*>(t.env_))(); };
    env_dtor_ = [](Task& t) noexcept {
      if (t.heap_env_) {
        delete static_cast<Fn*>(t.env_);
      } else {
        static_cast<Fn*>(t.env_)->~Fn();
      }
      t.env_ = nullptr;
    };
  }

  void invoke() { invoke_(*this); }

  void destroy_env() noexcept {
    if (env_ != nullptr) env_dtor_(*this);
  }

  // -- intrusive state ------------------------------------------------------
  Task* parent() const noexcept { return parent_; }
  std::uint32_t depth() const noexcept { return depth_; }
  Tiedness tiedness() const noexcept { return tied_; }
  std::uint32_t env_bytes() const noexcept { return env_bytes_; }
  TaskStorage storage() const noexcept { return storage_; }

  void set_links(Task* parent, std::uint32_t depth, Tiedness t,
                 TaskStorage storage) noexcept {
    parent_ = parent;
    depth_ = depth;
    tied_ = t;
    storage_ = storage;
  }

  void add_child_ref() noexcept {
    refs_.fetch_add(1, std::memory_order_relaxed);
    unfinished_children_.fetch_add(1, std::memory_order_relaxed);
  }

  void child_completed() noexcept {
    unfinished_children_.fetch_sub(1, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::uint32_t unfinished_children() const noexcept {
    return unfinished_children_.load(std::memory_order_acquire);
  }

  /// Drops one reference; returns true when this was the last one and the
  /// caller must recycle the descriptor (and then drop the parent's ref).
  [[nodiscard]] bool release_ref() noexcept {
    return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  void reset_for_reuse() noexcept {
    invoke_ = nullptr;
    env_dtor_ = nullptr;
    env_ = nullptr;
    parent_ = nullptr;
    unfinished_children_.store(0, std::memory_order_relaxed);
    refs_.store(1, std::memory_order_relaxed);
    depth_ = 0;
    env_bytes_ = 0;
    tied_ = Tiedness::tied;
    storage_ = TaskStorage::pooled;
    heap_env_ = false;
  }

  /// True when `ancestor` appears on this task's parent chain.
  [[nodiscard]] bool is_descendant_of(const Task& ancestor) const noexcept {
    const Task* node = this;
    while (node != nullptr && node->depth_ > ancestor.depth_) {
      node = node->parent_;
    }
    return node == &ancestor;
  }

  Task* pool_next = nullptr;  ///< freelist link while recycled

 private:
  InvokeFn invoke_ = nullptr;
  EnvDtorFn env_dtor_ = nullptr;
  void* env_ = nullptr;
  Task* parent_ = nullptr;
  std::atomic<std::uint32_t> unfinished_children_{0};
  std::atomic<std::uint32_t> refs_{1};
  std::uint32_t depth_ = 0;
  std::uint32_t env_bytes_ = 0;
  Tiedness tied_ = Tiedness::tied;
  TaskStorage storage_ = TaskStorage::stack_frame;
  bool heap_env_ = false;
  alignas(std::max_align_t) std::byte inline_env_[inline_env_capacity];
};

/// Per-worker freelist of task descriptors. Allocation and recycling happen
/// on whichever worker runs them; descriptors migrate between pools when a
/// task is stolen, which keeps the pools roughly balanced. All chunk memory
/// is owned here and released when the worker is destroyed.
class TaskPool {
 public:
  static constexpr std::size_t chunk_tasks = 64;

  TaskPool() = default;
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() {
    for (auto& chunk : chunks_) {
      ::operator delete[](chunk, std::align_val_t{alignof(Task)});
    }
  }

  /// `reused` reports whether the freelist served the request (pool_reuse
  /// vs pool_fresh statistics; bench_ablation_taskpool relies on them).
  Task* allocate(bool& reused) {
    if (free_ != nullptr) {
      Task* t = free_;
      free_ = t->pool_next;
      t->pool_next = nullptr;
      t->reset_for_reuse();
      reused = true;
      return t;
    }
    reused = false;
    if (next_in_chunk_ >= chunk_tasks) refill();
    Task* slot = chunk_cursor_ + next_in_chunk_;
    ++next_in_chunk_;
    return ::new (static_cast<void*>(slot)) Task();
  }

  void recycle(Task* t) noexcept {
    t->pool_next = free_;
    free_ = t;
  }

 private:
  void refill() {
    void* raw = ::operator new[](sizeof(Task) * chunk_tasks,
                                 std::align_val_t{alignof(Task)});
    chunk_cursor_ = static_cast<Task*>(raw);
    chunks_.push_back(static_cast<std::byte*>(raw));
    next_in_chunk_ = 0;
  }

  Task* free_ = nullptr;
  Task* chunk_cursor_ = nullptr;
  std::size_t next_in_chunk_ = chunk_tasks;
  std::vector<std::byte*> chunks_;
};

}  // namespace bots::rt
